//! `perf` — the wall-clock benchmark runner and trajectory gate.
//!
//! Measures the three standing benchmarks in-process (same work as the
//! standalone binaries, without process startup or stdout in the way):
//!
//! * `smoke_full_suite` — the full workload suite × both headline
//!   policies over the `AOCI_JOBS` pool (what `target/release/smoke`
//!   runs);
//! * `fuzz_campaign_200_serial` — a 200-case differential fuzzing
//!   campaign on one worker (what `AOCI_FUZZ_ITERS=200 AOCI_FUZZ_SEED=1
//!   AOCI_JOBS=1 target/release/fuzz` runs);
//! * `ubench_dispatch_loop` — the bare pre-decoded interpreter on the
//!   10M-iteration dispatch loop, sampling off.
//!
//! Each is the minimum over `--reps` repetitions (default 3). The result
//! is written as `{results_dir}/BENCH_<pr>.json` in the schema documented
//! in EXPERIMENTS.md, with the PR number defaulting to one past the
//! highest committed entry; the per-phase wall-clock breakdown from the
//! telemetry [`PhaseProfiler`] rides along as a `wall_phases` field.
//! Everything here is **wall-clock** — the segregated side of the
//! telemetry split (DESIGN.md §14); no deterministic artifact is touched.
//!
//! After measuring, prints the full per-PR trajectory table and compares
//! `smoke_full_suite` against the latest prior entry. A regression beyond
//! `--threshold` percent (default 15) is reported; with `--gate` it also
//! exits 3, which CI runs as an advisory (continue-on-error) job.
//!
//! Flags: `--quick` (1 rep, 25 fuzz cases — CI-sized), `--pr <n>`,
//! `--reps <n>`, `--threshold <pct>`, `--note <text>`, `--gate`.

use aoci_aos::{AosConfig, AosSystem};
use aoci_bench::{
    compare_latest, dispatch_loop_best, dispatch_loop_program, load_trajectory,
    render_trajectory, BenchEntry, BenchResult, EnvConfig,
};
use aoci_core::PolicyKind;
use aoci_fuzz::{run_campaign, CampaignConfig};
use aoci_json::Value;
use aoci_telemetry::{write_text, PhaseProfiler};
use aoci_workloads::{build, suite};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Parsed command line (see the module docs for flag semantics).
struct Args {
    quick: bool,
    gate: bool,
    pr: Option<u64>,
    reps: Option<usize>,
    threshold_pct: f64,
    note: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { quick: false, gate: false, pr: None, reps: None, threshold_pct: 15.0, note: None };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("perf: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--quick" => args.quick = true,
            "--gate" => args.gate = true,
            "--pr" => {
                args.pr = Some(value("--pr").parse().unwrap_or_else(|e| {
                    eprintln!("perf: bad --pr: {e}");
                    std::process::exit(2);
                }))
            }
            "--reps" => {
                args.reps = Some(value("--reps").parse().unwrap_or_else(|e| {
                    eprintln!("perf: bad --reps: {e}");
                    std::process::exit(2);
                }))
            }
            "--threshold" => {
                args.threshold_pct = value("--threshold").parse().unwrap_or_else(|e| {
                    eprintln!("perf: bad --threshold: {e}");
                    std::process::exit(2);
                })
            }
            "--note" => args.note = Some(value("--note")),
            other => {
                eprintln!("perf: unknown flag {other:?} (see the module docs)");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Today's UTC date as `YYYY-MM-DD`, from the civil-from-days algorithm
/// (no date crate in the offline build environment).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn toolchain() -> String {
    let version = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "rustc (version unavailable)".to_string());
    format!("{version}, cargo build --release")
}

/// One smoke sweep: the full suite × both headline policies over the
/// `AOCI_JOBS` pool, default config (exactly the `smoke` binary's matrix).
fn smoke_once(env: &EnvConfig) -> f64 {
    let workloads: Vec<_> = suite().iter().map(build).collect();
    let policies = [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }];
    let jobs: Vec<(usize, PolicyKind)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| policies.iter().map(move |&p| (wi, p)))
        .collect();
    let t = Instant::now();
    let (results, _stats) = env.pool().run(jobs, |&(wi, policy)| {
        AosSystem::new(&workloads[wi].program, AosConfig::new(policy))
            .run()
            .expect("smoke run completes")
    });
    assert!(!results.is_empty());
    t.elapsed().as_secs_f64()
}

/// One serial fuzzing campaign (panics on findings: a perf run must not
/// silently bless a correctness regression).
fn fuzz_once(iters: usize) -> f64 {
    let t = Instant::now();
    let out = run_campaign(
        &CampaignConfig { seed: 1, iters, metrics: false },
        &aoci_core::JobPool::new(1),
    );
    assert!(out.clean(), "fuzz campaign found violations: {:?}", out.findings);
    t.elapsed().as_secs_f64()
}

fn min_over(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1)).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let args = parse_args();
    let env = EnvConfig::from_env();
    let quick = args.quick || env.quick;
    let reps = args.reps.unwrap_or(if quick { 1 } else { 3 });
    let fuzz_iters = if quick { 25 } else { 200 };

    let results_dir = Path::new(&env.results_dir);
    let prior = load_trajectory(results_dir);
    let pr = args.pr.unwrap_or_else(|| prior.last().map_or(1, |e| e.pr + 1));

    eprintln!(
        "perf: measuring PR{pr} ({} mode, {reps} rep(s), {fuzz_iters} fuzz cases)",
        if quick { "quick" } else { "full" }
    );
    let profiler = PhaseProfiler::new();

    let smoke = {
        let _g = profiler.enter("smoke_full_suite");
        min_over(reps, || smoke_once(&env))
    };
    eprintln!("perf: smoke_full_suite         min {smoke:.3}s");
    let fuzz = {
        let _g = profiler.enter("fuzz_campaign_serial");
        min_over(reps, || fuzz_once(fuzz_iters))
    };
    eprintln!("perf: fuzz_campaign ({fuzz_iters} cases) min {fuzz:.3}s");
    let (dispatch_cycles, dispatch) = {
        let _g = profiler.enter("ubench_dispatch_loop");
        let program = dispatch_loop_program();
        dispatch_loop_best(&program, true, reps)
    };
    eprintln!("perf: ubench_dispatch_loop     min {dispatch:.3}s ({dispatch_cycles} cycles)");

    let fuzz_name =
        if quick { format!("fuzz_campaign_{fuzz_iters}_serial") } else { "fuzz_campaign_200_serial".to_string() };
    let benches = BTreeMap::from([
        (
            "smoke_full_suite".to_string(),
            BenchResult {
                command: "target/release/perf (in-process suite x {cins, fixed/3} over the AOCI_JOBS pool)".to_string(),
                wall_seconds: round3(smoke),
                detail: format!("min of {reps}; same matrix as target/release/smoke, default config"),
            },
        ),
        (
            fuzz_name,
            BenchResult {
                command: format!(
                    "target/release/perf (in-process campaign, AOCI_FUZZ_ITERS={fuzz_iters} AOCI_FUZZ_SEED=1, 1 worker)"
                ),
                wall_seconds: round3(fuzz),
                detail: format!("min of {reps}; campaign clean (asserted)"),
            },
        ),
        (
            "ubench_dispatch_loop".to_string(),
            BenchResult {
                command: format!("target/release/perf (bare decoded Vm, 10M-iteration loop, best of {reps})"),
                wall_seconds: round3(dispatch),
                detail: format!("sampling off; {dispatch_cycles} simulated cycles, bit-identical across dispatch modes"),
            },
        ),
    ]);

    let entry = BenchEntry {
        pr,
        date: today(),
        toolchain: toolchain(),
        host: prior
            .last()
            .map_or_else(|| "unknown host".to_string(), |e| e.host.clone()),
        note: args.note.unwrap_or_else(|| {
            "measured by target/release/perf (telemetry PR, ISSUE 8): in-process reruns of the standing benches; metrics registry off during measurement".to_string()
        }),
        benches,
    };

    // Embed the profiler's wall-clock phase breakdown next to the benches.
    // `BenchEntry::from_value` ignores unknown keys, so the trajectory
    // loader is indifferent to it.
    let mut doc = entry.to_value();
    if let Value::Obj(map) = &mut doc {
        map.insert("wall_phases".to_string(), profiler.to_value());
    }
    let out_path = results_dir.join(format!("BENCH_{pr}.json"));
    if let Err(e) = write_text(&out_path, &format!("{}\n", aoci_json::to_string_pretty(&doc))) {
        eprintln!("perf: {e}");
        std::process::exit(1);
    }
    eprintln!("perf: wrote {}", out_path.display());
    eprint!("{}", profiler.render());

    // The trajectory including the fresh entry, then the advisory gate.
    let mut all = prior;
    all.retain(|e| e.pr != pr);
    all.push(entry.clone());
    all.sort_by_key(|e| e.pr);
    print!("{}", render_trajectory(&all));

    match compare_latest(&all, &entry, "smoke_full_suite") {
        None => println!("gate: no prior smoke_full_suite entry to compare against"),
        Some((prior_pr, prior_secs, ratio)) => {
            let limit = 1.0 + args.threshold_pct / 100.0;
            println!(
                "gate: smoke_full_suite {:.3}s vs PR{prior_pr} {prior_secs:.3}s = {ratio:.3}x (limit {limit:.2}x)",
                entry.wall_seconds("smoke_full_suite").unwrap_or(f64::NAN),
            );
            if ratio > limit {
                println!(
                    "gate: REGRESSION beyond {:.0}% — investigate before merging",
                    args.threshold_pct
                );
                if args.gate {
                    std::process::exit(3);
                }
            } else {
                println!("gate: within budget");
            }
        }
    }
}

/// Milli-second precision: enough for wall-clock numbers, and exact in
/// both f64 and the JSON round-trip.
fn round3(secs: f64) -> f64 {
    (secs * 1000.0).round() / 1000.0
}
