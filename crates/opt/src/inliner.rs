//! The recursive inliner: emits optimized code for one method, consulting
//! the oracle at every call site with the current compilation context.

use crate::config::OptConfig;
use crate::decision::{Compilation, DecisionProvenance, InlineDecision, Refusal, RefusalReason};
use crate::simplify;
use aoci_core::InlineOracle;
use aoci_ir::{
    size, CallSiteRef, Instr, MethodId, Program, Reg, SiteIdx, SizeClass,
};
use aoci_vm::{InlineMap, InlineNode, MethodVersion, OptLevel, OsrMap, OsrPoint};
use std::collections::HashSet;

/// Compiles `method` at the optimizing level, performing profile-directed,
/// context-sensitive inlining as directed by `oracle`.
///
/// The returned [`Compilation`] carries the installable [`MethodVersion`]
/// (with an inline map for source-level stack recovery), the record of every
/// inlining performed, and every refusal (for the AOS database).
pub fn compile(
    program: &Program,
    method: MethodId,
    oracle: &InlineOracle,
    config: &OptConfig,
) -> Compilation {
    let root_def = program.method(method);
    // Loop headers of the *root* source body: targets of its backward
    // jumps/branches. Each one that survives optimization becomes an OSR
    // point, so a long-running activation can transfer in or out mid-loop.
    let mut headers: Vec<u32> = root_def
        .body()
        .iter()
        .enumerate()
        .filter_map(|(i, instr)| match instr {
            Instr::Jump { target } | Instr::Branch { target, .. }
                if *target as usize <= i =>
            {
                Some(*target)
            }
            _ => None,
        })
        .collect();
    headers.sort_unstable();
    headers.dedup();

    let mut e = Emitter {
        program,
        oracle,
        config,
        root_size: root_def.size_estimate().max(32),
        out: Vec::new(),
        instr_nodes: Vec::new(),
        nodes: vec![InlineNode { method, parent: None, body_start: 0 }],
        next_reg: root_def.num_regs() as u32,
        emitted_size: 0,
        refusals: Vec::new(),
        decisions: Vec::new(),
        root_map: Vec::new(),
    };
    let mut stack = vec![method];
    e.emit_body(method, 0, 0, RetMode::Root, &[], 0, &mut stack);
    debug_assert_eq!(stack, vec![method]);

    let Emitter { out, instr_nodes, mut nodes, next_reg, refusals, decisions, root_map, .. } = e;
    let num_regs = u16::try_from(next_reg).expect("register budget enforced during emission");
    // OSR anchors: (source pc, emitted pc) per root loop header. The
    // simplifier remaps the emitted side alongside branch targets and
    // drops anchors whose header stops being a control-flow leader.
    let mut anchors: Vec<(u32, u32)> =
        headers.iter().map(|&h| (h, root_map[h as usize])).collect();
    let (body, instr_nodes) = if config.simplify {
        simplify::simplify_with_anchors(out, instr_nodes, &mut nodes, num_regs, &mut anchors)
    } else {
        (out, instr_nodes)
    };
    // The frame mapping at every anchor is the identity over the root
    // register window: emission never renames root registers (inlined
    // callees live in windows above them) and simplification rewrites
    // uses, never definitions.
    let mut seen_opt = HashSet::new();
    let points: Vec<OsrPoint> = anchors
        .into_iter()
        .filter(|&(_, opt_pc)| seen_opt.insert(opt_pc))
        .map(|(src_pc, opt_pc)| OsrPoint::identity(src_pc, opt_pc, root_def.num_regs()))
        .collect();
    let osr_map = OsrMap::new(points).expect("anchors are unique on both sides");
    debug_assert!(osr_map.validate(root_def.num_regs(), num_regs).is_ok());
    let generated_size = size::body_size(&body);
    let version = MethodVersion {
        method,
        level: OptLevel::Optimized,
        num_regs,
        inline_map: InlineMap::from_parts(nodes, instr_nodes),
        code_size: generated_size,
        body,
        version_id: 0,
        osr_map,
        decoded: aoci_vm::DecodeCache::default(),
    };
    Compilation { version, decisions, refusals, generated_size }
}

enum RetMode {
    /// The root method: returns stay returns.
    Root,
    /// An inlined body: returns become moves to `dst` plus jumps to the end
    /// of the expansion.
    Inline { dst: Option<Reg> },
}

struct Emitter<'a> {
    program: &'a Program,
    oracle: &'a InlineOracle,
    config: &'a OptConfig,
    root_size: u32,
    out: Vec<Instr>,
    instr_nodes: Vec<u32>,
    nodes: Vec<InlineNode>,
    next_reg: u32,
    emitted_size: u32,
    refusals: Vec<Refusal>,
    decisions: Vec<InlineDecision>,
    /// Source-pc → emitted-pc map of the root body (node 0), kept for OSR
    /// anchor construction.
    root_map: Vec<u32>,
}

/// Outcome of a per-callee inlining decision.
enum Decision {
    Inline,
    Refuse(RefusalReason),
}

impl<'a> Emitter<'a> {
    fn push(&mut self, node: u32, instr: Instr) -> usize {
        self.emitted_size += size::instr_size(&instr);
        self.out.push(instr);
        self.instr_nodes.push(node);
        self.out.len() - 1
    }

    /// Emits the (possibly recursively inlined) body of `method`.
    ///
    /// `chain` is the compilation context *outside* this body: for a call
    /// site `s` inside it, the oracle context is `[(method, s)] ++ chain`.
    /// Returns the indices of jumps that must be patched to the end of this
    /// body's expansion (empty in [`RetMode::Root`]).
    #[allow(clippy::too_many_arguments)]
    fn emit_body(
        &mut self,
        method: MethodId,
        node: u32,
        reg_base: u32,
        ret: RetMode,
        chain: &[CallSiteRef],
        depth: u32,
        stack: &mut Vec<MethodId>,
    ) -> Vec<usize> {
        let def = self.program.method(method);
        let body: Vec<Instr> = def.body().to_vec();
        let mut orig_to_new = vec![u32::MAX; body.len()];
        let mut local_fixups: Vec<(usize, u32)> = Vec::new();
        let mut end_jumps: Vec<usize> = Vec::new();

        for (oi, instr) in body.iter().enumerate() {
            orig_to_new[oi] = self.out.len() as u32;
            match instr {
                Instr::Jump { target } => {
                    let at = self.push(node, Instr::Jump { target: u32::MAX });
                    local_fixups.push((at, *target));
                }
                Instr::Branch { cond, lhs, rhs, target } => {
                    let at = self.push(
                        node,
                        Instr::Branch {
                            cond: *cond,
                            lhs: shift(*lhs, reg_base),
                            rhs: shift(*rhs, reg_base),
                            target: u32::MAX,
                        },
                    );
                    local_fixups.push((at, *target));
                }
                Instr::Return { src } => match &ret {
                    RetMode::Root => {
                        self.push(node, Instr::Return { src: src.map(|r| shift(r, reg_base)) });
                    }
                    RetMode::Inline { dst } => {
                        if let (Some(d), Some(s)) = (dst, src) {
                            self.push(node, Instr::Move { dst: *d, src: shift(*s, reg_base) });
                        }
                        let at = self.push(node, Instr::Jump { target: u32::MAX });
                        end_jumps.push(at);
                    }
                },
                Instr::CallStatic { site, dst, callee, args } => {
                    let dst = dst.map(|d| shift(d, reg_base));
                    let argv: Vec<Reg> = args.iter().map(|&a| shift(a, reg_base)).collect();
                    self.handle_static_call(
                        method, node, *site, dst, *callee, argv, chain, depth, stack,
                    );
                }
                Instr::CallVirtual { site, dst, selector, recv, args } => {
                    let dst = dst.map(|d| shift(d, reg_base));
                    let recv = shift(*recv, reg_base);
                    let argv: Vec<Reg> = args.iter().map(|&a| shift(a, reg_base)).collect();
                    self.handle_virtual_call(
                        method, node, *site, dst, *selector, recv, argv, chain, depth, stack,
                    );
                }
                other => {
                    self.push(node, shift_instr(other.clone(), reg_base));
                }
            }
        }

        for (at, orig_target) in local_fixups {
            let new_target = orig_to_new[orig_target as usize];
            debug_assert_ne!(new_target, u32::MAX);
            self.out[at].map_branch_target(|_| new_target);
        }
        if node == 0 {
            self.root_map = orig_to_new;
        }
        end_jumps
    }

    /// The hard code-expansion ceiling of this compilation, in abstract
    /// size units (recorded as `size_budget` provenance).
    fn hard_budget(&self) -> u32 {
        (self.config.hard_code_expansion * self.root_size as f64) as u32
    }

    /// Decides whether `callee` may be inlined in context `ctx`, returning
    /// the verdict together with the provenance the flight recorder keeps:
    /// whether a profile rule fired, its weight, and the depth/size state
    /// the decision was taken under.
    fn decide(
        &self,
        callee: MethodId,
        ctx: &[CallSiteRef],
        depth: u32,
        stack: &[MethodId],
    ) -> (Decision, DecisionProvenance) {
        let def = self.program.method(callee);
        let weight = self
            .oracle
            .candidates(ctx)
            .iter()
            .find(|c| c.target == callee)
            .map(|c| c.weight);
        let hot = weight.is_some();
        let provenance = DecisionProvenance {
            rule_fired: hot,
            predicted_benefit: weight.unwrap_or(0.0),
            context_depth: depth,
            size_before: self.emitted_size,
            size_budget: self.hard_budget(),
        };
        let decision = (|| {
            if stack.contains(&callee) {
                return Decision::Refuse(RefusalReason::Recursive);
            }
            // Large is categorical: checked before any budget so the
            // refusal reason reflects the size class.
            if def.size_class() == SizeClass::Large {
                return Decision::Refuse(RefusalReason::TooLarge);
            }
            if self.next_reg + def.num_regs() as u32 > u16::MAX as u32 {
                return Decision::Refuse(RefusalReason::ExpansionExceeded);
            }
            if depth >= self.config.hard_inline_depth {
                return Decision::Refuse(RefusalReason::DepthExceeded);
            }
            let grown = self.emitted_size.saturating_add(def.size_estimate());
            if grown > self.hard_budget() {
                return Decision::Refuse(RefusalReason::ExpansionExceeded);
            }
            let within_soft_depth = depth < self.config.max_inline_depth;
            let soft_budget =
                (self.config.max_code_expansion * self.root_size as f64) as u32;
            let within_soft_size = grown <= soft_budget;
            match def.size_class() {
                SizeClass::Large => unreachable!("handled above"),
                SizeClass::Tiny => Decision::Inline,
                SizeClass::Small => {
                    if (within_soft_depth && within_soft_size) || hot {
                        Decision::Inline
                    } else if !within_soft_depth {
                        Decision::Refuse(RefusalReason::DepthExceeded)
                    } else {
                        Decision::Refuse(RefusalReason::ExpansionExceeded)
                    }
                }
                SizeClass::Medium => {
                    if !hot {
                        Decision::Refuse(RefusalReason::NotHot)
                    } else if within_soft_depth && within_soft_size {
                        Decision::Inline
                    } else if !within_soft_depth {
                        Decision::Refuse(RefusalReason::DepthExceeded)
                    } else {
                        Decision::Refuse(RefusalReason::ExpansionExceeded)
                    }
                }
            }
        })();
        (decision, provenance)
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_static_call(
        &mut self,
        method: MethodId,
        node: u32,
        site: SiteIdx,
        dst: Option<Reg>,
        callee: MethodId,
        args: Vec<Reg>,
        chain: &[CallSiteRef],
        depth: u32,
        stack: &mut Vec<MethodId>,
    ) {
        let ctx = context(method, site, chain);
        let (decision, provenance) = self.decide(callee, &ctx, depth, stack);
        match decision {
            Decision::Inline => {
                self.decisions.push(InlineDecision {
                    context: ctx.clone(),
                    callee,
                    guarded: false,
                    provenance,
                });
                let end_jumps = self.splice(node, site, callee, args, dst, &ctx, depth, stack);
                let end = self.out.len() as u32;
                for j in end_jumps {
                    self.out[j].map_branch_target(|_| end);
                }
            }
            Decision::Refuse(reason) => {
                self.refusals.push(Refusal {
                    site: CallSiteRef::new(method, site),
                    callee,
                    reason,
                    hot: provenance.rule_fired,
                    provenance,
                });
                self.push(node, Instr::CallStatic { site, dst, callee, args });
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_virtual_call(
        &mut self,
        method: MethodId,
        node: u32,
        site: SiteIdx,
        dst: Option<Reg>,
        selector: aoci_ir::SelectorId,
        recv: Reg,
        args: Vec<Reg>,
        chain: &[CallSiteRef],
        depth: u32,
        stack: &mut Vec<MethodId>,
    ) {
        let ctx = context(method, site, chain);
        let impls = self.program.implementations(selector);

        // Class hierarchy analysis: a unique implementation can be bound
        // statically and inlined unguarded (pre-existence).
        if let [only] = impls {
            let only = *only;
            let (decision, provenance) = self.decide(only, &ctx, depth, stack);
            match decision {
                Decision::Inline => {
                    self.decisions.push(InlineDecision {
                        context: ctx.clone(),
                        callee: only,
                        guarded: false,
                        provenance,
                    });
                    let mut argv = Vec::with_capacity(args.len() + 1);
                    argv.push(recv);
                    argv.extend_from_slice(&args);
                    let end_jumps = self.splice(node, site, only, argv, dst, &ctx, depth, stack);
                    let end = self.out.len() as u32;
                    for j in end_jumps {
                        self.out[j].map_branch_target(|_| end);
                    }
                }
                Decision::Refuse(reason) => {
                    self.refusals.push(Refusal {
                        site: CallSiteRef::new(method, site),
                        callee: only,
                        reason,
                        hot: provenance.rule_fired,
                        provenance,
                    });
                    self.push(node, Instr::CallVirtual { site, dst, selector, recv, args });
                }
            }
            return;
        }

        // Polymorphic: guarded inlining of profile-predicted targets.
        let candidates = self.oracle.candidates(&ctx);
        let mut to_inline: Vec<(MethodId, DecisionProvenance)> = Vec::new();
        for c in &candidates {
            // Defensive: only genuine implementations of this selector.
            if !impls.contains(&c.target) {
                continue;
            }
            if to_inline.len() >= self.config.max_guarded_targets {
                let provenance = DecisionProvenance {
                    rule_fired: true,
                    predicted_benefit: c.weight,
                    context_depth: depth,
                    size_before: self.emitted_size,
                    size_budget: self.hard_budget(),
                };
                self.refusals.push(Refusal {
                    site: CallSiteRef::new(method, site),
                    callee: c.target,
                    reason: RefusalReason::GuardLimit,
                    hot: true,
                    provenance,
                });
                continue;
            }
            match self.decide(c.target, &ctx, depth, stack) {
                (Decision::Inline, provenance) => to_inline.push((c.target, provenance)),
                (Decision::Refuse(reason), provenance) => self.refusals.push(Refusal {
                    site: CallSiteRef::new(method, site),
                    callee: c.target,
                    reason,
                    hot: provenance.rule_fired,
                    provenance,
                }),
            }
        }

        if to_inline.is_empty() {
            self.push(node, Instr::CallVirtual { site, dst, selector, recv, args });
            return;
        }

        let mut all_end_jumps: Vec<usize> = Vec::new();
        let mut pending_guard: Option<usize> = None;
        for (target, provenance) in to_inline {
            if let Some(g) = pending_guard.take() {
                let here = self.out.len() as u32;
                self.out[g].map_branch_target(|_| here);
            }
            let g = self.push(
                node,
                Instr::GuardMethod { recv, selector, target, else_target: u32::MAX },
            );
            pending_guard = Some(g);
            self.decisions.push(InlineDecision {
                context: ctx.clone(),
                callee: target,
                guarded: true,
                provenance,
            });
            let mut argv = Vec::with_capacity(args.len() + 1);
            argv.push(recv);
            argv.extend_from_slice(&args);
            all_end_jumps.extend(self.splice(node, site, target, argv, dst, &ctx, depth, stack));
            // Bodies cannot fall through (every path returns ⇒ jumps to
            // end), so the next guard / fallback is reachable only via the
            // guard's else edge.
        }
        // Fallback: the original virtual dispatch.
        if let Some(g) = pending_guard.take() {
            let here = self.out.len() as u32;
            self.out[g].map_branch_target(|_| here);
        }
        self.push(node, Instr::CallVirtual { site, dst, selector, recv, args });
        let end = self.out.len() as u32;
        for j in all_end_jumps {
            self.out[j].map_branch_target(|_| end);
        }
    }

    /// Splices `target`'s body: argument moves into a fresh register window,
    /// then the recursively-inlined body. Returns the end-jump fixups.
    #[allow(clippy::too_many_arguments)]
    fn splice(
        &mut self,
        parent_node: u32,
        site: SiteIdx,
        target: MethodId,
        incoming: Vec<Reg>,
        dst: Option<Reg>,
        ctx: &[CallSiteRef],
        depth: u32,
        stack: &mut Vec<MethodId>,
    ) -> Vec<usize> {
        let child_def = self.program.method(target);
        debug_assert_eq!(incoming.len(), child_def.total_args() as usize);
        let child_base = self.next_reg;
        self.next_reg += child_def.num_regs() as u32;
        let child_node = self.nodes.len() as u32;
        self.nodes.push(InlineNode {
            method: target,
            parent: Some((parent_node, site)),
            body_start: self.out.len() as u32,
        });
        for (k, src) in incoming.into_iter().enumerate() {
            self.push(
                child_node,
                Instr::Move { dst: Reg((child_base as usize + k) as u16), src },
            );
        }
        stack.push(target);
        let end_jumps = self.emit_body(
            target,
            child_node,
            child_base,
            RetMode::Inline { dst },
            ctx,
            depth + 1,
            stack,
        );
        stack.pop();
        end_jumps
    }
}

fn shift(r: Reg, base: u32) -> Reg {
    Reg((r.0 as u32 + base) as u16)
}

fn context(method: MethodId, site: SiteIdx, chain: &[CallSiteRef]) -> Vec<CallSiteRef> {
    let mut ctx = Vec::with_capacity(chain.len() + 1);
    ctx.push(CallSiteRef::new(method, site));
    ctx.extend_from_slice(chain);
    ctx
}

/// Shifts every register operand of a non-control instruction.
fn shift_instr(instr: Instr, base: u32) -> Instr {
    match instr {
        Instr::Const { dst, value } => Instr::Const { dst: shift(dst, base), value },
        Instr::ConstNull { dst } => Instr::ConstNull { dst: shift(dst, base) },
        Instr::Move { dst, src } => Instr::Move { dst: shift(dst, base), src: shift(src, base) },
        Instr::Bin { op, dst, lhs, rhs } => Instr::Bin {
            op,
            dst: shift(dst, base),
            lhs: shift(lhs, base),
            rhs: shift(rhs, base),
        },
        Instr::Work { units } => Instr::Work { units },
        Instr::New { dst, class } => Instr::New { dst: shift(dst, base), class },
        Instr::GetField { dst, obj, field } => Instr::GetField {
            dst: shift(dst, base),
            obj: shift(obj, base),
            field,
        },
        Instr::PutField { obj, field, src } => Instr::PutField {
            obj: shift(obj, base),
            field,
            src: shift(src, base),
        },
        Instr::GetGlobal { dst, global } => Instr::GetGlobal { dst: shift(dst, base), global },
        Instr::PutGlobal { global, src } => Instr::PutGlobal { global, src: shift(src, base) },
        Instr::ArrNew { dst, len } => Instr::ArrNew { dst: shift(dst, base), len: shift(len, base) },
        Instr::ArrGet { dst, arr, idx } => Instr::ArrGet {
            dst: shift(dst, base),
            arr: shift(arr, base),
            idx: shift(idx, base),
        },
        Instr::ArrSet { arr, idx, src } => Instr::ArrSet {
            arr: shift(arr, base),
            idx: shift(idx, base),
            src: shift(src, base),
        },
        Instr::ArrLen { dst, arr } => Instr::ArrLen { dst: shift(dst, base), arr: shift(arr, base) },
        Instr::InstanceOf { dst, obj, class } => Instr::InstanceOf {
            dst: shift(dst, base),
            obj: shift(obj, base),
            class,
        },
        // Control flow and calls are handled by the emitter directly.
        other => unreachable!("unexpected instruction in shift_instr: {other:?}"),
    }
}

#[cfg(test)]
mod tests;
