use super::*;
use crate::OptConfig;
use aoci_core::InlineOracle;
use aoci_core::RuleSet;
use aoci_ir::{BinOp, ProgramBuilder};
use aoci_profile::TraceKey;
use aoci_vm::{CostModel, Value, Vm};

fn no_sampling() -> CostModel {
    CostModel { sample_period: 0, ..CostModel::default() }
}

/// Runs `program` twice — purely baseline, and with `methods` optimize-
/// compiled under `oracle`/`config` and pre-installed — and asserts the
/// results agree. Returns (baseline result, compilations).
fn differential(
    program: &Program,
    methods: &[MethodId],
    oracle: &InlineOracle,
    config: &OptConfig,
) -> (Option<Value>, Vec<Compilation>) {
    let mut base_vm = Vm::new(program, no_sampling());
    let base = base_vm.run_to_completion().expect("baseline runs");

    let compilations: Vec<Compilation> = methods
        .iter()
        .map(|&m| compile(program, m, oracle, config))
        .collect();
    let mut opt_vm = Vm::new(program, no_sampling());
    for c in &compilations {
        opt_vm.registry_mut().install(c.version.clone());
    }
    let opt = opt_vm.run_to_completion().expect("optimized runs");
    assert_eq!(base, opt, "optimized code must preserve semantics");
    (base, compilations)
}

#[test]
fn inlines_tiny_static_callee() {
    let mut b = ProgramBuilder::new();
    let tiny = {
        let mut m = b.static_method("tiny", 1);
        let out = m.fresh_reg();
        let two = m.fresh_reg();
        m.const_int(two, 2);
        m.bin(BinOp::Mul, out, m.param(0), two);
        m.ret(Some(out));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let x = m.fresh_reg();
        let y = m.fresh_reg();
        m.const_int(x, 21);
        m.call_static(Some(y), tiny, &[x]);
        m.ret(Some(y));
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let (result, comps) =
        differential(&p, &[main], &InlineOracle::empty(), &OptConfig::default());
    assert_eq!(result.and_then(Value::as_int), Some(42));
    assert!(comps[0].inlined(tiny));
    assert!(comps[0].version.body.iter().all(|i| !i.is_call()));
}

#[test]
fn never_inlines_large_methods() {
    let mut b = ProgramBuilder::new();
    let large = {
        let mut m = b.static_method("large", 0);
        m.work(1000);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, large, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();
    // Even a hot profile cannot force a large inline.
    let site = CallSiteRef::new(main, SiteIdx(0));
    let rules = RuleSet::from_rules(vec![(TraceKey::edge(site, large), 100.0)], 100.0);
    let (_, comps) =
        differential(&p, &[main], &InlineOracle::new(rules.into()), &OptConfig::default());
    assert!(!comps[0].inlined(large));
    assert!(comps[0]
        .refusals
        .iter()
        .any(|r| r.callee == large && r.reason == RefusalReason::TooLarge && r.hot));
}

#[test]
fn medium_methods_require_profile_support() {
    let mut b = ProgramBuilder::new();
    let medium = {
        let mut m = b.static_method("medium", 0);
        m.work(100);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, medium, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();

    // Without profile: refused as NotHot.
    let cold = compile(&p, main, &InlineOracle::empty(), &OptConfig::default());
    assert!(!cold.inlined(medium));
    assert!(cold
        .refusals
        .iter()
        .any(|r| r.callee == medium && r.reason == RefusalReason::NotHot));

    // With a hot edge: inlined.
    let site = CallSiteRef::new(main, SiteIdx(0));
    let rules = RuleSet::from_rules(vec![(TraceKey::edge(site, medium), 50.0)], 50.0);
    let (_, comps) =
        differential(&p, &[main], &InlineOracle::new(rules.into()), &OptConfig::default());
    assert!(comps[0].inlined(medium));
}

#[test]
fn cha_monomorphic_virtual_inlines_unguarded() {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let a_val = {
        let mut m = b.virtual_method("A.val", a, sel);
        let r = m.fresh_reg();
        m.const_int(r, 9);
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(o, a);
        m.call_virtual(Some(r), sel, o, &[]);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let (result, comps) =
        differential(&p, &[main], &InlineOracle::empty(), &OptConfig::default());
    assert_eq!(result.and_then(Value::as_int), Some(9));
    assert!(comps[0].inlined(a_val));
    // Single implementation: no guard needed.
    assert_eq!(comps[0].guarded_count(), 0);
    assert!(!comps[0]
        .version
        .body
        .iter()
        .any(|i| matches!(i, Instr::GuardMethod { .. })));
}

/// Builds the polymorphic test program: `apply(o)` virtually calls `val` on
/// `o`, where `A.val` returns 1 and `B.val` returns 2; main sums
/// `apply(a) + 10*apply(b)` = 21.
fn poly_program() -> (Program, MethodId, MethodId, MethodId, MethodId) {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    let a_val = {
        let mut m = b.virtual_method("A.val", a, sel);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish()
    };
    let b_val = {
        let mut m = b.virtual_method("B.val", cb, sel);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish()
    };
    let apply = {
        let mut m = b.static_method("apply", 1);
        let r = m.fresh_reg();
        m.call_virtual(Some(r), sel, m.param(0), &[]);
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        let ra = m.fresh_reg();
        let rb = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, cb);
        m.call_static(Some(ra), apply, &[oa]);
        m.call_static(Some(rb), apply, &[ob]);
        let ten = m.fresh_reg();
        m.const_int(ten, 10);
        m.bin(BinOp::Mul, rb, rb, ten);
        m.bin(BinOp::Add, ra, ra, rb);
        m.ret(Some(ra));
        m.finish()
    };
    let p = b.finish(main).unwrap();
    (p, main, apply, a_val, b_val)
}

#[test]
fn polymorphic_without_profile_keeps_virtual_call() {
    let (p, _main, apply, a_val, b_val) = poly_program();
    let (_, comps) =
        differential(&p, &[apply], &InlineOracle::empty(), &OptConfig::default());
    assert!(!comps[0].inlined(a_val));
    assert!(!comps[0].inlined(b_val));
    assert!(comps[0]
        .version
        .body
        .iter()
        .any(|i| matches!(i, Instr::CallVirtual { .. })));
}

#[test]
fn guarded_inlining_of_both_hot_targets_with_fallback() {
    let (p, _main, apply, a_val, b_val) = poly_program();
    let site = CallSiteRef::new(apply, SiteIdx(0));
    let rules = RuleSet::from_rules(
        vec![
            (TraceKey::edge(site, a_val), 50.0),
            (TraceKey::edge(site, b_val), 50.0),
        ],
        100.0,
    );
    let (result, comps) =
        differential(&p, &[apply], &InlineOracle::new(rules.into()), &OptConfig::default());
    assert_eq!(result.and_then(Value::as_int), Some(21));
    assert!(comps[0].inlined(a_val));
    assert!(comps[0].inlined(b_val));
    assert_eq!(comps[0].guarded_count(), 2);
    // The fallback virtual dispatch is retained.
    assert!(comps[0]
        .version
        .body
        .iter()
        .any(|i| matches!(i, Instr::CallVirtual { .. })));
}

#[test]
fn guard_limit_caps_targets_and_records_refusal() {
    let (p, _main, apply, a_val, b_val) = poly_program();
    let site = CallSiteRef::new(apply, SiteIdx(0));
    let rules = RuleSet::from_rules(
        vec![
            (TraceKey::edge(site, a_val), 60.0),
            (TraceKey::edge(site, b_val), 40.0),
        ],
        100.0,
    );
    let config = OptConfig { max_guarded_targets: 1, ..OptConfig::default() };
    let (result, comps) =
        differential(&p, &[apply], &InlineOracle::new(rules.into()), &config);
    assert_eq!(result.and_then(Value::as_int), Some(21));
    // The heavier target wins the single guard slot.
    assert!(comps[0].inlined(a_val));
    assert!(!comps[0].inlined(b_val));
    assert!(comps[0]
        .refusals
        .iter()
        .any(|r| r.callee == b_val && r.reason == RefusalReason::GuardLimit));
}

#[test]
fn context_sensitive_rules_specialize_nested_inlining() {
    // The paper's HashMap shape: runTest calls get twice; get virtually
    // calls key.hash. Context-sensitive rules inline a *different* hash
    // implementation at each inlined copy of get.
    let mut b = ProgramBuilder::new();
    let sel = b.selector("hash", 0);
    let obj = b.class("Object", None);
    let myk = b.class("MyKey", Some(obj));
    let obj_hash = {
        let mut m = b.virtual_method("Object.hash", obj, sel);
        let r = m.fresh_reg();
        m.const_int(r, 100);
        m.ret(Some(r));
        m.finish()
    };
    let my_hash = {
        let mut m = b.virtual_method("MyKey.hash", myk, sel);
        let r = m.fresh_reg();
        m.const_int(r, 7);
        m.ret(Some(r));
        m.finish()
    };
    let get = {
        let mut m = b.static_method("get", 1);
        let r = m.fresh_reg();
        m.call_virtual(Some(r), sel, m.param(0), &[]);
        m.ret(Some(r));
        m.finish()
    };
    let run_test = {
        let mut m = b.static_method("runTest", 2);
        let r1 = m.fresh_reg();
        let r2 = m.fresh_reg();
        m.call_static(Some(r1), get, &[m.param(0)]); // site 0: MyKey
        m.call_static(Some(r2), get, &[m.param(1)]); // site 1: Object
        m.bin(BinOp::Add, r1, r1, r2);
        m.ret(Some(r1));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let k1 = m.fresh_reg();
        let k2 = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(k1, myk);
        m.new_obj(k2, obj);
        m.call_static(Some(r), run_test, &[k1, k2]);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(main).unwrap();

    let hash_in_get = CallSiteRef::new(get, SiteIdx(0));
    let get_site0 = CallSiteRef::new(run_test, SiteIdx(0));
    let get_site1 = CallSiteRef::new(run_test, SiteIdx(1));
    let rules = RuleSet::from_rules(
        vec![
            // get is hot from both sites of runTest.
            (TraceKey::edge(get_site0, get), 50.0),
            (TraceKey::edge(get_site1, get), 50.0),
            // Context-sensitive: hash's target depends on which site of
            // runTest we came through.
            (TraceKey::new(my_hash, vec![hash_in_get, get_site0]), 50.0),
            (TraceKey::new(obj_hash, vec![hash_in_get, get_site1]), 50.0),
        ],
        200.0,
    );
    let (result, comps) = differential(
        &p,
        &[run_test],
        &InlineOracle::new(rules.into()),
        &OptConfig::default(),
    );
    assert_eq!(result.and_then(Value::as_int), Some(107));
    let c = &comps[0];
    assert!(c.inlined(get));
    assert!(c.inlined(my_hash));
    assert!(c.inlined(obj_hash));
    // Each hash was inlined exactly once — in its own context — not both at
    // both sites (the context-insensitive behaviour).
    let my_count = c.decisions.iter().filter(|d| d.callee == my_hash).count();
    let obj_count = c.decisions.iter().filter(|d| d.callee == obj_hash).count();
    assert_eq!((my_count, obj_count), (1, 1));
    // And the decisions carry the expected compilation contexts.
    let my_decision = c.decisions.iter().find(|d| d.callee == my_hash).unwrap();
    assert_eq!(my_decision.context, vec![hash_in_get, get_site0]);
}

#[test]
fn context_insensitive_rules_inline_both_targets_at_both_sites() {
    // Same program as above but with edge-only (CI) rules where the hash
    // site is 50/50: both targets get guarded inlines at *both* copies —
    // the code-bloat case context sensitivity avoids.
    let mut b = ProgramBuilder::new();
    let sel = b.selector("hash", 0);
    let obj = b.class("Object", None);
    let myk = b.class("MyKey", Some(obj));
    let obj_hash = {
        let mut m = b.virtual_method("Object.hash", obj, sel);
        let r = m.fresh_reg();
        m.const_int(r, 100);
        m.ret(Some(r));
        m.finish()
    };
    let my_hash = {
        let mut m = b.virtual_method("MyKey.hash", myk, sel);
        let r = m.fresh_reg();
        m.const_int(r, 7);
        m.ret(Some(r));
        m.finish()
    };
    let get = {
        let mut m = b.static_method("get", 1);
        let r = m.fresh_reg();
        m.call_virtual(Some(r), sel, m.param(0), &[]);
        m.ret(Some(r));
        m.finish()
    };
    let run_test = {
        let mut m = b.static_method("runTest", 2);
        let r1 = m.fresh_reg();
        let r2 = m.fresh_reg();
        m.call_static(Some(r1), get, &[m.param(0)]);
        m.call_static(Some(r2), get, &[m.param(1)]);
        m.bin(BinOp::Add, r1, r1, r2);
        m.ret(Some(r1));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let k1 = m.fresh_reg();
        let k2 = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(k1, myk);
        m.new_obj(k2, obj);
        m.call_static(Some(r), run_test, &[k1, k2]);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(main).unwrap();

    let hash_in_get = CallSiteRef::new(get, SiteIdx(0));
    let rules = RuleSet::from_rules(
        vec![
            (TraceKey::edge(CallSiteRef::new(run_test, SiteIdx(0)), get), 50.0),
            (TraceKey::edge(CallSiteRef::new(run_test, SiteIdx(1)), get), 50.0),
            (TraceKey::edge(hash_in_get, my_hash), 50.0),
            (TraceKey::edge(hash_in_get, obj_hash), 50.0),
        ],
        200.0,
    );
    let (result, comps) = differential(
        &p,
        &[run_test],
        &InlineOracle::new(rules.into()),
        &OptConfig::default(),
    );
    assert_eq!(result.and_then(Value::as_int), Some(107));
    let c = &comps[0];
    // Both hash targets inlined at both copies of get: 2 + 2 decisions.
    let my_count = c.decisions.iter().filter(|d| d.callee == my_hash).count();
    let obj_count = c.decisions.iter().filter(|d| d.callee == obj_hash).count();
    assert_eq!((my_count, obj_count), (2, 2));
}

#[test]
fn ci_version_is_larger_than_cs_version() {
    // Quantifies the Figure 5 effect on the miniature HashMap program: the
    // CI compilation (inline both everywhere) must generate more code than
    // the CS compilation (one target per context).
    // Reuse the two tests above by recompiling here.
    let mut b = ProgramBuilder::new();
    let sel = b.selector("hash", 0);
    let obj = b.class("Object", None);
    let myk = b.class("MyKey", Some(obj));
    let obj_hash = {
        let mut m = b.virtual_method("Object.hash", obj, sel);
        m.work(20);
        let r = m.fresh_reg();
        m.const_int(r, 100);
        m.ret(Some(r));
        m.finish()
    };
    let my_hash = {
        let mut m = b.virtual_method("MyKey.hash", myk, sel);
        m.work(20);
        let r = m.fresh_reg();
        m.const_int(r, 7);
        m.ret(Some(r));
        m.finish()
    };
    let get = {
        let mut m = b.static_method("get", 1);
        let r = m.fresh_reg();
        m.call_virtual(Some(r), sel, m.param(0), &[]);
        m.ret(Some(r));
        m.finish()
    };
    let run_test = {
        let mut m = b.static_method("runTest", 2);
        let r1 = m.fresh_reg();
        let r2 = m.fresh_reg();
        m.call_static(Some(r1), get, &[m.param(0)]);
        m.call_static(Some(r2), get, &[m.param(1)]);
        m.bin(BinOp::Add, r1, r1, r2);
        m.ret(Some(r1));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();

    let hash_in_get = CallSiteRef::new(get, SiteIdx(0));
    let get_site0 = CallSiteRef::new(run_test, SiteIdx(0));
    let get_site1 = CallSiteRef::new(run_test, SiteIdx(1));

    let ci_rules = RuleSet::from_rules(
        vec![
            (TraceKey::edge(get_site0, get), 50.0),
            (TraceKey::edge(get_site1, get), 50.0),
            (TraceKey::edge(hash_in_get, my_hash), 50.0),
            (TraceKey::edge(hash_in_get, obj_hash), 50.0),
        ],
        200.0,
    );
    let cs_rules = RuleSet::from_rules(
        vec![
            (TraceKey::edge(get_site0, get), 50.0),
            (TraceKey::edge(get_site1, get), 50.0),
            (TraceKey::new(my_hash, vec![hash_in_get, get_site0]), 50.0),
            (TraceKey::new(obj_hash, vec![hash_in_get, get_site1]), 50.0),
        ],
        200.0,
    );
    let config = OptConfig::default();
    let ci = compile(&p, run_test, &InlineOracle::new(ci_rules.into()), &config);
    let cs = compile(&p, run_test, &InlineOracle::new(cs_rules.into()), &config);
    assert!(
        ci.generated_size > cs.generated_size,
        "CI {} should exceed CS {}",
        ci.generated_size,
        cs.generated_size
    );
    // CI: 4 guarded bodies; CS: 2.
    assert_eq!(ci.guarded_count(), 4);
    assert_eq!(cs.guarded_count(), 2);
}

#[test]
fn recursion_is_refused() {
    let mut b = ProgramBuilder::new();
    let rec = {
        let mut m = b.static_method("rec", 1);
        let zero = m.fresh_reg();
        m.const_int(zero, 0);
        let out = m.label();
        m.branch(aoci_ir::Cond::Le, m.param(0), zero, out);
        let one = m.fresh_reg();
        let t = m.fresh_reg();
        m.const_int(one, 1);
        m.bin(BinOp::Sub, t, m.param(0), one);
        m.call_static(None, m.id(), &[t]);
        m.bind(out);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let n = m.fresh_reg();
        m.const_int(n, 3);
        m.call_static(None, rec, &[n]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let (_, comps) = differential(&p, &[rec], &InlineOracle::empty(), &OptConfig::default());
    assert!(!comps[0].inlined(rec));
    assert!(comps[0]
        .refusals
        .iter()
        .any(|r| r.callee == rec && r.reason == RefusalReason::Recursive));
}

#[test]
fn deep_chains_respect_depth_budget() {
    // A chain of 10 small callees; with a depth budget of 3 only ~3 levels
    // inline and the rest stay as calls.
    let mut b = ProgramBuilder::new();
    let mut prev: Option<MethodId> = None;
    for i in 0..10 {
        let mut m = b.static_method(format!("level{i}"), 0);
        m.work(20); // small
        if let Some(callee) = prev {
            m.call_static(None, callee, &[]);
        }
        m.ret(None);
        prev = Some(m.finish());
    }
    let top = prev.unwrap();
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, top, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let config = OptConfig {
        max_inline_depth: 3,
        hard_inline_depth: 3,
        ..OptConfig::default()
    };
    let (_, comps) = differential(&p, &[top], &InlineOracle::empty(), &config);
    let c = &comps[0];
    assert_eq!(c.decisions.len(), 3);
    assert!(c
        .refusals
        .iter()
        .any(|r| r.reason == RefusalReason::DepthExceeded));
    // The remaining chain is a call in the generated code.
    assert!(c.version.body.iter().any(|i| i.is_call()));
}

#[test]
fn inline_map_exposes_source_chain() {
    let mut b = ProgramBuilder::new();
    let inner = {
        let mut m = b.static_method("inner", 0);
        m.work(20); // small: inlines without profile support
        m.ret(None);
        m.finish()
    };
    let outer = {
        let mut m = b.static_method("outer", 0);
        m.call_static(None, inner, &[]);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, outer, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let c = compile(&p, main, &InlineOracle::empty(), &OptConfig::default());
    // main inlines outer which inlines inner. Find an instruction from
    // inner and verify the recovered chain.
    let map = &c.version.inline_map;
    let idx = c
        .version
        .body
        .iter()
        .position(|i| matches!(i, Instr::Work { units: 20 }))
        .expect("inner body present");
    let chain = map.source_chain(idx);
    let methods: Vec<MethodId> = chain.iter().map(|(m, _)| *m).collect();
    assert_eq!(methods, vec![inner, outer, main]);
}

#[test]
fn preserves_loops_and_effects_in_inlined_bodies() {
    // The callee has a loop and writes a global; differential execution
    // checks the global too via the returned accumulator.
    let mut b = ProgramBuilder::new();
    let g = b.global("acc");
    let bump = {
        let mut m = b.static_method("bump", 1);
        let i = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(one, 1);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(aoci_ir::Cond::Ge, i, m.param(0), out);
        m.get_global(acc, g);
        m.bin(BinOp::Add, acc, acc, one);
        m.put_global(g, acc);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let n = m.fresh_reg();
        m.const_int(n, 5);
        m.call_static(None, bump, &[n]);
        m.const_int(n, 3);
        m.call_static(None, bump, &[n]);
        let r = m.fresh_reg();
        m.get_global(r, g);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let (result, comps) =
        differential(&p, &[main], &InlineOracle::empty(), &OptConfig::default());
    assert_eq!(result.and_then(Value::as_int), Some(8));
    assert_eq!(comps[0].decisions.len(), 2, "bump inlined at both sites");
}

#[test]
fn simplify_shrinks_generated_code() {
    let mut b = ProgramBuilder::new();
    let add = {
        let mut m = b.static_method("add", 2);
        let r = m.fresh_reg();
        m.bin(BinOp::Add, r, m.param(0), m.param(1));
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let a = m.fresh_reg();
        let c = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(a, 1);
        m.const_int(c, 2);
        m.call_static(Some(r), add, &[a, c]);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let plain = compile(
        &p,
        main,
        &InlineOracle::empty(),
        &OptConfig { simplify: false, ..OptConfig::default() },
    );
    let simplified = compile(&p, main, &InlineOracle::empty(), &OptConfig::default());
    assert!(simplified.generated_size < plain.generated_size);
    // Constant arguments fold all the way through the inlined body.
    let mut vm = Vm::new(&p, no_sampling());
    vm.registry_mut().install(simplified.version.clone());
    assert_eq!(
        vm.run_to_completion().unwrap().and_then(Value::as_int),
        Some(3)
    );
}
