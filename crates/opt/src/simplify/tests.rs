use super::*;
use aoci_ir::MethodId;

fn nodes_for(method_index: usize) -> Vec<InlineNode> {
    vec![InlineNode { method: MethodId::from_index(method_index), parent: None, body_start: 0 }]
}

fn run(body: Vec<Instr>, num_regs: u16) -> Vec<Instr> {
    let instr_node = vec![0; body.len()];
    let mut nodes = nodes_for(0);
    let (b, n) = simplify(body, instr_node, &mut nodes, num_regs);
    assert_eq!(b.len(), n.len(), "instr/node maps stay parallel");
    b
}

fn r(i: u16) -> Reg {
    Reg(i)
}

#[test]
fn folds_constant_arithmetic() {
    let body = vec![
        Instr::Const { dst: r(0), value: 20 },
        Instr::Const { dst: r(1), value: 22 },
        Instr::Bin { op: BinOp::Add, dst: r(2), lhs: r(0), rhs: r(1) },
        Instr::Return { src: Some(r(2)) },
    ];
    let out = run(body, 3);
    // r0/r1 defs become dead once the add folds.
    assert_eq!(
        out,
        vec![
            Instr::Const { dst: r(2), value: 42 },
            Instr::Return { src: Some(r(2)) },
        ]
    );
}

#[test]
fn copy_propagation_removes_argument_moves() {
    // Simulates an inlined body: move arg, use it once.
    let body = vec![
        Instr::Const { dst: r(0), value: 5 },
        Instr::Move { dst: r(1), src: r(0) }, // arg transfer
        Instr::Bin { op: BinOp::Mul, dst: r(2), lhs: r(1), rhs: r(1) },
        Instr::Return { src: Some(r(2)) },
    ];
    let out = run(body, 3);
    assert_eq!(
        out,
        vec![
            Instr::Const { dst: r(2), value: 25 },
            Instr::Return { src: Some(r(2)) },
        ]
    );
}

#[test]
fn preserves_division_faults() {
    let body = vec![
        Instr::Const { dst: r(0), value: 1 },
        Instr::Const { dst: r(1), value: 0 },
        Instr::Bin { op: BinOp::Div, dst: r(2), lhs: r(0), rhs: r(1) },
        Instr::Return { src: None },
    ];
    let out = run(body, 3);
    // The faulting divide must survive even though its result is dead.
    assert!(out
        .iter()
        .any(|i| matches!(i, Instr::Bin { op: BinOp::Div, .. })));
}

#[test]
fn folds_decidable_branches_and_drops_unreachable() {
    let body = vec![
        Instr::Const { dst: r(0), value: 1 },
        Instr::Const { dst: r(1), value: 2 },
        Instr::Branch { cond: Cond::Lt, lhs: r(0), rhs: r(1), target: 4 }, // always taken
        Instr::Work { units: 999 },                                       // unreachable
        Instr::Return { src: None },
    ];
    let out = run(body, 2);
    assert!(!out.iter().any(|i| matches!(i, Instr::Work { units: 999 })));
    assert_eq!(out.last(), Some(&Instr::Return { src: None }));
}

#[test]
fn removes_jump_to_next() {
    let body = vec![
        Instr::Jump { target: 1 },
        Instr::Return { src: None },
    ];
    let out = run(body, 0);
    assert_eq!(out, vec![Instr::Return { src: None }]);
}

#[test]
fn keeps_loop_carried_registers() {
    // r0 is live around the backedge; nothing may be removed.
    let body = vec![
        Instr::Const { dst: r(0), value: 10 },
        Instr::Const { dst: r(1), value: 1 },
        // L2: r0 = r0 - r1 ; if r0 > r1 jump L2
        Instr::Bin { op: BinOp::Sub, dst: r(0), lhs: r(0), rhs: r(1) },
        Instr::Branch { cond: Cond::Gt, lhs: r(0), rhs: r(1), target: 2 },
        Instr::Return { src: Some(r(0)) },
    ];
    let out = run(body.clone(), 2);
    assert_eq!(out, body);
}

#[test]
fn state_resets_at_join_points() {
    // r0 is 1 on the fall-through path but 2 via the branch; the use at the
    // join must not be folded. The branch operand comes from a global so
    // the branch itself is not decidable.
    let body = vec![
        Instr::GetGlobal { dst: r(1), global: aoci_ir::GlobalId::from_index(0) },
        Instr::Branch { cond: Cond::Eq, lhs: r(1), rhs: r(1), target: 4 },
        Instr::Const { dst: r(0), value: 1 },
        Instr::Jump { target: 5 },
        Instr::Const { dst: r(0), value: 2 }, // branch target (leader)
        Instr::Return { src: Some(r(0)) },    // join target (leader)
    ];
    let out = run(body, 2);
    // Return of r0 must still read a register, not be constant-folded away.
    assert!(matches!(out.last(), Some(Instr::Return { src: Some(_) })));
    // Both Const{r0} definitions must survive (each feeds the join).
    let consts: Vec<_> = out
        .iter()
        .filter(|i| matches!(i, Instr::Const { dst, .. } if *dst == r(0)))
        .collect();
    assert_eq!(consts.len(), 2);
}

#[test]
fn remaps_node_body_starts() {
    let body = vec![
        Instr::Const { dst: r(0), value: 1 }, // dead
        Instr::Const { dst: r(1), value: 2 },
        Instr::Return { src: Some(r(1)) },
    ];
    let instr_node = vec![0, 1, 0];
    let mut nodes = vec![
        InlineNode { method: MethodId::from_index(0), parent: None, body_start: 0 },
        InlineNode {
            method: MethodId::from_index(1),
            parent: Some((0, aoci_ir::SiteIdx(0))),
            body_start: 1,
        },
    ];
    let (b, n) = simplify(body, instr_node, &mut nodes, 2);
    assert_eq!(b.len(), 2);
    assert_eq!(n, vec![1, 0]);
    // The inlined node's body now starts at index 0.
    assert_eq!(nodes[1].body_start, 0);
}

#[test]
fn empty_body_is_noop() {
    let (b, n) = simplify(Vec::new(), Vec::new(), &mut nodes_for(0), 0);
    assert!(b.is_empty());
    assert!(n.is_empty());
}

#[test]
fn self_move_is_removed() {
    let body = vec![
        Instr::Const { dst: r(0), value: 3 },
        Instr::Move { dst: r(0), src: r(0) },
        Instr::Return { src: Some(r(0)) },
    ];
    let out = run(body, 1);
    assert_eq!(out.len(), 2);
}

#[test]
fn redundant_global_loads_collapse() {
    let g = aoci_ir::GlobalId::from_index(0);
    let body = vec![
        Instr::GetGlobal { dst: r(0), global: g },
        Instr::GetGlobal { dst: r(1), global: g }, // redundant reload
        Instr::Bin { op: BinOp::Add, dst: r(2), lhs: r(0), rhs: r(1) },
        Instr::Return { src: Some(r(2)) },
    ];
    let out = run(body, 3);
    // The second load becomes a copy of r0, copy-propagates into the add
    // and dies.
    assert_eq!(
        out.iter()
            .filter(|i| matches!(i, Instr::GetGlobal { .. }))
            .count(),
        1
    );
}

#[test]
fn calls_invalidate_the_global_cache() {
    let g = aoci_ir::GlobalId::from_index(0);
    let body = vec![
        Instr::GetGlobal { dst: r(0), global: g },
        Instr::CallStatic {
            site: aoci_ir::SiteIdx(0),
            dst: None,
            callee: MethodId::from_index(0),
            args: vec![],
        },
        Instr::GetGlobal { dst: r(1), global: g }, // NOT redundant: the call may store
        Instr::Bin { op: BinOp::Add, dst: r(2), lhs: r(0), rhs: r(1) },
        Instr::Return { src: Some(r(2)) },
    ];
    let out = run(body, 3);
    assert_eq!(
        out.iter()
            .filter(|i| matches!(i, Instr::GetGlobal { .. }))
            .count(),
        2
    );
}

#[test]
fn stores_update_the_global_cache() {
    let g = aoci_ir::GlobalId::from_index(0);
    let body = vec![
        Instr::Const { dst: r(0), value: 9 },
        Instr::PutGlobal { global: g, src: r(0) },
        Instr::GetGlobal { dst: r(1), global: g }, // known: the just-stored value
        Instr::Return { src: Some(r(1)) },
    ];
    let out = run(body, 2);
    // The reload folds away entirely (store value forwarded).
    assert!(!out.iter().any(|i| matches!(i, Instr::GetGlobal { .. })));
}

#[test]
fn branch_targets_reset_the_global_cache() {
    let g = aoci_ir::GlobalId::from_index(0);
    let body = vec![
        Instr::GetGlobal { dst: r(0), global: g },
        Instr::Branch { cond: Cond::Eq, lhs: r(0), rhs: r(0), target: 2 },
        Instr::GetGlobal { dst: r(1), global: g }, // leader: cache cleared
        Instr::Bin { op: BinOp::Add, dst: r(2), lhs: r(0), rhs: r(1) },
        Instr::Return { src: Some(r(2)) },
    ];
    let out = run(body, 3);
    assert_eq!(
        out.iter()
            .filter(|i| matches!(i, Instr::GetGlobal { .. }))
            .count(),
        2
    );
}
