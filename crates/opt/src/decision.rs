//! Compilation results: the optimized version plus the decision record.

use aoci_ir::{CallSiteRef, MethodId};
use aoci_vm::MethodVersion;
use std::fmt;

pub use aoci_trace::DecisionProvenance;

/// Why the compiler declined to inline a callee at a call site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RefusalReason {
    /// The callee's size class is large — never inlined.
    TooLarge,
    /// The soft (or hard) inlining-depth budget was exhausted.
    DepthExceeded,
    /// The code-expansion budget was exhausted (or register space ran out).
    ExpansionExceeded,
    /// The callee is already on the current inline chain.
    Recursive,
    /// A medium-sized callee without profile support (medium methods are
    /// candidates for profile-directed inlining only).
    NotHot,
    /// A hot guarded-inline candidate skipped because the per-site guard
    /// limit was reached.
    GuardLimit,
}

impl RefusalReason {
    /// A stable `snake_case` identifier for metric names
    /// (`inline_refusals_<slug>` in the telemetry registry).
    pub fn slug(self) -> &'static str {
        match self {
            RefusalReason::TooLarge => "too_large",
            RefusalReason::DepthExceeded => "depth_exceeded",
            RefusalReason::ExpansionExceeded => "expansion_exceeded",
            RefusalReason::Recursive => "recursive",
            RefusalReason::NotHot => "not_hot",
            RefusalReason::GuardLimit => "guard_limit",
        }
    }
}

impl fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefusalReason::TooLarge => "callee too large",
            RefusalReason::DepthExceeded => "inline depth exceeded",
            RefusalReason::ExpansionExceeded => "code expansion exceeded",
            RefusalReason::Recursive => "recursive inline",
            RefusalReason::NotHot => "medium callee without profile support",
            RefusalReason::GuardLimit => "per-site guarded-inline limit reached",
        };
        f.write_str(s)
    }
}

/// A declined inlining opportunity.
///
/// Hot refusals are recorded in the AOS database so the missing-edge
/// organizer does not keep recommending recompilation for an edge the
/// compiler will never inline (paper Section 3.2).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Refusal {
    /// The source-level call site.
    pub site: CallSiteRef,
    /// The callee that was not inlined.
    pub callee: MethodId,
    /// Why.
    pub reason: RefusalReason,
    /// Whether the profile supported inlining this edge (only hot refusals
    /// matter to the missing-edge organizer).
    pub hot: bool,
    /// The inputs the inliner weighed when it declined (flight-recorder
    /// provenance).
    pub provenance: DecisionProvenance,
}

/// A performed inlining.
#[derive(Clone, PartialEq, Debug)]
pub struct InlineDecision {
    /// The compilation context at the decision point: the call site itself
    /// first, then the inline chain outward to the method being compiled.
    pub context: Vec<CallSiteRef>,
    /// The inlined callee.
    pub callee: MethodId,
    /// Whether a method-test guard protects the inlined body.
    pub guarded: bool,
    /// The inputs the inliner weighed when it inlined (flight-recorder
    /// provenance).
    pub provenance: DecisionProvenance,
}

/// The result of optimizing-compiling one method.
#[derive(Clone, Debug)]
pub struct Compilation {
    /// The optimized code, ready to install.
    pub version: MethodVersion,
    /// Every inlining performed, in emission order.
    pub decisions: Vec<InlineDecision>,
    /// Every inlining declined.
    pub refusals: Vec<Refusal>,
    /// Abstract size of the generated code (drives compile-time cost and
    /// the Figure 5 code-space metric).
    pub generated_size: u32,
}

impl Compilation {
    /// Convenience: the inlined callees, in order.
    pub fn inlined_callees(&self) -> Vec<MethodId> {
        self.decisions.iter().map(|d| d.callee).collect()
    }

    /// Convenience: whether `callee` was inlined anywhere in this
    /// compilation.
    pub fn inlined(&self, callee: MethodId) -> bool {
        self.decisions.iter().any(|d| d.callee == callee)
    }

    /// Number of guarded inline bodies.
    pub fn guarded_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.guarded).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusal_reasons_display() {
        assert_eq!(RefusalReason::TooLarge.to_string(), "callee too large");
        assert_eq!(
            RefusalReason::NotHot.to_string(),
            "medium callee without profile support"
        );
    }
}
