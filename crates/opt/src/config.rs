//! Optimizing-compiler configuration.

/// Inlining budgets and switches for one compilation.
///
/// The *soft* budgets implement the "normal limits on code expansion and
/// inlining depth" of paper Section 3.1; profile-hot small/medium callees
/// may exceed them up to the *hard* caps, and tiny callees respect only the
/// hard caps.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Soft inlining-depth budget.
    pub max_inline_depth: u32,
    /// Hard inlining-depth cap (applies even to tiny / hot callees).
    pub hard_inline_depth: u32,
    /// Soft code-expansion budget: generated size may grow to this multiple
    /// of the root method's original size.
    pub max_code_expansion: f64,
    /// Hard code-expansion cap.
    pub hard_code_expansion: f64,
    /// Maximum number of guarded inline targets at one polymorphic site.
    pub max_guarded_targets: usize,
    /// Run the post-inline simplification pass.
    pub simplify: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            max_inline_depth: 5,
            hard_inline_depth: 12,
            max_code_expansion: 4.0,
            hard_code_expansion: 12.0,
            max_guarded_targets: 2,
            simplify: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        let c = OptConfig::default();
        assert!(c.hard_inline_depth >= c.max_inline_depth);
        assert!(c.hard_code_expansion >= c.max_code_expansion);
        assert!(c.max_guarded_targets >= 1);
    }
}
