//! Post-inline simplification: constant folding, copy propagation, branch
//! folding, dead-code elimination and unreachable-code removal.
//!
//! This pass supplies the *indirect* benefit of inlining the paper leans on:
//! once a callee body sits inside its caller, argument-transfer moves become
//! copies that propagate away, constant parameters fold through the body
//! (the effect modelled by Jikes RVM's size-estimate adjustment, paper
//! footnote 1), and the dead remainder disappears — shrinking both code
//! space and execution cycles for real.
//!
//! The pass maintains the inline map: instruction→node assignments are
//! filtered alongside the body and node `body_start` offsets are remapped.

use aoci_ir::{BinOp, Cond, Instr, Reg};
use aoci_vm::InlineNode;
use std::collections::HashSet;

/// Simplifies `body`, returning the new body and the filtered
/// instruction→node map. `nodes` is updated in place (`body_start` remap).
///
/// Iterates folding + elimination to a fixpoint (bounded small number of
/// rounds).
pub fn simplify(
    body: Vec<Instr>,
    instr_node: Vec<u32>,
    nodes: &mut [InlineNode],
    num_regs: u16,
) -> (Vec<Instr>, Vec<u32>) {
    simplify_with_anchors(body, instr_node, nodes, num_regs, &mut Vec::new())
}

/// [`simplify`], additionally carrying OSR anchors — `(source_pc, opt_pc)`
/// pairs naming root loop headers — through the pass: each elimination
/// round remaps the `opt_pc` side exactly as it remaps branch targets, and
/// anchors whose header does not survive as a control-flow leader of the
/// final body are dropped (transferring a frame into the middle of a
/// straight-line region would void the facts the scan propagated across
/// it; leaders are where the lattice resets, so they are the only sound
/// entry points).
pub fn simplify_with_anchors(
    mut body: Vec<Instr>,
    mut instr_node: Vec<u32>,
    nodes: &mut [InlineNode],
    num_regs: u16,
    osr_anchors: &mut Vec<(u32, u32)>,
) -> (Vec<Instr>, Vec<u32>) {
    for _ in 0..4 {
        let folded = fold_and_propagate(&mut body, num_regs);
        let (nb, ni, eliminated) = eliminate(body, instr_node, nodes, osr_anchors);
        body = nb;
        instr_node = ni;
        if !folded && !eliminated {
            break;
        }
    }
    let leaders: HashSet<u32> = body.iter().filter_map(Instr::branch_target).collect();
    osr_anchors.retain(|&(_, opt_pc)| leaders.contains(&opt_pc));
    (body, instr_node)
}

/// Abstract register contents for the forward scan.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Abs {
    Unknown,
    Const(i64),
    Null,
    Copy(Reg),
}

/// Forward, straight-line constant/copy propagation. Lattice state resets at
/// every branch target (join points); within a region the scan rewrites
/// operands to copy roots, folds constant moves/arithmetic and folds
/// decidable branches. Returns whether anything changed.
fn fold_and_propagate(body: &mut [Instr], num_regs: u16) -> bool {
    let leaders: HashSet<u32> = body.iter().filter_map(Instr::branch_target).collect();
    let mut state = vec![Abs::Unknown; num_regs as usize];
    // Redundant-load elimination: per region, the register known to hold
    // each global's current value. Invalidated by stores to the global, by
    // any call (callees may write globals), and by redefinition of the
    // caching register.
    let mut global_cache: std::collections::HashMap<aoci_ir::GlobalId, Reg> =
        std::collections::HashMap::new();
    let mut changed = false;

    // Follows copy chains to the root register; bounded by register count.
    fn root(state: &[Abs], r: Reg) -> Reg {
        let mut cur = r;
        for _ in 0..state.len() {
            match state[cur.index()] {
                Abs::Copy(next) => cur = next,
                _ => break,
            }
        }
        cur
    }
    fn value(state: &[Abs], r: Reg) -> Abs {
        match state[root(state, r).index()] {
            v @ (Abs::Const(_) | Abs::Null) => v,
            _ => Abs::Unknown,
        }
    }

    for (i, instr) in body.iter_mut().enumerate() {
        if leaders.contains(&(i as u32)) {
            state.iter_mut().for_each(|s| *s = Abs::Unknown);
            global_cache.clear();
        }
        // A repeated load of a still-cached global becomes a register copy
        // (which the copy propagation below then usually erases entirely).
        if let Instr::GetGlobal { dst, global } = *instr {
            if let Some(&cached) = global_cache.get(&global) {
                if cached != dst {
                    *instr = Instr::Move { dst, src: cached };
                    changed = true;
                }
            }
        }
        // Rewrite value uses to copy roots.
        let rewrite = |state: &[Abs], r: &mut Reg, changed: &mut bool| {
            let n = root(state, *r);
            if n != *r {
                *r = n;
                *changed = true;
            }
        };
        match instr {
            Instr::Move { src, .. } => rewrite(&state, src, &mut changed),
            Instr::Bin { lhs, rhs, .. } => {
                rewrite(&state, lhs, &mut changed);
                rewrite(&state, rhs, &mut changed);
            }
            Instr::Branch { lhs, rhs, .. } => {
                rewrite(&state, lhs, &mut changed);
                rewrite(&state, rhs, &mut changed);
            }
            Instr::GetField { obj, .. } => rewrite(&state, obj, &mut changed),
            Instr::PutField { obj, src, .. } => {
                rewrite(&state, obj, &mut changed);
                rewrite(&state, src, &mut changed);
            }
            Instr::PutGlobal { src, .. } => rewrite(&state, src, &mut changed),
            Instr::ArrNew { len, .. } => rewrite(&state, len, &mut changed),
            Instr::ArrGet { arr, idx, .. } => {
                rewrite(&state, arr, &mut changed);
                rewrite(&state, idx, &mut changed);
            }
            Instr::ArrSet { arr, idx, src } => {
                rewrite(&state, arr, &mut changed);
                rewrite(&state, idx, &mut changed);
                rewrite(&state, src, &mut changed);
            }
            Instr::ArrLen { arr, .. } => rewrite(&state, arr, &mut changed),
            Instr::InstanceOf { obj, .. } => rewrite(&state, obj, &mut changed),
            Instr::CallStatic { args, .. } => {
                for a in args {
                    rewrite(&state, a, &mut changed);
                }
            }
            Instr::CallVirtual { recv, args, .. } => {
                rewrite(&state, recv, &mut changed);
                for a in args {
                    rewrite(&state, a, &mut changed);
                }
            }
            Instr::Return { src: Some(r) } => rewrite(&state, r, &mut changed),
            Instr::GuardClass { recv, .. } | Instr::GuardMethod { recv, .. } => {
                rewrite(&state, recv, &mut changed)
            }
            _ => {}
        }

        // Fold where operands are known.
        let replacement = match &*instr {
            Instr::Move { dst, src } => match value(&state, *src) {
                Abs::Const(v) => Some(Instr::Const { dst: *dst, value: v }),
                Abs::Null => Some(Instr::ConstNull { dst: *dst }),
                _ => None,
            },
            Instr::Bin { op, dst, lhs, rhs } => {
                match (value(&state, *lhs), value(&state, *rhs)) {
                    (Abs::Const(a), Abs::Const(b)) => {
                        fold_bin(*op, a, b).map(|v| Instr::Const { dst: *dst, value: v })
                    }
                    _ => None,
                }
            }
            Instr::Branch { cond, lhs, rhs, target } => {
                match (value(&state, *lhs), value(&state, *rhs)) {
                    (Abs::Const(a), Abs::Const(b)) => Some(if eval_cond(*cond, a, b) {
                        Instr::Jump { target: *target }
                    } else {
                        Instr::Work { units: 0 }
                    }),
                    // `null eq null` / `null ne null` are decidable; the
                    // ordered comparisons on null fault at runtime and must
                    // be preserved.
                    (Abs::Null, Abs::Null) => match cond {
                        Cond::Eq => Some(Instr::Jump { target: *target }),
                        Cond::Ne => Some(Instr::Work { units: 0 }),
                        _ => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(r) = replacement {
            if *instr != r {
                *instr = r;
                changed = true;
            }
        }

        // Transfer function: update the lattice for the definition.
        let def_update: Option<(Reg, Abs)> = match &*instr {
            Instr::Const { dst, value } => Some((*dst, Abs::Const(*value))),
            Instr::ConstNull { dst } => Some((*dst, Abs::Null)),
            Instr::Move { dst, src } => {
                let r = root(&state, *src);
                let v = if r == *dst { Abs::Unknown } else { Abs::Copy(r) };
                Some((*dst, v))
            }
            Instr::Bin { dst, .. }
            | Instr::New { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::GetGlobal { dst, .. }
            | Instr::ArrNew { dst, .. }
            | Instr::ArrGet { dst, .. }
            | Instr::ArrLen { dst, .. }
            | Instr::InstanceOf { dst, .. } => Some((*dst, Abs::Unknown)),
            Instr::CallStatic { dst, .. } | Instr::CallVirtual { dst, .. } => {
                dst.map(|d| (d, Abs::Unknown))
            }
            _ => None,
        };
        if let Some((dst, v)) = def_update {
            // Registers recorded as copies of `dst` lose their backing.
            for s in state.iter_mut() {
                if *s == Abs::Copy(dst) {
                    *s = Abs::Unknown;
                }
            }
            state[dst.index()] = v;
            // Cached globals held in `dst` are no longer valid.
            global_cache.retain(|_, &mut r| r != dst);
        }

        // Maintain the global cache.
        match &*instr {
            Instr::GetGlobal { dst, global } => {
                global_cache.insert(*global, *dst);
            }
            Instr::PutGlobal { global, src } => {
                global_cache.insert(*global, *src);
            }
            // Calls may store to any global in the callee.
            Instr::CallStatic { .. } | Instr::CallVirtual { .. } => global_cache.clear(),
            _ => {}
        }
    }
    changed
}

fn fold_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None; // preserve the fault
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
    })
}

fn eval_cond(cond: Cond, a: i64, b: i64) -> bool {
    match cond {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => a < b,
        Cond::Le => a <= b,
        Cond::Gt => a > b,
        Cond::Ge => a >= b,
    }
}

/// Dead-code + unreachable-code elimination with a full liveness analysis.
/// Returns the filtered body, filtered instruction→node map, and whether
/// anything was removed. Branch targets and node `body_start`s are remapped.
fn eliminate(
    body: Vec<Instr>,
    instr_node: Vec<u32>,
    nodes: &mut [InlineNode],
    osr_anchors: &mut [(u32, u32)],
) -> (Vec<Instr>, Vec<u32>, bool) {
    let n = body.len();
    if n == 0 {
        return (body, instr_node, false);
    }

    // Reachability from instruction 0.
    let mut reach = vec![false; n];
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        if reach[i] {
            continue;
        }
        reach[i] = true;
        for s in successors(&body[i], i, n) {
            if !reach[s] {
                work.push(s);
            }
        }
    }

    // Liveness (backwards fixpoint over reachable instructions).
    let mut live_in: Vec<HashSet<Reg>> = vec![HashSet::new(); n];
    loop {
        let mut changed = false;
        for i in (0..n).rev() {
            if !reach[i] {
                continue;
            }
            let mut out: HashSet<Reg> = HashSet::new();
            for s in successors(&body[i], i, n) {
                out.extend(live_in[s].iter().copied());
            }
            let (uses, def) = uses_and_def(&body[i]);
            if let Some(d) = def {
                out.remove(&d);
            }
            out.extend(uses);
            if out != live_in[i] {
                live_in[i] = out;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let live_out_contains = |i: usize, r: Reg| -> bool {
        successors(&body[i], i, n)
            .iter()
            .any(|&s| live_in[s].contains(&r))
    };

    let mut keep = vec![true; n];
    for i in 0..n {
        if !reach[i] {
            keep[i] = false;
            continue;
        }
        match &body[i] {
            Instr::Work { units: 0 } => keep[i] = false,
            Instr::Jump { target }
                if *target as usize == i + 1 => {
                    keep[i] = false;
                }
            Instr::Move { dst, src } if dst == src => keep[i] = false,
            // Only instructions that can never fault are removable when
            // dead. `Bin` is NOT among them: the IR is untyped, so even an
            // `add` faults on a null operand, and removing a dead one would
            // change observable behaviour. Constant folding turns decidable
            // `Bin`s into `Const`s, which then die here safely.
            Instr::Const { dst, .. }
            | Instr::ConstNull { dst }
            | Instr::Move { dst, .. }
            | Instr::GetGlobal { dst, .. }
            | Instr::InstanceOf { dst, .. }
                if !live_out_contains(i, *dst) => {
                    keep[i] = false;
                }
            _ => {}
        }
    }

    let removed = keep.iter().any(|k| !k);
    if !removed {
        return (body, instr_node, false);
    }

    // Prefix-sum remap: new index of the first kept instruction ≥ old index.
    let mut new_index = vec![0u32; n + 1];
    let mut acc = 0u32;
    for i in 0..n {
        new_index[i] = acc;
        if keep[i] {
            acc += 1;
        }
    }
    new_index[n] = acc;

    let mut new_body = Vec::with_capacity(acc as usize);
    let mut new_nodes_map = Vec::with_capacity(acc as usize);
    for (i, (mut instr, node)) in body.into_iter().zip(instr_node).enumerate() {
        if !keep[i] {
            continue;
        }
        instr.map_branch_target(|t| new_index[t as usize]);
        new_body.push(instr);
        new_nodes_map.push(node);
    }
    for node in nodes.iter_mut() {
        node.body_start = new_index[(node.body_start as usize).min(n)];
    }
    for (_, opt_pc) in osr_anchors.iter_mut() {
        *opt_pc = new_index[(*opt_pc as usize).min(n)];
    }
    (new_body, new_nodes_map, true)
}

fn successors(instr: &Instr, i: usize, n: usize) -> Vec<usize> {
    match instr {
        Instr::Return { .. } => vec![],
        Instr::Jump { target } => vec![*target as usize],
        Instr::Branch { target, .. }
        | Instr::GuardClass { else_target: target, .. }
        | Instr::GuardMethod { else_target: target, .. } => {
            let mut v = vec![*target as usize];
            if i + 1 < n {
                v.push(i + 1);
            }
            v
        }
        _ => {
            if i + 1 < n {
                vec![i + 1]
            } else {
                vec![]
            }
        }
    }
}

/// Register uses and (single) definition of an instruction.
fn uses_and_def(instr: &Instr) -> (Vec<Reg>, Option<Reg>) {
    match instr {
        Instr::Const { dst, .. } | Instr::ConstNull { dst } => (vec![], Some(*dst)),
        Instr::Move { dst, src } => (vec![*src], Some(*dst)),
        Instr::Bin { dst, lhs, rhs, .. } => (vec![*lhs, *rhs], Some(*dst)),
        Instr::Work { .. } | Instr::Jump { .. } => (vec![], None),
        Instr::New { dst, .. } => (vec![], Some(*dst)),
        Instr::GetField { dst, obj, .. } => (vec![*obj], Some(*dst)),
        Instr::PutField { obj, src, .. } => (vec![*obj, *src], None),
        Instr::GetGlobal { dst, .. } => (vec![], Some(*dst)),
        Instr::PutGlobal { src, .. } => (vec![*src], None),
        Instr::ArrNew { dst, len } => (vec![*len], Some(*dst)),
        Instr::ArrGet { dst, arr, idx } => (vec![*arr, *idx], Some(*dst)),
        Instr::ArrSet { arr, idx, src } => (vec![*arr, *idx, *src], None),
        Instr::ArrLen { dst, arr } => (vec![*arr], Some(*dst)),
        Instr::InstanceOf { dst, obj, .. } => (vec![*obj], Some(*dst)),
        Instr::Branch { lhs, rhs, .. } => (vec![*lhs, *rhs], None),
        Instr::CallStatic { dst, args, .. } => (args.clone(), *dst),
        Instr::CallVirtual { dst, recv, args, .. } => {
            let mut u = vec![*recv];
            u.extend_from_slice(args);
            (u, *dst)
        }
        Instr::Return { src } => (src.iter().copied().collect(), None),
        Instr::GuardClass { recv, .. } | Instr::GuardMethod { recv, .. } => (vec![*recv], None),
    }
}

#[cfg(test)]
mod tests;
