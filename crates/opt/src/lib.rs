//! # aoci-opt — the optimizing, inlining compiler
//!
//! The optimizing-compiler half of *Adaptive Online Context-Sensitive
//! Inlining* (CGO 2003): consumes a method, an [`InlineOracle`] snapshot and
//! an [`OptConfig`], and produces an optimized [`MethodVersion`] in which
//! inlining has genuinely been performed on the IR:
//!
//! * statically-bound calls (static calls, and virtual calls with a single
//!   implementation per class-hierarchy analysis) are inlined **unguarded**;
//! * polymorphic virtual calls are inlined **guarded**, one method-test
//!   guard per profile-predicted target, with the original virtual dispatch
//!   retained as the fallback path;
//! * inlining recurses into inlined bodies, threading the growing
//!   *compilation context* through every oracle query — the mechanism that
//!   makes context-sensitive rules pay off (paper Section 3.3);
//! * size-class heuristics follow Section 3.1: tiny methods always inline
//!   when statically bindable, small methods inline within code-expansion /
//!   depth budgets (or beyond them when profile-hot), medium methods only
//!   under profile direction, large methods never;
//! * refused-but-hot edges are reported so the AOS database can stop the
//!   missing-edge organizer from re-requesting them.
//!
//! A post-inline [`simplify`] pass (constant folding, copy propagation, dead
//! code elimination, jump threading) models the optimization benefit that
//! inlining unlocks — notably shrinking the argument-transfer sequences and
//! constant-parameter bodies, the effect the paper's footnote 1 describes.
//!
//! ```
//! use aoci_ir::ProgramBuilder;
//! use aoci_core::InlineOracle;
//! use aoci_opt::{compile, OptConfig};
//!
//! let mut b = ProgramBuilder::new();
//! let tiny = {
//!     let mut m = b.static_method("tiny", 0);
//!     let r = m.fresh_reg();
//!     m.const_int(r, 7);
//!     m.ret(Some(r));
//!     m.finish()
//! };
//! let main = {
//!     let mut m = b.static_method("main", 0);
//!     let r = m.fresh_reg();
//!     m.call_static(Some(r), tiny, &[]);
//!     m.ret(Some(r));
//!     m.finish()
//! };
//! let program = b.finish(main)?;
//! let compilation = compile(&program, main, &InlineOracle::empty(), &OptConfig::default());
//! // The tiny callee was inlined: no calls remain.
//! assert!(compilation.version.body.iter().all(|i| !i.is_call()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod config;
mod decision;
mod estimate;
mod inliner;
mod simplify;

pub use config::OptConfig;
pub use decision::{Compilation, InlineDecision, Refusal, RefusalReason};
pub use estimate::estimate_benefit;
pub use inliner::compile;
pub use simplify::{simplify, simplify_with_anchors};

#[cfg(doc)]
use aoci_core::InlineOracle;
#[cfg(doc)]
use aoci_vm::MethodVersion;
