//! Predicted-benefit estimation for controller prioritization.
//!
//! The Jikes-style controller the paper builds on orders recompilation
//! plans by *expected benefit*. This module exposes the profile signal the
//! inliner itself would act on — the aggregate rule weight realizable by a
//! fresh compilation of a method — so the AOS can rank queued plans without
//! running the compiler.

use aoci_core::InlineOracle;
use aoci_ir::{CallSiteRef, Instr, MethodId, Program};

/// Estimates the profile-predicted benefit of (re)compiling `method` under
/// the rules `oracle` snapshots: the sum, over the method's own (source)
/// call sites, of the profile weight backing every inlining candidate the
/// oracle offers that site at depth-1 context.
///
/// This mirrors the weight the inliner records as
/// [`DecisionProvenance::predicted_benefit`](aoci_trace::DecisionProvenance)
/// when it actually compiles: statically-bound calls count only the rule
/// supporting their known callee, virtual calls count every predicted
/// target (each may become a guarded inline). Deeper-context rules still
/// contribute through the oracle's partial matching, so the estimate tracks
/// what the compilation would realize without paying for a compilation.
///
/// The result is deterministic for a given (program, rule set) pair — the
/// AOS uses it as a priority key, with ties broken by `MethodId`.
pub fn estimate_benefit(program: &Program, method: MethodId, oracle: &InlineOracle) -> f64 {
    let mut benefit = 0.0;
    for instr in program.method(method).body() {
        match instr {
            Instr::CallStatic { site, callee, .. } => {
                let ctx = [CallSiteRef::new(method, *site)];
                if let Some(c) = oracle.candidates(&ctx).iter().find(|c| c.target == *callee) {
                    benefit += c.weight.max(0.0);
                }
            }
            Instr::CallVirtual { site, .. } => {
                let ctx = [CallSiteRef::new(method, *site)];
                for c in oracle.candidates(&ctx) {
                    benefit += c.weight.max(0.0);
                }
            }
            _ => {}
        }
    }
    benefit
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_core::RuleSet;
    use aoci_ir::{ProgramBuilder, SiteIdx};
    use aoci_profile::TraceKey;

    #[test]
    fn sums_rule_weights_over_call_sites() {
        let mut b = ProgramBuilder::new();
        let callee = {
            let mut m = b.static_method("callee", 0);
            m.ret(None);
            m.finish()
        };
        let other = {
            let mut m = b.static_method("other", 0);
            m.ret(None);
            m.finish()
        };
        let main = {
            let mut m = b.static_method("main", 0);
            m.call_static(None, callee, &[]);
            m.call_static(None, other, &[]);
            m.ret(None);
            m.finish()
        };
        let p = b.finish(main).unwrap();
        let s0 = CallSiteRef::new(main, SiteIdx(0));
        let s1 = CallSiteRef::new(main, SiteIdx(1));
        let rules = RuleSet::from_rules(
            vec![(TraceKey::edge(s0, callee), 60.0), (TraceKey::edge(s1, other), 15.0)],
            100.0,
        );
        let oracle = InlineOracle::new(rules.into());
        let b_main = estimate_benefit(&p, main, &oracle);
        assert!((b_main - 75.0).abs() < 1e-9, "got {b_main}");
        // A method with no supported sites estimates to zero, and an empty
        // oracle estimates everything to zero.
        assert_eq!(estimate_benefit(&p, callee, &oracle), 0.0);
        assert_eq!(estimate_benefit(&p, main, &InlineOracle::empty()), 0.0);
    }

    #[test]
    fn static_sites_only_count_their_own_callee() {
        let mut b = ProgramBuilder::new();
        let callee = {
            let mut m = b.static_method("callee", 0);
            m.ret(None);
            m.finish()
        };
        let main = {
            let mut m = b.static_method("main", 0);
            m.call_static(None, callee, &[]);
            m.ret(None);
            m.finish()
        };
        let p = b.finish(main).unwrap();
        let s0 = CallSiteRef::new(main, SiteIdx(0));
        // A rule predicting a *different* callee at the site cannot be
        // realized by a static call to `callee`.
        let rules = RuleSet::from_rules(vec![(TraceKey::edge(s0, main), 40.0)], 40.0);
        assert_eq!(estimate_benefit(&p, main, &InlineOracle::new(rules.into())), 0.0);
    }
}
