//! Per-site state for the "Adaptively Resolving Imprecisions" policy
//! (paper Section 4.3, final policy).
//!
//! The policy starts with context-insensitive collection everywhere. As the
//! DCG organizer processes profile data, call sites that are polymorphic
//! *without* a skewed callee distribution are flagged: no inlining decision
//! can be made for them from edge data alone, so they (and only they) get
//! additional levels of context sensitivity. Escalation continues until the
//! per-context distributions become skewed (resolved) or the maximum level
//! is reached without resolution (inherently too polymorphic — collection
//! falls back to level 1 to stop paying for useless context).

use aoci_ir::CallSiteRef;
use aoci_profile::ProfileStore;
use std::collections::HashMap;

/// Configuration of the adaptive-resolving policy.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// A callee distribution counts as *skewed* (predictable) when its
    /// dominant target holds at least this fraction of the weight.
    pub skew_threshold: f64,
    /// Sites whose total weight is below this fraction of the DCG total are
    /// ignored — too cold to matter.
    pub min_site_fraction: f64,
    /// Maximum escalation level (set from the policy's `max`).
    pub max_level: u8,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        // The site cut-off is half the hot-rule threshold: an unskewed
        // 50/50 site whose aggregate just reaches rule-hotness has two
        // edges of ~0.75% each — exactly the sites escalation must catch.
        AdaptiveConfig { skew_threshold: 0.8, min_site_fraction: 0.0075, max_level: 5 }
    }
}

/// Lifecycle of a flagged call site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SiteStatus {
    /// Still gaining context levels.
    Escalating,
    /// Context resolved the imprecision: every observed context has a
    /// dominant target.
    Resolved,
    /// Hit the maximum level without resolving — inherently polymorphic.
    TooPolymorphic,
}

#[derive(Clone, Copy, Debug)]
struct SiteState {
    level: u8,
    status: SiteStatus,
}

/// Per-site escalation state.
#[derive(Clone, Debug)]
pub struct AdaptiveState {
    sites: HashMap<CallSiteRef, SiteState>,
    config: AdaptiveConfig,
}

impl AdaptiveState {
    /// Creates empty state.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveState { sites: HashMap::new(), config }
    }

    /// The collection depth for a sample whose immediate call site is
    /// `site`: 1 unless the site has been flagged for escalation.
    pub fn level_for(&self, site: Option<CallSiteRef>) -> usize {
        site.and_then(|s| self.sites.get(&s))
            .map(|st| st.level as usize)
            .unwrap_or(1)
    }

    /// Returns the status of a site, if it has been flagged.
    pub fn status(&self, site: CallSiteRef) -> Option<SiteStatus> {
        self.sites.get(&site).map(|s| s.status)
    }

    /// Number of flagged sites.
    pub fn flagged(&self) -> usize {
        self.sites.len()
    }

    /// Processes one round of DCG feedback: flags unskewed polymorphic
    /// sites, escalates flagged sites that remain unresolved, resolves those
    /// whose per-context distributions became skewed, and writes off sites
    /// that hit the maximum level unresolved.
    pub fn update(&mut self, dcg: &dyn ProfileStore) {
        let total = dcg.total_weight();
        if total <= 0.0 {
            return;
        }
        // Group DCG entries by immediate call site.
        let mut site_weight: HashMap<CallSiteRef, f64> = HashMap::new();
        for (key, w) in dcg.entries() {
            *site_weight.entry(key.immediate_caller()).or_insert(0.0) += w;
        }
        for (site, weight) in site_weight {
            if weight / total < self.config.min_site_fraction {
                continue;
            }
            let overall = dcg.site_distribution(site);
            let polymorphic_unskewed =
                overall.len() >= 2 && !is_skewed(&overall, self.config.skew_threshold);

            match self.sites.get(&site).copied() {
                None => {
                    if polymorphic_unskewed {
                        self.sites.insert(
                            site,
                            SiteState {
                                level: 2.min(self.config.max_level),
                                status: SiteStatus::Escalating,
                            },
                        );
                    }
                }
                Some(state) if state.status == SiteStatus::Escalating => {
                    if self.contexts_resolved(dcg, site, state.level) {
                        self.sites.insert(
                            site,
                            SiteState { level: state.level, status: SiteStatus::Resolved },
                        );
                    } else if state.level < self.config.max_level {
                        self.sites.insert(
                            site,
                            SiteState { level: state.level + 1, status: SiteStatus::Escalating },
                        );
                    } else {
                        // Give up: collection reverts to plain edges.
                        self.sites.insert(
                            site,
                            SiteState { level: 1, status: SiteStatus::TooPolymorphic },
                        );
                    }
                }
                Some(_) => {} // Resolved / TooPolymorphic: terminal.
            }
        }
    }

    /// A site's imprecision is resolved at `level` when every observed
    /// context of at least that depth has a skewed callee distribution.
    fn contexts_resolved(&self, dcg: &dyn ProfileStore, site: CallSiteRef, level: u8) -> bool {
        // context (full) → callee → weight
        let mut by_context: HashMap<Vec<aoci_ir::CallSiteRef>, HashMap<aoci_ir::MethodId, f64>> =
            HashMap::new();
        for (key, w) in dcg.entries() {
            if key.immediate_caller() == site && key.depth() >= level as usize {
                *by_context
                    .entry(key.context().to_vec())
                    .or_default()
                    .entry(key.callee())
                    .or_insert(0.0) += w;
            }
        }
        if by_context.is_empty() {
            // No deep samples yet — not resolved.
            return false;
        }
        by_context
            .values()
            .all(|dist| is_skewed(dist, self.config.skew_threshold))
    }
}

fn is_skewed(dist: &HashMap<aoci_ir::MethodId, f64>, threshold: f64) -> bool {
    let total: f64 = dist.values().sum();
    if total <= 0.0 {
        return true;
    }
    dist.values().any(|&w| w / total >= threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::{MethodId, SiteIdx};
    use aoci_profile::{Dcg, TraceKey};

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    fn config() -> AdaptiveConfig {
        AdaptiveConfig { skew_threshold: 0.8, min_site_fraction: 0.0, max_level: 3 }
    }

    #[test]
    fn monomorphic_sites_never_flagged() {
        let mut dcg = Dcg::default();
        dcg.record(TraceKey::edge(cs(0, 0), mid(1)), 10.0);
        let mut st = AdaptiveState::new(config());
        st.update(&dcg);
        assert_eq!(st.flagged(), 0);
        assert_eq!(st.level_for(Some(cs(0, 0))), 1);
    }

    #[test]
    fn skewed_polymorphic_sites_not_flagged() {
        let mut dcg = Dcg::default();
        dcg.record(TraceKey::edge(cs(0, 0), mid(1)), 90.0);
        dcg.record(TraceKey::edge(cs(0, 0), mid(2)), 10.0);
        let mut st = AdaptiveState::new(config());
        st.update(&dcg);
        assert_eq!(st.flagged(), 0);
    }

    #[test]
    fn unskewed_sites_escalate_then_resolve() {
        // The paper's HashMap example: a 50/50 site that becomes 100/0 per
        // context once one more level is collected.
        let mut dcg = Dcg::default();
        dcg.record(TraceKey::edge(cs(0, 0), mid(1)), 10.0);
        dcg.record(TraceKey::edge(cs(0, 0), mid(2)), 10.0);
        let mut st = AdaptiveState::new(config());
        st.update(&dcg);
        assert_eq!(st.level_for(Some(cs(0, 0))), 2);
        assert_eq!(st.status(cs(0, 0)), Some(SiteStatus::Escalating));

        // Depth-2 samples arrive and are perfectly context-determined.
        dcg.record(TraceKey::new(mid(1), vec![cs(0, 0), cs(9, 0)]), 10.0);
        dcg.record(TraceKey::new(mid(2), vec![cs(0, 0), cs(9, 1)]), 10.0);
        st.update(&dcg);
        assert_eq!(st.status(cs(0, 0)), Some(SiteStatus::Resolved));
        assert_eq!(st.level_for(Some(cs(0, 0))), 2);
    }

    #[test]
    fn unresolvable_sites_become_too_polymorphic() {
        let mut dcg = Dcg::default();
        // 50/50 at every depth: context never helps.
        dcg.record(TraceKey::edge(cs(0, 0), mid(1)), 10.0);
        dcg.record(TraceKey::edge(cs(0, 0), mid(2)), 10.0);
        let mut st = AdaptiveState::new(config());
        st.update(&dcg); // flag at level 2
        for depth in 2..=3 {
            // Same unskewed distribution within a single deeper context.
            let ctx: Vec<_> = std::iter::once(cs(0, 0))
                .chain((0..depth - 1).map(|i| cs(20 + i, 0)))
                .collect();
            dcg.record(TraceKey::new(mid(1), ctx.clone()), 10.0);
            dcg.record(TraceKey::new(mid(2), ctx), 10.0);
            st.update(&dcg);
        }
        // level 2 → unresolved → level 3 (max) → unresolved → give up.
        st.update(&dcg);
        assert_eq!(st.status(cs(0, 0)), Some(SiteStatus::TooPolymorphic));
        assert_eq!(st.level_for(Some(cs(0, 0))), 1);
    }

    #[test]
    fn cold_sites_ignored() {
        let mut dcg = Dcg::default();
        dcg.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        dcg.record(TraceKey::edge(cs(0, 0), mid(2)), 1.0);
        dcg.record(TraceKey::edge(cs(5, 0), mid(3)), 998.0);
        let cfg = AdaptiveConfig { min_site_fraction: 0.015, ..config() };
        let mut st = AdaptiveState::new(cfg);
        st.update(&dcg);
        // The 0.2%-weight polymorphic site stays unflagged.
        assert_eq!(st.flagged(), 0);
    }

    #[test]
    fn no_feedback_without_weight() {
        let dcg = Dcg::default();
        let mut st = AdaptiveState::new(config());
        st.update(&dcg);
        assert_eq!(st.flagged(), 0);
    }
}
