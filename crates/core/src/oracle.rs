//! The inline oracle: the policy object the optimizing compiler consults
//! per call site (paper Section 3.1).

use crate::rules::RuleSet;
use aoci_ir::{CallSiteRef, MethodId, SiteIdx};
use std::sync::Arc;

/// How the oracle matches rule contexts against compilation contexts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MatchMode {
    /// The paper's Equation 3 partial match plus target-set intersection.
    #[default]
    Partial,
    /// Ablation: a rule applies only when its context length equals the
    /// compilation context's and every level matches. Demonstrates why
    /// partial matching is load-bearing — profile data usually has more
    /// (often irrelevant) context than the compiler has at a call site.
    Exact,
}

/// A profile-directed inlining candidate returned by the oracle.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Candidate {
    /// The callee predicted for the call site in this context.
    pub target: MethodId,
    /// Aggregate profile weight supporting the prediction.
    pub weight: f64,
}

/// Encapsulates the inlining rules applicable to one compilation (paper:
/// "when a method is selected for recompilation, a compilation plan is
/// created that includes an Inlining Oracle object that encapsulates the
/// applicable inlining rules").
///
/// The optimizing compiler, while compiling method `M` and recursively
/// considering a call site inside an already-inlined body, queries the
/// oracle with the *compilation context*: the call site itself plus the
/// chain of ⟨caller, callsite⟩ pairs produced by the inlining decisions made
/// so far. The oracle applies the Equation 3 partial match and target-set
/// intersection to produce candidates.
#[derive(Clone, Debug)]
pub struct InlineOracle {
    rules: Arc<RuleSet>,
    mode: MatchMode,
}

impl InlineOracle {
    /// Creates an oracle over a snapshot of the current rules, using the
    /// paper's partial matching.
    pub fn new(rules: Arc<RuleSet>) -> Self {
        Self::with_mode(rules, MatchMode::Partial)
    }

    /// Creates an oracle with an explicit [`MatchMode`].
    pub fn with_mode(rules: Arc<RuleSet>, mode: MatchMode) -> Self {
        InlineOracle { rules, mode }
    }

    /// An oracle with no profile data (static heuristics only).
    pub fn empty() -> Self {
        InlineOracle { rules: Arc::new(RuleSet::new()), mode: MatchMode::Partial }
    }

    /// The underlying rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Profile-directed candidates for the call site at the head of
    /// `compile_context` (innermost first: `compile_context[0]` is the
    /// ⟨method-containing-the-site, site⟩ pair; subsequent entries are the
    /// inline chain, then the method being compiled).
    pub fn candidates(&self, compile_context: &[CallSiteRef]) -> Vec<Candidate> {
        let raw = match self.mode {
            MatchMode::Partial => self.rules.candidates(compile_context),
            MatchMode::Exact => self.rules.candidates_exact(compile_context),
        };
        raw.into_iter()
            .map(|(target, weight)| Candidate { target, weight })
            .collect()
    }

    /// Convenience wrapper building the context from its parts: the method
    /// being compiled into, the site, and the inline chain *outward* from
    /// the site's enclosing (source) method.
    pub fn candidates_at(
        &self,
        enclosing: MethodId,
        site: SiteIdx,
        outer_chain: &[CallSiteRef],
    ) -> Vec<Candidate> {
        let mut ctx = Vec::with_capacity(outer_chain.len() + 1);
        ctx.push(CallSiteRef::new(enclosing, site));
        ctx.extend_from_slice(outer_chain);
        self.candidates(&ctx)
    }

    /// Returns `true` if the profile supports inlining `callee` at the head
    /// of `compile_context` (it survives target-set intersection).
    pub fn supports(&self, compile_context: &[CallSiteRef], callee: MethodId) -> bool {
        self.candidates(compile_context)
            .iter()
            .any(|c| c.target == callee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_profile::TraceKey;

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    #[test]
    fn empty_oracle_has_no_candidates() {
        let o = InlineOracle::empty();
        assert!(o.candidates(&[cs(0, 0)]).is_empty());
        assert!(!o.supports(&[cs(0, 0)], mid(1)));
    }

    #[test]
    fn candidates_at_builds_context() {
        let rules = RuleSet::from_rules(
            vec![(TraceKey::new(mid(5), vec![cs(3, 1), cs(0, 0)]), 7.0)],
            7.0,
        );
        let o = InlineOracle::new(rules.into());
        // Compiling method 0; site 1 of inlined method 3; chain = [m0@0].
        let c = o.candidates_at(mid(3), SiteIdx(1), &[cs(0, 0)]);
        assert_eq!(c, vec![Candidate { target: mid(5), weight: 7.0 }]);
        // A divergent chain does not match.
        let c2 = o.candidates_at(mid(3), SiteIdx(1), &[cs(9, 9)]);
        assert!(c2.is_empty());
        assert!(o.supports(&[cs(3, 1), cs(0, 0)], mid(5)));
    }
}
