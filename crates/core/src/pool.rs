//! A deterministic fixed-worker job pool for sweep harnesses.
//!
//! Every AOCI experiment is a matrix of independent simulations — each
//! `AosSystem` run owns its program copy of state and advances its own
//! simulated clock, so cells of the (workload × policy × rep) grid share
//! nothing. This module makes that isolation an API: a **job** is a
//! `Send` descriptor evaluated by a pure-per-job function, the pool runs
//! jobs across a fixed number of OS threads (std scoped threads, no
//! dependencies), and results are returned **in job-list order** no matter
//! which worker finished first or in what interleaving. Anything merged
//! from the result vector in a deterministic fold is therefore
//! byte-identical for any worker count; `workers == 1` degenerates to the
//! plain serial loop (no threads are spawned at all).
//!
//! The only observable difference between worker counts is wall-clock
//! time, which the pool measures per job so harnesses can report sweep
//! speedups ([`SweepStats`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished job: its output plus the wall-clock time it took.
#[derive(Clone, Debug)]
pub struct JobResult<R> {
    /// The job function's return value.
    pub output: R,
    /// Wall-clock duration of this job alone.
    pub wall: Duration,
}

/// Aggregate timing of one pool sweep, for speedup reporting.
#[derive(Clone, Copy, Debug)]
pub struct SweepStats {
    /// Number of jobs executed.
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Sum of per-job wall-clock times (serial-equivalent work).
    pub busy: Duration,
}

impl SweepStats {
    /// Observed speedup: serial-equivalent work over elapsed wall clock.
    /// `1.0` for a serial sweep (modulo scheduling overhead), approaching
    /// `workers` when the jobs balance perfectly.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }

    /// One-line human-readable summary for harness logs.
    pub fn render(&self) -> String {
        format!(
            "{} jobs on {} worker{}: wall={:.2?} busy={:.2?} speedup={:.2}x",
            self.jobs,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.wall,
            self.busy,
            self.speedup()
        )
    }
}

/// A fixed-size worker pool over which a job list is swept.
#[derive(Clone, Copy, Debug)]
pub struct JobPool {
    workers: usize,
}

/// The default worker count: the machine's available parallelism (`1` when
/// it cannot be determined).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::new(default_workers())
    }
}

impl JobPool {
    /// A pool with exactly `workers` threads (clamped to at least 1).
    /// `JobPool::new(1)` is the deterministic serial path.
    pub fn new(workers: usize) -> Self {
        JobPool { workers: workers.max(1) }
    }

    /// Number of worker threads this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job and returns outputs **in job order**,
    /// together with sweep timing.
    ///
    /// `f` must be a pure function of its job (plus shared immutable
    /// captures): no ambient environment reads, no shared mutable state —
    /// the pool guarantees result *order*, the job function must guarantee
    /// result *values*, and together that makes any downstream merge
    /// independent of the worker count.
    pub fn run<J, R, F>(&self, jobs: Vec<J>, f: F) -> (Vec<JobResult<R>>, SweepStats)
    where
        J: Send + Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let started = Instant::now();
        let n = jobs.len();
        let workers = self.workers.min(n.max(1));
        let mut results: Vec<Option<JobResult<R>>> = Vec::with_capacity(n);

        if workers <= 1 {
            // Serial path: no threads, exact legacy behaviour.
            for job in &jobs {
                let t = Instant::now();
                let output = f(job);
                results.push(Some(JobResult { output, wall: t.elapsed() }));
            }
        } else {
            results.resize_with(n, || None);
            let slots = Mutex::new(&mut results);
            let next = AtomicUsize::new(0);
            let jobs = &jobs;
            let f = &f;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        // Claim the next unstarted job; each index is
                        // handed out exactly once, so every slot is
                        // written exactly once.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t = Instant::now();
                        let output = f(&jobs[i]);
                        let wall = t.elapsed();
                        slots.lock().expect("no worker panicked holding the slot lock")[i] =
                            Some(JobResult { output, wall });
                    });
                }
            });
        }

        let results: Vec<JobResult<R>> = results
            .into_iter()
            .map(|r| r.expect("every job slot filled"))
            .collect();
        let busy = results.iter().map(|r| r.wall).sum();
        let stats =
            SweepStats { jobs: n, workers: self.workers, wall: started.elapsed(), busy };
        (results, stats)
    }

    /// [`JobPool::run`] without the per-job timing wrapper: just the
    /// outputs, in job order.
    pub fn map<J, R, F>(&self, jobs: Vec<J>, f: F) -> Vec<R>
    where
        J: Send + Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        self.run(jobs, f).0.into_iter().map(|r| r.output).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..97).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = JobPool::new(workers);
            let out = pool.map(jobs.clone(), |&j| j * j);
            assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_nontrivial_fold() {
        // A fold sensitive to order: concatenation.
        let jobs: Vec<usize> = (0..40).collect();
        let render = |pool: &JobPool| {
            pool.map(jobs.clone(), |&j| format!("{j}:{};", j % 7))
                .concat()
        };
        let serial = render(&JobPool::new(1));
        for workers in [2, 5, 16] {
            assert_eq!(render(&JobPool::new(workers)), serial, "workers={workers}");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(JobPool::new(0).workers(), 1);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let (out, stats) = JobPool::new(4).run(Vec::<u32>::new(), |&j| j);
        assert!(out.is_empty());
        assert_eq!(stats.jobs, 0);
    }

    #[test]
    fn stats_account_every_job() {
        let (out, stats) = JobPool::new(3).run((0..10).collect::<Vec<u32>>(), |&j| j + 1);
        assert_eq!(stats.jobs, 10);
        assert_eq!(stats.workers, 3);
        assert_eq!(out.len(), 10);
        assert!(stats.busy >= out.iter().map(|r| r.wall).sum());
        assert!(stats.speedup() > 0.0);
    }
}
