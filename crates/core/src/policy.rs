//! Context-sensitivity policies (paper Section 4).

use crate::adaptive::{AdaptiveConfig, AdaptiveState};
use crate::dependence::DependenceAnalysis;
use aoci_ir::{CallSiteRef, MethodId, Program, SizeClass};
use aoci_profile::ProfileStore;
use std::fmt;

/// Which context-sensitivity policy governs trace collection.
///
/// `max` is the maximum number of call edges a collected trace may contain
/// (the paper sweeps 2–5). A value of 1 degenerates to context-insensitive
/// edge profiling for every policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PolicyKind {
    /// Plain context-insensitive edge profiling — the Jikes RVM baseline the
    /// paper compares against.
    ContextInsensitive,
    /// Fixed-level sensitivity (Section 4.2): always collect `max` edges.
    Fixed {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Early termination at parameterless methods (Section 4.3): stop
    /// extending once the callee side of the last edge takes no parameters —
    /// no state flows into it from further up the stack.
    Parameterless {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Early termination at class (static) methods: no `this` state flows
    /// through a static method.
    ClassMethods {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Early termination one level above a large method: large methods are
    /// never inlined into a parent, so context beyond their caller is
    /// useless to the inliner.
    LargeMethods {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Hybrid 1: parameterless **or** class-method termination.
    ParameterlessClass {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Hybrid 2: parameterless **or** large-method termination.
    ParameterlessLarge {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Section 4.1's sketched approximation of *ideal* sensitivity: a
    /// static parameter-dependence analysis flags methods whose call sites
    /// are data- or control-dependent on their parameters; trace walks
    /// extend only through flagged methods. Requires
    /// [`PolicyEngine::set_dependence`] (the AOS driver computes the
    /// analysis at startup).
    IdealApprox {
        /// Maximum trace depth in call edges.
        max: u8,
    },
    /// Section 4.3 "Adaptively Resolving Imprecisions": start context-
    /// insensitive everywhere; escalate the collection depth only for call
    /// sites whose callee distribution is polymorphic and unskewed, until
    /// the imprecision resolves or the site is deemed inherently too
    /// polymorphic. (Described but not implemented in the paper; this is
    /// the extension implementation.)
    AdaptiveResolving {
        /// Maximum escalation depth in call edges.
        max: u8,
    },
}

impl PolicyKind {
    /// Maximum trace depth this policy will ever collect.
    pub fn max_depth(&self) -> u8 {
        match *self {
            PolicyKind::ContextInsensitive => 1,
            PolicyKind::Fixed { max }
            | PolicyKind::Parameterless { max }
            | PolicyKind::ClassMethods { max }
            | PolicyKind::LargeMethods { max }
            | PolicyKind::ParameterlessClass { max }
            | PolicyKind::ParameterlessLarge { max }
            | PolicyKind::IdealApprox { max }
            | PolicyKind::AdaptiveResolving { max } => max.max(1),
        }
    }

    /// The six policies evaluated in the paper's Section 5, at a given
    /// maximum sensitivity, in figure order (a)–(f).
    pub fn evaluated(max: u8) -> [PolicyKind; 6] {
        [
            PolicyKind::Fixed { max },
            PolicyKind::Parameterless { max },
            PolicyKind::ClassMethods { max },
            PolicyKind::LargeMethods { max },
            PolicyKind::ParameterlessClass { max },
            PolicyKind::ParameterlessLarge { max },
        ]
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PolicyKind::ContextInsensitive => f.write_str("cins"),
            PolicyKind::Fixed { max } => write!(f, "fixed(max={max})"),
            PolicyKind::Parameterless { max } => write!(f, "paramLess(max={max})"),
            PolicyKind::ClassMethods { max } => write!(f, "class(max={max})"),
            PolicyKind::LargeMethods { max } => write!(f, "large(max={max})"),
            PolicyKind::ParameterlessClass { max } => write!(f, "hybrid1(max={max})"),
            PolicyKind::ParameterlessLarge { max } => write!(f, "hybrid2(max={max})"),
            PolicyKind::IdealApprox { max } => write!(f, "idealApprox(max={max})"),
            PolicyKind::AdaptiveResolving { max } => write!(f, "adaptiveResolve(max={max})"),
        }
    }
}

/// The runtime policy object: owns per-site adaptive state (used only by
/// [`PolicyKind::AdaptiveResolving`]) and answers the two questions the
/// trace listener asks per sample — how deep may this trace go, and should
/// the walk stop early at a given method.
#[derive(Clone, Debug)]
pub struct PolicyEngine {
    kind: PolicyKind,
    adaptive: AdaptiveState,
    dependence: Option<DependenceAnalysis>,
}

impl PolicyEngine {
    /// Creates a policy engine with default adaptive configuration.
    pub fn new(kind: PolicyKind) -> Self {
        Self::with_adaptive_config(kind, AdaptiveConfig::default())
    }

    /// Creates a policy engine with an explicit adaptive configuration
    /// (relevant only for [`PolicyKind::AdaptiveResolving`]).
    pub fn with_adaptive_config(kind: PolicyKind, config: AdaptiveConfig) -> Self {
        let config = AdaptiveConfig { max_level: kind.max_depth(), ..config };
        PolicyEngine { kind, adaptive: AdaptiveState::new(config), dependence: None }
    }

    /// Installs the static parameter-dependence analysis used by
    /// [`PolicyKind::IdealApprox`] (no effect on other policies).
    pub fn set_dependence(&mut self, analysis: DependenceAnalysis) {
        self.dependence = Some(analysis);
    }

    /// Returns the policy kind.
    pub fn kind(&self) -> PolicyKind {
        self.kind
    }

    /// Maximum context depth to collect for a sample whose immediate call
    /// site is `site` (`None` when the sampled frame has no caller, or the
    /// caller is unknown).
    pub fn max_context_for(&self, site: Option<CallSiteRef>) -> usize {
        match self.kind {
            PolicyKind::ContextInsensitive => 1,
            PolicyKind::AdaptiveResolving { .. } => self.adaptive.level_for(site),
            _ => self.kind.max_depth() as usize,
        }
    }

    /// Early-termination predicate: may the trace walk extend past a method
    /// `m` appearing as the callee side of the last collected edge?
    pub fn keep_extending(&self, program: &Program, m: MethodId) -> bool {
        let def = program.method(m);
        let parameterless_stop = def.is_parameterless();
        let class_stop = def.kind().is_static();
        let large_stop = def.size_class() == SizeClass::Large;
        match self.kind {
            PolicyKind::ContextInsensitive => false,
            PolicyKind::Fixed { .. } | PolicyKind::AdaptiveResolving { .. } => true,
            PolicyKind::Parameterless { .. } => !parameterless_stop,
            PolicyKind::ClassMethods { .. } => !class_stop,
            PolicyKind::LargeMethods { .. } => !large_stop,
            PolicyKind::ParameterlessClass { .. } => !(parameterless_stop || class_stop),
            PolicyKind::ParameterlessLarge { .. } => !(parameterless_stop || large_stop),
            PolicyKind::IdealApprox { .. } => self
                .dependence
                .as_ref()
                .is_some_and(|d| d.needs_context(m)),
        }
    }

    /// Feeds DCG feedback to the adaptive-resolving state (no-op for other
    /// policies). Called periodically by the AI organizer.
    pub fn adaptive_feedback(&mut self, dcg: &dyn ProfileStore) {
        if matches!(self.kind, PolicyKind::AdaptiveResolving { .. }) {
            self.adaptive.update(dcg);
        }
    }

    /// Read access to the adaptive per-site state.
    pub fn adaptive(&self) -> &AdaptiveState {
        &self.adaptive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::ProgramBuilder;

    /// main (static, 0 params, tiny), withParams (static, 2 params, small),
    /// big (static, 1 param, large), A.v (virtual, 0 params).
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.class("A", None);
        let sel = b.selector("v", 0);
        {
            let mut m = b.static_method("withParams", 2);
            m.work(20);
            m.ret(None);
            m.finish();
        }
        {
            let mut m = b.static_method("big", 1);
            m.work(500);
            m.ret(None);
            m.finish();
        }
        {
            let mut m = b.virtual_method("A.v", a, sel);
            m.work(30);
            m.ret(None);
            m.finish();
        }
        let main = {
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        };
        b.finish(main).unwrap()
    }

    fn m(p: &Program, name: &str) -> MethodId {
        p.method_by_name(name).unwrap()
    }

    #[test]
    fn max_depths() {
        assert_eq!(PolicyKind::ContextInsensitive.max_depth(), 1);
        assert_eq!(PolicyKind::Fixed { max: 4 }.max_depth(), 4);
        assert_eq!(PolicyKind::Fixed { max: 0 }.max_depth(), 1);
        let e = PolicyEngine::new(PolicyKind::ContextInsensitive);
        assert_eq!(e.max_context_for(None), 1);
        let f = PolicyEngine::new(PolicyKind::Fixed { max: 3 });
        assert_eq!(f.max_context_for(None), 3);
    }

    #[test]
    fn parameterless_policy_stops_at_parameterless() {
        let p = program();
        let e = PolicyEngine::new(PolicyKind::Parameterless { max: 5 });
        assert!(!e.keep_extending(&p, m(&p, "main"))); // 0 params
        assert!(!e.keep_extending(&p, m(&p, "A.v"))); // receiver only
        assert!(e.keep_extending(&p, m(&p, "withParams")));
        assert!(e.keep_extending(&p, m(&p, "big")));
    }

    #[test]
    fn class_policy_stops_at_statics() {
        let p = program();
        let e = PolicyEngine::new(PolicyKind::ClassMethods { max: 5 });
        assert!(!e.keep_extending(&p, m(&p, "withParams")));
        assert!(!e.keep_extending(&p, m(&p, "big")));
        assert!(e.keep_extending(&p, m(&p, "A.v")));
    }

    #[test]
    fn large_policy_stops_at_large_methods() {
        let p = program();
        let e = PolicyEngine::new(PolicyKind::LargeMethods { max: 5 });
        assert!(!e.keep_extending(&p, m(&p, "big")));
        assert!(e.keep_extending(&p, m(&p, "withParams")));
        assert!(e.keep_extending(&p, m(&p, "A.v")));
    }

    #[test]
    fn hybrids_combine_conditions() {
        let p = program();
        let h1 = PolicyEngine::new(PolicyKind::ParameterlessClass { max: 5 });
        assert!(!h1.keep_extending(&p, m(&p, "A.v"))); // parameterless
        assert!(!h1.keep_extending(&p, m(&p, "withParams"))); // static
        let h2 = PolicyEngine::new(PolicyKind::ParameterlessLarge { max: 5 });
        assert!(!h2.keep_extending(&p, m(&p, "A.v"))); // parameterless
        assert!(!h2.keep_extending(&p, m(&p, "big"))); // large
        assert!(h2.keep_extending(&p, m(&p, "withParams")));
    }

    #[test]
    fn fixed_never_terminates_early() {
        let p = program();
        let e = PolicyEngine::new(PolicyKind::Fixed { max: 5 });
        for name in ["main", "withParams", "big", "A.v"] {
            assert!(e.keep_extending(&p, m(&p, name)));
        }
    }

    #[test]
    fn evaluated_covers_figure_order() {
        let v = PolicyKind::evaluated(3);
        assert!(matches!(v[0], PolicyKind::Fixed { max: 3 }));
        assert!(matches!(v[5], PolicyKind::ParameterlessLarge { max: 3 }));
    }

    #[test]
    fn display_names() {
        assert_eq!(PolicyKind::ContextInsensitive.to_string(), "cins");
        assert_eq!(PolicyKind::Fixed { max: 2 }.to_string(), "fixed(max=2)");
        assert_eq!(
            PolicyKind::ParameterlessLarge { max: 5 }.to_string(),
            "hybrid2(max=5)"
        );
    }
}
