//! Static parameter-dependence analysis — the paper's approximation of
//! *ideal* context sensitivity (Section 4.1).
//!
//! > "One possible approach that might closely approximate this ideal would
//! > be to analyze each method and identify call sites that are data or
//! > control dependent on parameters to the method. These call sites would
//! > then be flagged as requiring additional context when sampled. As the
//! > listener sampled the stack, it would continue to trace the stack until
//! > it encountered a call site that was not flagged."
//!
//! [`DependenceAnalysis`] computes, per method, whether any of its call
//! sites is data- or control-dependent on the method's parameters, via a
//! simple intra-procedural taint analysis: parameters (including the
//! receiver) are taint sources; `Move`/`Bin`/array/field reads propagate
//! taint through registers; a call site *needs context* when its receiver
//! or an argument is tainted, or when it is control-dependent on a tainted
//! branch (approximated as: a tainted branch exists in the method). The
//! [`PolicyKind::IdealApprox`](crate::PolicyKind) policy keeps extending a
//! trace exactly while the walk is inside such methods.

use aoci_ir::{Instr, MethodId, Program, Reg};

/// Per-method parameter-dependence facts.
#[derive(Clone, Debug)]
pub struct DependenceAnalysis {
    /// `true` when any call site of the method depends (data or control)
    /// on the method's parameters — i.e. its callers' identity can change
    /// its call behaviour, so additional context is informative.
    needs_context: Vec<bool>,
}

impl DependenceAnalysis {
    /// Analyzes every method of `program`.
    pub fn analyze(program: &Program) -> Self {
        let needs_context = program
            .methods()
            .map(|m| method_needs_context(m.body(), m.total_args()))
            .collect();
        DependenceAnalysis { needs_context }
    }

    /// Returns `true` if context beyond `method` is predicted useful.
    pub fn needs_context(&self, method: MethodId) -> bool {
        self.needs_context
            .get(method.index())
            .copied()
            .unwrap_or(false)
    }

    /// Number of methods whose call sites are parameter-dependent.
    pub fn dependent_methods(&self) -> usize {
        self.needs_context.iter().filter(|&&b| b).count()
    }
}

/// Flow-insensitive taint fixpoint over one body.
fn method_needs_context(body: &[Instr], total_args: u16) -> bool {
    if total_args == 0 {
        // No parameters — callers cannot influence behaviour (modulo
        // globals, the paper's acknowledged exception).
        return false;
    }
    let max_reg = 1 + body
        .iter()
        .flat_map(instr_regs)
        .map(|r| r.index())
        .max()
        .unwrap_or(0)
        .max(total_args as usize - 1);
    let mut tainted = vec![false; max_reg];
    for t in tainted.iter_mut().take(total_args as usize) {
        *t = true;
    }
    // Iterate to fixpoint (flow-insensitive; bodies are small).
    loop {
        let mut changed = false;
        for instr in body {
            let (srcs, dst) = taint_flow(instr);
            if let Some(d) = dst {
                if !tainted[d.index()] && srcs.iter().any(|s| tainted[s.index()]) {
                    tainted[d.index()] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let tainted_branch = body.iter().any(|i| match i {
        Instr::Branch { lhs, rhs, .. } => tainted[lhs.index()] || tainted[rhs.index()],
        _ => false,
    });

    body.iter().any(|i| match i {
        Instr::CallVirtual { recv, args, .. } => {
            tainted_branch
                || tainted[recv.index()]
                || args.iter().any(|a| tainted[a.index()])
        }
        Instr::CallStatic { args, .. } => {
            tainted_branch || args.iter().any(|a| tainted[a.index()])
        }
        _ => false,
    })
}

/// Taint propagation: sources feeding the destination.
fn taint_flow(instr: &Instr) -> (Vec<Reg>, Option<Reg>) {
    match instr {
        Instr::Move { dst, src } => (vec![*src], Some(*dst)),
        Instr::Bin { dst, lhs, rhs, .. } => (vec![*lhs, *rhs], Some(*dst)),
        Instr::GetField { dst, obj, .. } => (vec![*obj], Some(*dst)),
        Instr::ArrGet { dst, arr, idx } => (vec![*arr, *idx], Some(*dst)),
        Instr::ArrLen { dst, arr } => (vec![*arr], Some(*dst)),
        Instr::InstanceOf { dst, obj, .. } => (vec![*obj], Some(*dst)),
        // Constants, allocations and global reads are caller-independent.
        _ => (vec![], None),
    }
}

fn instr_regs(instr: &Instr) -> Vec<Reg> {
    let (mut v, d) = taint_flow(instr);
    v.extend(d);
    match instr {
        Instr::CallStatic { args, dst, .. } => {
            v.extend_from_slice(args);
            v.extend(*dst);
        }
        Instr::CallVirtual { recv, args, dst, .. } => {
            v.push(*recv);
            v.extend_from_slice(args);
            v.extend(*dst);
        }
        Instr::Branch { lhs, rhs, .. } => {
            v.push(*lhs);
            v.push(*rhs);
        }
        Instr::Const { dst, .. } | Instr::ConstNull { dst } | Instr::New { dst, .. }
        | Instr::GetGlobal { dst, .. } | Instr::ArrNew { dst, .. } => v.push(*dst),
        Instr::PutField { obj, src, .. } => {
            v.push(*obj);
            v.push(*src);
        }
        Instr::PutGlobal { src, .. } => v.push(*src),
        Instr::ArrSet { arr, idx, src } => {
            v.push(*arr);
            v.push(*idx);
            v.push(*src);
        }
        Instr::Return { src } => v.extend(*src),
        Instr::GuardClass { recv, .. } | Instr::GuardMethod { recv, .. } => v.push(*recv),
        _ => {}
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::{BinOp, Cond, ProgramBuilder};

    fn analyze(build: impl FnOnce(&mut ProgramBuilder) -> MethodId) -> (Program, DependenceAnalysis) {
        let mut b = ProgramBuilder::new();
        let main = build(&mut b);
        let p = b.finish(main).expect("valid");
        let a = DependenceAnalysis::analyze(&p);
        (p, a)
    }

    use aoci_ir::Program;

    #[test]
    fn receiver_from_parameter_needs_context() {
        let (p, a) = analyze(|b| {
            let sel = b.selector("f", 0);
            let c = b.class("A", None);
            {
                let mut m = b.virtual_method("A.f", c, sel);
                m.ret(None);
                m.finish();
            }
            {
                let mut m = b.static_method("callsOnParam", 1);
                m.call_virtual(None, sel, m.param(0), &[]);
                m.ret(None);
                m.finish();
            }
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        });
        let target = p.method_by_name("callsOnParam").unwrap();
        assert!(a.needs_context(target));
        assert!(!a.needs_context(p.entry()));
    }

    #[test]
    fn receiver_from_global_does_not_need_context() {
        let (p, a) = analyze(|b| {
            let sel = b.selector("f", 0);
            let c = b.class("A", None);
            let g = b.global("recv");
            {
                let mut m = b.virtual_method("A.f", c, sel);
                m.ret(None);
                m.finish();
            }
            {
                // Takes a parameter but never lets it reach a call or branch.
                let mut m = b.static_method("callsOnGlobal", 1);
                let r = m.fresh_reg();
                m.get_global(r, g);
                m.call_virtual(None, sel, r, &[]);
                m.ret(None);
                m.finish();
            }
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        });
        let target = p.method_by_name("callsOnGlobal").unwrap();
        assert!(!a.needs_context(target));
    }

    #[test]
    fn control_dependence_on_parameter_counts() {
        let (p, a) = analyze(|b| {
            let callee = {
                let mut m = b.static_method("leaf", 0);
                m.ret(None);
                m.finish()
            };
            {
                // The call executes only when param > 0: control-dependent.
                let mut m = b.static_method("conditional", 1);
                let zero = m.fresh_reg();
                m.const_int(zero, 0);
                let skip = m.label();
                m.branch(Cond::Le, m.param(0), zero, skip);
                m.call_static(None, callee, &[]);
                m.bind(skip);
                m.ret(None);
                m.finish();
            }
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        });
        let target = p.method_by_name("conditional").unwrap();
        assert!(a.needs_context(target));
    }

    #[test]
    fn taint_propagates_through_arithmetic() {
        let (p, a) = analyze(|b| {
            let callee = {
                let mut m = b.static_method("leaf", 1);
                m.ret(None);
                m.finish()
            };
            {
                let mut m = b.static_method("derived", 1);
                let t = m.fresh_reg();
                let one = m.fresh_reg();
                m.const_int(one, 1);
                m.bin(BinOp::Add, t, m.param(0), one);
                m.call_static(None, callee, &[t]); // tainted argument
                m.ret(None);
                m.finish();
            }
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        });
        let target = p.method_by_name("derived").unwrap();
        assert!(a.needs_context(target));
        assert_eq!(a.dependent_methods(), 1);
    }

    #[test]
    fn parameterless_methods_never_need_context() {
        let (p, a) = analyze(|b| {
            let callee = {
                let mut m = b.static_method("leaf", 0);
                m.ret(None);
                m.finish()
            };
            {
                let mut m = b.static_method("noParams", 0);
                m.call_static(None, callee, &[]);
                m.ret(None);
                m.finish();
            }
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        });
        let target = p.method_by_name("noParams").unwrap();
        assert!(!a.needs_context(target));
    }
}
