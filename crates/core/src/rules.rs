//! Inlining rules and the Equation 3 partial-match query.

use aoci_ir::{CallSiteRef, MethodId};
use aoci_profile::{HotTrace, TraceKey};
use std::collections::HashMap;

/// One inlining rule: a hot trace that should be inlined when possible.
#[derive(Clone, PartialEq, Debug)]
pub struct InlineRule {
    /// The hot trace (callee + context, innermost caller first).
    pub trace: TraceKey,
    /// The trace's profile weight when the rule was formed.
    pub weight: f64,
    /// The trace's fraction of total profile weight when the rule was
    /// formed.
    pub fraction: f64,
}

/// A set of inlining rules derived from the hot traces of the dynamic call
/// graph, indexed by immediate call site.
///
/// Rules are kept exactly as collected — partial matches are *not* merged
/// (paper Section 3.3); combining information across rules happens at query
/// time in [`RuleSet::candidates`].
#[derive(Clone, Debug, Default)]
pub struct RuleSet {
    by_site: HashMap<CallSiteRef, Vec<InlineRule>>,
    len: usize,
}

impl RuleSet {
    /// A content fingerprint over the rule *traces* (weights excluded, so
    /// ordinary weight drift does not change the fingerprint). The AOS
    /// database stores the fingerprint each method was compiled under; the
    /// missing-edge organizer only reconsiders a method when the rules have
    /// actually changed since.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut keys: Vec<&TraceKey> = self.iter().map(|r| &r.trace).collect();
        keys.sort();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for k in keys {
            k.hash(&mut h);
        }
        h.finish()
    }
}

impl RuleSet {
    /// Creates an empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a rule set from the DCG's hot traces.
    pub fn from_hot_traces(hot: impl IntoIterator<Item = HotTrace>) -> Self {
        let mut set = RuleSet::new();
        for h in hot {
            set.insert(InlineRule { trace: h.key, weight: h.weight, fraction: h.fraction });
        }
        set
    }

    /// Builds a rule set from raw `(trace, weight)` pairs and the total
    /// profile weight (mainly for tests and examples).
    pub fn from_rules(rules: impl IntoIterator<Item = (TraceKey, f64)>, total: f64) -> Self {
        let mut set = RuleSet::new();
        for (trace, weight) in rules {
            let fraction = if total > 0.0 { weight / total } else { 0.0 };
            set.insert(InlineRule { trace, weight, fraction });
        }
        set
    }

    /// Adds one rule.
    pub fn insert(&mut self, rule: InlineRule) {
        self.by_site
            .entry(rule.trace.immediate_caller())
            .or_default()
            .push(rule);
        self.len += 1;
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rules whose immediate call site is `site`.
    pub fn rules_for_site(&self, site: CallSiteRef) -> &[InlineRule] {
        self.by_site.get(&site).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all rules in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &InlineRule> {
        self.by_site.values().flatten()
    }

    /// Returns the rules *applicable* to a compilation context (Equation 3):
    /// those agreeing with `compile_context` on every level both have.
    /// `compile_context[0]` must be the call site being compiled.
    pub fn applicable(&self, compile_context: &[CallSiteRef]) -> Vec<&InlineRule> {
        let Some(&site) = compile_context.first() else {
            return Vec::new();
        };
        self.rules_for_site(site)
            .iter()
            .filter(|r| {
                r.trace
                    .context()
                    .iter()
                    .zip(compile_context.iter())
                    .all(|(a, b)| a == b)
            })
            .collect()
    }

    /// Exact-match variant (the oracle's ablation mode): only rules whose
    /// context is *identical* to `compile_context` contribute.
    pub fn candidates_exact(&self, compile_context: &[CallSiteRef]) -> Vec<(MethodId, f64)> {
        let mut out: Vec<(MethodId, f64)> = self
            .applicable(compile_context)
            .into_iter()
            .filter(|r| r.trace.context() == compile_context)
            .map(|r| (r.trace.callee(), r.weight))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }

    /// The paper's candidate-selection algorithm: group applicable rules by
    /// identical (full) context, form each group's set of target methods,
    /// and intersect the sets. A callee frequently invoked from *every*
    /// traced context applicable here is predicted to be a good inlining
    /// candidate even without an exact context match.
    ///
    /// Returns `(callee, total weight across applicable rules)` pairs,
    /// heaviest first (ties broken by callee id for determinism).
    pub fn candidates(&self, compile_context: &[CallSiteRef]) -> Vec<(MethodId, f64)> {
        let applicable = self.applicable(compile_context);
        if applicable.is_empty() {
            return Vec::new();
        }
        let mut groups: HashMap<&[CallSiteRef], Vec<&InlineRule>> = HashMap::new();
        for r in &applicable {
            groups.entry(r.trace.context()).or_default().push(r);
        }
        let mut weights: HashMap<MethodId, f64> = HashMap::new();
        let mut in_all: Option<std::collections::HashSet<MethodId>> = None;
        for rules in groups.values() {
            let set: std::collections::HashSet<MethodId> =
                rules.iter().map(|r| r.trace.callee()).collect();
            in_all = Some(match in_all {
                None => set,
                Some(acc) => acc.intersection(&set).copied().collect(),
            });
        }
        for r in &applicable {
            *weights.entry(r.trace.callee()).or_insert(0.0) += r.weight;
        }
        let survivors = in_all.unwrap_or_default();
        let mut out: Vec<(MethodId, f64)> = survivors
            .into_iter()
            .map(|m| (m, weights.get(&m).copied().unwrap_or(0.0)))
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("weights are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::SiteIdx;

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    fn set(rules: Vec<(TraceKey, f64)>) -> RuleSet {
        let total: f64 = rules.iter().map(|(_, w)| w).sum();
        RuleSet::from_rules(rules, total)
    }

    #[test]
    fn exact_match_single_rule() {
        let s = set(vec![(TraceKey::edge(cs(0, 0), mid(1)), 5.0)]);
        let c = s.candidates(&[cs(0, 0)]);
        assert_eq!(c, vec![(mid(1), 5.0)]);
        assert!(s.candidates(&[cs(0, 1)]).is_empty());
    }

    #[test]
    fn rule_with_more_context_than_compilation_applies() {
        // Rule: X@1 => A@0 => callee. Compiling with context just [A@0]:
        // "it is often the case that the profile data has more (often
        // irrelevant) context than is available at the call site".
        let s = set(vec![(
            TraceKey::new(mid(9), vec![cs(0, 0), cs(1, 1)]),
            4.0,
        )]);
        let c = s.candidates(&[cs(0, 0)]);
        assert_eq!(c, vec![(mid(9), 4.0)]);
    }

    #[test]
    fn compilation_with_more_context_than_rule_applies() {
        // Rule is a plain edge; compilation context is deeper.
        let s = set(vec![(TraceKey::edge(cs(0, 0), mid(9)), 4.0)]);
        let c = s.candidates(&[cs(0, 0), cs(1, 1), cs(2, 2)]);
        assert_eq!(c, vec![(mid(9), 4.0)]);
    }

    #[test]
    fn divergent_context_rules_out() {
        let s = set(vec![(
            TraceKey::new(mid(9), vec![cs(0, 0), cs(1, 1)]),
            4.0,
        )]);
        // Second level disagrees (cs(7,7) vs rule's cs(1,1)).
        assert!(s.candidates(&[cs(0, 0), cs(7, 7)]).is_empty());
    }

    #[test]
    fn intersection_across_context_groups() {
        // Two applicable context groups:
        //   group A (deep ctx via X): targets {1, 2}
        //   group B (deep ctx via Y): targets {1}
        // Intersection = {1}: callee 2 was hot only in one context group.
        let s = set(vec![
            (TraceKey::new(mid(1), vec![cs(0, 0), cs(10, 0)]), 3.0),
            (TraceKey::new(mid(2), vec![cs(0, 0), cs(10, 0)]), 3.0),
            (TraceKey::new(mid(1), vec![cs(0, 0), cs(11, 0)]), 3.0),
        ]);
        // Compile with only the site available: both groups applicable.
        let c = s.candidates(&[cs(0, 0)]);
        assert_eq!(c, vec![(mid(1), 6.0)]);
    }

    #[test]
    fn disambiguation_with_full_context() {
        // The HashMap example: same site, two contexts, opposite targets.
        let s = set(vec![
            (TraceKey::new(mid(1), vec![cs(0, 0), cs(9, 0)]), 5.0),
            (TraceKey::new(mid(2), vec![cs(0, 0), cs(9, 1)]), 5.0),
        ]);
        // Compiling within context cs(9,0): only the first rule applies.
        assert_eq!(s.candidates(&[cs(0, 0), cs(9, 0)]), vec![(mid(1), 5.0)]);
        assert_eq!(s.candidates(&[cs(0, 0), cs(9, 1)]), vec![(mid(2), 5.0)]);
        // Without context, the groups disagree → intersection is empty.
        assert!(s.candidates(&[cs(0, 0)]).is_empty());
    }

    #[test]
    fn candidates_ordered_by_weight() {
        let s = set(vec![
            (TraceKey::edge(cs(0, 0), mid(1)), 2.0),
            (TraceKey::edge(cs(0, 0), mid(2)), 7.0),
        ]);
        let c = s.candidates(&[cs(0, 0)]);
        assert_eq!(c, vec![(mid(2), 7.0), (mid(1), 2.0)]);
    }

    #[test]
    fn empty_context_yields_nothing() {
        let s = set(vec![(TraceKey::edge(cs(0, 0), mid(1)), 2.0)]);
        assert!(s.candidates(&[]).is_empty());
        assert!(s.applicable(&[]).is_empty());
    }

    #[test]
    fn exact_match_requires_identical_context() {
        let s = set(vec![
            (TraceKey::new(mid(9), vec![cs(0, 0), cs(1, 1)]), 4.0),
            (TraceKey::edge(cs(0, 0), mid(8)), 2.0),
        ]);
        // Exact: context [cs(0,0)] matches only the depth-1 rule.
        assert_eq!(s.candidates_exact(&[cs(0, 0)]), vec![(mid(8), 2.0)]);
        // The deep rule needs the full context.
        assert_eq!(
            s.candidates_exact(&[cs(0, 0), cs(1, 1)]),
            vec![(mid(9), 4.0)]
        );
        // Partial matching at the shallow context sees two disagreeing
        // context groups — the intersection is empty (ambiguous site).
        assert!(s.candidates(&[cs(0, 0)]).is_empty());
    }


    #[test]
    fn fingerprint_ignores_weights_but_not_traces() {
        let a = set(vec![
            (TraceKey::edge(cs(0, 0), mid(1)), 2.0),
            (TraceKey::edge(cs(0, 1), mid(2)), 3.0),
        ]);
        let b = set(vec![
            (TraceKey::edge(cs(0, 1), mid(2)), 30.0),
            (TraceKey::edge(cs(0, 0), mid(1)), 20.0),
        ]);
        // Same traces (any order, any weights) → same fingerprint.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = set(vec![(TraceKey::edge(cs(0, 0), mid(1)), 2.0)]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(RuleSet::new().fingerprint(), RuleSet::new().fingerprint());
    }

    #[test]
    fn from_hot_traces_builds_fractions() {
        let mut dcg = aoci_profile::Dcg::default();
        dcg.record(TraceKey::edge(cs(0, 0), mid(1)), 98.0);
        dcg.record(TraceKey::edge(cs(0, 1), mid(2)), 2.0);
        let rs = RuleSet::from_hot_traces(dcg.hot(0.015));
        assert_eq!(rs.len(), 2);
        let r = &rs.rules_for_site(cs(0, 0))[0];
        assert!((r.fraction - 0.98).abs() < 1e-12);
    }
}
