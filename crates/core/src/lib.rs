//! # aoci-core — adaptive context-sensitive inlining policies and oracle
//!
//! The primary contribution of *Adaptive Online Context-Sensitive Inlining*
//! (CGO 2003), as a library:
//!
//! * [`PolicyKind`] / [`PolicyEngine`] — the context-sensitivity policies of
//!   paper Section 4: context-insensitive baseline, fixed-level sensitivity
//!   (Section 4.2), the three early-termination heuristics (*Parameterless
//!   Methods*, *Class Methods*, *Large Methods*), the two hybrids, and the
//!   iterative *Adaptively Resolving Imprecisions* policy of Section 4.3
//!   (described but not implemented in the paper; implemented here as an
//!   extension).
//! * [`RuleSet`] / [`InlineRule`] — inlining rules derived from hot traces,
//!   with the Equation 3 **partial context match**: a rule applies to a
//!   compilation context when the two agree on every context level both
//!   have. Rules are *not* merged at collection time; combination happens
//!   at query time via target-set intersection (Section 3.3).
//! * [`InlineOracle`] — the compiler-facing policy object: given a call site
//!   and the compilation context produced by prior inlining decisions, it
//!   answers which callees are profile-directed inlining candidates.
//!
//! ```
//! use aoci_core::{InlineOracle, PolicyEngine, PolicyKind, RuleSet};
//! use aoci_profile::TraceKey;
//! use aoci_ir::{CallSiteRef, MethodId, SiteIdx};
//!
//! let caller = CallSiteRef::new(MethodId::from_index(0), SiteIdx(0));
//! let callee = MethodId::from_index(1);
//! let rules = RuleSet::from_rules(vec![(TraceKey::edge(caller, callee), 10.0)], 10.0);
//! let oracle = InlineOracle::new(rules.into());
//! let candidates = oracle.candidates(&[caller]);
//! assert_eq!(candidates.len(), 1);
//! assert_eq!(candidates[0].target, callee);
//!
//! let policy = PolicyEngine::new(PolicyKind::ParameterlessLarge { max: 4 });
//! assert_eq!(policy.max_context_for(None), 4);
//! ```

#![warn(missing_docs)]

mod adaptive;
mod dependence;
mod oracle;
mod policy;
pub mod pool;
mod rules;

pub use adaptive::{AdaptiveConfig, AdaptiveState, SiteStatus};
pub use dependence::DependenceAnalysis;
pub use oracle::{Candidate, InlineOracle, MatchMode};
pub use policy::{PolicyEngine, PolicyKind};
pub use pool::{default_workers, JobPool, JobResult, SweepStats};
pub use rules::{InlineRule, RuleSet};
