//! The ring-buffer flight recorder and its shared handle.

use crate::event::{Resolve, TraceEvent};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Flight-recorder tunables.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Ring capacity: the recorder keeps the most recent this-many events,
    /// dropping the oldest (drops are counted, never silent).
    pub capacity: usize,
    /// How many trailing events the AOS copies into its recovery ledger
    /// when recovery or a VM fault fires.
    pub dump_last: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 8192, dump_last: 32 }
    }
}

/// One recorded event: a monotone sequence number, the simulated-cycle
/// timestamp at emission, and the typed payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Recorded {
    /// Emission order (0-based, monotone over the whole run — survives ring
    /// truncation, so gaps at the front reveal dropped history).
    pub seq: u64,
    /// Simulated cycles at emission (never wall-clock time).
    pub cycle: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// The fixed-capacity ring buffer behind a [`TraceSink`].
#[derive(Debug)]
pub struct FlightRecorder {
    config: TraceConfig,
    ring: VecDeque<Recorded>,
    emitted: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates an empty recorder.
    pub fn new(config: TraceConfig) -> Self {
        let cap = config.capacity;
        FlightRecorder { config, ring: VecDeque::with_capacity(cap.min(8192)), emitted: 0, dropped: 0 }
    }

    /// Records `event` at simulated cycle `cycle`, evicting the oldest
    /// entry when the ring is full.
    pub fn emit(&mut self, cycle: u64, event: TraceEvent) {
        let seq = self.emitted;
        self.emitted += 1;
        if self.config.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() >= self.config.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Recorded { seq, cycle, event });
    }

    /// Events emitted over the recorder's lifetime (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Snapshots the retained events and counters into an owned log.
    pub fn log(&self) -> TraceLog {
        TraceLog {
            events: self.ring.iter().cloned().collect(),
            emitted: self.emitted,
            dropped: self.dropped,
        }
    }

    /// Renders the last `n` retained events, oldest first.
    pub fn last_rendered(&self, n: usize, resolve: Resolve) -> Vec<String> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring
            .iter()
            .skip(skip)
            .map(|r| format!("#{} @{} {}", r.seq, r.cycle, r.event.render(resolve)))
            .collect()
    }
}

/// A cheaply-cloneable handle to one [`FlightRecorder`], shared by every
/// emitting layer (VM, listeners, driver) of a single-threaded AOS run.
///
/// Emitting through the sink charges **no simulated cycles** and touches no
/// wall clock, so a traced run is metrically identical to an untraced one.
#[derive(Clone, Debug)]
pub struct TraceSink {
    recorder: Rc<RefCell<FlightRecorder>>,
}

impl TraceSink {
    /// Creates a sink over a fresh recorder.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink { recorder: Rc::new(RefCell::new(FlightRecorder::new(config))) }
    }

    /// Records `event` at simulated cycle `cycle`.
    pub fn emit(&self, cycle: u64, event: TraceEvent) {
        self.recorder.borrow_mut().emit(cycle, event);
    }

    /// Snapshots the current log.
    pub fn log(&self) -> TraceLog {
        self.recorder.borrow().log()
    }

    /// Renders the last `n` retained events, oldest first (the dump the AOS
    /// attaches to its recovery ledger).
    pub fn dump_last(&self, n: usize, resolve: Resolve) -> Vec<String> {
        self.recorder.borrow().last_rendered(n, resolve)
    }
}

/// An owned snapshot of the flight recorder: the retained events plus
/// lifetime counters. Produced by [`TraceSink::log`]; consumed by the
/// export sinks in [`crate::sinks`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    /// Retained events, oldest first.
    pub events: Vec<Recorded>,
    /// Events emitted over the run (including dropped ones).
    pub emitted: u64,
    /// Events evicted from the ring (emitted − retained).
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::MethodId;

    fn tick(n: u64) -> TraceEvent {
        TraceEvent::SampleTick {
            tick: n,
            method: MethodId::from_index(0),
            in_prologue: false,
            dropped: false,
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = FlightRecorder::new(TraceConfig { capacity: 3, dump_last: 2 });
        for n in 0..5 {
            r.emit(n * 10, tick(n));
        }
        let log = r.log();
        assert_eq!(log.emitted, 5);
        assert_eq!(log.dropped, 2);
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.events[0].seq, 2, "oldest retained event is #2");
        assert_eq!(log.events[2].seq, 4);
        assert_eq!(log.events[2].cycle, 40);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = FlightRecorder::new(TraceConfig { capacity: 0, dump_last: 0 });
        r.emit(1, tick(0));
        assert_eq!(r.emitted(), 1);
        assert_eq!(r.dropped(), 1);
        assert!(r.log().events.is_empty());
    }

    #[test]
    fn sink_clones_share_one_ring() {
        let a = TraceSink::new(TraceConfig::default());
        let b = a.clone();
        a.emit(5, tick(0));
        b.emit(6, tick(1));
        let log = a.log();
        assert_eq!(log.emitted, 2);
        assert_eq!(log.events[0].cycle, 5);
        assert_eq!(log.events[1].cycle, 6);
    }

    #[test]
    fn dump_last_takes_the_tail() {
        let sink = TraceSink::new(TraceConfig { capacity: 10, dump_last: 2 });
        for n in 0..4 {
            sink.emit(n, tick(n));
        }
        let resolve = |m: MethodId| format!("m{}", m.index());
        let dump = sink.dump_last(2, &resolve);
        assert_eq!(dump.len(), 2);
        assert!(dump[0].starts_with("#2 @2 sample-tick"), "{}", dump[0]);
        assert!(dump[1].starts_with("#3 @3 sample-tick"), "{}", dump[1]);
    }
}
