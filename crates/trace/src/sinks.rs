//! Export sinks over a captured [`TraceLog`]: the Chrome `trace_event`
//! JSON document, deterministic rendered lines, and the `explain` filter
//! that answers "why was method M (not) inlined at call site C?".

use crate::event::{Resolve, TraceEvent};
use crate::recorder::TraceLog;
use aoci_json::Value;
use std::collections::BTreeSet;

/// The six lanes of the Chrome export, `(tid, thread name)`.
const LANES: [(u32, &str); 6] = [
    (1, "profile (listeners + organizer walks)"),
    (2, "controller (plans + promotions)"),
    (3, "compiler (inlining + codegen)"),
    (4, "vm (guards + faults)"),
    (5, "osr (promotion + deopt)"),
    (6, "recovery (invalidate + quarantine + faults)"),
];

impl TraceLog {
    /// Builds a Chrome `trace_event` JSON document (the "JSON object
    /// format") loadable in `chrome://tracing` or Perfetto.
    ///
    /// Every event becomes an instant event (`ph: "i"`) at its
    /// simulated-cycle timestamp, except [`TraceEvent::Compile`], which is
    /// exported as a complete event (`ph: "X"`) spanning the cycles charged
    /// to the compilation thread. Cycles are reported in the `ts`
    /// microsecond field verbatim: the scale is fictional but ordering and
    /// durations are exact.
    pub fn to_chrome_value(&self, resolve: Resolve) -> Value {
        let lane_meta = |tid: u32, name: String| {
            Value::obj([
                ("name".to_string(), Value::from("thread_name")),
                ("ph".to_string(), Value::from("M")),
                ("pid".to_string(), Value::from(1u64)),
                ("tid".to_string(), Value::from(tid)),
                ("args".to_string(), Value::obj([("name".to_string(), Value::from(name))])),
            ])
        };
        let mut events: Vec<Value> =
            LANES.iter().map(|&(tid, name)| lane_meta(tid, name.to_string())).collect();
        // One extra lane per simulated compile worker that appears in the
        // window, so overlapping background compiles render side by side.
        let workers: BTreeSet<u32> = self
            .events
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::CompileStart { worker, .. }
                | TraceEvent::CompileFinish { worker, .. } => Some(worker),
                _ => None,
            })
            .collect();
        for w in workers {
            events.push(lane_meta(
                crate::event::WORKER_LANE_BASE + w,
                format!("compile worker {w} (background)"),
            ));
        }
        for rec in &self.events {
            let mut args: Vec<(String, Value)> = rec
                .event
                .args(resolve)
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            args.push(("seq".to_string(), Value::from(rec.seq)));
            let mut pairs = vec![
                ("name".to_string(), Value::from(rec.event.kind())),
                ("cat".to_string(), Value::from(rec.event.category())),
                ("pid".to_string(), Value::from(1u64)),
                ("tid".to_string(), Value::from(rec.event.tid())),
                ("args".to_string(), Value::obj(args)),
            ];
            if let TraceEvent::Compile { cycles, .. } = rec.event {
                // The compile event is emitted at completion; span backwards
                // over the cycles charged to the compilation thread.
                pairs.push(("ph".to_string(), Value::from("X")));
                pairs.push(("ts".to_string(), Value::from(rec.cycle.saturating_sub(cycles))));
                pairs.push(("dur".to_string(), Value::from(cycles)));
            } else {
                pairs.push(("ph".to_string(), Value::from("i")));
                pairs.push(("ts".to_string(), Value::from(rec.cycle)));
                pairs.push(("s".to_string(), Value::from("t")));
            }
            events.push(Value::obj(pairs));
        }
        Value::obj([
            ("traceEvents".to_string(), Value::Arr(events)),
            ("displayTimeUnit".to_string(), Value::from("ns")),
            (
                "otherData".to_string(),
                Value::obj([
                    ("clock".to_string(), Value::from("simulated-cycles")),
                    ("emitted".to_string(), Value::from(self.emitted)),
                    ("dropped".to_string(), Value::from(self.dropped)),
                ]),
            ),
        ])
    }

    /// Serializes [`Self::to_chrome_value`] with two-space indentation.
    pub fn to_chrome_string(&self, resolve: Resolve) -> String {
        aoci_json::to_string_pretty(&self.to_chrome_value(resolve))
    }

    /// Renders every retained event as one deterministic line,
    /// `[cycle] #seq kind key=value …`, oldest first.
    pub fn render_lines(&self, resolve: Resolve) -> Vec<String> {
        self.events
            .iter()
            .map(|r| format!("[{:>10}] #{:<6} {}", r.cycle, r.seq, r.event.render(resolve)))
            .collect()
    }

    /// The distinct event kinds present in the retained window.
    pub fn kinds(&self) -> BTreeSet<&'static str> {
        self.events.iter().map(|r| r.event.kind()).collect()
    }

    /// Answers "why was method M (not) inlined at call site C?": one line
    /// per inline decision/refusal whose resolved host name, callee name or
    /// site string contains `pattern` (empty pattern matches all).
    pub fn explain(&self, pattern: &str, resolve: Resolve) -> Vec<String> {
        let mut out = Vec::new();
        for rec in &self.events {
            match &rec.event {
                TraceEvent::InlineDecision { host, site, callee, guarded, provenance } => {
                    let (h, c, s) = (resolve(*host), resolve(*callee), site.to_string());
                    if !(h.contains(pattern) || c.contains(pattern) || s.contains(pattern)) {
                        continue;
                    }
                    out.push(format!(
                        "cycle {}: inlined {c} into {h} at {s} — {}, {} (benefit {}), depth {}, size {} of budget {}",
                        rec.cycle,
                        if *guarded { "guarded" } else { "unguarded" },
                        if provenance.rule_fired { "rule fired" } else { "no rule" },
                        provenance.predicted_benefit,
                        provenance.context_depth,
                        provenance.size_before,
                        provenance.size_budget,
                    ));
                }
                TraceEvent::InlineRefusal { host, site, callee, reason, hot, provenance } => {
                    let (h, c, s) = (resolve(*host), resolve(*callee), site.to_string());
                    if !(h.contains(pattern) || c.contains(pattern) || s.contains(pattern)) {
                        continue;
                    }
                    out.push(format!(
                        "cycle {}: did not inline {c} into {h} at {s} — {reason} ({}, depth {}, size {} of budget {})",
                        rec.cycle,
                        if *hot { "hot edge" } else { "cold edge" },
                        provenance.context_depth,
                        provenance.size_before,
                        provenance.size_budget,
                    ));
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DecisionProvenance;
    use crate::recorder::{TraceConfig, TraceSink};
    use aoci_ir::{CallSiteRef, MethodId, SiteIdx};

    fn resolve(m: MethodId) -> String {
        format!("M{}", m.index())
    }

    fn sample_log() -> TraceLog {
        let sink = TraceSink::new(TraceConfig::default());
        let site = CallSiteRef::new(MethodId::from_index(1), SiteIdx(0));
        sink.emit(
            10,
            TraceEvent::SampleTick {
                tick: 1,
                method: MethodId::from_index(1),
                in_prologue: false,
                dropped: false,
            },
        );
        sink.emit(
            20,
            TraceEvent::InlineDecision {
                host: MethodId::from_index(1),
                site,
                callee: MethodId::from_index(2),
                guarded: true,
                provenance: DecisionProvenance {
                    rule_fired: true,
                    predicted_benefit: 4.0,
                    context_depth: 0,
                    size_before: 30,
                    size_budget: 400,
                },
            },
        );
        sink.emit(
            25,
            TraceEvent::InlineRefusal {
                host: MethodId::from_index(1),
                site: CallSiteRef::new(MethodId::from_index(1), SiteIdx(1)),
                callee: MethodId::from_index(3),
                reason: "callee too large".to_string(),
                hot: false,
                provenance: DecisionProvenance::default(),
            },
        );
        sink.emit(
            90,
            TraceEvent::Compile {
                method: MethodId::from_index(1),
                generated_size: 40,
                inlines: 1,
                guarded: 1,
                cycles: 60,
            },
        );
        sink.log()
    }

    #[test]
    fn chrome_export_parses_and_spans_compiles() {
        let log = sample_log();
        let text = log.to_chrome_string(&resolve);
        let doc = aoci_json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 6 lane-metadata events + 4 recorded events.
        assert_eq!(events.len(), 10);
        let compile = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compile"))
            .unwrap();
        assert_eq!(compile.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(compile.get("ts").unwrap().as_u64(), Some(30));
        assert_eq!(compile.get("dur").unwrap().as_u64(), Some(60));
        let tick = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("sample-tick"))
            .unwrap();
        assert_eq!(tick.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(tick.get("args").unwrap().get("seq").unwrap().as_u64(), Some(0));
        assert_eq!(
            doc.get("otherData").unwrap().get("clock").unwrap().as_str(),
            Some("simulated-cycles")
        );
    }

    #[test]
    fn worker_events_get_their_own_lanes() {
        let sink = TraceSink::new(TraceConfig::default());
        sink.emit(
            5,
            TraceEvent::CompileStart { method: MethodId::from_index(1), worker: 1, cost: 90 },
        );
        sink.emit(
            95,
            TraceEvent::CompileFinish {
                method: MethodId::from_index(1),
                worker: 1,
                overlap_cycles: 90,
                stall_cycles: 0,
            },
        );
        let doc = sink.log().to_chrome_value(&resolve);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 6 fixed lanes + 1 worker lane + 2 events.
        assert_eq!(events.len(), 9);
        let lane = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Value::as_str) == Some("thread_name")
                    && e.get("tid").and_then(Value::as_u64) == Some(11)
            })
            .expect("worker 1 lane metadata");
        assert_eq!(
            lane.get("args").unwrap().get("name").unwrap().as_str(),
            Some("compile worker 1 (background)")
        );
        let start = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compile-start"))
            .unwrap();
        assert_eq!(start.get("tid").unwrap().as_u64(), Some(11));
    }

    #[test]
    fn explain_filters_by_name() {
        let log = sample_log();
        let all = log.explain("", &resolve);
        assert_eq!(all.len(), 2);
        assert!(all[0].contains("inlined M2 into M1"), "{}", all[0]);
        assert!(all[0].contains("rule fired (benefit 4)"), "{}", all[0]);
        assert!(all[1].contains("did not inline M3"), "{}", all[1]);
        assert!(all[1].contains("callee too large"), "{}", all[1]);
        let only_m3 = log.explain("M3", &resolve);
        assert_eq!(only_m3.len(), 1);
        assert!(only_m3[0].contains("M3"));
        assert!(log.explain("M99", &resolve).is_empty());
    }

    #[test]
    fn kinds_and_lines_reflect_the_window() {
        let log = sample_log();
        let kinds = log.kinds();
        assert_eq!(kinds.len(), 4);
        assert!(kinds.contains("compile"));
        let lines = log.render_lines(&resolve);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("sample-tick"), "{}", lines[0]);
        assert_eq!(lines, log.render_lines(&resolve), "rendering is deterministic");
    }
}
