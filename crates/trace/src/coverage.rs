//! Decision-space coverage features — the fuzz campaign's fingerprint
//! vocabulary.
//!
//! The coverage-guided fuzzer (`crates/fuzz`) keeps a generated program in
//! its corpus only if running it exercises a *new part of the adaptive
//! system's decision space*: an inlining rule firing (or a refusal reason)
//! not seen before, an OSR request/deny/enter/exit path, a recovery or
//! retry path, a background-compilation queue transition. The flight
//! recorder already observes every one of those decisions with provenance,
//! so the coverage map is read straight off the event stream: each
//! [`TraceEvent`] maps to zero or more stable *feature* strings, and a
//! run's **fingerprint** is the set of features its [`TraceLog`] contains.
//!
//! The vocabulary lives here — next to the event definitions — so adding
//! an event kind and forgetting its coverage feature is a one-file review,
//! not a cross-crate hunt. Features are deliberately *coarse* (they bucket
//! rather than identify: `inline:depth:3+`, not the exact depth), because
//! the campaign wants a small, saturating space whose exhaustion is
//! meaningful, not a per-program hash.

use crate::event::TraceEvent;
use crate::recorder::TraceLog;
use std::collections::BTreeSet;

/// Buckets a small count into `0`, `1`, `2` or `3+` — coarse enough to
/// saturate, fine enough to separate shallow from deep decisions.
fn depth_bucket(d: u32) -> &'static str {
    match d {
        0 => "0",
        1 => "1",
        2 => "2",
        _ => "3+",
    }
}

impl TraceEvent {
    /// The decision-space coverage features this event contributes, in
    /// deterministic order. Steady-state events that fire on every run
    /// regardless of program shape (sample ticks, trace walks, compiles,
    /// installs) contribute nothing: coverage measures *which decisions
    /// were reachable*, not how often the system ran.
    pub fn coverage_features(&self) -> Vec<String> {
        match self {
            // Pure heartbeat events — no decision taken.
            TraceEvent::SampleTick { dropped: false, .. }
            | TraceEvent::TraceWalk { .. }
            | TraceEvent::HotMethod { .. }
            | TraceEvent::Compile { .. }
            | TraceEvent::Install { .. } => Vec::new(),
            // A dropped sample is an injected decision path.
            TraceEvent::SampleTick { dropped: true, .. } => {
                vec!["profile:sample-dropped".to_string()]
            }
            TraceEvent::RecompilePlan { reason, .. } => {
                vec![format!("plan:{}", reason.label())]
            }
            TraceEvent::InlineDecision { guarded, provenance, .. } => vec![
                format!("inline:{}", if provenance.rule_fired { "rule-fired" } else { "no-rule" }),
                format!("inline:{}", if *guarded { "guarded" } else { "unguarded" }),
                format!("inline:depth:{}", depth_bucket(provenance.context_depth)),
            ],
            TraceEvent::InlineRefusal { reason, hot, provenance, .. } => vec![
                format!("refuse:{reason}"),
                format!("refuse:{}", if *hot { "hot" } else { "cold" }),
                format!("refuse:depth:{}", depth_bucket(provenance.context_depth)),
            ],
            TraceEvent::Invalidate { .. } => vec!["recovery:invalidate".to_string()],
            TraceEvent::Quarantine { .. } => vec!["recovery:quarantine".to_string()],
            TraceEvent::RetryScheduled { .. } => vec!["recovery:retry".to_string()],
            TraceEvent::TraceRejected => vec!["recovery:trace-rejected".to_string()],
            TraceEvent::GuardMiss { .. } => vec!["vm:guard-miss".to_string()],
            TraceEvent::OsrRequest { .. } => vec!["osr:request".to_string()],
            TraceEvent::OsrDeny { reason, .. } => vec![format!("osr:deny:{}", reason.label())],
            TraceEvent::OsrEnter { .. } => vec!["osr:enter".to_string()],
            TraceEvent::OsrExit { .. } => vec!["osr:exit".to_string()],
            TraceEvent::CompileEnqueue { .. } => vec!["async:enqueue".to_string()],
            TraceEvent::CompileDequeueStale { reason, .. } => {
                vec![format!("async:stale:{}", reason.label())]
            }
            TraceEvent::CompileQueueFull { evicted, .. } => {
                vec![format!("async:full:{}", if *evicted { "evicted" } else { "dropped" })]
            }
            TraceEvent::CompileStart { .. } => Vec::new(),
            TraceEvent::CompileFinish { overlap_cycles, stall_cycles, .. } => {
                let mut v = Vec::new();
                if *overlap_cycles > 0 {
                    v.push("async:overlap".to_string());
                }
                if *stall_cycles > 0 {
                    v.push("async:stall".to_string());
                }
                v
            }
            TraceEvent::FaultInjected { kind } => vec![format!("fault:{}", kind.label())],
            TraceEvent::VmFault { .. } => vec!["vm:fault".to_string()],
        }
    }
}

impl TraceLog {
    /// The run's decision-space fingerprint: the set of coverage features
    /// across every retained event. Deterministic (a `BTreeSet` of stable
    /// strings), so two bit-identical runs produce byte-identical
    /// fingerprints — the invariant the campaign's `AOCI_JOBS`
    /// reproducibility check rests on.
    pub fn coverage(&self) -> BTreeSet<String> {
        self.events.iter().flat_map(|r| r.event.coverage_features()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecisionProvenance, OsrDenyReason};
    use crate::recorder::Recorded;
    use aoci_ir::{CallSiteRef, MethodId, SiteIdx};

    fn log_of(events: Vec<TraceEvent>) -> TraceLog {
        let n = events.len() as u64;
        TraceLog {
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| Recorded { seq: i as u64, cycle: i as u64 * 10, event })
                .collect(),
            emitted: n,
            dropped: 0,
        }
    }

    #[test]
    fn heartbeat_events_contribute_nothing() {
        let log = log_of(vec![
            TraceEvent::SampleTick {
                tick: 1,
                method: MethodId::from_index(0),
                in_prologue: false,
                dropped: false,
            },
            TraceEvent::TraceWalk { callee: MethodId::from_index(1), depth: 3 },
            TraceEvent::HotMethod { method: MethodId::from_index(1), samples: 4 },
            TraceEvent::Compile {
                method: MethodId::from_index(1),
                generated_size: 10,
                inlines: 0,
                guarded: 0,
                cycles: 5,
            },
            TraceEvent::Install { method: MethodId::from_index(1), version_id: 1 },
        ]);
        assert!(log.coverage().is_empty());
    }

    #[test]
    fn decision_events_map_to_stable_features() {
        let site = CallSiteRef::new(MethodId::from_index(0), SiteIdx(0));
        let log = log_of(vec![
            TraceEvent::InlineDecision {
                host: MethodId::from_index(0),
                site,
                callee: MethodId::from_index(1),
                guarded: true,
                provenance: DecisionProvenance {
                    rule_fired: true,
                    context_depth: 5,
                    ..Default::default()
                },
            },
            TraceEvent::InlineRefusal {
                host: MethodId::from_index(0),
                site,
                callee: MethodId::from_index(2),
                reason: "recursive inline".to_string(),
                hot: true,
                provenance: DecisionProvenance::default(),
            },
            TraceEvent::OsrDeny {
                method: MethodId::from_index(0),
                reason: OsrDenyReason::Budget,
            },
        ]);
        let fp = log.coverage();
        for f in [
            "inline:rule-fired",
            "inline:guarded",
            "inline:depth:3+",
            "refuse:recursive inline",
            "refuse:hot",
            "refuse:depth:0",
            "osr:deny:recompile-budget",
        ] {
            assert!(fp.contains(f), "missing {f} in {fp:?}");
        }
        assert_eq!(fp.len(), 7);
    }

    #[test]
    fn fingerprint_is_a_set_not_a_count() {
        let e = TraceEvent::OsrEnter { method: MethodId::from_index(0), loop_header: 2 };
        let once = log_of(vec![e.clone()]);
        let thrice = log_of(vec![e.clone(), e.clone(), e]);
        assert_eq!(once.coverage(), thrice.coverage());
    }
}
