//! # aoci-trace — the flight recorder
//!
//! A fixed-capacity ring buffer of typed, deterministically-timestamped
//! events emitted from every layer of the adaptive optimization system:
//! sampler ticks and trace walks (profile), hot-method promotions and
//! recompilation plans (controller), per-candidate inlining decisions with
//! full provenance (optimizer), compile/install/invalidate/quarantine,
//! guard misses, OSR transitions, and injected faults.
//!
//! Three properties make the recorder usable inside the reproduction
//! sweeps:
//!
//! * **Deterministic timestamps.** Events carry the simulated-cycle clock,
//!   never wall-clock time, so two same-seed runs emit bit-identical event
//!   streams (asserted by the differential oracle).
//! * **Zero overhead when off.** Emit sites are a single
//!   `Option<TraceSink>` test, and recording charges no simulated cycles —
//!   a traced run produces exactly the metrics of an untraced one.
//! * **Bounded memory.** The ring keeps the last
//!   [`TraceConfig::capacity`] events, dropping the oldest; drop counts
//!   are reported so truncation is never silent.
//!
//! Three sinks consume the recorded [`TraceLog`]: a Chrome `trace_event`
//! JSON exporter ([`TraceLog::to_chrome_value`], loadable in
//! `chrome://tracing` or Perfetto), a human-readable `explain` filter
//! ([`TraceLog::explain`] — "why was method M (not) inlined at site C?"),
//! and the last-N-events dump ([`TraceSink::dump_last`]) the AOS attaches
//! to its recovery ledger whenever recovery or a VM fault fires.
//!
//! The fuzzing campaign reads a fourth view: the **decision-space coverage
//! fingerprint** ([`TraceLog::coverage`] over
//! [`TraceEvent::coverage_features`]) — the set of inlining rules fired,
//! refusal reasons, OSR and recovery paths a run exercised.

#![warn(missing_docs)]

mod coverage;
mod event;
mod recorder;
mod sinks;

pub use event::{DecisionProvenance, FaultKind, OsrDenyReason, PlanReason, StaleReason, TraceEvent};
pub use recorder::{FlightRecorder, Recorded, TraceConfig, TraceLog, TraceSink};
