//! The typed event vocabulary of the flight recorder.

use aoci_ir::{CallSiteRef, MethodId};
use aoci_json::Value;
use std::fmt::Write as _;

/// Resolves a [`MethodId`] to a human-readable name (the trace crate has no
/// access to the program; the embedding layer passes a closure over it).
pub type Resolve<'a> = &'a dyn Fn(MethodId) -> String;

/// First Chrome `tid` used for per-worker compile lanes: worker `k` renders
/// in lane `WORKER_LANE_BASE + k`, above the six fixed category lanes.
pub(crate) const WORKER_LANE_BASE: u32 = 10;

/// Why the controller created a recompilation plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanReason {
    /// The hot-methods organizer promoted the method past the sample
    /// threshold.
    HotMethod,
    /// The missing-edge organizer found a hot, uninlined, unrefused rule
    /// realizable by recompiling this host.
    MissingEdge,
    /// A failed compilation's backoff deadline expired.
    Retry,
    /// A hot baseline loop requested on-stack promotion.
    OsrPromotion,
}

impl PlanReason {
    /// Short stable label (used by both sinks).
    pub fn label(self) -> &'static str {
        match self {
            PlanReason::HotMethod => "hot-method",
            PlanReason::MissingEdge => "missing-edge",
            PlanReason::Retry => "retry",
            PlanReason::OsrPromotion => "osr-promotion",
        }
    }
}

/// Why a queued background-compilation plan was judged stale and dropped
/// (at dequeue, or — for an in-flight compile — at completion).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaleReason {
    /// The method was quarantined while the plan waited.
    Quarantined,
    /// The method was recompiled through another path (e.g. an on-the-spot
    /// OSR promotion) while the plan waited or the compile ran.
    Recompiled,
    /// The method no longer satisfies the hot-method criterion that
    /// motivated the plan.
    NoLongerHot,
}

impl StaleReason {
    /// Short stable label (used by both sinks).
    pub fn label(self) -> &'static str {
        match self {
            StaleReason::Quarantined => "quarantined",
            StaleReason::Recompiled => "already-recompiled",
            StaleReason::NoLongerHot => "no-longer-hot",
        }
    }
}

/// Why the driver denied an OSR promotion request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsrDenyReason {
    /// The method is quarantined from optimizing compilation.
    Quarantined,
    /// The method's recompile budget is exhausted.
    Budget,
    /// The optimized body keeps no OSR entry point at the requested loop
    /// header.
    NoEntryPoint,
    /// The on-the-spot compilation faulted (injected failure).
    CompileFault,
}

impl OsrDenyReason {
    /// Short stable label (used by both sinks).
    pub fn label(self) -> &'static str {
        match self {
            OsrDenyReason::Quarantined => "quarantined",
            OsrDenyReason::Budget => "recompile-budget",
            OsrDenyReason::NoEntryPoint => "no-entry-point",
            OsrDenyReason::CompileFault => "compile-fault",
        }
    }
}

/// The injected-fault kinds the adversary can deliver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A compilation aborted partway through.
    CompileBailout,
    /// A compilation completed but was rejected as oversized.
    CompileOversize,
    /// A drained profile trace was corrupted before sanitization.
    CorruptTrace,
    /// A timer sample's payload was lost before the listeners.
    DroppedSample,
    /// A burst of synthetic guard misses against an optimized method.
    ReceiverBurst,
}

impl FaultKind {
    /// Short stable label (used by both sinks).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CompileBailout => "compile-bailout",
            FaultKind::CompileOversize => "compile-oversize",
            FaultKind::CorruptTrace => "corrupt-trace",
            FaultKind::DroppedSample => "dropped-sample",
            FaultKind::ReceiverBurst => "receiver-burst",
        }
    }
}

/// The facts the inliner weighed at one call-site decision — the
/// provenance attached to every inline decision and refusal, recorded by
/// `aoci-opt` and carried into the flight recorder unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecisionProvenance {
    /// Whether a profile-derived inlining rule supported this edge in the
    /// compilation context presented to the oracle.
    pub rule_fired: bool,
    /// Aggregate profile weight backing the prediction (0 when no rule
    /// fired).
    pub predicted_benefit: f64,
    /// Inline depth at the decision point (0 = a call site in the root
    /// body).
    pub context_depth: u32,
    /// Abstract code size already emitted when the decision was taken.
    pub size_before: u32,
    /// The hard code-expansion budget the compilation ran under.
    pub size_budget: u32,
}

/// One flight-recorder event. Every variant is timestamped by the ring
/// buffer with the simulated-cycle clock at emission.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A timer sample was taken (`dropped` when injected sampler dropout
    /// discarded its payload before the listeners).
    SampleTick {
        /// Running sample count (1-based).
        tick: u64,
        /// The sampled (machine-level) root method.
        method: MethodId,
        /// Whether the sample landed in a method prologue.
        in_prologue: bool,
        /// Whether the payload was lost to injected sampler dropout.
        dropped: bool,
    },
    /// The trace listener recorded a context-sensitive call trace.
    TraceWalk {
        /// The sampled callee the trace starts from.
        callee: MethodId,
        /// Stack frames walked (callee + caller levels collected).
        depth: u32,
    },
    /// A method crossed the hotness threshold in the hot-methods organizer.
    HotMethod {
        /// The newly hot method.
        method: MethodId,
        /// Its accumulated method-listener samples.
        samples: u32,
    },
    /// The controller created a recompilation plan.
    RecompilePlan {
        /// The method to be (re)compiled.
        method: MethodId,
        /// Which organizer/path requested it.
        reason: PlanReason,
    },
    /// The optimizing compiler inlined a callee.
    InlineDecision {
        /// The method whose compilation made the decision.
        host: MethodId,
        /// The source-level call site.
        site: CallSiteRef,
        /// The inlined callee.
        callee: MethodId,
        /// Whether a method-test guard protects the inlined body.
        guarded: bool,
        /// Why: the inputs the inliner weighed.
        provenance: DecisionProvenance,
    },
    /// The optimizing compiler declined an inlining opportunity.
    InlineRefusal {
        /// The method whose compilation made the decision.
        host: MethodId,
        /// The source-level call site.
        site: CallSiteRef,
        /// The callee that was not inlined.
        callee: MethodId,
        /// The refusal reason, as rendered by `aoci-opt`.
        reason: String,
        /// Whether the profile supported inlining this edge.
        hot: bool,
        /// The inputs the inliner weighed.
        provenance: DecisionProvenance,
    },
    /// An optimizing compilation completed.
    Compile {
        /// The compiled method.
        method: MethodId,
        /// Abstract size of the generated code.
        generated_size: u32,
        /// Inlinings performed.
        inlines: u32,
        /// Of which guarded.
        guarded: u32,
        /// Simulated cycles charged to the compilation thread.
        cycles: u64,
    },
    /// An optimized version was installed in the code registry.
    Install {
        /// The method whose slot was filled.
        method: MethodId,
        /// The registry-assigned version id.
        version_id: u32,
    },
    /// An optimized version was invalidated for guard thrash.
    Invalidate {
        /// The method falling back to baseline.
        method: MethodId,
    },
    /// A method was quarantined from optimizing compilation.
    Quarantine {
        /// The blocked method.
        method: MethodId,
    },
    /// A failed compilation was scheduled for retry after backoff.
    RetryScheduled {
        /// The method awaiting retry.
        method: MethodId,
        /// The simulated cycle at which the retry becomes due.
        due_cycle: u64,
    },
    /// A profile trace was rejected by sanitization at the store boundary.
    TraceRejected,
    /// An inline guard missed into its fallback path.
    GuardMiss {
        /// The compiled host method executing the guard.
        method: MethodId,
        /// The pc of the guard in the optimized body.
        pc: u32,
    },
    /// A hot baseline loop requested on-stack promotion.
    OsrRequest {
        /// The method whose activation is hot.
        method: MethodId,
        /// The loop header (source pc) the activation is parked on.
        loop_header: u32,
    },
    /// The driver denied an OSR promotion request.
    OsrDeny {
        /// The method whose request was denied.
        method: MethodId,
        /// Why.
        reason: OsrDenyReason,
    },
    /// OSR-in: a baseline activation was promoted into optimized code.
    OsrEnter {
        /// The promoted method.
        method: MethodId,
        /// The loop header the transfer happened at.
        loop_header: u32,
    },
    /// OSR-out: an optimized activation deoptimized back to baseline.
    OsrExit {
        /// The deoptimized method.
        method: MethodId,
        /// The optimized pc the exit point mapped from.
        opt_pc: u32,
    },
    /// The controller inserted a plan into the background priority queue.
    CompileEnqueue {
        /// The method to be (re)compiled.
        method: MethodId,
        /// Which organizer/path requested it.
        reason: PlanReason,
        /// The predicted-benefit priority assigned at enqueue.
        priority: f64,
        /// Queue depth after insertion.
        queue_depth: u32,
    },
    /// A queued plan (or in-flight compile) was judged stale and dropped.
    CompileDequeueStale {
        /// The method whose plan was dropped.
        method: MethodId,
        /// Why the plan no longer applies.
        reason: StaleReason,
    },
    /// The bounded queue was full: the lowest-priority plan was dropped.
    CompileQueueFull {
        /// The method whose plan was dropped.
        method: MethodId,
        /// `true` when a resident plan was evicted in favour of a
        /// higher-priority arrival; `false` when the arrival itself was
        /// dropped.
        evicted: bool,
    },
    /// A background worker started executing a compilation plan.
    CompileStart {
        /// The method being compiled.
        method: MethodId,
        /// The simulated worker lane executing the plan.
        worker: u32,
        /// Compile-cycle cost the plan will take on the virtual clock.
        cost: u64,
    },
    /// A background worker finished a compilation plan.
    CompileFinish {
        /// The compiled method.
        method: MethodId,
        /// The simulated worker lane that executed the plan.
        worker: u32,
        /// Compile cycles that overlapped application execution (charged
        /// nowhere: the app kept running).
        overlap_cycles: u64,
        /// Compile cycles the application had to stall for (charged to the
        /// compilation thread).
        stall_cycles: u64,
    },
    /// The fault injector delivered a fault.
    FaultInjected {
        /// What was injected.
        kind: FaultKind,
    },
    /// The VM raised an execution fault (the run is about to abort).
    VmFault {
        /// The rendered `VmError`.
        message: String,
    },
}

impl TraceEvent {
    /// Stable event-type name (the Chrome `name` field; also the first
    /// token of the rendered line).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SampleTick { .. } => "sample-tick",
            TraceEvent::TraceWalk { .. } => "trace-walk",
            TraceEvent::HotMethod { .. } => "hot-method",
            TraceEvent::RecompilePlan { .. } => "recompile-plan",
            TraceEvent::InlineDecision { .. } => "inline-decision",
            TraceEvent::InlineRefusal { .. } => "inline-refusal",
            TraceEvent::Compile { .. } => "compile",
            TraceEvent::Install { .. } => "install",
            TraceEvent::Invalidate { .. } => "invalidate",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::RetryScheduled { .. } => "retry-scheduled",
            TraceEvent::TraceRejected => "trace-rejected",
            TraceEvent::GuardMiss { .. } => "guard-miss",
            TraceEvent::OsrRequest { .. } => "osr-request",
            TraceEvent::OsrDeny { .. } => "osr-deny",
            TraceEvent::OsrEnter { .. } => "osr-enter",
            TraceEvent::OsrExit { .. } => "osr-exit",
            TraceEvent::CompileEnqueue { .. } => "compile-enqueue",
            TraceEvent::CompileDequeueStale { .. } => "dequeue-stale-drop",
            TraceEvent::CompileQueueFull { .. } => "queue-full-drop",
            TraceEvent::CompileStart { .. } => "compile-start",
            TraceEvent::CompileFinish { .. } => "compile-finish",
            TraceEvent::FaultInjected { .. } => "fault-injected",
            TraceEvent::VmFault { .. } => "vm-fault",
        }
    }

    /// The emitting layer (the Chrome `cat` field and lane name).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::SampleTick { .. } | TraceEvent::TraceWalk { .. } => "profile",
            TraceEvent::HotMethod { .. }
            | TraceEvent::RecompilePlan { .. }
            | TraceEvent::CompileEnqueue { .. }
            | TraceEvent::CompileDequeueStale { .. }
            | TraceEvent::CompileQueueFull { .. } => "controller",
            TraceEvent::InlineDecision { .. }
            | TraceEvent::InlineRefusal { .. }
            | TraceEvent::Compile { .. }
            | TraceEvent::Install { .. }
            | TraceEvent::CompileStart { .. }
            | TraceEvent::CompileFinish { .. } => "compiler",
            TraceEvent::GuardMiss { .. } | TraceEvent::VmFault { .. } => "vm",
            TraceEvent::OsrRequest { .. }
            | TraceEvent::OsrDeny { .. }
            | TraceEvent::OsrEnter { .. }
            | TraceEvent::OsrExit { .. } => "osr",
            TraceEvent::Invalidate { .. }
            | TraceEvent::Quarantine { .. }
            | TraceEvent::RetryScheduled { .. }
            | TraceEvent::TraceRejected
            | TraceEvent::FaultInjected { .. } => "recovery",
        }
    }

    /// The Chrome lane (`tid`) of this event's category. Lanes and their
    /// metadata names are listed in [`crate::recorder::TraceLog::to_chrome_value`].
    /// Worker start/finish events get one lane *per simulated compile
    /// worker* (tid `10 + worker`), so overlapping background compiles
    /// render side by side instead of stacking.
    pub(crate) fn tid(&self) -> u32 {
        if let TraceEvent::CompileStart { worker, .. } | TraceEvent::CompileFinish { worker, .. } =
            self
        {
            return WORKER_LANE_BASE + worker;
        }
        match self.category() {
            "profile" => 1,
            "controller" => 2,
            "compiler" => 3,
            "vm" => 4,
            "osr" => 5,
            _ => 6, // recovery
        }
    }

    /// The event's payload as deterministic key/value pairs — the Chrome
    /// `args` object, and the `key=value` tokens of the rendered line.
    pub fn args(&self, resolve: Resolve) -> Vec<(&'static str, Value)> {
        fn m(resolve: Resolve, id: MethodId) -> Value {
            Value::from(resolve(id))
        }
        fn prov(p: &DecisionProvenance) -> Vec<(&'static str, Value)> {
            vec![
                ("rule_fired", Value::Bool(p.rule_fired)),
                ("predicted_benefit", Value::from(p.predicted_benefit)),
                ("context_depth", Value::from(p.context_depth)),
                ("size_before", Value::from(p.size_before)),
                ("size_budget", Value::from(p.size_budget)),
            ]
        }
        match self {
            TraceEvent::SampleTick { tick, method, in_prologue, dropped } => vec![
                ("tick", Value::from(*tick)),
                ("method", m(resolve, *method)),
                ("in_prologue", Value::Bool(*in_prologue)),
                ("dropped", Value::Bool(*dropped)),
            ],
            TraceEvent::TraceWalk { callee, depth } => vec![
                ("callee", m(resolve, *callee)),
                ("depth", Value::from(*depth)),
            ],
            TraceEvent::HotMethod { method, samples } => vec![
                ("method", m(resolve, *method)),
                ("samples", Value::from(*samples)),
            ],
            TraceEvent::RecompilePlan { method, reason } => vec![
                ("method", m(resolve, *method)),
                ("reason", Value::from(reason.label())),
            ],
            TraceEvent::InlineDecision { host, site, callee, guarded, provenance } => {
                let mut v = vec![
                    ("host", m(resolve, *host)),
                    ("site", Value::from(site.to_string())),
                    ("callee", m(resolve, *callee)),
                    ("inlined", Value::Bool(true)),
                    ("guarded", Value::Bool(*guarded)),
                ];
                v.extend(prov(provenance));
                v
            }
            TraceEvent::InlineRefusal { host, site, callee, reason, hot, provenance } => {
                let mut v = vec![
                    ("host", m(resolve, *host)),
                    ("site", Value::from(site.to_string())),
                    ("callee", m(resolve, *callee)),
                    ("inlined", Value::Bool(false)),
                    ("reason", Value::from(reason.clone())),
                    ("hot", Value::Bool(*hot)),
                ];
                v.extend(prov(provenance));
                v
            }
            TraceEvent::Compile { method, generated_size, inlines, guarded, cycles } => vec![
                ("method", m(resolve, *method)),
                ("generated_size", Value::from(*generated_size)),
                ("inlines", Value::from(*inlines)),
                ("guarded", Value::from(*guarded)),
                ("cycles", Value::from(*cycles)),
            ],
            TraceEvent::Install { method, version_id } => vec![
                ("method", m(resolve, *method)),
                ("version_id", Value::from(*version_id)),
            ],
            TraceEvent::Invalidate { method } => vec![("method", m(resolve, *method))],
            TraceEvent::Quarantine { method } => vec![("method", m(resolve, *method))],
            TraceEvent::RetryScheduled { method, due_cycle } => vec![
                ("method", m(resolve, *method)),
                ("due_cycle", Value::from(*due_cycle)),
            ],
            TraceEvent::TraceRejected => vec![],
            TraceEvent::GuardMiss { method, pc } => vec![
                ("method", m(resolve, *method)),
                ("pc", Value::from(*pc)),
            ],
            TraceEvent::OsrRequest { method, loop_header } => vec![
                ("method", m(resolve, *method)),
                ("loop_header", Value::from(*loop_header)),
            ],
            TraceEvent::OsrDeny { method, reason } => vec![
                ("method", m(resolve, *method)),
                ("reason", Value::from(reason.label())),
            ],
            TraceEvent::OsrEnter { method, loop_header } => vec![
                ("method", m(resolve, *method)),
                ("loop_header", Value::from(*loop_header)),
            ],
            TraceEvent::OsrExit { method, opt_pc } => vec![
                ("method", m(resolve, *method)),
                ("opt_pc", Value::from(*opt_pc)),
            ],
            TraceEvent::CompileEnqueue { method, reason, priority, queue_depth } => vec![
                ("method", m(resolve, *method)),
                ("reason", Value::from(reason.label())),
                ("priority", Value::from(*priority)),
                ("queue_depth", Value::from(*queue_depth)),
            ],
            TraceEvent::CompileDequeueStale { method, reason } => vec![
                ("method", m(resolve, *method)),
                ("reason", Value::from(reason.label())),
            ],
            TraceEvent::CompileQueueFull { method, evicted } => vec![
                ("method", m(resolve, *method)),
                ("evicted", Value::Bool(*evicted)),
            ],
            TraceEvent::CompileStart { method, worker, cost } => vec![
                ("method", m(resolve, *method)),
                ("worker", Value::from(*worker)),
                ("cost", Value::from(*cost)),
            ],
            TraceEvent::CompileFinish { method, worker, overlap_cycles, stall_cycles } => vec![
                ("method", m(resolve, *method)),
                ("worker", Value::from(*worker)),
                ("overlap_cycles", Value::from(*overlap_cycles)),
                ("stall_cycles", Value::from(*stall_cycles)),
            ],
            TraceEvent::FaultInjected { kind } => vec![("kind", Value::from(kind.label()))],
            TraceEvent::VmFault { message } => vec![("message", Value::from(message.clone()))],
        }
    }

    /// Renders the event as one deterministic human-readable line:
    /// `kind key=value key=value …`.
    pub fn render(&self, resolve: Resolve) -> String {
        let mut line = self.kind().to_string();
        for (key, value) in self.args(resolve) {
            let _ = write!(line, " {key}={}", aoci_json::to_string(&value));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::SiteIdx;

    fn resolve(m: MethodId) -> String {
        format!("M{}", m.index())
    }

    #[test]
    fn kinds_are_distinct_and_stable() {
        let site = CallSiteRef::new(MethodId::from_index(0), SiteIdx(1));
        let events = [
            TraceEvent::SampleTick {
                tick: 1,
                method: MethodId::from_index(0),
                in_prologue: true,
                dropped: false,
            },
            TraceEvent::TraceWalk { callee: MethodId::from_index(1), depth: 2 },
            TraceEvent::HotMethod { method: MethodId::from_index(1), samples: 3 },
            TraceEvent::RecompilePlan {
                method: MethodId::from_index(1),
                reason: PlanReason::HotMethod,
            },
            TraceEvent::InlineDecision {
                host: MethodId::from_index(1),
                site,
                callee: MethodId::from_index(2),
                guarded: true,
                provenance: DecisionProvenance::default(),
            },
            TraceEvent::InlineRefusal {
                host: MethodId::from_index(1),
                site,
                callee: MethodId::from_index(2),
                reason: "callee too large".to_string(),
                hot: true,
                provenance: DecisionProvenance::default(),
            },
            TraceEvent::Compile {
                method: MethodId::from_index(1),
                generated_size: 10,
                inlines: 1,
                guarded: 0,
                cycles: 99,
            },
            TraceEvent::Install { method: MethodId::from_index(1), version_id: 7 },
            TraceEvent::GuardMiss { method: MethodId::from_index(1), pc: 5 },
            TraceEvent::OsrEnter { method: MethodId::from_index(1), loop_header: 0 },
            TraceEvent::FaultInjected { kind: FaultKind::CorruptTrace },
            TraceEvent::VmFault { message: "boom".to_string() },
            TraceEvent::CompileEnqueue {
                method: MethodId::from_index(1),
                reason: PlanReason::HotMethod,
                priority: 12.5,
                queue_depth: 2,
            },
            TraceEvent::CompileDequeueStale {
                method: MethodId::from_index(1),
                reason: StaleReason::NoLongerHot,
            },
            TraceEvent::CompileQueueFull { method: MethodId::from_index(2), evicted: false },
            TraceEvent::CompileStart { method: MethodId::from_index(1), worker: 0, cost: 400 },
            TraceEvent::CompileFinish {
                method: MethodId::from_index(1),
                worker: 0,
                overlap_cycles: 300,
                stall_cycles: 100,
            },
        ];
        let kinds: std::collections::BTreeSet<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), events.len(), "kind strings must be distinct");
        assert!(kinds.contains("inline-decision"));
        assert!(kinds.contains("sample-tick"));
    }

    #[test]
    fn render_carries_provenance() {
        let e = TraceEvent::InlineDecision {
            host: MethodId::from_index(4),
            site: CallSiteRef::new(MethodId::from_index(4), SiteIdx(3)),
            callee: MethodId::from_index(9),
            guarded: false,
            provenance: DecisionProvenance {
                rule_fired: true,
                predicted_benefit: 2.5,
                context_depth: 1,
                size_before: 120,
                size_budget: 960,
            },
        };
        let line = e.render(&resolve);
        assert!(line.starts_with("inline-decision "), "{line}");
        assert!(line.contains("host=\"M4\""), "{line}");
        assert!(line.contains("rule_fired=true"), "{line}");
        assert!(line.contains("size_budget=960"), "{line}");
    }

    #[test]
    fn render_is_deterministic() {
        let e = TraceEvent::Compile {
            method: MethodId::from_index(2),
            generated_size: 64,
            inlines: 3,
            guarded: 1,
            cycles: 1234,
        };
        assert_eq!(e.render(&resolve), e.render(&resolve));
    }
}
