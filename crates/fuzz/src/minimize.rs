//! Field-by-field spec minimization: shrink a failing spec to the
//! smallest spec that still exhibits the finding.
//!
//! The algorithm is delta-debugging over [`FuzzSpec`] fields. Each step
//! proposes candidates that set one field to its floor or halfway toward
//! it (fractions additionally to zero), keeps only candidates that are
//! **strictly smaller** under [`measure`], and greedily accepts the first
//! candidate on which the caller's predicate still fails. Every accepted
//! step strictly decreases the measure — a non-negative integer — so
//! minimization terminates after at most `measure(spec)` acceptances, no
//! matter what the predicate does (the proptests pin both properties).

use aoci_workloads::FuzzSpec;

/// Size of a spec as one non-negative integer: the sum of every count
/// field plus each fraction scaled to an integer. Candidates produced by
/// [`shrink_candidates`] are strictly smaller under this measure.
pub fn measure(spec: &FuzzSpec) -> u64 {
    let s = spec.clone().normalized();
    let frac = |f: f64| (f * 1000.0).round() as u64;
    (s.layers
        + s.methods_per_layer
        + s.calls_per_method
        + s.families
        + s.impls_per_family
        + s.chain_depth
        + s.chain_override_stride
        + s.megamorphic_impls
        + s.top_sites) as u64
        + s.recursion_depth as u64
        + s.iterations as u64
        + frac(s.virtual_fraction)
        + frac(s.context_correlation)
        + frac(s.parameterless_fraction)
        + frac(s.instance_middle_fraction)
        + frac(s.unwind_fraction)
        + frac(s.tiny_fraction)
        + frac(s.huge_fraction)
}

/// Halfway step from `v` toward `floor` (strictly below `v` when
/// possible): the floor itself, then the midpoint.
fn toward(v: usize, floor: usize) -> Vec<usize> {
    if v <= floor {
        return Vec::new();
    }
    let mid = floor + (v - floor) / 2;
    let mut c = vec![floor];
    if mid > floor && mid < v {
        c.push(mid);
    }
    c
}

/// The shrink candidates of `spec`: for each field, the spec with that
/// field floored or halved, normalized, filtered to strictly smaller
/// measure. Deterministic order (field-major, floor before midpoint) so
/// minimization is reproducible.
pub fn shrink_candidates(spec: &FuzzSpec) -> Vec<FuzzSpec> {
    let s = spec.clone().normalized();
    let m = measure(&s);
    let mut out: Vec<FuzzSpec> = Vec::new();
    let mut push = |c: FuzzSpec| {
        let c = c.normalized();
        if measure(&c) < m && !out.contains(&c) {
            out.push(c);
        }
    };

    macro_rules! count_field {
        ($field:ident, $floor:expr) => {
            for v in toward(s.$field, $floor) {
                let mut c = s.clone();
                c.$field = v;
                push(c);
            }
        };
    }
    count_field!(layers, 1);
    count_field!(methods_per_layer, 1);
    count_field!(calls_per_method, 1);
    count_field!(families, 0);
    count_field!(impls_per_family, 2);
    count_field!(chain_depth, 0);
    count_field!(chain_override_stride, 1);
    count_field!(megamorphic_impls, 0);
    count_field!(top_sites, 1);
    for v in toward(s.recursion_depth as usize, 0) {
        let mut c = s.clone();
        c.recursion_depth = v as i64;
        push(c);
    }
    for v in toward(s.iterations as usize, 1) {
        let mut c = s.clone();
        c.iterations = v as i64;
        push(c);
    }

    macro_rules! fraction_field {
        ($field:ident) => {
            if s.$field > 0.0 {
                let mut c = s.clone();
                c.$field = 0.0;
                push(c);
                if s.$field >= 0.02 {
                    let mut c = s.clone();
                    c.$field = s.$field / 2.0;
                    push(c);
                }
            }
        };
    }
    fraction_field!(virtual_fraction);
    fraction_field!(context_correlation);
    fraction_field!(parameterless_fraction);
    fraction_field!(instance_middle_fraction);
    fraction_field!(unwind_fraction);
    fraction_field!(tiny_fraction);
    fraction_field!(huge_fraction);
    out
}

/// Greedy minimization: repeatedly accept the first candidate on which
/// `still_fails` returns `true`, until no candidate fails. Returns the
/// (normalized) smallest failing spec found. `still_fails(&result)` is
/// guaranteed `true` on return if it was `true` for `spec`.
pub fn minimize(spec: &FuzzSpec, still_fails: impl Fn(&FuzzSpec) -> bool) -> FuzzSpec {
    let mut current = spec.clone().normalized();
    'outer: loop {
        for candidate in shrink_candidates(&current) {
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_spec;

    #[test]
    fn candidates_are_strictly_smaller() {
        for i in 0..32 {
            let s = sample_spec(1, i);
            let m = measure(&s);
            for c in shrink_candidates(&s) {
                assert!(measure(&c) < m, "candidate {c:?} not smaller than {m}");
            }
        }
    }

    #[test]
    fn minimal_spec_has_no_candidates() {
        let floor = FuzzSpec::minimal("floor", 1);
        assert!(shrink_candidates(&floor).is_empty());
    }

    #[test]
    fn always_failing_predicate_reaches_the_floor() {
        let s = sample_spec(1, 3);
        let min = minimize(&s, |_| true);
        assert!(shrink_candidates(&min).is_empty(), "not fully minimized: {min:?}");
        assert_eq!(measure(&min), measure(&FuzzSpec::minimal("x", 0)));
    }

    #[test]
    fn never_failing_predicate_returns_the_spec_unchanged() {
        let s = sample_spec(1, 4);
        assert_eq!(minimize(&s, |_| false), s.clone().normalized());
    }

    #[test]
    fn minimize_homes_in_on_the_failing_field() {
        // Synthetic "bug": fails whenever the megamorphic family has > 6
        // implementations. Minimization must keep that property while
        // flooring everything else.
        let mut s = sample_spec(1, 5);
        s.megamorphic_impls = 14;
        let min = minimize(&s, |c| c.megamorphic_impls > 6);
        assert!(min.megamorphic_impls > 6);
        assert!(min.megamorphic_impls <= 8, "barely above threshold: {min:?}");
        assert_eq!(min.layers, 1);
        assert_eq!(min.iterations, 1);
        assert_eq!(min.virtual_fraction, 0.0);
    }
}
