//! Spec sampling: one [`FuzzSpec`] per campaign case, as a **pure
//! function of `(campaign_seed, case_index)`**.
//!
//! Purity is what makes the campaign deterministic at any `AOCI_JOBS`:
//! the pool may execute cases in any interleaving, but case `i` always
//! sees exactly the spec this module derives for `i`, so merging results
//! in index order reproduces the serial campaign byte for byte.

use aoci_workloads::FuzzSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The campaign-wide name of case `index` (also the regression-file stem).
pub fn case_name(index: usize) -> String {
    format!("fz{index:04}")
}

/// SplitMix64-style mix of the campaign seed and the case index into one
/// per-case RNG seed, so neighbouring indices get uncorrelated streams.
fn mix(campaign_seed: u64, index: usize) -> u64 {
    let mut z = campaign_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws the spec of campaign case `index`. Every optional shape is
/// enabled with independent probability, so the campaign visits programs
/// with any subset of {kernel families, deep chain, megamorphic family,
/// recursion} present; sizes stay small because each case runs a
/// 16-run differential matrix, not a benchmark.
pub fn sample_spec(campaign_seed: u64, index: usize) -> FuzzSpec {
    let mut rng = SmallRng::seed_from_u64(mix(campaign_seed, index));
    let mut spec = FuzzSpec::minimal(case_name(index), 0);
    // 53-bit inner seed: spec JSON persists numbers as f64, and 53 bits is
    // the exactly-representable range (persist.rs round-trips losslessly).
    spec.seed = rng.gen::<u64>() & ((1 << 53) - 1);
    spec.layers = rng.gen_range(1..=3usize);
    spec.methods_per_layer = rng.gen_range(1..=4usize);
    spec.calls_per_method = rng.gen_range(1..=3usize);
    spec.families = rng.gen_range(0..=2usize);
    spec.impls_per_family = rng.gen_range(2..=4usize);
    spec.chain_depth = if rng.gen_bool(0.5) { rng.gen_range(2..=10usize) } else { 0 };
    spec.chain_override_stride = rng.gen_range(1..=4usize);
    spec.megamorphic_impls = if rng.gen_bool(0.4) { rng.gen_range(4..=16usize) } else { 0 };
    spec.recursion_depth = if rng.gen_bool(0.5) { rng.gen_range(2..=12i64) } else { 0 };
    spec.virtual_fraction = rng.gen_range(0.0..1.0);
    spec.context_correlation = rng.gen_range(0.0..1.0);
    spec.parameterless_fraction = rng.gen_range(0.0..0.6);
    spec.instance_middle_fraction = rng.gen_range(0.0..0.6);
    spec.unwind_fraction = rng.gen_range(0.0..0.7);
    spec.tiny_fraction = rng.gen_range(0.0..0.5);
    spec.huge_fraction = rng.gen_range(0.0..0.3);
    spec.top_sites = rng.gen_range(1..=3usize);
    spec.iterations = rng.gen_range(40..=160i64);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        for index in [0, 1, 7, 199] {
            assert_eq!(sample_spec(1, index), sample_spec(1, index), "index {index}");
        }
        assert_ne!(sample_spec(1, 0), sample_spec(2, 0), "seed must matter");
        assert_ne!(sample_spec(1, 0), sample_spec(1, 1), "index must matter");
    }

    #[test]
    fn sampled_specs_are_buildable_and_in_range() {
        for index in 0..64 {
            let s = sample_spec(1, index);
            assert!(s.fractions_valid(), "index {index}: {s:?}");
            assert!(s.seed < (1 << 53), "seed must persist losslessly as f64");
            assert_eq!(s.name, case_name(index));
            aoci_workloads::build_fuzz(&s).expect("sampled spec builds");
        }
    }

    #[test]
    fn shapes_all_occur_within_a_small_prefix() {
        let specs: Vec<FuzzSpec> = (0..64).map(|i| sample_spec(1, i)).collect();
        assert!(specs.iter().any(|s| s.families > 0));
        assert!(specs.iter().any(|s| s.chain_depth > 0));
        assert!(specs.iter().any(|s| s.megamorphic_impls > 0));
        assert!(specs.iter().any(|s| s.recursion_depth > 0));
        assert!(specs.iter().any(|s| s.families == 0 && s.chain_depth == 0));
    }
}
