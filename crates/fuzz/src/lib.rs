//! # aoci-fuzz — coverage-guided differential fuzzing campaign
//!
//! The adaptive system's central robustness claim is that every opt-in
//! feature — policy choice, OSR, asynchronous compilation, chaos faults —
//! is *semantically invisible*: same program result as a baseline-only
//! interpreter, and bit-identical metrics on a same-seed rerun. The
//! differential oracle (`tests/tests/differential_oracle.rs`) earns that
//! claim on 8 curated workloads; this crate earns it **at scale** over
//! randomly generated programs (DESIGN.md §12).
//!
//! The pipeline, module by module:
//!
//! * [`sampler`] — draws a [`FuzzSpec`](aoci_workloads::FuzzSpec) as a
//!   pure function of `(campaign_seed, case_index)`, covering shapes the
//!   curated suite never reaches (deep inheritance chains, megamorphic
//!   sites, mutual recursion, unwind-style control flow, degenerate
//!   method sizes);
//! * [`oracle`] — runs one generated program through the full
//!   differential matrix: a baseline-only interpreter run is ground
//!   truth, then ±OSR × ±async × ±chaos under a per-case policy, each
//!   cell once traced and once untraced. Every cell must reproduce the
//!   oracle result and match its twin field-by-field (which
//!   simultaneously proves same-seed bit-identity *and* flight-recorder
//!   zero-overhead). Any violation — including a panic anywhere in
//!   aos/vm/opt — becomes a [`Finding`](oracle::Finding);
//! * [`oracle::CaseOutcome::fingerprint`] — the decision-space coverage
//!   set read from the flight recorder
//!   ([`TraceLog::coverage`](aoci_trace::TraceLog)); the campaign keeps a
//!   case in its corpus only if its fingerprint adds a feature no earlier
//!   case reached;
//! * [`minimize`] — shrinks a failing spec field-by-field to the smallest
//!   spec still exhibiting the finding (strictly monotone measure, so
//!   shrinking provably terminates);
//! * [`campaign`] — fans the case list over
//!   [`JobPool`](aoci_core::JobPool) (each case is a pure function of its
//!   index, results merged in index order, so the corpus is byte-identical
//!   at any `AOCI_JOBS`);
//! * [`persist`] — `FuzzSpec` ⇄ JSON, the `results/fuzz/corpus.json`
//!   fingerprint artifact, and replayable `regress-*.json` regression
//!   files consumed by the `fuzzck` bin.
//!
//! Two binaries: `fuzz` runs a campaign bounded by `AOCI_FUZZ_ITERS` /
//! `AOCI_FUZZ_SEED`; `fuzzck` replays every committed regression file.

#![warn(missing_docs)]

pub mod campaign;
pub mod minimize;
pub mod oracle;
pub mod persist;
pub mod sampler;

pub use campaign::{run_campaign, CampaignConfig, CampaignOutcome, MinimizedFinding};
pub use minimize::{measure, minimize, shrink_candidates};
pub use oracle::{
    run_case, run_case_caught, run_case_caught_with, run_case_with, run_case_with_decode,
    CaseOutcome, Finding,
};
pub use persist::{corpus_to_value, spec_from_value, spec_to_value, CorpusEntry, Regression};
pub use sampler::{case_name, sample_spec};
