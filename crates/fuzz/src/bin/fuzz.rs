use aoci_bench::env::EnvConfig;
use aoci_fuzz::persist::{corpus_to_value, Regression};
use aoci_fuzz::{run_campaign, CampaignConfig};
use aoci_telemetry::write_text;
use std::path::Path;

/// Runs a coverage-guided differential fuzzing campaign (DESIGN.md §12).
///
/// `AOCI_FUZZ_ITERS` generated programs (seeded by `AOCI_FUZZ_SEED`) each
/// run the full differential matrix — baseline oracle vs every
/// ±OSR × ±async × ±chaos cell, traced and untraced — fanned over the
/// `AOCI_JOBS` pool. Writes `{results_dir}/fuzz/corpus.json` (the
/// coverage fingerprint artifact CI compares against the committed copy)
/// and one `regress-{name}.json` per minimized finding. Exits 1 if any
/// case produced a finding. `AOCI_METRICS=1` turns the telemetry registry
/// on in every matrix cell; the corpus must stay byte-identical (the
/// registry charges zero simulated cycles), which CI asserts by diffing
/// the artifact across both settings.
fn main() {
    let env = EnvConfig::from_env();
    let cfg =
        CampaignConfig { seed: env.fuzz_seed, iters: env.fuzz_iters, metrics: env.metrics };
    let pool = env.pool();
    eprintln!(
        "fuzz: campaign seed={} iters={} workers={}",
        cfg.seed,
        cfg.iters,
        pool.workers()
    );

    let started = std::time::Instant::now();
    let out = run_campaign(&cfg, &pool);
    let wall = started.elapsed();

    let dir = Path::new(&env.results_dir).join("fuzz");

    let corpus_path = dir.join("corpus.json");
    let corpus = corpus_to_value(out.seed, cfg.iters, &out.corpus, &out.features);
    if let Err(e) = write_text(&corpus_path, &aoci_json::to_string_pretty(&corpus)) {
        eprintln!("fuzz: {e}");
        std::process::exit(1);
    }

    for f in &out.findings {
        let reg = Regression {
            spec: f.spec.clone(),
            kind: f.kind.clone(),
            detail: f.detail.clone(),
            status: "open".to_string(),
        };
        let path = dir.join(format!("regress-{}.json", f.spec.name));
        if let Err(e) = write_text(&path, &aoci_json::to_string_pretty(&reg.to_value())) {
            eprintln!("fuzz: {e}");
            std::process::exit(1);
        }
        eprintln!("fuzz: NEW FINDING [{}] case {} -> {}", f.kind, f.index, path.display());
        eprintln!("fuzz:   {}", f.detail);
    }

    eprintln!(
        "fuzz: {} cases in {:.2?}: {} corpus entries, {} coverage features, {} findings",
        out.cases.len(),
        wall,
        out.corpus.len(),
        out.features.len(),
        out.findings.len()
    );
    eprintln!("fuzz: corpus fingerprint -> {}", corpus_path.display());

    if !out.clean() {
        std::process::exit(1);
    }
}
