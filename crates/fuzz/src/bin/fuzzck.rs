use aoci_fuzz::oracle::run_case_caught;
use aoci_fuzz::persist::Regression;
use std::path::PathBuf;

/// Replays every committed fuzz regression (`regress-*.json`).
///
/// Usage: `fuzzck [dir]` (default `results/fuzz`). Each file holds a
/// minimized spec plus the finding it once exhibited and a triage status:
///
/// * `"fixed"` — the bug was resolved; the spec must now run **clean**.
///   Any reproduction of the original finding kind is a regression and
///   fails the check (exit 1).
/// * `"open"` — the bug is still being triaged; reproduction is reported
///   but tolerated, while *disappearance* is reported as a nudge to flip
///   the status to `fixed`.
///
/// A directory with no regression files passes vacuously — that is the
/// expected steady state.
fn main() {
    let dir = PathBuf::from(
        std::env::args().nth(1).unwrap_or_else(|| "results/fuzz".to_string()),
    );
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("regress-") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("fuzzck: cannot read {}: {e}", dir.display());
            std::process::exit(2);
        }
    };
    paths.sort();

    if paths.is_empty() {
        eprintln!("fuzzck: no regression files in {} — nothing to replay", dir.display());
        return;
    }

    let mut failures = 0usize;
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("fuzzck: cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        let value = aoci_json::parse(&text).unwrap_or_else(|e| {
            eprintln!("fuzzck: {} is not valid JSON: {e}", path.display());
            std::process::exit(2);
        });
        let Some(reg) = Regression::from_value(&value) else {
            eprintln!("fuzzck: {} is not a regression file", path.display());
            std::process::exit(2);
        };

        let outcome = run_case_caught(&reg.spec);
        let reproduced = outcome.findings.iter().find(|f| f.kind == reg.kind);
        match (reg.status.as_str(), reproduced) {
            ("fixed", None) => {
                eprintln!("fuzzck: ok       {} [{}] stays fixed", path.display(), reg.kind);
            }
            ("fixed", Some(f)) => {
                eprintln!(
                    "fuzzck: FAIL     {} [{}] reproduced on a fixed regression: {}",
                    path.display(),
                    reg.kind,
                    f.detail
                );
                failures += 1;
            }
            ("open", Some(_)) => {
                eprintln!(
                    "fuzzck: open     {} [{}] still reproduces (tracked)",
                    path.display(),
                    reg.kind
                );
            }
            ("open", None) => {
                eprintln!(
                    "fuzzck: note     {} [{}] no longer reproduces — flip status to \"fixed\"",
                    path.display(),
                    reg.kind
                );
            }
            (status, _) => {
                eprintln!("fuzzck: FAIL     {} has unknown status {status:?}", path.display());
                failures += 1;
            }
        }
    }

    eprintln!("fuzzck: {} regression file(s), {} failure(s)", paths.len(), failures);
    if failures > 0 {
        std::process::exit(1);
    }
}
