//! The campaign driver: fan the case list over the job pool, merge in
//! index order, grow the corpus coverage-first, minimize findings.
//!
//! Determinism argument, end to end: [`sample_spec`] is a pure function
//! of `(campaign_seed, index)`; [`run_case_caught`] is a pure function of
//! the spec (every `AosSystem` run owns its state and simulated clock);
//! [`JobPool::run`] returns outputs in job order regardless of worker
//! interleaving; and the corpus fold below walks that vector in index
//! order. Every campaign artifact — corpus entries, the feature set, the
//! findings list — is therefore byte-identical for any `AOCI_JOBS`.

use crate::minimize::minimize;
use crate::oracle::{run_case_caught, run_case_caught_with, CaseOutcome};
use crate::persist::CorpusEntry;
use crate::sampler::sample_spec;
use aoci_core::JobPool;
use aoci_workloads::FuzzSpec;
use std::collections::BTreeSet;

/// Campaign parameters (CLI binds these to `AOCI_FUZZ_SEED` /
/// `AOCI_FUZZ_ITERS`).
#[derive(Clone, Copy, Debug)]
pub struct CampaignConfig {
    /// Campaign seed; case `i` runs `sample_spec(seed, i)`.
    pub seed: u64,
    /// Number of generated programs.
    pub iters: usize,
    /// Run every matrix cell with the telemetry registry on
    /// (`AOCI_METRICS=1`). Must not change any campaign artifact — the
    /// registry charges zero simulated cycles, so corpus, features and
    /// findings stay byte-identical either way (`tests/tests/telemetry.rs`
    /// holds this at campaign scale).
    pub metrics: bool,
}

/// One finding after minimization: the original case, the smallest spec
/// that still reproduces the finding kind, and the finding as observed on
/// that minimized spec.
#[derive(Clone, Debug)]
pub struct MinimizedFinding {
    /// Index of the campaign case that first exhibited the finding.
    pub index: usize,
    /// Smallest spec still producing a finding of the same kind.
    pub spec: FuzzSpec,
    /// Stable finding tag (see [`crate::oracle::Finding`]).
    pub kind: String,
    /// Detail as reported on the minimized spec.
    pub detail: String,
}

/// Everything a campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// The campaign seed.
    pub seed: u64,
    /// Per-case outcomes, in index order.
    pub cases: Vec<CaseOutcome>,
    /// Cases whose fingerprint added new decision-space coverage.
    pub corpus: Vec<CorpusEntry>,
    /// Union of all case fingerprints.
    pub features: BTreeSet<String>,
    /// Minimized findings (empty on a clean campaign).
    pub findings: Vec<MinimizedFinding>,
}

impl CampaignOutcome {
    /// Whether every case ran clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Re-observes `spec` and returns the finding of kind `kind`, if the
/// spec still produces one — the minimization predicate.
fn finds_kind(spec: &FuzzSpec, kind: &str) -> Option<(String, String)> {
    run_case_caught(spec)
        .findings
        .into_iter()
        .find(|f| f.kind == kind)
        .map(|f| (f.kind, f.detail))
}

/// Runs a full campaign: `iters` cases over `pool`, corpus fold in index
/// order, then serial minimization of every finding (minimization re-runs
/// the matrix per shrink step, so it happens after the parallel sweep, on
/// the — normally empty — failing subset only).
pub fn run_campaign(cfg: &CampaignConfig, pool: &JobPool) -> CampaignOutcome {
    let jobs: Vec<usize> = (0..cfg.iters).collect();
    let (results, _stats) =
        pool.run(jobs, |&i| run_case_caught_with(&sample_spec(cfg.seed, i), cfg.metrics));
    let cases: Vec<CaseOutcome> = results.into_iter().map(|r| r.output).collect();

    let mut features: BTreeSet<String> = BTreeSet::new();
    let mut corpus: Vec<CorpusEntry> = Vec::new();
    let mut findings: Vec<MinimizedFinding> = Vec::new();

    for (index, case) in cases.iter().enumerate() {
        let new_features: Vec<String> = case
            .fingerprint
            .iter()
            .filter(|f| !features.contains(*f))
            .cloned()
            .collect();
        if !new_features.is_empty() {
            features.extend(new_features.iter().cloned());
            corpus.push(CorpusEntry { index, name: case.spec.name.clone(), new_features });
        }

        for finding in &case.findings {
            let kind = finding.kind.clone();
            let min_spec = minimize(&case.spec, |s| finds_kind(s, &kind).is_some());
            let (kind, detail) = finds_kind(&min_spec, &kind)
                .unwrap_or((kind, finding.detail.clone()));
            findings.push(MinimizedFinding { index, spec: min_spec, kind, detail });
        }
    }

    CampaignOutcome { seed: cfg.seed, cases, corpus, features, findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::corpus_to_value;

    fn tiny(seed: u64, iters: usize, workers: usize) -> CampaignOutcome {
        run_campaign(&CampaignConfig { seed, iters, metrics: false }, &JobPool::new(workers))
    }

    #[test]
    fn a_small_campaign_is_clean_and_covers_decisions() {
        let out = tiny(1, 6, 2);
        assert!(out.clean(), "findings: {:?}", out.findings);
        assert_eq!(out.cases.len(), 6);
        assert!(!out.corpus.is_empty());
        assert!(out.features.iter().any(|f| f.starts_with("inline:")), "{:?}", out.features);
    }

    #[test]
    fn corpus_is_identical_across_worker_counts() {
        let render = |out: &CampaignOutcome| {
            aoci_json::to_string_pretty(&corpus_to_value(out.seed, 6, &out.corpus, &out.features))
        };
        let serial = render(&tiny(42, 6, 1));
        let two = render(&tiny(42, 6, 2));
        let eight = render(&tiny(42, 6, 8));
        assert_eq!(serial, two);
        assert_eq!(serial, eight);
    }

    #[test]
    fn the_first_case_always_seeds_the_corpus() {
        let out = tiny(7, 3, 1);
        assert!(out.clean(), "findings: {:?}", out.findings);
        assert_eq!(out.corpus.first().map(|e| e.index), Some(0));
        let claimed: usize = out.corpus.iter().map(|e| e.new_features.len()).sum();
        assert_eq!(claimed, out.features.len(), "every feature claimed exactly once");
    }
}
