//! The per-case differential matrix: ground truth, equivalence checks,
//! and the coverage fingerprint.
//!
//! For one generated program the runner executes:
//!
//! 1. the **oracle** — a baseline-only interpreter (`sample_period: 0`):
//!    no sampling, no optimization, no OSR, semantics by construction;
//! 2. the **matrix** — ±OSR × ±async × ±chaos under the case's policy
//!    (the policy rotates with the spec seed so a 3× policy cross is not
//!    paid per case, yet the campaign as a whole covers all three). Each
//!    cell runs twice: once with the flight recorder on, once off.
//!
//! The traced run's metrics, with only the post-mortem
//! `recovery.trace_dump` scrubbed, must equal the untraced run's **field
//! by field** — one comparison that simultaneously asserts same-seed
//! bit-identity and the recorder's zero-overhead guarantee. Every cell
//! must also reproduce the oracle's program result, and a cell with OSR
//! off must report zero OSR events. Violations become [`Finding`]s; the
//! union of the traced runs' coverage sets becomes the case fingerprint.

use aoci_aos::{AosConfig, AosReport, AosSystem, FaultConfig, OsrEvents, TraceConfig};
use aoci_core::PolicyKind;
use aoci_vm::{CostModel, Value, Vm, VmConfig, COMPONENTS};
use aoci_workloads::{build_fuzz, FuzzSpec};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The three inliner policies the campaign rotates through.
pub const ALL_POLICIES: [PolicyKind; 3] = [
    PolicyKind::ContextInsensitive,
    PolicyKind::Fixed { max: 3 },
    PolicyKind::AdaptiveResolving { max: 3 },
];

/// One rule violation observed while running a case. `kind` is a stable
/// machine-readable tag (regression files key on it); `detail` is the
/// human-readable story.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable tag: `generator-error`, `typecheck-error`, `oracle-vm-error`,
    /// `adaptive-vm-error`, `oracle-divergence`, `rerun-divergence`,
    /// `osr-while-disabled`, or `panic`.
    pub kind: String,
    /// Human-readable description (config cell, field, values).
    pub detail: String,
}

impl Finding {
    fn new(kind: &str, detail: impl Into<String>) -> Self {
        Finding { kind: kind.to_string(), detail: detail.into() }
    }
}

/// Everything one case produced: the spec it ran, the decision-space
/// coverage fingerprint of its traced runs, and any findings.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// The spec as given (un-normalized; replay normalizes identically).
    pub spec: FuzzSpec,
    /// Union of the traced runs' coverage features.
    pub fingerprint: BTreeSet<String>,
    /// Violations, empty on a clean case.
    pub findings: Vec<Finding>,
}

impl CaseOutcome {
    /// Whether the case violated no rule.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The policy a spec's matrix runs under (rotates with the seed).
pub fn policy_for(spec: &FuzzSpec) -> PolicyKind {
    ALL_POLICIES[(spec.seed % ALL_POLICIES.len() as u64) as usize]
}

/// One adaptive configuration of the matrix — the differential-oracle
/// idiom: a prime sample period avoids aliasing against fixed loop costs,
/// low thresholds let short fuzz programs exercise promotion and OSR, and
/// guard monitoring is always on so megamorphic thrash reaches the
/// recovery paths.
fn config(
    policy: PolicyKind,
    osr: bool,
    async_on: bool,
    fault: Option<FaultConfig>,
    traced: bool,
    decode: bool,
    metrics: bool,
) -> AosConfig {
    let mut c = AosConfig::new(policy).enable_guard_monitoring();
    if osr {
        c = c.enable_osr();
    }
    if async_on {
        c = c.enable_async_compile();
    }
    if metrics {
        c = c.enable_metrics();
    }
    if let Some(f) = fault {
        c = c.enable_faults(f);
    }
    if traced {
        c = c.enable_trace_with(TraceConfig::default());
    }
    c.cost = CostModel { sample_period: 2_003, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.vm.osr_backedge_threshold = 48;
    c.vm.decode = decode;
    c
}

/// The ±OSR × ±async × ±chaos cells, in canonical (OSR-major) order. The
/// chaos seed is the spec seed, so fault schedules vary across the
/// campaign but are fixed per case.
fn cells(seed: u64) -> Vec<(bool, bool, Option<FaultConfig>)> {
    let mut m = Vec::new();
    for osr in [false, true] {
        for async_on in [false, true] {
            for fault in [None, Some(FaultConfig::chaos(seed))] {
                m.push((osr, async_on, fault));
            }
        }
    }
    m
}

/// First field on which two same-configuration runs disagree, if any —
/// the non-panicking mirror of the differential oracle's
/// `assert_identical`.
fn diff_reports(a: &AosReport, b: &AosReport) -> Option<String> {
    if a.result != b.result {
        return Some(format!("result: {:?} vs {:?}", a.result, b.result));
    }
    for c in COMPONENTS {
        if a.clock.component(c) != b.clock.component(c) {
            return Some(format!(
                "clock[{c}]: {} vs {}",
                a.clock.component(c),
                b.clock.component(c)
            ));
        }
    }
    if a.samples != b.samples {
        return Some(format!("samples: {} vs {}", a.samples, b.samples));
    }
    if a.counters != b.counters {
        return Some(format!("counters: {:?} vs {:?}", a.counters, b.counters));
    }
    if a.osr != b.osr {
        return Some(format!("osr: {:?} vs {:?}", a.osr, b.osr));
    }
    if a.recovery != b.recovery {
        return Some(format!("recovery: {:?} vs {:?}", a.recovery, b.recovery));
    }
    if a.async_compile != b.async_compile {
        return Some(format!("async: {:?} vs {:?}", a.async_compile, b.async_compile));
    }
    if a.opt_compilations != b.opt_compilations {
        return Some(format!("opt_compilations: {} vs {}", a.opt_compilations, b.opt_compilations));
    }
    if a.optimized_code_size != b.optimized_code_size {
        return Some(format!(
            "optimized_code_size: {} vs {}",
            a.optimized_code_size, b.optimized_code_size
        ));
    }
    if a.dcg_entries != b.dcg_entries {
        return Some(format!("dcg_entries: {} vs {}", a.dcg_entries, b.dcg_entries));
    }
    if a.final_rules != b.final_rules {
        return Some(format!("final_rules: {} vs {}", a.final_rules, b.final_rules));
    }
    None
}

/// Runs the full differential matrix for `spec`. Never panics on rule
/// violations — they come back as findings; panics from the system under
/// test are the caller's concern (see [`run_case_caught`]).
pub fn run_case(spec: &FuzzSpec) -> CaseOutcome {
    run_case_with_decode(spec, true)
}

/// [`run_case`] with an explicit dispatch selection: `decode: false` runs
/// the oracle VM *and* every matrix cell through the legacy `match` loop.
/// The dispatch-equivalence suite drives both halves and asserts identical
/// outcomes and fingerprints — the decoded interpreter must be invisible
/// to every observable the campaign checks.
pub fn run_case_with_decode(spec: &FuzzSpec, decode: bool) -> CaseOutcome {
    run_case_with(spec, decode, false)
}

/// [`run_case_with_decode`] with the telemetry registry optionally on in
/// every matrix cell. Since the oracle compares runs field-by-field and
/// the registry charges zero simulated cycles, `metrics: true` must
/// produce the exact same outcome (fingerprint *and* findings) as
/// `metrics: false` — the campaign-scale form of the PR-3 invariant,
/// asserted by `tests/tests/telemetry.rs`.
pub fn run_case_with(spec: &FuzzSpec, decode: bool, metrics: bool) -> CaseOutcome {
    let mut out =
        CaseOutcome { spec: spec.clone(), fingerprint: BTreeSet::new(), findings: Vec::new() };

    let program = match build_fuzz(spec) {
        Ok(w) => w.program,
        Err(e) => {
            out.findings.push(Finding::new("generator-error", format!("{e:?}")));
            return out;
        }
    };
    if let Err(e) = aoci_ir::typecheck::verify(&program) {
        out.findings.push(Finding::new("typecheck-error", format!("{e:?}")));
        return out;
    }

    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let vm_config = VmConfig { decode, ..VmConfig::default() };
    let expected: Option<Value> = match Vm::with_config(&program, cost, vm_config)
        .run_to_completion()
    {
        Ok(r) => r,
        Err(e) => {
            out.findings.push(Finding::new("oracle-vm-error", format!("{e}")));
            return out;
        }
    };

    let policy = policy_for(spec);
    for (osr, async_on, fault) in cells(spec.seed) {
        let what = format!(
            "{}/{policy}/osr={osr}/async={async_on}/chaos={}",
            spec.name,
            fault.is_some()
        );
        let traced = AosSystem::new(
            &program,
            config(policy, osr, async_on, fault.clone(), true, decode, metrics),
        )
        .run();
        let untraced = AosSystem::new(
            &program,
            config(policy, osr, async_on, fault.clone(), false, decode, metrics),
        )
        .run();
        let (a, b) = match (traced, untraced) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                out.findings.push(Finding::new(
                    "adaptive-vm-error",
                    format!("{what}: adaptive run faulted: {e}"),
                ));
                continue;
            }
        };

        if let Some(log) = &a.trace_log {
            out.fingerprint.extend(log.coverage());
        }
        if a.result != expected {
            out.findings.push(Finding::new(
                "oracle-divergence",
                format!("{what}: result {:?} differs from oracle {:?}", a.result, expected),
            ));
        }
        // Traced vs untraced, post-mortem dump scrubbed: one comparison
        // proving same-seed bit-identity AND recorder zero-overhead.
        let mut scrubbed = a.clone();
        scrubbed.recovery.trace_dump.clear();
        if let Some(field) = diff_reports(&scrubbed, &b) {
            out.findings
                .push(Finding::new("rerun-divergence", format!("{what}: {field}")));
        }
        if !osr && a.osr != OsrEvents::default() {
            out.findings.push(Finding::new(
                "osr-while-disabled",
                format!("{what}: OSR events {:?} recorded while disabled", a.osr),
            ));
        }
    }
    out
}

/// [`run_case`] behind `catch_unwind`: a panic anywhere in the system
/// under test becomes a `panic` finding instead of killing the campaign
/// (or poisoning the job pool's result lock).
pub fn run_case_caught(spec: &FuzzSpec) -> CaseOutcome {
    run_case_caught_with(spec, false)
}

/// [`run_case_caught`] with the telemetry registry optionally on (see
/// [`run_case_with`]).
pub fn run_case_caught_with(spec: &FuzzSpec, metrics: bool) -> CaseOutcome {
    match catch_unwind(AssertUnwindSafe(|| run_case_with(spec, true, metrics))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            CaseOutcome {
                spec: spec.clone(),
                fingerprint: BTreeSet::new(),
                findings: vec![Finding::new("panic", format!("{}: {msg}", spec.name))],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_spec;

    #[test]
    fn a_minimal_case_is_clean_and_deterministic() {
        let spec = FuzzSpec::minimal("unit", 5);
        let a = run_case(&spec);
        let b = run_case(&spec);
        assert!(a.clean(), "findings: {:?}", a.findings);
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn a_sampled_case_produces_decision_coverage() {
        let out = run_case(&sample_spec(1, 0));
        assert!(out.clean(), "findings: {:?}", out.findings);
        assert!(
            out.fingerprint.iter().any(|f| f.starts_with("inline:")),
            "expected inlining coverage, got {:?}",
            out.fingerprint
        );
        assert!(
            out.fingerprint.iter().any(|f| f.starts_with("fault:")),
            "chaos cells must contribute fault coverage: {:?}",
            out.fingerprint
        );
    }

    #[test]
    fn metering_does_not_change_a_case() {
        // The campaign-scale PR-3 invariant in miniature: the registry
        // charges no simulated cycles, so the full differential matrix
        // is blind to it.
        let spec = sample_spec(1, 0);
        let plain = run_case_with(&spec, true, false);
        let metered = run_case_with(&spec, true, true);
        assert_eq!(plain.findings, metered.findings);
        assert_eq!(plain.fingerprint, metered.fingerprint);
    }

    #[test]
    fn policies_rotate_with_the_seed() {
        let kinds: BTreeSet<String> = (0..9)
            .map(|s| {
                let mut spec = FuzzSpec::minimal("p", s);
                spec.seed = s;
                format!("{}", policy_for(&spec))
            })
            .collect();
        assert_eq!(kinds.len(), 3, "all three policies in 9 consecutive seeds");
    }

    #[test]
    fn caught_runner_converts_panics_to_findings() {
        // A spec is just data; panic conversion is tested via a poisoned
        // closure stand-in: force a panic through the catch path by
        // running a case against a spec whose generator we make panic is
        // not possible from here, so assert the pass-through contract on
        // a clean case instead.
        let spec = FuzzSpec::minimal("caught", 3);
        let direct = run_case(&spec);
        let caught = run_case_caught(&spec);
        assert_eq!(direct.findings, caught.findings);
        assert_eq!(direct.fingerprint, caught.fingerprint);
    }
}
