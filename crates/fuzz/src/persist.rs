//! Corpus and regression persistence: `FuzzSpec` ⇄ JSON, the
//! `results/fuzz/corpus.json` fingerprint artifact, and replayable
//! `regress-*.json` regression files.
//!
//! Everything serializes through `aoci-json`, whose numbers are `f64`:
//! exact for every count field (small integers) and for spec seeds
//! because the sampler masks them to 53 bits — the round-trip tests pin
//! losslessness. Fractions round-trip exactly too (Rust's shortest-form
//! `f64` display parses back to the same bits).

use crate::oracle::Finding;
use aoci_json::Value as Json;
use aoci_workloads::FuzzSpec;
use std::collections::BTreeSet;

/// Serializes a spec to a JSON object (field names = struct fields).
pub fn spec_to_value(s: &FuzzSpec) -> Json {
    Json::obj([
        ("name".to_string(), Json::from(s.name.as_str())),
        ("seed".to_string(), Json::from(s.seed)),
        ("layers".to_string(), Json::from(s.layers as u64)),
        ("methods_per_layer".to_string(), Json::from(s.methods_per_layer as u64)),
        ("calls_per_method".to_string(), Json::from(s.calls_per_method as u64)),
        ("families".to_string(), Json::from(s.families as u64)),
        ("impls_per_family".to_string(), Json::from(s.impls_per_family as u64)),
        ("chain_depth".to_string(), Json::from(s.chain_depth as u64)),
        ("chain_override_stride".to_string(), Json::from(s.chain_override_stride as u64)),
        ("megamorphic_impls".to_string(), Json::from(s.megamorphic_impls as u64)),
        ("recursion_depth".to_string(), Json::from(s.recursion_depth)),
        ("virtual_fraction".to_string(), Json::from(s.virtual_fraction)),
        ("context_correlation".to_string(), Json::from(s.context_correlation)),
        ("parameterless_fraction".to_string(), Json::from(s.parameterless_fraction)),
        ("instance_middle_fraction".to_string(), Json::from(s.instance_middle_fraction)),
        ("unwind_fraction".to_string(), Json::from(s.unwind_fraction)),
        ("tiny_fraction".to_string(), Json::from(s.tiny_fraction)),
        ("huge_fraction".to_string(), Json::from(s.huge_fraction)),
        ("top_sites".to_string(), Json::from(s.top_sites as u64)),
        ("iterations".to_string(), Json::from(s.iterations)),
    ])
}

/// Inverse of [`spec_to_value`]; `None` on shape mismatch.
pub fn spec_from_value(v: &Json) -> Option<FuzzSpec> {
    Some(FuzzSpec {
        name: v.get("name")?.as_str()?.to_string(),
        seed: v.get("seed")?.as_u64()?,
        layers: v.get("layers")?.as_u64()? as usize,
        methods_per_layer: v.get("methods_per_layer")?.as_u64()? as usize,
        calls_per_method: v.get("calls_per_method")?.as_u64()? as usize,
        families: v.get("families")?.as_u64()? as usize,
        impls_per_family: v.get("impls_per_family")?.as_u64()? as usize,
        chain_depth: v.get("chain_depth")?.as_u64()? as usize,
        chain_override_stride: v.get("chain_override_stride")?.as_u64()? as usize,
        megamorphic_impls: v.get("megamorphic_impls")?.as_u64()? as usize,
        recursion_depth: v.get("recursion_depth")?.as_i64()?,
        virtual_fraction: v.get("virtual_fraction")?.as_f64()?,
        context_correlation: v.get("context_correlation")?.as_f64()?,
        parameterless_fraction: v.get("parameterless_fraction")?.as_f64()?,
        instance_middle_fraction: v.get("instance_middle_fraction")?.as_f64()?,
        unwind_fraction: v.get("unwind_fraction")?.as_f64()?,
        tiny_fraction: v.get("tiny_fraction")?.as_f64()?,
        huge_fraction: v.get("huge_fraction")?.as_f64()?,
        top_sites: v.get("top_sites")?.as_u64()? as usize,
        iterations: v.get("iterations")?.as_i64()?,
    })
}

/// One committed regression: a minimized spec plus the finding it once
/// exhibited. `status` is `"open"` while the underlying bug is being
/// triaged (the `fuzzck` bin reports but tolerates reproduction) and
/// `"fixed"` once resolved (`fuzzck` then *fails* if the finding ever
/// reproduces again).
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// The minimized spec.
    pub spec: FuzzSpec,
    /// The original finding's stable tag.
    pub kind: String,
    /// The original finding's human-readable detail.
    pub detail: String,
    /// `"open"` or `"fixed"`.
    pub status: String,
}

impl Regression {
    /// A freshly-found regression (status `open`).
    pub fn open(spec: FuzzSpec, finding: &Finding) -> Self {
        Regression {
            spec,
            kind: finding.kind.clone(),
            detail: finding.detail.clone(),
            status: "open".to_string(),
        }
    }

    /// Serializes to a JSON object.
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("spec".to_string(), spec_to_value(&self.spec)),
            ("kind".to_string(), Json::from(self.kind.as_str())),
            ("detail".to_string(), Json::from(self.detail.as_str())),
            ("status".to_string(), Json::from(self.status.as_str())),
        ])
    }

    /// Inverse of [`Regression::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Json) -> Option<Self> {
        Some(Regression {
            spec: spec_from_value(v.get("spec")?)?,
            kind: v.get("kind")?.as_str()?.to_string(),
            detail: v.get("detail")?.as_str()?.to_string(),
            status: v.get("status")?.as_str()?.to_string(),
        })
    }
}

/// One corpus entry: a case whose fingerprint added new decision-space
/// coverage, with exactly the features it was first to reach.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Campaign case index.
    pub index: usize,
    /// Case name (`fzNNNN`).
    pub name: String,
    /// Features this case added over all earlier cases.
    pub new_features: Vec<String>,
}

/// Serializes a campaign corpus to the `corpus.json` artifact: the
/// campaign parameters, the kept entries in index order, and the full
/// sorted feature set. Byte-identical across `AOCI_JOBS` values because
/// every input is (CI `cmp`s this file against the committed one).
pub fn corpus_to_value(
    seed: u64,
    iters: usize,
    entries: &[CorpusEntry],
    features: &BTreeSet<String>,
) -> Json {
    Json::obj([
        ("campaign_seed".to_string(), Json::from(seed)),
        ("campaign_iters".to_string(), Json::from(iters as u64)),
        (
            "corpus".to_string(),
            Json::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Json::obj([
                            ("index".to_string(), Json::from(e.index as u64)),
                            ("name".to_string(), Json::from(e.name.as_str())),
                            (
                                "new_features".to_string(),
                                Json::Arr(
                                    e.new_features.iter().map(|f| Json::from(f.as_str())).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "features".to_string(),
            Json::Arr(features.iter().map(|f| Json::from(f.as_str())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::sample_spec;

    #[test]
    fn specs_round_trip_through_json_text() {
        for i in 0..32 {
            let s = sample_spec(99, i);
            let text = aoci_json::to_string_pretty(&spec_to_value(&s));
            let parsed = aoci_json::parse(&text).expect("parses");
            let back = spec_from_value(&parsed).expect("shape");
            assert_eq!(back, s, "case {i} did not round-trip");
        }
    }

    #[test]
    fn regressions_round_trip() {
        let r = Regression::open(
            sample_spec(7, 3),
            &Finding { kind: "rerun-divergence".to_string(), detail: "clock[vm]: 1 vs 2".into() },
        );
        let text = aoci_json::to_string_pretty(&r.to_value());
        let back = Regression::from_value(&aoci_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.status, "open");
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        assert!(spec_from_value(&Json::Null).is_none());
        assert!(Regression::from_value(&Json::from("nope")).is_none());
        let mut v = spec_to_value(&sample_spec(1, 0));
        if let Json::Obj(map) = &mut v {
            map.remove("iterations");
        }
        assert!(spec_from_value(&v).is_none());
    }

    #[test]
    fn corpus_serialization_is_deterministic() {
        let entries = vec![CorpusEntry {
            index: 0,
            name: "fz0000".to_string(),
            new_features: vec!["inline:rule-fired".to_string()],
        }];
        let features: BTreeSet<String> = ["inline:rule-fired".to_string()].into();
        let a = aoci_json::to_string_pretty(&corpus_to_value(1, 4, &entries, &features));
        let b = aoci_json::to_string_pretty(&corpus_to_value(1, 4, &entries, &features));
        assert_eq!(a, b);
        assert!(a.contains("campaign_seed"));
    }
}
