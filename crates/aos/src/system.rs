//! The AOS driver: the online feedback loop of paper Figure 3.

use crate::config::{AosConfig, RecoveryConfig};
use crate::database::AosDatabase;
use crate::fault::{CompileFault, FaultInjector, TraceCorruption};
use crate::report::{AosReport, AsyncCompileEvents, OsrEvents, RecoveryEvents};
use aoci_core::{InlineOracle, PolicyEngine, RuleSet};
use aoci_ir::{CallSiteRef, MethodId, Program, SiteIdx};
use aoci_profile::{
    validate_trace, CallingContextTree, Dcg, MethodListener, ProfileStore, TraceKey,
    TraceListener, TraceStatsCollector,
};
use aoci_telemetry::{MetricsLog, MetricsSink};
use aoci_trace::{
    FaultKind, OsrDenyReason, PlanReason, StaleReason, TraceEvent, TraceLog, TraceSink,
};
use aoci_vm::{
    Component, MethodGuardStats, MethodVersion, OptLevel, OsrRequest, RunOutcome, StackSnapshot,
    Vm, VmError, COMPONENTS,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Everything a finished run yields: the report, the final AOS database,
/// and the trace profile (saveable for offline profile-directed runs).
pub type FullRunResult = Result<(AosReport, AosDatabase, Vec<(TraceKey, f64)>), VmError>;

/// A compilation plan waiting in the asynchronous priority queue.
#[derive(Clone, Debug)]
struct PendingPlan {
    method: MethodId,
    reason: PlanReason,
    /// Predicted benefit ([`aoci_opt::estimate_benefit`]) under the rules
    /// current at enqueue time; higher runs first.
    priority: f64,
    /// Staleness baseline: the plan is dropped at dequeue if the method was
    /// recompiled through another path (e.g. OSR) while it waited.
    recompiles_at_enqueue: u32,
}

/// `Greater` means `a` dispatches first: higher predicted benefit, ties
/// broken toward the lower method id (so the order is total and
/// deterministic — `total_cmp` keeps even NaN priorities ordered).
fn plan_order(a: &PendingPlan, b: &PendingPlan) -> std::cmp::Ordering {
    a.priority
        .total_cmp(&b.priority)
        .then_with(|| b.method.index().cmp(&a.method.index()))
}

/// What a dispatched background compile will deliver at its deadline.
#[derive(Debug)]
enum CompileOutcome {
    /// The optimizing compiler produced installable code.
    Built(Box<aoci_opt::Compilation>),
    /// An injected fault discarded the work; failure bookkeeping (retry
    /// backoff or quarantine) applies at completion.
    Faulted,
}

/// A compile occupying a simulated worker between dispatch and completion.
/// The work itself is computed at dispatch (the simulation has no real
/// concurrency); only its *effects* — install, cycle charges, failure
/// bookkeeping — wait for the deadline.
#[derive(Debug)]
struct InFlightCompile {
    method: MethodId,
    worker: u32,
    started_at: u64,
    /// `started_at + cost` (or `started_at` in zero-latency mode): the
    /// virtual-clock cycle at which the compile completes.
    deadline: u64,
    cost: u64,
    outcome: CompileOutcome,
    /// Staleness baseline for completion revalidation: if the method was
    /// recompiled while this compile ran, the result is stale and dropped.
    recompiles_at_dispatch: u32,
    /// The oracle snapshot the compiler ran against; unrealized-rule
    /// marking at install must use the rules the compiler saw, not the
    /// (possibly regenerated) rules current at completion.
    rules_at_dispatch: Arc<RuleSet>,
    generation_at_dispatch: u64,
}

/// The complete adaptive optimization system: VM, listeners, organizers,
/// controller, compilation thread and the AOS database, on one simulated
/// clock.
#[derive(Debug)]
pub struct AosSystem<'p> {
    program: &'p Program,
    config: AosConfig,
    vm: Vm<'p>,
    policy: PolicyEngine,
    method_listener: MethodListener,
    trace_listener: TraceListener,
    profile: Box<dyn ProfileStore>,
    rules: Arc<RuleSet>,
    db: AosDatabase,
    method_samples: HashMap<MethodId, u32>,
    total_method_samples: u64,
    /// AI-organizer run counter; the generation at which each trace first
    /// became a hot rule gates the missing-edge organizer ("the edge became
    /// hot after the method was last compiled", paper Section 3.2).
    ai_generation: u64,
    first_hot: HashMap<aoci_profile::TraceKey, u64>,
    compile_queue: VecDeque<MethodId>,
    /// Methods with a live plan: queued (sync FIFO or async priority queue)
    /// or — in async mode — currently in flight on a worker.
    queued: HashSet<MethodId>,
    /// Async mode: plans awaiting a free worker, ordered by [`plan_order`]
    /// at each dispatch (kept unsorted; the queue is small and bounded).
    pending_plans: Vec<PendingPlan>,
    /// Async mode: one slot per simulated worker, `Some` while occupied.
    in_flight: Vec<Option<InFlightCompile>>,
    /// Async-mode activity counters and overlap/stall accounting.
    async_events: AsyncCompileEvents,
    sample_count: u64,
    stats: TraceStatsCollector,
    /// Set once the program returns from its entry point.
    finished: Option<Option<aoci_vm::Value>>,
    /// The adversary, when fault injection is configured.
    fault: Option<FaultInjector>,
    /// Recovery actions taken so far (injected-fault counters are merged in
    /// from the injector when reporting).
    recovery: RecoveryEvents,
    /// Per optimized method: guard counters at the start of the current
    /// observation window (reset at install and at invalidation).
    guard_window_start: HashMap<MethodId, MethodGuardStats>,
    /// Synthetic guard misses delivered by receiver bursts, folded into the
    /// window on top of the VM's organic counters.
    synthetic_misses: HashMap<MethodId, u64>,
    /// Per method: consecutive failed compilations (cleared on success).
    compile_failures: HashMap<MethodId, u32>,
    /// Per method: consecutive guard-thrash invalidations (cleared by a
    /// healthy observation window); reaching the quarantine limit blocks
    /// the method instead of letting it cycle invalidate → recompile.
    invalidation_streaks: HashMap<MethodId, u32>,
    /// Failed compilations awaiting their backoff deadline, as
    /// `(due_cycle, method)` in scheduling order.
    retry_after: Vec<(u64, MethodId)>,
    /// Methods blocked from optimizing compilation for the rest of the run.
    quarantined: HashSet<MethodId>,
    /// OSR promotion requests received / denied so far (the transition
    /// counts themselves live in the VM's [`aoci_vm::ExecCounters`]).
    osr: OsrEvents,
    /// The flight recorder, when tracing is configured; clones of this sink
    /// live in the VM and the trace listener.
    trace: Option<TraceSink>,
    /// The telemetry registry, when metrics are configured. Recording
    /// charges no simulated cycles and reads only simulated-clock state, so
    /// a metered run's report (minus the log itself) is bit-identical to an
    /// unmetered one.
    metrics: Option<MetricsSink>,
}

impl<'p> AosSystem<'p> {
    /// Creates a system ready to run `program` under `config`.
    pub fn new(program: &'p Program, config: AosConfig) -> Self {
        let mut vm = Vm::with_config(program, config.cost.clone(), config.vm.clone());
        let trace = config.trace.clone().map(TraceSink::new);
        let mut trace_listener = TraceListener::new();
        if let Some(t) = &trace {
            vm.set_trace_sink(t.clone());
            trace_listener.set_trace_sink(t.clone());
        }
        let mut policy = PolicyEngine::with_adaptive_config(config.policy, config.adaptive);
        if matches!(config.policy, aoci_core::PolicyKind::IdealApprox { .. }) {
            policy.set_dependence(aoci_core::DependenceAnalysis::analyze(program));
        }
        let profile: Box<dyn ProfileStore> = match config.profile_backend {
            crate::config::ProfileBackend::FlatTraces => Box::new(Dcg::new(config.dcg)),
            crate::config::ProfileBackend::ContextTree => {
                Box::new(CallingContextTree::new(config.dcg.prune_epsilon))
            }
        };
        AosSystem {
            program,
            vm,
            policy,
            method_listener: MethodListener::new(),
            trace_listener,
            profile,
            rules: Arc::new(RuleSet::new()),
            db: AosDatabase::new(),
            method_samples: HashMap::new(),
            total_method_samples: 0,
            ai_generation: 0,
            first_hot: HashMap::new(),
            compile_queue: VecDeque::new(),
            queued: HashSet::new(),
            pending_plans: Vec::new(),
            in_flight: Vec::new(),
            async_events: AsyncCompileEvents::default(),
            sample_count: 0,
            stats: TraceStatsCollector::new(),
            finished: None,
            fault: config.fault.clone().map(FaultInjector::new),
            recovery: RecoveryEvents::default(),
            guard_window_start: HashMap::new(),
            synthetic_misses: HashMap::new(),
            compile_failures: HashMap::new(),
            invalidation_streaks: HashMap::new(),
            retry_after: Vec::new(),
            quarantined: HashSet::new(),
            osr: OsrEvents::default(),
            trace,
            metrics: config.metrics.clone().map(MetricsSink::new),
            config,
        }
    }

    /// Records `event` in the flight recorder (no-op when tracing is off).
    /// Events are timestamped with the simulated clock and charge no
    /// cycles, so traced runs are metrically identical to untraced ones.
    fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.trace {
            t.emit(self.vm.clock().total(), event);
        }
    }

    /// Copies the last-N rendered events into the recovery ledger (the
    /// automatic flight-recorder dump attached to [`RecoveryEvents`]).
    fn capture_trace_dump(&mut self) {
        let Some(t) = &self.trace else { return };
        let n = self.config.trace.as_ref().map_or(0, |c| c.dump_last);
        let program = self.program;
        let resolve = move |m: MethodId| program.method(m).name().to_string();
        self.recovery.trace_dump = t.dump_last(n, &resolve);
    }

    /// Seeds the profile store with offline-gathered trace data (e.g. a
    /// [`aoci_profile::SavedProfile`] from a training run), emulating the
    /// classic offline profile-directed pipeline the paper's related work
    /// describes. Rules form at the first AI-organizer tick, so hot methods
    /// compile with good inlining decisions immediately instead of after a
    /// warm-up.
    ///
    /// Entries pass the same sanitization as online traces: malformed ones
    /// (unknown methods or sites, non-finite or non-positive weights) are
    /// rejected and counted in [`RecoveryEvents::rejected_traces`], so a
    /// corrupted saved profile degrades the warm-up instead of crashing the
    /// run.
    pub fn seed_profile(&mut self, entries: impl IntoIterator<Item = (aoci_profile::TraceKey, f64)>) {
        for (k, w) in entries {
            if validate_trace(self.program, &k, w).is_ok() {
                self.profile.record(k, w);
            } else {
                self.reject_trace();
            }
        }
    }

    /// Runs the program to completion under adaptive optimization.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises (a fault in optimized
    /// code would indicate a compiler bug — the test suite leans on this).
    pub fn run(self) -> Result<AosReport, VmError> {
        self.run_detailed().map(|(report, _)| report)
    }

    /// Like [`AosSystem::run`], but also returns the final [`AosDatabase`]
    /// so callers can inspect the full inline-decision and refusal logs.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises.
    pub fn run_detailed(self) -> Result<(AosReport, AosDatabase), VmError> {
        self.run_full().map(|(r, db, _)| (r, db))
    }

    /// Like [`AosSystem::run_detailed`], but additionally returns the final
    /// trace profile — suitable for saving as an offline profile (see
    /// [`aoci_profile::SavedProfile`] and the `offline_profile` example).
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises.
    pub fn run_full(mut self) -> FullRunResult {
        while self.step()? {}
        // `step` only reports completion once `finished` is set; if that
        // invariant ever breaks, degrade to "no return value" rather than
        // panicking out of an otherwise-successful run.
        let result = self.finished.take().flatten();
        let db = self.db.clone();
        let profile = self.profile.entries();
        Ok((self.into_report(result), db, profile))
    }

    /// Advances execution to the next timer sample (processing it through
    /// the listeners/organizers/compilation pipeline) or to program
    /// completion. Returns `false` once the program has finished; the
    /// introspection accessors ([`AosSystem::profile`],
    /// [`AosSystem::rules`], [`AosSystem::database`],
    /// [`AosSystem::policy`]) remain usable between steps.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises.
    pub fn step(&mut self) -> Result<bool, VmError> {
        if self.finished.is_some() {
            return Ok(false);
        }
        let outcome = match self.vm.run(u64::MAX) {
            Ok(outcome) => outcome,
            Err(e) => {
                // The run is about to abort: record the fault, attach the
                // last-N dump to the recovery ledger, and surface the
                // recorder's tail on stderr — the post-mortem the flight
                // recorder exists for.
                self.emit(TraceEvent::VmFault { message: e.to_string() });
                self.capture_trace_dump();
                for line in &self.recovery.trace_dump {
                    eprintln!("[aoci-trace] {line}");
                }
                return Err(e);
            }
        };
        match outcome {
            RunOutcome::Finished(result) => {
                self.finished = Some(result);
                Ok(false)
            }
            RunOutcome::Sample(snapshot) => {
                self.on_sample(&snapshot);
                Ok(true)
            }
            RunOutcome::OsrRequest(req) => {
                self.on_osr_request(req);
                Ok(true)
            }
            RunOutcome::BudgetExhausted => unreachable!("unbounded budget"),
        }
    }

    /// One timer tick: listeners record, organizers run on their cadences,
    /// the controller plans, the compilation thread compiles and installs.
    fn on_sample(&mut self, snapshot: &StackSnapshot) {
        self.sample_count += 1;

        // --- Fault injection (per tick) ---------------------------------
        // A dropped sample still advances the tick (organizer cadences are
        // wall-clock driven) but its payload never reaches the listeners.
        let dropped = self.fault.as_mut().is_some_and(|f| f.drop_sample());
        self.emit(TraceEvent::SampleTick {
            tick: self.sample_count,
            method: snapshot.root_method,
            in_prologue: snapshot.top_in_prologue,
            dropped,
        });
        if dropped {
            self.emit(TraceEvent::FaultInjected { kind: FaultKind::DroppedSample });
        }
        self.deliver_receiver_burst();

        // --- Listeners -------------------------------------------------
        if dropped {
            let listener_cycles = self.config.cost.sample_cost(1);
            self.vm.clock_mut().charge(Component::Listeners, listener_cycles);
        } else {
            self.method_listener.on_sample(snapshot);
            let site = immediate_site(snapshot);
            let max = self.policy.max_context_for(site);
            let walked = {
                let policy = &self.policy;
                let program = self.program;
                self.trace_listener
                    .on_sample(snapshot, max, |m| policy.keep_extending(program, m))
            };
            let listener_cycles = self.config.cost.sample_cost(walked + 1);
            self.vm.clock_mut().charge(Component::Listeners, listener_cycles);
            if snapshot.top_in_prologue {
                self.stats.observe(snapshot, self.program);
            }
        }

        // --- Recovery: guard health + due compile retries ---------------
        self.check_guard_health();
        self.schedule_due_retries();

        // --- Organizers (periodic) --------------------------------------
        if self.sample_count.is_multiple_of(self.config.organizer_period_samples) {
            self.hot_methods_organizer();
            self.dcg_and_ai_organizer();
        }
        if self.sample_count.is_multiple_of(self.config.decay_period_samples) {
            self.decay_organizer();
        }
        if self.sample_count.is_multiple_of(self.config.missing_edge_period_samples) {
            self.missing_edge_organizer();
        }

        // --- Compilation thread -----------------------------------------
        self.process_compile_queue();

        // --- Telemetry (epoch cadence; records nothing, charges nothing,
        // when metrics are off) ------------------------------------------
        let epoch = self.metrics.as_ref().map(MetricsSink::epoch_samples);
        if epoch.is_some_and(|e| self.sample_count.is_multiple_of(e)) {
            self.record_metrics_snapshot();
        }
    }

    /// Freezes one telemetry time-series snapshot: samples every cumulative
    /// counter and instantaneous gauge from authoritative AOS/VM state at
    /// the current simulated-clock instant. No-op when metrics are off;
    /// charges no simulated cycles when on.
    fn record_metrics_snapshot(&self) {
        let Some(sink) = &self.metrics else { return };
        let counters = self.vm.counters();
        sink.counter_set("samples", self.sample_count);
        sink.counter_set("calls", counters.calls);
        sink.counter_set("virtual_dispatches", counters.virtual_dispatches);
        sink.counter_set("guard_checks", counters.guard_checks);
        sink.counter_set("guard_misses", counters.guard_misses);
        let osr = self.osr_events();
        sink.counter_set("osr_requests", osr.requests);
        sink.counter_set("osr_denied", osr.denied);
        sink.counter_set("osr_entries", osr.entries);
        sink.counter_set("osr_exits", osr.exits);
        let recovery = self.recovery_events();
        sink.counter_set("recovery_invalidations", recovery.invalidations);
        sink.counter_set("recovery_compile_retries", recovery.compile_retries);
        sink.counter_set("recovery_rejected_traces", recovery.rejected_traces);
        sink.counter_set("recovery_injected_compile_faults", recovery.injected_compile_faults);
        sink.counter_set("recovery_injected_corrupt_traces", recovery.injected_corrupt_traces);
        sink.counter_set("recovery_dropped_samples", recovery.dropped_samples);
        sink.counter_set("recovery_receiver_bursts", recovery.receiver_bursts);
        let async_ev = &self.async_events;
        sink.counter_set("async_enqueued", async_ev.enqueued);
        sink.counter_set("async_dispatched", async_ev.dispatched);
        sink.counter_set("async_completed", async_ev.completed);
        sink.counter_set("async_stale_drops", async_ev.stale_drops);
        sink.counter_set("async_queue_full_drops", async_ev.queue_full_drops);
        sink.counter_set("async_overlap_cycles", async_ev.background_overlap_cycles);
        sink.counter_set("async_stall_cycles", async_ev.foreground_stall_cycles);
        let clock = self.vm.clock();
        sink.counter_set("cycles_total", clock.total());
        for c in COMPONENTS {
            sink.counter_set(&format!("cycles_{}", c.slug()), clock.component(c));
        }
        let registry = self.vm.registry();
        sink.gauge_set(
            "compile_queue_depth",
            (self.compile_queue.len() + self.pending_plans.len()) as u64,
        );
        sink.gauge_set(
            "compiles_in_flight",
            self.in_flight.iter().filter(|slot| slot.is_some()).count() as u64,
        );
        sink.gauge_set("code_cache_bytes", registry.current_optimized_size());
        sink.gauge_set("code_cache_cumulative_bytes", registry.cumulative_optimized_size());
        sink.gauge_set("code_versions", u64::from(registry.opt_compilations()));
        sink.gauge_set("baseline_methods", u64::from(registry.baseline_compilations()));
        sink.gauge_set("rules_active", self.rules.len() as u64);
        sink.gauge_set("dcg_entries", self.profile.len() as u64);
        sink.gauge_set("quarantined_methods", self.quarantined.len() as u64);
        sink.gauge_set("retry_backlog", self.retry_after.len() as u64);
        sink.snapshot(self.sample_count, clock.total());
    }

    /// Aggregates method samples; methods crossing the hotness threshold
    /// are handed to the controller for (first) optimizing compilation.
    fn hot_methods_organizer(&mut self) {
        let drained = self.method_listener.drain();
        self.charge(
            Component::MethodSampleOrganizer,
            self.config.organizer_cost_per_item * drained.len() as u64,
        );
        for m in drained {
            *self.method_samples.entry(m).or_insert(0) += 1;
            self.total_method_samples += 1;
        }
        let min_share =
            (self.config.hot_method_fraction * self.total_method_samples as f64) as u32;
        let mut hot: Vec<MethodId> = self
            .method_samples
            .iter()
            .filter(|&(&m, &count)| {
                count >= self.config.hot_method_samples.max(min_share)
                    && !self.db.is_optimized(m)
                    && !self.queued.contains(&m)
                    && !self.quarantined.contains(&m)
                    // Bounds churn from the invalidate→reselect cycle; only
                    // reachable post-invalidation (an optimized method is
                    // filtered out above).
                    && self.db.recompiles(m) < self.config.max_recompiles_per_method
            })
            .map(|(&m, _)| m)
            .collect();
        // HashMap iteration order is arbitrary; sort so the compile queue
        // (and anything keyed to it, like the fault injector's draw
        // sequence) is deterministic.
        hot.sort_unstable_by_key(|m| m.index());
        if self.config.debug_hot {
            eprintln!("tick {}: samples={:?} min_share={} hot={:?}", self.sample_count, self.method_samples, min_share, hot);
        }
        for m in hot {
            let samples = self.method_samples.get(&m).copied().unwrap_or(0);
            self.emit(TraceEvent::HotMethod { method: m, samples });
            self.controller_enqueue(m, PlanReason::HotMethod);
        }
    }

    /// Folds trace buffers into the DCG and regenerates inlining rules from
    /// traces above the hot threshold; feeds the adaptive-resolving policy.
    fn dcg_and_ai_organizer(&mut self) {
        let traces = self.trace_listener.drain();
        self.charge(
            Component::AiOrganizer,
            self.config.organizer_cost_per_item * (traces.len() + self.profile.len()) as u64,
        );
        for t in traces {
            let (key, weight) = self.maybe_corrupt(t);
            match validate_trace(self.program, &key, weight) {
                Ok(()) => self.profile.record(key, weight),
                Err(_) => self.reject_trace(),
            }
        }
        self.ai_generation += 1;
        self.rules =
            Arc::new(RuleSet::from_hot_traces(self.profile.hot(self.config.hot_edge_threshold)));
        for rule in self.rules.iter() {
            self.first_hot
                .entry(rule.trace.clone())
                .or_insert(self.ai_generation);
        }
        self.policy.adaptive_feedback(self.profile.as_ref());
    }

    /// Ages the DCG toward recent behaviour (phase-shift adaptation).
    fn decay_organizer(&mut self) {
        self.charge(
            Component::DecayOrganizer,
            self.config.organizer_cost_per_item * self.profile.len() as u64,
        );
        self.profile.decay(self.config.decay_factor);
    }

    /// Returns `true` if `method` currently satisfies the hot-method
    /// criterion (same test the hot-methods organizer applies).
    fn is_hot_method(&self, method: MethodId) -> bool {
        let min_share =
            (self.config.hot_method_fraction * self.total_method_samples as f64) as u32;
        self.method_samples
            .get(&method)
            .is_some_and(|&c| c >= self.config.hot_method_samples.max(min_share))
    }

    /// Requests recompilation of *hot* optimized methods for which new hot,
    /// uninlined, unrefused rules have appeared since their last
    /// compilation (paper: "examines the current set of hot optimized
    /// methods and inlining rules").
    fn missing_edge_organizer(&mut self) {
        self.charge(
            Component::MissingEdgeOrganizer,
            self.config.organizer_cost_per_item * self.rules.len() as u64,
        );
        let mut to_queue: Vec<MethodId> = Vec::new();
        for rule in self.rules.iter() {
            let site = rule.trace.immediate_caller();
            let callee = rule.trace.callee();
            let became_hot_at = self
                .first_hot
                .get(&rule.trace)
                .copied()
                .unwrap_or(self.ai_generation);
            // A rule can be realised by compiling its immediate caller, or
            // by a deeper compilation rooted at the outermost context
            // method; check both hosts. A host is reconsidered only when
            // the rule became hot *after* its last compilation (the paper's
            // condition) and the oracle's partial-match intersection would
            // actually yield the callee in the context that compilation
            // presents.
            let Some(outer) = rule.trace.context().last().map(|c| c.method) else {
                continue; // malformed rule: no context to host a compilation
            };
            for (host, ctx) in [
                (site.method, &rule.trace.context()[..1]),
                (outer, rule.trace.context()),
            ] {
                // The outer host is only worth recompiling once its code
                // already contains the rule's immediate caller; until then
                // the caller's own edge rule is the effective trigger.
                let chain_present =
                    host == site.method || self.db.inlines_method(host, site.method);
                if chain_present
                    && self.db.is_optimized(host)
                    && self.is_hot_method(host)
                    && self.db.compiled_generation(host) < Some(became_hot_at)
                    && !self.db.has_inlined(host, site, callee)
                    && !self.db.was_refused(site, callee)
                    && !self.db.is_unrealized(host, site, callee)
                    && self.db.recompiles(host) < self.config.max_recompiles_per_method
                    && !self.queued.contains(&host)
                    && !to_queue.contains(&host)
                    && self.rules.candidates(ctx).iter().any(|&(c, _)| c == callee)
                {
                    to_queue.push(host);
                }
            }
        }
        // Rule iteration follows HashMap order; sort so the compile queue
        // (and the fault injector's per-compilation draw sequence) is
        // deterministic across processes.
        to_queue.sort_unstable_by_key(|m| m.index());
        for m in to_queue {
            self.controller_enqueue(m, PlanReason::MissingEdge);
        }
    }

    /// The controller: accepts an organizer event and creates a compilation
    /// plan (the oracle snapshot is taken when the plan executes).
    fn controller_enqueue(&mut self, method: MethodId, reason: PlanReason) {
        if self.quarantined.contains(&method) {
            return;
        }
        if self.config.async_compile.is_some() {
            self.async_enqueue(method, reason);
            return;
        }
        self.charge(Component::ControllerThread, self.config.controller_cost_per_event);
        if self.queued.insert(method) {
            self.emit(TraceEvent::RecompilePlan { method, reason });
            self.compile_queue.push_back(method);
        }
    }

    /// Async-mode controller path: prices the plan by predicted benefit and
    /// admits it to the bounded priority queue, evicting the worst resident
    /// (or dropping the incoming plan when it *is* the worst) under
    /// backpressure.
    fn async_enqueue(&mut self, method: MethodId, reason: PlanReason) {
        let capacity =
            self.config.async_compile.as_ref().map_or(usize::MAX, |c| c.queue_capacity.max(1));
        self.charge(Component::ControllerThread, self.config.controller_cost_per_event);
        if !self.queued.insert(method) {
            return; // already queued or in flight
        }
        self.emit(TraceEvent::RecompilePlan { method, reason });
        let oracle = InlineOracle::with_mode(Arc::clone(&self.rules), self.config.match_mode);
        let plan = PendingPlan {
            method,
            reason,
            priority: aoci_opt::estimate_benefit(self.program, method, &oracle),
            recompiles_at_enqueue: self.db.recompiles(method),
        };
        if self.pending_plans.len() >= capacity {
            let worst = self
                .pending_plans
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| plan_order(a, b))
                .map(|(i, _)| i)
                .expect("capacity >= 1, so a full queue is non-empty");
            if plan_order(&plan, &self.pending_plans[worst]) == std::cmp::Ordering::Greater {
                let evicted = self.pending_plans.swap_remove(worst);
                self.queued.remove(&evicted.method);
                self.async_events.queue_full_drops += 1;
                self.emit(TraceEvent::CompileQueueFull { method: evicted.method, evicted: true });
            } else {
                self.queued.remove(&method);
                self.async_events.queue_full_drops += 1;
                self.emit(TraceEvent::CompileQueueFull { method, evicted: false });
                return;
            }
        }
        self.pending_plans.push(plan);
        self.async_events.enqueued += 1;
        self.async_events.max_queue_depth =
            self.async_events.max_queue_depth.max(self.pending_plans.len() as u64);
        self.emit(TraceEvent::CompileEnqueue {
            method,
            reason,
            priority: self.pending_plans.last().map_or(0.0, |p| p.priority),
            queue_depth: self.pending_plans.len() as u32,
        });
    }

    /// The compilation thread: executes queued plans, charging compile
    /// cycles and installing the resulting code (effective at each method's
    /// next invocation — or mid-activation, when a later OSR request
    /// promotes a running frame into the installed version). In synchronous
    /// mode up to [`AosConfig::max_compiles_per_epoch`] plans compile inside
    /// this tick (the default cap is unlimited — the historical
    /// drain-everything behaviour); leftovers stay queued for the next tick.
    /// In async mode this is the pump: due compiles complete, then free
    /// workers pick up the highest-priority live plans.
    fn process_compile_queue(&mut self) {
        if self.config.async_compile.is_some() {
            self.complete_due_compiles();
            self.dispatch_pending_plans();
            return;
        }
        let mut started = 0u32;
        while started < self.config.max_compiles_per_epoch {
            let Some(method) = self.compile_queue.pop_front() else { break };
            self.queued.remove(&method);
            if self.quarantined.contains(&method) {
                continue; // quarantined while waiting in the queue: a free skip
            }
            started += 1;
            self.compile_and_install(method);
        }
    }

    /// Retires every in-flight compile whose deadline the virtual clock has
    /// reached, earliest deadline first (ties to the lower worker index).
    /// Completion charges the unoverlapped stall, which advances the clock
    /// and may make further deadlines due — hence the re-scan.
    fn complete_due_compiles(&mut self) {
        loop {
            let now = self.vm.clock().total();
            let due = self
                .in_flight
                .iter()
                .enumerate()
                .filter_map(|(i, slot)| slot.as_ref().map(|c| (c.deadline, i)))
                .filter(|&(deadline, _)| deadline <= now)
                .min();
            let Some((_, slot)) = due else { break };
            let compile = self.in_flight[slot].take().expect("slot was just observed occupied");
            self.finish_compile(compile);
        }
    }

    /// Hands the highest-priority live plans to free workers, revalidating
    /// each plan at dequeue: a method that was quarantined, recompiled
    /// through another path, or has cooled below the hot threshold while it
    /// waited is dropped, not compiled.
    fn dispatch_pending_plans(&mut self) {
        let (workers, zero_latency) = match self.config.async_compile.as_ref() {
            Some(c) => (c.workers.max(1), c.zero_latency),
            None => return,
        };
        if self.in_flight.len() < workers {
            self.in_flight.resize_with(workers, || None);
        }
        let mut started = 0u32;
        while started < self.config.max_compiles_per_epoch {
            let Some(worker) = self.in_flight.iter().position(Option::is_none) else { break };
            let Some(plan) = self.pop_best_live_plan() else { break };
            started += 1;
            let compile = self.dispatch_plan(plan, worker as u32, zero_latency);
            if zero_latency {
                // Degenerate mode: the compile completes at dispatch with
                // zero overlap — the synchronous system, re-expressed.
                self.finish_compile(compile);
            } else {
                self.in_flight[worker] = Some(compile);
            }
        }
    }

    /// Pops pending plans best-first until one survives revalidation; stale
    /// plans are dropped with a traced reason.
    fn pop_best_live_plan(&mut self) -> Option<PendingPlan> {
        loop {
            let best = self
                .pending_plans
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| plan_order(a, b))
                .map(|(i, _)| i)?;
            let plan = self.pending_plans.swap_remove(best);
            let stale = if self.quarantined.contains(&plan.method) {
                Some(StaleReason::Quarantined)
            } else if self.db.recompiles(plan.method) != plan.recompiles_at_enqueue {
                Some(StaleReason::Recompiled)
            } else if plan.reason == PlanReason::HotMethod && !self.is_hot_method(plan.method) {
                Some(StaleReason::NoLongerHot)
            } else {
                None
            };
            match stale {
                Some(reason) => {
                    self.queued.remove(&plan.method);
                    self.async_events.stale_drops += 1;
                    self.emit(TraceEvent::CompileDequeueStale { method: plan.method, reason });
                }
                None => return Some(plan),
            }
        }
    }

    /// Starts one background compile: the work (and any injected fault) is
    /// resolved now, its effects are deferred to the deadline. The method
    /// stays in `queued` until completion so no second plan can race it.
    fn dispatch_plan(&mut self, plan: PendingPlan, worker: u32, zero_latency: bool) -> InFlightCompile {
        let rules = Arc::clone(&self.rules);
        let oracle = InlineOracle::with_mode(Arc::clone(&rules), self.config.match_mode);
        let (outcome, cost) = match self.fault.as_mut().and_then(|f| f.compile_fault()) {
            Some(CompileFault::Bailout) => {
                self.emit(TraceEvent::FaultInjected { kind: FaultKind::CompileBailout });
                (CompileOutcome::Faulted, self.config.cost.opt_compile_fixed)
            }
            Some(CompileFault::Oversize) => {
                let c = aoci_opt::compile(self.program, plan.method, &oracle, &self.config.opt);
                self.emit(TraceEvent::FaultInjected { kind: FaultKind::CompileOversize });
                (CompileOutcome::Faulted, self.config.cost.opt_compile_cost(c.generated_size))
            }
            None => {
                let c = aoci_opt::compile(self.program, plan.method, &oracle, &self.config.opt);
                let cost = self.config.cost.opt_compile_cost(c.generated_size);
                (CompileOutcome::Built(Box::new(c)), cost)
            }
        };
        let now = self.vm.clock().total();
        self.async_events.dispatched += 1;
        self.emit(TraceEvent::CompileStart { method: plan.method, worker, cost });
        InFlightCompile {
            method: plan.method,
            worker,
            started_at: now,
            deadline: if zero_latency { now } else { now + cost },
            cost,
            outcome,
            recompiles_at_dispatch: self.db.recompiles(plan.method),
            rules_at_dispatch: rules,
            generation_at_dispatch: self.ai_generation,
        }
    }

    /// Completes a background compile at (or after) its deadline: splits its
    /// cost into the portion that overlapped application execution and the
    /// stall the application must still wait out, charges only the stall,
    /// then installs the result — unless the world moved on while the
    /// compile ran, in which case the stale result is dropped.
    fn finish_compile(&mut self, compile: InFlightCompile) {
        let now = self.vm.clock().total();
        let overlap = compile.cost.min(now.saturating_sub(compile.started_at));
        let stall = compile.cost - overlap;
        self.charge(Component::CompilationThread, stall);
        self.async_events.background_overlap_cycles += overlap;
        self.async_events.foreground_stall_cycles += stall;
        self.emit(TraceEvent::CompileFinish {
            method: compile.method,
            worker: compile.worker,
            overlap_cycles: overlap,
            stall_cycles: stall,
        });
        self.queued.remove(&compile.method);
        match compile.outcome {
            CompileOutcome::Faulted => {
                self.async_events.completed += 1;
                self.handle_compile_failure(compile.method);
            }
            CompileOutcome::Built(compilation) => {
                let stale = if self.quarantined.contains(&compile.method) {
                    Some(StaleReason::Quarantined)
                } else if self.db.recompiles(compile.method) != compile.recompiles_at_dispatch {
                    Some(StaleReason::Recompiled)
                } else {
                    None
                };
                if let Some(reason) = stale {
                    self.async_events.stale_drops += 1;
                    self.emit(TraceEvent::CompileDequeueStale { method: compile.method, reason });
                    return;
                }
                self.async_events.completed += 1;
                self.install_compilation(
                    compile.method,
                    *compilation,
                    compile.cost,
                    compile.generation_at_dispatch,
                    &compile.rules_at_dispatch,
                );
            }
        }
    }

    /// Executes one compilation plan: runs the optimizing compiler under the
    /// fault injector, charges compile cycles, and installs the result.
    /// Returns the installed version, or `None` when an injected fault
    /// discarded the compilation (failure bookkeeping already applied).
    fn compile_and_install(&mut self, method: MethodId) -> Option<Arc<MethodVersion>> {
        if let Some(kind) = self.fault.as_mut().and_then(|f| f.compile_fault()) {
            let (wasted, fault_kind) = match kind {
                // Aborted partway: only the fixed setup cost was spent.
                CompileFault::Bailout => {
                    (self.config.cost.opt_compile_fixed, FaultKind::CompileBailout)
                }
                // Completed then rejected as oversized: full cost spent,
                // output discarded.
                CompileFault::Oversize => {
                    let oracle = InlineOracle::with_mode(
                        Arc::clone(&self.rules),
                        self.config.match_mode,
                    );
                    let c = aoci_opt::compile(self.program, method, &oracle, &self.config.opt);
                    (
                        self.config.cost.opt_compile_cost(c.generated_size),
                        FaultKind::CompileOversize,
                    )
                }
            };
            self.charge(Component::CompilationThread, wasted);
            self.emit(TraceEvent::FaultInjected { kind: fault_kind });
            self.handle_compile_failure(method);
            return None;
        }
        let oracle = InlineOracle::with_mode(Arc::clone(&self.rules), self.config.match_mode);
        let compilation = aoci_opt::compile(self.program, method, &oracle, &self.config.opt);
        let cost = self.config.cost.opt_compile_cost(compilation.generated_size);
        self.charge(Component::CompilationThread, cost);
        let rules = Arc::clone(&self.rules);
        Some(self.install_compilation(method, compilation, cost, self.ai_generation, &rules))
    }

    /// Books and installs a finished compilation: database record, trace
    /// events, registry install, guard-window and failure-streak resets, and
    /// unrealized-rule marking. `generation` and `rules` are the AI state
    /// the compiler ran against — for a background compile that is the
    /// dispatch-time snapshot, not the state current at completion.
    fn install_compilation(
        &mut self,
        method: MethodId,
        compilation: aoci_opt::Compilation,
        cost: u64,
        generation: u64,
        rules: &RuleSet,
    ) -> Arc<MethodVersion> {
        self.db.record_compilation(method, &compilation, generation);
        if self.trace.is_some() {
            for d in &compilation.decisions {
                // The context always starts at the decision's own call site.
                let Some(&site) = d.context.first() else { continue };
                self.emit(TraceEvent::InlineDecision {
                    host: method,
                    site,
                    callee: d.callee,
                    guarded: d.guarded,
                    provenance: d.provenance,
                });
            }
            for r in &compilation.refusals {
                self.emit(TraceEvent::InlineRefusal {
                    host: method,
                    site: r.site,
                    callee: r.callee,
                    reason: r.reason.to_string(),
                    hot: r.hot,
                    provenance: r.provenance,
                });
            }
            self.emit(TraceEvent::Compile {
                method,
                generated_size: compilation.generated_size,
                inlines: compilation.decisions.len() as u32,
                guarded: compilation.guarded_count() as u32,
                cycles: cost,
            });
        }
        if let Some(sink) = &self.metrics {
            sink.counter_add("compiles_installed", 1);
            sink.counter_add("inline_decisions", compilation.decisions.len() as u64);
            sink.counter_add("inline_decisions_guarded", compilation.guarded_count() as u64);
            for d in &compilation.decisions {
                // DecisionProvenance carries no rule name, so "per rule"
                // resolves to the rule-backed / speculative split.
                sink.counter_add(
                    if d.provenance.rule_fired {
                        "inline_decisions_rule_backed"
                    } else {
                        "inline_decisions_speculative"
                    },
                    1,
                );
                sink.observe("inline_context_depth", u64::from(d.provenance.context_depth));
            }
            sink.counter_add("inline_refusals", compilation.refusals.len() as u64);
            for r in &compilation.refusals {
                sink.counter_add(&format!("inline_refusals_{}", r.reason.slug()), 1);
            }
            sink.observe("compile_cost_cycles", cost);
            sink.observe("compile_generated_size", u64::from(compilation.generated_size));
        }
        let installed = self.vm.registry_mut().install(compilation.version);
        self.emit(TraceEvent::Install { method, version_id: installed.version_id });
        // A successful install opens a fresh guard-observation window
        // and clears the failure streak.
        self.compile_failures.remove(&method);
        self.guard_window_start.insert(method, self.vm.guard_stats(method));
        self.synthetic_misses.remove(&method);
        // Any rule this compilation was expected to realise but did not
        // is marked unrealized: re-requesting the same compilation under
        // the same rules cannot succeed.
        let mut unrealized: Vec<(CallSiteRef, MethodId)> = Vec::new();
        for rule in rules.iter() {
            let site = rule.trace.immediate_caller();
            let callee = rule.trace.callee();
            let Some(outer) = rule.trace.context().last().map(|c| c.method) else {
                continue;
            };
            if (site.method == method || outer == method)
                && !self.db.has_inlined(method, site, callee)
            {
                unrealized.push((site, callee));
            }
        }
        for (site, callee) in unrealized {
            self.db.mark_unrealized(method, site, callee);
        }
        installed
    }

    /// Handles a hot-loop promotion request from the interpreter: obtain an
    /// optimized version with an OSR entry at the loop's header and transfer
    /// the running baseline activation into it mid-loop.
    ///
    /// Any reason the promotion cannot happen — the method is quarantined,
    /// its recompile budget is spent, the compilation faulted, or the
    /// optimized body keeps no entry point at this header (the loop was
    /// folded away) — denies the request; where a future request could
    /// never fare better, further requests are suppressed so the loop stops
    /// paying back-edge bookkeeping. The activation keeps running baseline:
    /// degraded, never wrong.
    fn on_osr_request(&mut self, req: OsrRequest) {
        self.osr.requests += 1;
        let method = req.method;
        self.emit(TraceEvent::OsrRequest { method, loop_header: req.loop_header });
        if self.quarantined.contains(&method) {
            self.osr.denied += 1;
            self.emit(TraceEvent::OsrDeny { method, reason: OsrDenyReason::Quarantined });
            self.vm.suppress_osr(method);
            return;
        }
        // An optimized version may already be installed (this activation
        // simply predates the install): enter it directly, no compilation.
        let current = self.vm.registry().current(method).cloned();
        if let Some(v) = current.filter(|v| v.level == OptLevel::Optimized) {
            if !self.vm.osr_enter(&v, req.loop_header) {
                // The installed body has no entry at this header; a repeat
                // request against the same version cannot do better.
                self.osr.denied += 1;
                self.emit(TraceEvent::OsrDeny { method, reason: OsrDenyReason::NoEntryPoint });
                self.vm.suppress_osr(method);
            }
            return;
        }
        if self.db.recompiles(method) >= self.config.max_recompiles_per_method {
            self.osr.denied += 1;
            self.emit(TraceEvent::OsrDeny { method, reason: OsrDenyReason::Budget });
            self.vm.suppress_osr(method);
            return;
        }
        // Compile on the spot — the requesting loop is burning baseline
        // cycles right now; waiting for the hot-methods organizer only
        // helps the *next* invocation.
        self.charge(Component::ControllerThread, self.config.controller_cost_per_event);
        self.emit(TraceEvent::RecompilePlan { method, reason: PlanReason::OsrPromotion });
        match self.compile_and_install(method) {
            Some(v) => {
                // The install satisfies any queued plan for this method —
                // in synchronous mode it can be removed silently. Async
                // plans are left alone: the queue owns their lifecycle, and
                // the pending plan (or in-flight compile) will be dropped
                // as stale (already recompiled) with a traced reason.
                if self.config.async_compile.is_none() && self.queued.remove(&method) {
                    self.compile_queue.retain(|&m| m != method);
                }
                if !self.vm.osr_enter(&v, req.loop_header) {
                    // No entry point survived optimization; the next
                    // invocation still benefits from the install.
                    self.osr.denied += 1;
                    self.emit(TraceEvent::OsrDeny {
                        method,
                        reason: OsrDenyReason::NoEntryPoint,
                    });
                    self.vm.suppress_osr(method);
                }
            }
            None => {
                // Injected fault; retry/backoff booked by the failure path.
                self.osr.denied += 1;
                self.emit(TraceEvent::OsrDeny { method, reason: OsrDenyReason::CompileFault });
            }
        }
    }

    // ---- Recovery layer -------------------------------------------------

    /// Counts a rejected profile trace and charges its handling cost.
    fn reject_trace(&mut self) {
        self.recovery.rejected_traces += 1;
        self.charge(Component::Recovery, self.config.recovery.recovery_cost_per_event);
        self.emit(TraceEvent::TraceRejected);
        self.capture_trace_dump();
    }

    /// Applies an injected corruption to a drained trace, if the injector
    /// elects one. Returns the (possibly corrupted) key and weight exactly
    /// as the sanitizer will see them.
    fn maybe_corrupt(&mut self, key: aoci_profile::TraceKey) -> (aoci_profile::TraceKey, f64) {
        let Some(kind) = self.fault.as_mut().and_then(|f| f.corrupt_trace()) else {
            return (key, 1.0);
        };
        self.emit(TraceEvent::FaultInjected { kind: FaultKind::CorruptTrace });
        match kind {
            TraceCorruption::UnknownCallee => {
                let bogus = MethodId::from_index(self.program.num_methods() + 7);
                (TraceKey::new(bogus, key.context().to_vec()), 1.0)
            }
            TraceCorruption::UnknownCallSite => {
                let mut ctx = key.context().to_vec();
                if let Some(first) = ctx.first_mut() {
                    *first = CallSiteRef::new(first.method, SiteIdx(u16::MAX));
                }
                (TraceKey::new(key.callee(), ctx), 1.0)
            }
            TraceCorruption::NanWeight => (key, f64::NAN),
            TraceCorruption::NegativeWeight => (key, -1.0),
        }
    }

    /// Delivers an injected receiver burst: synthetic guard misses against
    /// one deterministically-selected currently-optimized method.
    fn deliver_receiver_burst(&mut self) {
        let Some((misses, selector)) = self.fault.as_mut().and_then(|f| f.receiver_burst())
        else {
            return;
        };
        let mut victims: Vec<MethodId> = self.db.optimized_methods().collect();
        if victims.is_empty() {
            return; // burst fired before anything was optimized: no target
        }
        victims.sort_unstable_by_key(|m| m.index());
        let victim = victims[(selector % victims.len() as u64) as usize];
        *self.synthetic_misses.entry(victim).or_insert(0) += misses;
        self.emit(TraceEvent::FaultInjected { kind: FaultKind::ReceiverBurst });
    }

    /// Scans every currently-optimized method's guard-observation window;
    /// a miss rate above the threshold (over enough checks) invalidates the
    /// optimized version — the method falls back to baseline at its next
    /// invocation, and when [`aoci_vm::VmConfig::osr_enabled`] is set any
    /// in-flight activation of the invalidated version deoptimizes back to
    /// an equivalent baseline frame at its next loop back-edge (OSR-out)
    /// instead of finishing on the stale code.
    ///
    /// Windows *roll*: once a window accumulates enough checks it is judged
    /// and then reset, so a phase shift is detected from the post-shift
    /// window alone rather than being diluted by a long healthy history.
    fn check_guard_health(&mut self) {
        if !self.config.recovery.monitor_guard_health && self.fault.is_none() {
            return;
        }
        let rc = self.config.recovery.clone();
        let mut candidates: Vec<MethodId> = self.db.optimized_methods().collect();
        candidates.sort_unstable_by_key(|m| m.index());
        for m in candidates {
            let stats = self.vm.guard_stats(m);
            let base = self.guard_window_start.get(&m).copied().unwrap_or_default();
            let synth = self.synthetic_misses.get(&m).copied().unwrap_or(0);
            let checks = stats.checks.saturating_sub(base.checks) + synth;
            if checks < rc.guard_miss_min_checks {
                continue;
            }
            let misses = stats.misses.saturating_sub(base.misses) + synth;
            if misses as f64 / checks as f64 > rc.guard_miss_threshold {
                self.invalidate_method(m, &rc);
            } else {
                // Healthy window: start the next one. The recompiled code
                // holds up under the current receiver distribution, so the
                // invalidation streak is over — a later, separate phase
                // shift starts counting from zero rather than compounding
                // toward quarantine.
                self.guard_window_start.insert(m, stats);
                self.synthetic_misses.remove(&m);
                self.invalidation_streaks.remove(&m);
            }
        }
    }

    /// Invalidates `method`'s optimized version (guard thrash): the registry
    /// slot is cleared, the database drops its currently-optimized status
    /// (so the hot-methods organizer may reselect it once the profile has
    /// shifted), and *consecutive* invalidations — without a healthy guard
    /// window in between — quarantine it.
    fn invalidate_method(&mut self, method: MethodId, rc: &RecoveryConfig) {
        if !self.vm.registry_mut().invalidate(method) {
            return; // registry and database out of sync; nothing installed
        }
        self.db.record_invalidation(method);
        self.recovery.invalidations += 1;
        self.charge(Component::Recovery, rc.recovery_cost_per_event);
        self.emit(TraceEvent::Invalidate { method });
        self.capture_trace_dump();
        self.guard_window_start.insert(method, self.vm.guard_stats(method));
        self.synthetic_misses.remove(&method);
        let streak = {
            let s = self.invalidation_streaks.entry(method).or_insert(0);
            *s += 1;
            *s
        };
        if streak >= rc.quarantine_after_failures {
            self.quarantine(method);
        } else if self.db.recompiles(method) < self.config.max_recompiles_per_method {
            // The method was hot enough to compile and is thrashing *now*,
            // so don't wait for the hot organizer to re-notice it: schedule
            // a recompilation after one base backoff — long enough for the
            // post-shift profile to accumulate, short enough to bound the
            // baseline-fallback window. The recompile budget shared with
            // the missing-edge organizer bounds the churn a perpetually
            // phase-flipping method could otherwise generate; past it the
            // method settles at baseline — degraded, stable, correct.
            let due = self.vm.clock().total() + rc.retry_backoff_base_cycles;
            self.emit(TraceEvent::RetryScheduled { method, due_cycle: due });
            self.retry_after.push((due, method));
        }
    }

    /// Books a compile failure of `method`: schedules a retry after
    /// exponential backoff (in simulated cycles, capped), or quarantines the
    /// method once its failure streak reaches the configured limit.
    fn handle_compile_failure(&mut self, method: MethodId) {
        let failures = {
            let streak = self.compile_failures.entry(method).or_insert(0);
            *streak += 1;
            *streak
        };
        let rc = self.config.recovery.clone();
        if failures >= rc.quarantine_after_failures {
            self.quarantine(method);
        } else {
            let backoff = rc
                .retry_backoff_base_cycles
                .saturating_mul(1u64 << (failures - 1).min(20))
                .min(rc.retry_backoff_cap_cycles);
            let due = self.vm.clock().total() + backoff;
            self.retry_after.push((due, method));
            self.recovery.compile_retries += 1;
            self.charge(Component::Recovery, rc.recovery_cost_per_event);
            self.emit(TraceEvent::RetryScheduled { method, due_cycle: due });
            self.capture_trace_dump();
        }
    }

    /// Re-enqueues failed compilations whose backoff deadline has passed.
    fn schedule_due_retries(&mut self) {
        if self.retry_after.is_empty() {
            return;
        }
        let now = self.vm.clock().total();
        let mut due: Vec<MethodId> = Vec::new();
        self.retry_after.retain(|&(deadline, m)| {
            if deadline <= now {
                due.push(m);
                false
            } else {
                true
            }
        });
        for m in due {
            self.controller_enqueue(m, PlanReason::Retry);
        }
    }

    /// Blocks `method` from optimizing compilation for the rest of the run.
    /// Also stops the interpreter raising OSR promotion requests for it —
    /// they could only be denied.
    fn quarantine(&mut self, method: MethodId) {
        if self.quarantined.insert(method) {
            self.recovery.quarantined_methods += 1;
            self.charge(Component::Recovery, self.config.recovery.recovery_cost_per_event);
            self.retry_after.retain(|&(_, m)| m != method);
            self.vm.suppress_osr(method);
            self.emit(TraceEvent::Quarantine { method });
            self.capture_trace_dump();
        }
    }

    fn charge(&mut self, component: Component, cycles: u64) {
        self.vm.clock_mut().charge(component, cycles);
    }

    fn into_report(self, result: Option<aoci_vm::Value>) -> AosReport {
        // Close the time series with an end-of-run snapshot, so the final
        // state is visible even when the run ended mid-epoch.
        self.record_metrics_snapshot();
        let mut async_compile = self.async_events;
        // Compiles still on a worker when the program returned: their work
        // is abandoned — nothing is installed and no cycles are charged
        // (the application never waited on them).
        async_compile.abandoned_in_flight +=
            self.in_flight.iter().filter(|slot| slot.is_some()).count() as u64;
        AosReport {
            result,
            clock: self.vm.clock().clone(),
            optimized_code_size: self.vm.registry().cumulative_optimized_size(),
            current_optimized_size: self.vm.registry().current_optimized_size(),
            opt_compilations: self.vm.registry().opt_compilations(),
            baseline_compilations: self.vm.registry().baseline_compilations(),
            samples: self.sample_count,
            traces_recorded: self.trace_listener.samples_recorded(),
            frames_walked: self.trace_listener.frames_walked(),
            dcg_entries: self.profile.len(),
            final_rules: self.rules.len(),
            trace_stats: self.stats.report(),
            counters: self.vm.counters(),
            compilations: self.db.compilation_log().to_vec(),
            recovery: self.recovery_events(),
            osr: self.osr_events(),
            async_compile,
            trace_log: self.trace.as_ref().map(TraceSink::log),
            telemetry: self.metrics.as_ref().map(MetricsSink::log),
        }
    }

    // ---- Introspection (tests, examples) -------------------------------

    /// The profile store (dynamic call graph) in its current state.
    pub fn profile(&self) -> &dyn ProfileStore {
        self.profile.as_ref()
    }

    /// The current inlining rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The AOS database.
    pub fn database(&self) -> &AosDatabase {
        &self.db
    }

    /// The policy engine (including adaptive per-site state).
    pub fn policy(&self) -> &PolicyEngine {
        &self.policy
    }

    /// A snapshot of the flight recorder, when tracing is configured (also
    /// usable mid-run between [`AosSystem::step`]s).
    pub fn trace_log(&self) -> Option<TraceLog> {
        self.trace.as_ref().map(TraceSink::log)
    }

    /// A snapshot of the telemetry registry, when metrics are configured
    /// (also usable mid-run between [`AosSystem::step`]s).
    pub fn metrics_log(&self) -> Option<MetricsLog> {
        self.metrics.as_ref().map(MetricsSink::log)
    }

    /// OSR activity so far: driver-side request/denial counts merged with
    /// the VM's transition counters (also usable mid-run between
    /// [`AosSystem::step`]s).
    pub fn osr_events(&self) -> OsrEvents {
        let counters = self.vm.counters();
        OsrEvents {
            entries: counters.osr_entries,
            exits: counters.osr_exits,
            ..self.osr
        }
    }

    /// Background-compilation activity so far (also usable mid-run between
    /// [`AosSystem::step`]s). All zeros when async compilation is off.
    pub fn async_events(&self) -> AsyncCompileEvents {
        self.async_events
    }

    /// Recovery actions taken so far, with the injector's delivered-fault
    /// counters merged in (also usable mid-run between [`AosSystem::step`]s).
    pub fn recovery_events(&self) -> RecoveryEvents {
        let mut ev = self.recovery.clone();
        if let Some(f) = &self.fault {
            let inj = f.injected();
            ev.injected_compile_faults = inj.compile_bailouts + inj.oversize_rejections;
            ev.injected_corrupt_traces = inj.corrupted_traces;
            ev.dropped_samples = inj.dropped_samples;
            ev.receiver_bursts = inj.receiver_bursts;
        }
        ev
    }
}

/// The call site through which the sampled frame was entered, if the
/// snapshot exposes a caller: the key the adaptive-resolving policy uses to
/// pick a per-site collection depth.
fn immediate_site(snapshot: &StackSnapshot) -> Option<CallSiteRef> {
    let caller = snapshot.frames.get(1)?;
    Some(CallSiteRef::new(caller.method, caller.callsite_to_inner?))
}

#[cfg(test)]
mod tests;
