//! The AOS driver: the online feedback loop of paper Figure 3.

use crate::config::AosConfig;
use crate::database::AosDatabase;
use crate::report::AosReport;
use aoci_core::{InlineOracle, PolicyEngine, RuleSet};
use aoci_ir::{CallSiteRef, MethodId, Program};
use aoci_profile::{CallingContextTree, Dcg, MethodListener, ProfileStore, TraceListener, TraceStatsCollector};
use aoci_vm::{Component, RunOutcome, StackSnapshot, Vm, VmError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// The complete adaptive optimization system: VM, listeners, organizers,
/// controller, compilation thread and the AOS database, on one simulated
/// clock.
#[derive(Debug)]
pub struct AosSystem<'p> {
    program: &'p Program,
    config: AosConfig,
    vm: Vm<'p>,
    policy: PolicyEngine,
    method_listener: MethodListener,
    trace_listener: TraceListener,
    profile: Box<dyn ProfileStore>,
    rules: Arc<RuleSet>,
    db: AosDatabase,
    method_samples: HashMap<MethodId, u32>,
    total_method_samples: u64,
    /// AI-organizer run counter; the generation at which each trace first
    /// became a hot rule gates the missing-edge organizer ("the edge became
    /// hot after the method was last compiled", paper Section 3.2).
    ai_generation: u64,
    first_hot: HashMap<aoci_profile::TraceKey, u64>,
    compile_queue: VecDeque<MethodId>,
    queued: HashSet<MethodId>,
    sample_count: u64,
    stats: TraceStatsCollector,
    /// Set once the program returns from its entry point.
    finished: Option<Option<aoci_vm::Value>>,
}

impl<'p> AosSystem<'p> {
    /// Creates a system ready to run `program` under `config`.
    pub fn new(program: &'p Program, config: AosConfig) -> Self {
        let vm = Vm::with_config(program, config.cost.clone(), config.vm.clone());
        let mut policy = PolicyEngine::with_adaptive_config(config.policy, config.adaptive);
        if matches!(config.policy, aoci_core::PolicyKind::IdealApprox { .. }) {
            policy.set_dependence(aoci_core::DependenceAnalysis::analyze(program));
        }
        let profile: Box<dyn ProfileStore> = match config.profile_backend {
            crate::config::ProfileBackend::FlatTraces => Box::new(Dcg::new(config.dcg)),
            crate::config::ProfileBackend::ContextTree => {
                Box::new(CallingContextTree::new(config.dcg.prune_epsilon))
            }
        };
        AosSystem {
            program,
            vm,
            policy,
            method_listener: MethodListener::new(),
            trace_listener: TraceListener::new(),
            profile,
            rules: Arc::new(RuleSet::new()),
            db: AosDatabase::new(),
            method_samples: HashMap::new(),
            total_method_samples: 0,
            ai_generation: 0,
            first_hot: HashMap::new(),
            compile_queue: VecDeque::new(),
            queued: HashSet::new(),
            sample_count: 0,
            stats: TraceStatsCollector::new(),
            finished: None,
            config,
        }
    }

    /// Seeds the profile store with offline-gathered trace data (e.g. a
    /// [`aoci_profile::SavedProfile`] from a training run), emulating the
    /// classic offline profile-directed pipeline the paper's related work
    /// describes. Rules form at the first AI-organizer tick, so hot methods
    /// compile with good inlining decisions immediately instead of after a
    /// warm-up.
    pub fn seed_profile(&mut self, entries: impl IntoIterator<Item = (aoci_profile::TraceKey, f64)>) {
        for (k, w) in entries {
            self.profile.record(k, w);
        }
    }

    /// Runs the program to completion under adaptive optimization.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises (a fault in optimized
    /// code would indicate a compiler bug — the test suite leans on this).
    pub fn run(self) -> Result<AosReport, VmError> {
        self.run_detailed().map(|(report, _)| report)
    }

    /// Like [`AosSystem::run`], but also returns the final [`AosDatabase`]
    /// so callers can inspect the full inline-decision and refusal logs.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises.
    pub fn run_detailed(self) -> Result<(AosReport, AosDatabase), VmError> {
        self.run_full().map(|(r, db, _)| (r, db))
    }

    /// Like [`AosSystem::run_detailed`], but additionally returns the final
    /// trace profile — suitable for saving as an offline profile (see
    /// [`aoci_profile::SavedProfile`] and the `offline_profile` example).
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises.
    pub fn run_full(
        mut self,
    ) -> Result<(AosReport, AosDatabase, Vec<(aoci_profile::TraceKey, f64)>), VmError> {
        while self.step()? {}
        let result = self.finished.expect("loop ran to completion");
        let db = self.db.clone();
        let profile = self.profile.entries();
        Ok((self.into_report(result), db, profile))
    }

    /// Advances execution to the next timer sample (processing it through
    /// the listeners/organizers/compilation pipeline) or to program
    /// completion. Returns `false` once the program has finished; the
    /// introspection accessors ([`AosSystem::profile`],
    /// [`AosSystem::rules`], [`AosSystem::database`],
    /// [`AosSystem::policy`]) remain usable between steps.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] the program raises.
    pub fn step(&mut self) -> Result<bool, VmError> {
        if self.finished.is_some() {
            return Ok(false);
        }
        match self.vm.run(u64::MAX)? {
            RunOutcome::Finished(result) => {
                self.finished = Some(result);
                Ok(false)
            }
            RunOutcome::Sample(snapshot) => {
                self.on_sample(&snapshot);
                Ok(true)
            }
            RunOutcome::BudgetExhausted => unreachable!("unbounded budget"),
        }
    }

    /// One timer tick: listeners record, organizers run on their cadences,
    /// the controller plans, the compilation thread compiles and installs.
    fn on_sample(&mut self, snapshot: &StackSnapshot) {
        self.sample_count += 1;

        // --- Listeners -------------------------------------------------
        self.method_listener.on_sample(snapshot);
        let site = immediate_site(snapshot);
        let max = self.policy.max_context_for(site);
        let walked = {
            let policy = &self.policy;
            let program = self.program;
            self.trace_listener
                .on_sample(snapshot, max, |m| policy.keep_extending(program, m))
        };
        let listener_cycles = self.config.cost.sample_cost(walked + 1);
        self.vm.clock_mut().charge(Component::Listeners, listener_cycles);
        if snapshot.top_in_prologue {
            self.stats.observe(snapshot, self.program);
        }

        // --- Organizers (periodic) --------------------------------------
        if self.sample_count % self.config.organizer_period_samples == 0 {
            self.hot_methods_organizer();
            self.dcg_and_ai_organizer();
        }
        if self.sample_count % self.config.decay_period_samples == 0 {
            self.decay_organizer();
        }
        if self.sample_count % self.config.missing_edge_period_samples == 0 {
            self.missing_edge_organizer();
        }

        // --- Compilation thread -----------------------------------------
        self.process_compile_queue();
    }

    /// Aggregates method samples; methods crossing the hotness threshold
    /// are handed to the controller for (first) optimizing compilation.
    fn hot_methods_organizer(&mut self) {
        let drained = self.method_listener.drain();
        self.charge(
            Component::MethodSampleOrganizer,
            self.config.organizer_cost_per_item * drained.len() as u64,
        );
        for m in drained {
            *self.method_samples.entry(m).or_insert(0) += 1;
            self.total_method_samples += 1;
        }
        let min_share =
            (self.config.hot_method_fraction * self.total_method_samples as f64) as u32;
        let hot: Vec<MethodId> = self
            .method_samples
            .iter()
            .filter(|&(&m, &count)| {
                count >= self.config.hot_method_samples.max(min_share)
                    && !self.db.is_optimized(m)
                    && !self.queued.contains(&m)
            })
            .map(|(&m, _)| m)
            .collect();
        for m in hot {
            self.controller_enqueue(m);
        }
    }

    /// Folds trace buffers into the DCG and regenerates inlining rules from
    /// traces above the hot threshold; feeds the adaptive-resolving policy.
    fn dcg_and_ai_organizer(&mut self) {
        let traces = self.trace_listener.drain();
        self.charge(
            Component::AiOrganizer,
            self.config.organizer_cost_per_item * (traces.len() + self.profile.len()) as u64,
        );
        for t in traces {
            self.profile.record(t, 1.0);
        }
        self.ai_generation += 1;
        self.rules =
            Arc::new(RuleSet::from_hot_traces(self.profile.hot(self.config.hot_edge_threshold)));
        for rule in self.rules.iter() {
            self.first_hot
                .entry(rule.trace.clone())
                .or_insert(self.ai_generation);
        }
        self.policy.adaptive_feedback(self.profile.as_ref());
    }

    /// Ages the DCG toward recent behaviour (phase-shift adaptation).
    fn decay_organizer(&mut self) {
        self.charge(
            Component::DecayOrganizer,
            self.config.organizer_cost_per_item * self.profile.len() as u64,
        );
        self.profile.decay(self.config.decay_factor);
    }

    /// Returns `true` if `method` currently satisfies the hot-method
    /// criterion (same test the hot-methods organizer applies).
    fn is_hot_method(&self, method: MethodId) -> bool {
        let min_share =
            (self.config.hot_method_fraction * self.total_method_samples as f64) as u32;
        self.method_samples
            .get(&method)
            .is_some_and(|&c| c >= self.config.hot_method_samples.max(min_share))
    }

    /// Requests recompilation of *hot* optimized methods for which new hot,
    /// uninlined, unrefused rules have appeared since their last
    /// compilation (paper: "examines the current set of hot optimized
    /// methods and inlining rules").
    fn missing_edge_organizer(&mut self) {
        self.charge(
            Component::MissingEdgeOrganizer,
            self.config.organizer_cost_per_item * self.rules.len() as u64,
        );
        let mut to_queue: Vec<MethodId> = Vec::new();
        for rule in self.rules.iter() {
            let site = rule.trace.immediate_caller();
            let callee = rule.trace.callee();
            let became_hot_at = self
                .first_hot
                .get(&rule.trace)
                .copied()
                .unwrap_or(self.ai_generation);
            // A rule can be realised by compiling its immediate caller, or
            // by a deeper compilation rooted at the outermost context
            // method; check both hosts. A host is reconsidered only when
            // the rule became hot *after* its last compilation (the paper's
            // condition) and the oracle's partial-match intersection would
            // actually yield the callee in the context that compilation
            // presents.
            let outer = rule
                .trace
                .context()
                .last()
                .expect("traces have context")
                .method;
            for (host, ctx) in [
                (site.method, &rule.trace.context()[..1]),
                (outer, rule.trace.context()),
            ] {
                // The outer host is only worth recompiling once its code
                // already contains the rule's immediate caller; until then
                // the caller's own edge rule is the effective trigger.
                let chain_present =
                    host == site.method || self.db.inlines_method(host, site.method);
                if chain_present
                    && self.db.is_optimized(host)
                    && self.is_hot_method(host)
                    && self.db.compiled_generation(host) < Some(became_hot_at)
                    && !self.db.has_inlined(host, site, callee)
                    && !self.db.was_refused(site, callee)
                    && !self.db.is_unrealized(host, site, callee)
                    && self.db.recompiles(host) < self.config.max_recompiles_per_method
                    && !self.queued.contains(&host)
                    && !to_queue.contains(&host)
                    && self.rules.candidates(ctx).iter().any(|&(c, _)| c == callee)
                {
                    to_queue.push(host);
                }
            }
        }
        for m in to_queue {
            self.controller_enqueue(m);
        }
    }

    /// The controller: accepts an organizer event and creates a compilation
    /// plan (the oracle snapshot is taken when the plan executes).
    fn controller_enqueue(&mut self, method: MethodId) {
        self.charge(Component::ControllerThread, self.config.controller_cost_per_event);
        if self.queued.insert(method) {
            self.compile_queue.push_back(method);
        }
    }

    /// The compilation thread: executes queued plans, charging compile
    /// cycles and installing the resulting code (effective at each method's
    /// next invocation).
    fn process_compile_queue(&mut self) {
        while let Some(method) = self.compile_queue.pop_front() {
            self.queued.remove(&method);
            let oracle =
                InlineOracle::with_mode(Arc::clone(&self.rules), self.config.match_mode);
            let compilation =
                aoci_opt::compile(self.program, method, &oracle, &self.config.opt);
            self.charge(
                Component::CompilationThread,
                self.config.cost.opt_compile_cost(compilation.generated_size),
            );
            self.db
                .record_compilation(method, &compilation, self.ai_generation);
            self.vm.registry_mut().install(compilation.version);
            // Any rule this compilation was expected to realise but did not
            // is marked unrealized: re-requesting the same compilation under
            // the same rules cannot succeed.
            let mut unrealized: Vec<(CallSiteRef, MethodId)> = Vec::new();
            for rule in self.rules.iter() {
                let site = rule.trace.immediate_caller();
                let callee = rule.trace.callee();
                let outer = rule.trace.context().last().expect("non-empty").method;
                if (site.method == method || outer == method)
                    && !self.db.has_inlined(method, site, callee)
                {
                    unrealized.push((site, callee));
                }
            }
            for (site, callee) in unrealized {
                self.db.mark_unrealized(method, site, callee);
            }
        }
    }

    fn charge(&mut self, component: Component, cycles: u64) {
        self.vm.clock_mut().charge(component, cycles);
    }

    fn into_report(self, result: Option<aoci_vm::Value>) -> AosReport {
        AosReport {
            result,
            clock: self.vm.clock().clone(),
            optimized_code_size: self.vm.registry().cumulative_optimized_size(),
            current_optimized_size: self.vm.registry().current_optimized_size(),
            opt_compilations: self.vm.registry().opt_compilations(),
            baseline_compilations: self.vm.registry().baseline_compilations(),
            samples: self.sample_count,
            traces_recorded: self.trace_listener.samples_recorded(),
            frames_walked: self.trace_listener.frames_walked(),
            dcg_entries: self.profile.len(),
            final_rules: self.rules.len(),
            trace_stats: self.stats.report(),
            counters: self.vm.counters(),
            compilations: self.db.compilation_log().to_vec(),
        }
    }

    // ---- Introspection (tests, examples) -------------------------------

    /// The profile store (dynamic call graph) in its current state.
    pub fn profile(&self) -> &dyn ProfileStore {
        self.profile.as_ref()
    }

    /// The current inlining rules.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The AOS database.
    pub fn database(&self) -> &AosDatabase {
        &self.db
    }

    /// The policy engine (including adaptive per-site state).
    pub fn policy(&self) -> &PolicyEngine {
        &self.policy
    }
}

/// The call site through which the sampled frame was entered, if the
/// snapshot exposes a caller: the key the adaptive-resolving policy uses to
/// pick a per-site collection depth.
fn immediate_site(snapshot: &StackSnapshot) -> Option<CallSiteRef> {
    let caller = snapshot.frames.get(1)?;
    Some(CallSiteRef::new(caller.method, caller.callsite_to_inner?))
}

#[cfg(test)]
mod tests;
