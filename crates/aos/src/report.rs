//! The end-of-run report: everything the evaluation harness needs to
//! reproduce the paper's Figures 4–6 and summary statistics, plus hand-
//! written `aoci-json` conversions for persisting a report.

use crate::database::CompilationRecord;
use aoci_ir::MethodId;
use aoci_json::Value as Json;
use aoci_profile::TraceStatsReport;
use aoci_telemetry::MetricsLog;
use aoci_trace::TraceLog;
use aoci_vm::{Clock, Component, ExecCounters, Value, COMPONENTS};

/// Everything the recovery layer did during a run — the degradation story
/// of a faulted execution. All zeros (and an empty dump) in an unfaulted,
/// healthy run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryEvents {
    /// Optimized versions invalidated for guard thrash (the method fell
    /// back to baseline at its next invocation).
    pub invalidations: u64,
    /// Compile retries scheduled after failed compilations.
    pub compile_retries: u64,
    /// Methods quarantined (blocked from optimizing compilation) after
    /// repeated failures or invalidations.
    pub quarantined_methods: u64,
    /// Profile traces rejected by sanitization at the store boundary.
    pub rejected_traces: u64,
    /// Injected compile-thread faults (bailouts + oversize rejections).
    pub injected_compile_faults: u64,
    /// Injected corrupt traces handed to the sanitizer.
    pub injected_corrupt_traces: u64,
    /// Timer samples lost to injected sampler dropout.
    pub dropped_samples: u64,
    /// Adversarial receiver bursts delivered.
    pub receiver_bursts: u64,
    /// When flight-recorder tracing is on: the rendered last-N events as of
    /// the most recent recovery action — the automatic post-mortem context
    /// for "why did the system degrade here?". Empty when tracing is off or
    /// no recovery action fired.
    pub trace_dump: Vec<String>,
}

impl RecoveryEvents {
    /// Total recovery actions taken (the system *reacting*, as opposed to
    /// the injected-fault counters which record the adversary acting).
    pub fn total_actions(&self) -> u64 {
        self.invalidations + self.compile_retries + self.quarantined_methods + self.rejected_traces
    }

    /// Total faults the adversary delivered (the injected-side mirror of
    /// [`RecoveryEvents::total_actions`]).
    pub fn total_injected(&self) -> u64 {
        self.injected_compile_faults
            + self.injected_corrupt_traces
            + self.dropped_samples
            + self.receiver_bursts
    }

    /// Serializes to an `aoci-json` object (every counter plus the dump).
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("invalidations".to_string(), Json::from(self.invalidations)),
            ("compile_retries".to_string(), Json::from(self.compile_retries)),
            ("quarantined_methods".to_string(), Json::from(self.quarantined_methods)),
            ("rejected_traces".to_string(), Json::from(self.rejected_traces)),
            ("injected_compile_faults".to_string(), Json::from(self.injected_compile_faults)),
            ("injected_corrupt_traces".to_string(), Json::from(self.injected_corrupt_traces)),
            ("dropped_samples".to_string(), Json::from(self.dropped_samples)),
            ("receiver_bursts".to_string(), Json::from(self.receiver_bursts)),
            (
                "trace_dump".to_string(),
                Json::Arr(self.trace_dump.iter().map(|s| Json::from(s.as_str())).collect()),
            ),
        ])
    }

    /// Inverse of [`RecoveryEvents::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Json) -> Option<Self> {
        Some(RecoveryEvents {
            invalidations: v.get("invalidations")?.as_u64()?,
            compile_retries: v.get("compile_retries")?.as_u64()?,
            quarantined_methods: v.get("quarantined_methods")?.as_u64()?,
            rejected_traces: v.get("rejected_traces")?.as_u64()?,
            injected_compile_faults: v.get("injected_compile_faults")?.as_u64()?,
            injected_corrupt_traces: v.get("injected_corrupt_traces")?.as_u64()?,
            dropped_samples: v.get("dropped_samples")?.as_u64()?,
            receiver_bursts: v.get("receiver_bursts")?.as_u64()?,
            trace_dump: v
                .get("trace_dump")?
                .as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<String>>>()?,
        })
    }
}

/// On-stack-replacement activity of a run: what the VM asked for, what the
/// driver granted, and the transitions actually performed. All zeros when
/// OSR is disabled (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OsrEvents {
    /// Promotion requests the VM raised (hot baseline loops).
    pub requests: u64,
    /// Requests the driver declined (quarantined method, recompile budget
    /// exhausted, or no usable OSR entry point).
    pub denied: u64,
    /// OSR-in transitions performed: baseline activations promoted into
    /// optimized code mid-loop.
    pub entries: u64,
    /// OSR-out transitions performed: optimized activations deoptimized
    /// back to baseline mid-loop (invalidation or frame-local thrash).
    pub exits: u64,
}

impl OsrEvents {
    /// Serializes to an `aoci-json` object.
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("requests".to_string(), Json::from(self.requests)),
            ("denied".to_string(), Json::from(self.denied)),
            ("entries".to_string(), Json::from(self.entries)),
            ("exits".to_string(), Json::from(self.exits)),
        ])
    }

    /// Inverse of [`OsrEvents::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Json) -> Option<Self> {
        Some(OsrEvents {
            requests: v.get("requests")?.as_u64()?,
            denied: v.get("denied")?.as_u64()?,
            entries: v.get("entries")?.as_u64()?,
            exits: v.get("exits")?.as_u64()?,
        })
    }
}

/// Background-compilation activity of a run: queue traffic, staleness
/// drops, backpressure, and the overlap/stall split of compile cycles. All
/// zeros when asynchronous compilation is disabled (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AsyncCompileEvents {
    /// Plans accepted into the priority queue.
    pub enqueued: u64,
    /// Plans handed to a worker (includes compiles that later faulted).
    pub dispatched: u64,
    /// Compiles that ran to completion (installed, or booked as a failure).
    pub completed: u64,
    /// Plans dropped at dequeue because the world moved on while they
    /// waited: quarantined, already recompiled, or no longer hot.
    pub stale_drops: u64,
    /// Plans dropped (incoming or evicted) because the bounded queue was
    /// full — the backpressure counter.
    pub queue_full_drops: u64,
    /// Compiles still in flight when the program finished; their work is
    /// abandoned, not installed.
    pub abandoned_in_flight: u64,
    /// High-water mark of the pending queue.
    pub max_queue_depth: u64,
    /// Compile cycles that overlapped application execution (the win from
    /// going asynchronous: the app ran baseline or stale code meanwhile).
    pub background_overlap_cycles: u64,
    /// Compile cycles the application had to wait out — the unoverlapped
    /// remainder, charged to the compilation thread as in synchronous mode.
    pub foreground_stall_cycles: u64,
}

impl AsyncCompileEvents {
    /// Serializes to an `aoci-json` object.
    pub fn to_value(&self) -> Json {
        Json::obj([
            ("enqueued".to_string(), Json::from(self.enqueued)),
            ("dispatched".to_string(), Json::from(self.dispatched)),
            ("completed".to_string(), Json::from(self.completed)),
            ("stale_drops".to_string(), Json::from(self.stale_drops)),
            ("queue_full_drops".to_string(), Json::from(self.queue_full_drops)),
            ("abandoned_in_flight".to_string(), Json::from(self.abandoned_in_flight)),
            ("max_queue_depth".to_string(), Json::from(self.max_queue_depth)),
            ("background_overlap_cycles".to_string(), Json::from(self.background_overlap_cycles)),
            ("foreground_stall_cycles".to_string(), Json::from(self.foreground_stall_cycles)),
        ])
    }

    /// Inverse of [`AsyncCompileEvents::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Json) -> Option<Self> {
        Some(AsyncCompileEvents {
            enqueued: v.get("enqueued")?.as_u64()?,
            dispatched: v.get("dispatched")?.as_u64()?,
            completed: v.get("completed")?.as_u64()?,
            stale_drops: v.get("stale_drops")?.as_u64()?,
            queue_full_drops: v.get("queue_full_drops")?.as_u64()?,
            abandoned_in_flight: v.get("abandoned_in_flight")?.as_u64()?,
            max_queue_depth: v.get("max_queue_depth")?.as_u64()?,
            background_overlap_cycles: v.get("background_overlap_cycles")?.as_u64()?,
            foreground_stall_cycles: v.get("foreground_stall_cycles")?.as_u64()?,
        })
    }
}

/// Metrics of one complete AOS run.
#[derive(Clone, Debug)]
pub struct AosReport {
    /// The program's return value.
    pub result: Option<Value>,
    /// Full per-component cycle breakdown (Figure 6 source data).
    pub clock: Clock,
    /// Cumulative abstract size of all optimized code generated (Figure 5
    /// metric).
    pub optimized_code_size: u64,
    /// Abstract size of the currently-installed optimized versions.
    pub current_optimized_size: u64,
    /// Optimizing compilations performed.
    pub opt_compilations: u32,
    /// Baseline compilations performed (= methods dynamically compiled).
    pub baseline_compilations: u32,
    /// Timer samples taken.
    pub samples: u64,
    /// Trace samples recorded (prologue samples with a caller).
    pub traces_recorded: u64,
    /// Total stack frames walked by the trace listener.
    pub frames_walked: u64,
    /// Distinct traces in the final DCG.
    pub dcg_entries: usize,
    /// Inlining rules active at the end of the run.
    pub final_rules: usize,
    /// Section 4 trace-walk statistics.
    pub trace_stats: TraceStatsReport,
    /// Dynamic execution counters (guards, dispatches).
    pub counters: ExecCounters,
    /// Every optimizing compilation performed, in order.
    pub compilations: Vec<CompilationRecord>,
    /// What the recovery layer did (invalidations, retries, quarantines,
    /// rejected traces) and what the fault injector delivered.
    pub recovery: RecoveryEvents,
    /// On-stack-replacement activity (requests, grants, transitions).
    pub osr: OsrEvents,
    /// Background-compilation activity (queue traffic, staleness drops,
    /// overlap/stall accounting).
    pub async_compile: AsyncCompileEvents,
    /// The flight recorder's final log, when tracing was on. Excluded from
    /// [`AosReport::to_value`] — events are exported through their own
    /// sinks (Chrome trace, rendered lines), not the metrics JSON.
    pub trace_log: Option<TraceLog>,
    /// The telemetry registry's final log (time series + histograms), when
    /// metrics were on. Excluded from [`AosReport::to_value`] — snapshots
    /// are exported through their own sinks (JSONL, Prometheus text,
    /// dashboards), keeping the primary report bytes identical on/off.
    pub telemetry: Option<MetricsLog>,
}

impl AosReport {
    /// Total simulated cycles — the wall-clock analogue for speedup
    /// computations (includes application, compilation and AOS overhead, as
    /// wall-clock time does).
    pub fn total_cycles(&self) -> u64 {
        self.clock.total()
    }

    /// Cycles spent in the optimizing compilation thread.
    pub fn compile_cycles(&self) -> u64 {
        self.clock.component(Component::CompilationThread)
    }

    /// Fraction of execution spent in a component (a Figure 6 bar segment).
    pub fn fraction(&self, c: Component) -> f64 {
        self.clock.fraction(c)
    }

    /// Total AOS overhead cycles (all non-application components except
    /// baseline compilation).
    pub fn aos_overhead(&self) -> u64 {
        self.clock.aos_overhead()
    }

    /// Guard-miss rate (misses / checks), 0 when no guards executed.
    pub fn guard_miss_rate(&self) -> f64 {
        if self.counters.guard_checks == 0 {
            0.0
        } else {
            self.counters.guard_misses as f64 / self.counters.guard_checks as f64
        }
    }

    /// Flight-recorder summary, when tracing was on: `(emitted, dropped,
    /// distinct kinds retained)`.
    pub fn trace_summary(&self) -> Option<(u64, u64, usize)> {
        let log = self.trace_log.as_ref()?;
        Some((log.emitted, log.dropped, log.kinds().len()))
    }

    /// Serializes the report to an `aoci-json` object.
    ///
    /// Two fields do not round-trip exactly: a [`Value::Ref`] result (a
    /// heap reference has no meaning outside its run — it deserializes as
    /// `None`) and [`AosReport::trace_log`] (exported through its own
    /// sinks; deserializes as `None`). Everything else is exact.
    pub fn to_value(&self) -> Json {
        let result = match &self.result {
            None => Json::Null,
            Some(Value::Null) => Json::obj([("kind".to_string(), Json::from("null"))]),
            Some(Value::Int(i)) => Json::obj([
                ("kind".to_string(), Json::from("int")),
                ("value".to_string(), Json::from(*i)),
            ]),
            Some(Value::Ref(_)) => Json::obj([("kind".to_string(), Json::from("ref"))]),
        };
        let clock = Json::obj(
            COMPONENTS
                .iter()
                .map(|&c| (c.to_string(), Json::from(self.clock.component(c)))),
        );
        let counters = Json::obj([
            ("calls".to_string(), Json::from(self.counters.calls)),
            ("virtual_dispatches".to_string(), Json::from(self.counters.virtual_dispatches)),
            ("guard_checks".to_string(), Json::from(self.counters.guard_checks)),
            ("guard_misses".to_string(), Json::from(self.counters.guard_misses)),
            ("osr_entries".to_string(), Json::from(self.counters.osr_entries)),
            ("osr_exits".to_string(), Json::from(self.counters.osr_exits)),
        ]);
        let stats = Json::obj([
            ("samples".to_string(), Json::from(self.trace_stats.samples)),
            (
                "immediately_parameterless".to_string(),
                Json::from(self.trace_stats.immediately_parameterless),
            ),
            (
                "parameterless_within_5".to_string(),
                Json::from(self.trace_stats.parameterless_within_5),
            ),
            (
                "class_method_within_2".to_string(),
                Json::from(self.trace_stats.class_method_within_2),
            ),
            (
                "large_at_or_beyond_4".to_string(),
                Json::from(self.trace_stats.large_at_or_beyond_4),
            ),
        ]);
        let compilations = Json::Arr(
            self.compilations
                .iter()
                .map(|c| {
                    Json::obj([
                        ("method".to_string(), Json::from(c.method.index() as u64)),
                        ("generated_size".to_string(), Json::from(c.generated_size)),
                        ("inlines".to_string(), Json::from(c.inlines)),
                        ("guarded".to_string(), Json::from(c.guarded)),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("result".to_string(), result),
            ("clock".to_string(), clock),
            ("optimized_code_size".to_string(), Json::from(self.optimized_code_size)),
            ("current_optimized_size".to_string(), Json::from(self.current_optimized_size)),
            ("opt_compilations".to_string(), Json::from(self.opt_compilations)),
            ("baseline_compilations".to_string(), Json::from(self.baseline_compilations)),
            ("samples".to_string(), Json::from(self.samples)),
            ("traces_recorded".to_string(), Json::from(self.traces_recorded)),
            ("frames_walked".to_string(), Json::from(self.frames_walked)),
            ("dcg_entries".to_string(), Json::from(self.dcg_entries as u64)),
            ("final_rules".to_string(), Json::from(self.final_rules as u64)),
            ("trace_stats".to_string(), stats),
            ("counters".to_string(), counters),
            ("compilations".to_string(), compilations),
            ("recovery".to_string(), self.recovery.to_value()),
            ("osr".to_string(), self.osr.to_value()),
            ("async_compile".to_string(), self.async_compile.to_value()),
        ])
    }

    /// Inverse of [`AosReport::to_value`]; `None` on shape mismatch. The
    /// rebuilt clock recharges every component, so totals and fractions
    /// match the original exactly.
    pub fn from_value(v: &Json) -> Option<Self> {
        let result = match v.get("result")? {
            Json::Null => None,
            r => match r.get("kind")?.as_str()? {
                "null" => Some(Value::Null),
                "int" => Some(Value::Int(r.get("value")?.as_i64()?)),
                "ref" => None, // heap references do not survive the run
                _ => return None,
            },
        };
        let clock_obj = v.get("clock")?;
        let mut clock = Clock::new();
        for &c in COMPONENTS.iter() {
            clock.charge(c, clock_obj.get(&c.to_string())?.as_u64()?);
        }
        let co = v.get("counters")?;
        let counters = ExecCounters {
            calls: co.get("calls")?.as_u64()?,
            virtual_dispatches: co.get("virtual_dispatches")?.as_u64()?,
            guard_checks: co.get("guard_checks")?.as_u64()?,
            guard_misses: co.get("guard_misses")?.as_u64()?,
            osr_entries: co.get("osr_entries")?.as_u64()?,
            osr_exits: co.get("osr_exits")?.as_u64()?,
        };
        let st = v.get("trace_stats")?;
        let trace_stats = TraceStatsReport {
            samples: st.get("samples")?.as_u64()?,
            immediately_parameterless: st.get("immediately_parameterless")?.as_f64()?,
            parameterless_within_5: st.get("parameterless_within_5")?.as_f64()?,
            class_method_within_2: st.get("class_method_within_2")?.as_f64()?,
            large_at_or_beyond_4: st.get("large_at_or_beyond_4")?.as_f64()?,
        };
        let compilations = v
            .get("compilations")?
            .as_arr()?
            .iter()
            .map(|c| {
                Some(CompilationRecord {
                    method: MethodId::from_index(c.get("method")?.as_u64()? as usize),
                    generated_size: c.get("generated_size")?.as_u64()? as u32,
                    inlines: c.get("inlines")?.as_u64()? as u32,
                    guarded: c.get("guarded")?.as_u64()? as u32,
                })
            })
            .collect::<Option<Vec<CompilationRecord>>>()?;
        Some(AosReport {
            result,
            clock,
            optimized_code_size: v.get("optimized_code_size")?.as_u64()?,
            current_optimized_size: v.get("current_optimized_size")?.as_u64()?,
            opt_compilations: v.get("opt_compilations")?.as_u64()? as u32,
            baseline_compilations: v.get("baseline_compilations")?.as_u64()? as u32,
            samples: v.get("samples")?.as_u64()?,
            traces_recorded: v.get("traces_recorded")?.as_u64()?,
            frames_walked: v.get("frames_walked")?.as_u64()?,
            dcg_entries: v.get("dcg_entries")?.as_u64()? as usize,
            final_rules: v.get("final_rules")?.as_u64()? as usize,
            trace_stats,
            counters,
            compilations,
            recovery: RecoveryEvents::from_value(v.get("recovery")?)?,
            osr: OsrEvents::from_value(v.get("osr")?)?,
            async_compile: AsyncCompileEvents::from_value(v.get("async_compile")?)?,
            trace_log: None,
            telemetry: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_report() -> AosReport {
        let mut clock = Clock::new();
        clock.charge(Component::AppOptimized, 900);
        clock.charge(Component::CompilationThread, 100);
        clock.charge(Component::Recovery, 40);
        clock.charge(Component::Osr, 25);
        AosReport {
            result: Some(Value::Int(-42)),
            clock,
            optimized_code_size: 310,
            current_optimized_size: 180,
            opt_compilations: 3,
            baseline_compilations: 7,
            samples: 55,
            traces_recorded: 31,
            frames_walked: 96,
            dcg_entries: 12,
            final_rules: 4,
            trace_stats: TraceStatsReport {
                samples: 31,
                immediately_parameterless: 0.25,
                parameterless_within_5: 0.75,
                class_method_within_2: 0.5,
                large_at_or_beyond_4: 0.125,
            },
            counters: ExecCounters {
                calls: 1000,
                virtual_dispatches: 400,
                guard_checks: 64,
                guard_misses: 9,
                osr_entries: 2,
                osr_exits: 1,
            },
            compilations: vec![
                CompilationRecord {
                    method: MethodId::from_index(4),
                    generated_size: 120,
                    inlines: 3,
                    guarded: 1,
                },
                CompilationRecord {
                    method: MethodId::from_index(9),
                    generated_size: 60,
                    inlines: 0,
                    guarded: 0,
                },
            ],
            recovery: RecoveryEvents {
                invalidations: 2,
                compile_retries: 3,
                quarantined_methods: 1,
                rejected_traces: 4,
                injected_compile_faults: 5,
                injected_corrupt_traces: 6,
                dropped_samples: 7,
                receiver_bursts: 8,
                trace_dump: vec![
                    "#10 @900 invalidate method=\"hot\"".to_string(),
                    "#11 @940 quarantine method=\"hot\"".to_string(),
                ],
            },
            osr: OsrEvents { requests: 9, denied: 3, entries: 2, exits: 1 },
            async_compile: AsyncCompileEvents {
                enqueued: 11,
                dispatched: 9,
                completed: 8,
                stale_drops: 2,
                queue_full_drops: 1,
                abandoned_in_flight: 1,
                max_queue_depth: 5,
                background_overlap_cycles: 700,
                foreground_stall_cycles: 300,
            },
            trace_log: None,
            telemetry: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let mut r = populated_report();
        r.recovery = RecoveryEvents::default();
        r.osr = OsrEvents::default();
        assert_eq!(r.total_cycles(), 1065);
        assert_eq!(r.compile_cycles(), 100);
        assert!((r.fraction(Component::CompilationThread) - 100.0 / 1065.0).abs() < 1e-12);
        assert!((r.guard_miss_rate() - 9.0 / 64.0).abs() < 1e-12);
        assert_eq!(r.aos_overhead(), 165);
        assert_eq!(r.trace_summary(), None);
    }

    #[test]
    fn recovery_actions_exclude_injected_counters_and_dump() {
        let ev = RecoveryEvents {
            invalidations: 1,
            compile_retries: 2,
            quarantined_methods: 3,
            rejected_traces: 4,
            injected_compile_faults: 100,
            injected_corrupt_traces: 200,
            dropped_samples: 300,
            receiver_bursts: 400,
            trace_dump: vec!["#0 @1 sample-tick".to_string(); 32],
        };
        assert_eq!(ev.total_actions(), 10, "dump lines are context, not actions");
        assert_eq!(ev.total_injected(), 1000);
    }

    #[test]
    fn recovery_defaults_are_empty() {
        let ev = RecoveryEvents::default();
        assert_eq!(ev.total_actions(), 0);
        assert_eq!(ev.total_injected(), 0);
        assert!(ev.trace_dump.is_empty());
        let back = RecoveryEvents::from_value(&ev.to_value()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = populated_report();
        let text = aoci_json::to_string_pretty(&report.to_value());
        let parsed = aoci_json::parse(&text).expect("serialized report must parse");
        let back = AosReport::from_value(&parsed).expect("shape must match");

        // Field by field: every metric survives the text round-trip.
        assert_eq!(back.result, report.result);
        for &c in COMPONENTS.iter() {
            assert_eq!(back.clock.component(c), report.clock.component(c), "{c}");
        }
        assert_eq!(back.clock.total(), report.clock.total());
        assert_eq!(back.optimized_code_size, report.optimized_code_size);
        assert_eq!(back.current_optimized_size, report.current_optimized_size);
        assert_eq!(back.opt_compilations, report.opt_compilations);
        assert_eq!(back.baseline_compilations, report.baseline_compilations);
        assert_eq!(back.samples, report.samples);
        assert_eq!(back.traces_recorded, report.traces_recorded);
        assert_eq!(back.frames_walked, report.frames_walked);
        assert_eq!(back.dcg_entries, report.dcg_entries);
        assert_eq!(back.final_rules, report.final_rules);
        assert_eq!(back.trace_stats, report.trace_stats);
        assert_eq!(back.counters, report.counters);
        assert_eq!(back.compilations, report.compilations);
        assert_eq!(back.recovery, report.recovery);
        assert_eq!(back.osr, report.osr);
        assert_eq!(back.async_compile, report.async_compile);
        assert!(back.trace_log.is_none());
        assert!(back.telemetry.is_none());

        // And the derived metrics agree.
        assert_eq!(back.total_cycles(), report.total_cycles());
        assert_eq!(back.aos_overhead(), report.aos_overhead());
        assert!((back.guard_miss_rate() - report.guard_miss_rate()).abs() < 1e-15);
    }

    #[test]
    fn from_value_rejects_malformed_shapes() {
        let report = populated_report();
        let mut v = report.to_value();
        if let Json::Obj(map) = &mut v {
            map.remove("counters");
        }
        assert!(AosReport::from_value(&v).is_none());
        assert!(AosReport::from_value(&Json::Null).is_none());
        assert!(RecoveryEvents::from_value(&Json::from("nope")).is_none());
        assert!(OsrEvents::from_value(&Json::Arr(Vec::new())).is_none());
        assert!(AsyncCompileEvents::from_value(&Json::from(3u64)).is_none());
    }
}
