//! The end-of-run report: everything the evaluation harness needs to
//! reproduce the paper's Figures 4–6 and summary statistics.

use crate::database::CompilationRecord;
use aoci_profile::TraceStatsReport;
use aoci_vm::{Clock, Component, ExecCounters, Value};

/// Everything the recovery layer did during a run — the degradation story
/// of a faulted execution. All zeros in an unfaulted, healthy run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryEvents {
    /// Optimized versions invalidated for guard thrash (the method fell
    /// back to baseline at its next invocation).
    pub invalidations: u64,
    /// Compile retries scheduled after failed compilations.
    pub compile_retries: u64,
    /// Methods quarantined (blocked from optimizing compilation) after
    /// repeated failures or invalidations.
    pub quarantined_methods: u64,
    /// Profile traces rejected by sanitization at the store boundary.
    pub rejected_traces: u64,
    /// Injected compile-thread faults (bailouts + oversize rejections).
    pub injected_compile_faults: u64,
    /// Injected corrupt traces handed to the sanitizer.
    pub injected_corrupt_traces: u64,
    /// Timer samples lost to injected sampler dropout.
    pub dropped_samples: u64,
    /// Adversarial receiver bursts delivered.
    pub receiver_bursts: u64,
}

impl RecoveryEvents {
    /// Total recovery actions taken (the system *reacting*, as opposed to
    /// the injected-fault counters which record the adversary acting).
    pub fn total_actions(&self) -> u64 {
        self.invalidations + self.compile_retries + self.quarantined_methods + self.rejected_traces
    }
}

/// On-stack-replacement activity of a run: what the VM asked for, what the
/// driver granted, and the transitions actually performed. All zeros when
/// OSR is disabled (the default).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OsrEvents {
    /// Promotion requests the VM raised (hot baseline loops).
    pub requests: u64,
    /// Requests the driver declined (quarantined method, recompile budget
    /// exhausted, or no usable OSR entry point).
    pub denied: u64,
    /// OSR-in transitions performed: baseline activations promoted into
    /// optimized code mid-loop.
    pub entries: u64,
    /// OSR-out transitions performed: optimized activations deoptimized
    /// back to baseline mid-loop (invalidation or frame-local thrash).
    pub exits: u64,
}

/// Metrics of one complete AOS run.
#[derive(Clone, Debug)]
pub struct AosReport {
    /// The program's return value.
    pub result: Option<Value>,
    /// Full per-component cycle breakdown (Figure 6 source data).
    pub clock: Clock,
    /// Cumulative abstract size of all optimized code generated (Figure 5
    /// metric).
    pub optimized_code_size: u64,
    /// Abstract size of the currently-installed optimized versions.
    pub current_optimized_size: u64,
    /// Optimizing compilations performed.
    pub opt_compilations: u32,
    /// Baseline compilations performed (= methods dynamically compiled).
    pub baseline_compilations: u32,
    /// Timer samples taken.
    pub samples: u64,
    /// Trace samples recorded (prologue samples with a caller).
    pub traces_recorded: u64,
    /// Total stack frames walked by the trace listener.
    pub frames_walked: u64,
    /// Distinct traces in the final DCG.
    pub dcg_entries: usize,
    /// Inlining rules active at the end of the run.
    pub final_rules: usize,
    /// Section 4 trace-walk statistics.
    pub trace_stats: TraceStatsReport,
    /// Dynamic execution counters (guards, dispatches).
    pub counters: ExecCounters,
    /// Every optimizing compilation performed, in order.
    pub compilations: Vec<CompilationRecord>,
    /// What the recovery layer did (invalidations, retries, quarantines,
    /// rejected traces) and what the fault injector delivered.
    pub recovery: RecoveryEvents,
    /// On-stack-replacement activity (requests, grants, transitions).
    pub osr: OsrEvents,
}

impl AosReport {
    /// Total simulated cycles — the wall-clock analogue for speedup
    /// computations (includes application, compilation and AOS overhead, as
    /// wall-clock time does).
    pub fn total_cycles(&self) -> u64 {
        self.clock.total()
    }

    /// Cycles spent in the optimizing compilation thread.
    pub fn compile_cycles(&self) -> u64 {
        self.clock.component(Component::CompilationThread)
    }

    /// Fraction of execution spent in a component (a Figure 6 bar segment).
    pub fn fraction(&self, c: Component) -> f64 {
        self.clock.fraction(c)
    }

    /// Total AOS overhead cycles (all non-application components except
    /// baseline compilation).
    pub fn aos_overhead(&self) -> u64 {
        self.clock.aos_overhead()
    }

    /// Guard-miss rate (misses / checks), 0 when no guards executed.
    pub fn guard_miss_rate(&self) -> f64 {
        if self.counters.guard_checks == 0 {
            0.0
        } else {
            self.counters.guard_misses as f64 / self.counters.guard_checks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut clock = Clock::new();
        clock.charge(Component::AppOptimized, 900);
        clock.charge(Component::CompilationThread, 100);
        let r = AosReport {
            result: None,
            clock,
            optimized_code_size: 10,
            current_optimized_size: 10,
            opt_compilations: 1,
            baseline_compilations: 2,
            samples: 5,
            traces_recorded: 3,
            frames_walked: 9,
            dcg_entries: 3,
            final_rules: 1,
            trace_stats: aoci_profile::TraceStatsCollector::new().report(),
            counters: ExecCounters {
                calls: 10,
                virtual_dispatches: 4,
                guard_checks: 8,
                guard_misses: 2,
                ..ExecCounters::default()
            },
            compilations: Vec::new(),
            recovery: RecoveryEvents::default(),
            osr: OsrEvents::default(),
        };
        assert_eq!(r.total_cycles(), 1000);
        assert_eq!(r.compile_cycles(), 100);
        assert!((r.fraction(Component::CompilationThread) - 0.1).abs() < 1e-12);
        assert!((r.guard_miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.aos_overhead(), 100);
    }

    #[test]
    fn recovery_actions_exclude_injected_counters() {
        let ev = RecoveryEvents {
            invalidations: 1,
            compile_retries: 2,
            quarantined_methods: 3,
            rejected_traces: 4,
            injected_compile_faults: 100,
            injected_corrupt_traces: 100,
            dropped_samples: 100,
            receiver_bursts: 100,
        };
        assert_eq!(ev.total_actions(), 10);
    }
}
