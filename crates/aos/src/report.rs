//! The end-of-run report: everything the evaluation harness needs to
//! reproduce the paper's Figures 4–6 and summary statistics.

use crate::database::CompilationRecord;
use aoci_profile::TraceStatsReport;
use aoci_vm::{Clock, Component, ExecCounters, Value};

/// Metrics of one complete AOS run.
#[derive(Clone, Debug)]
pub struct AosReport {
    /// The program's return value.
    pub result: Option<Value>,
    /// Full per-component cycle breakdown (Figure 6 source data).
    pub clock: Clock,
    /// Cumulative abstract size of all optimized code generated (Figure 5
    /// metric).
    pub optimized_code_size: u64,
    /// Abstract size of the currently-installed optimized versions.
    pub current_optimized_size: u64,
    /// Optimizing compilations performed.
    pub opt_compilations: u32,
    /// Baseline compilations performed (= methods dynamically compiled).
    pub baseline_compilations: u32,
    /// Timer samples taken.
    pub samples: u64,
    /// Trace samples recorded (prologue samples with a caller).
    pub traces_recorded: u64,
    /// Total stack frames walked by the trace listener.
    pub frames_walked: u64,
    /// Distinct traces in the final DCG.
    pub dcg_entries: usize,
    /// Inlining rules active at the end of the run.
    pub final_rules: usize,
    /// Section 4 trace-walk statistics.
    pub trace_stats: TraceStatsReport,
    /// Dynamic execution counters (guards, dispatches).
    pub counters: ExecCounters,
    /// Every optimizing compilation performed, in order.
    pub compilations: Vec<CompilationRecord>,
}

impl AosReport {
    /// Total simulated cycles — the wall-clock analogue for speedup
    /// computations (includes application, compilation and AOS overhead, as
    /// wall-clock time does).
    pub fn total_cycles(&self) -> u64 {
        self.clock.total()
    }

    /// Cycles spent in the optimizing compilation thread.
    pub fn compile_cycles(&self) -> u64 {
        self.clock.component(Component::CompilationThread)
    }

    /// Fraction of execution spent in a component (a Figure 6 bar segment).
    pub fn fraction(&self, c: Component) -> f64 {
        self.clock.fraction(c)
    }

    /// Total AOS overhead cycles (all non-application components except
    /// baseline compilation).
    pub fn aos_overhead(&self) -> u64 {
        self.clock.aos_overhead()
    }

    /// Guard-miss rate (misses / checks), 0 when no guards executed.
    pub fn guard_miss_rate(&self) -> f64 {
        if self.counters.guard_checks == 0 {
            0.0
        } else {
            self.counters.guard_misses as f64 / self.counters.guard_checks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut clock = Clock::new();
        clock.charge(Component::AppOptimized, 900);
        clock.charge(Component::CompilationThread, 100);
        let r = AosReport {
            result: None,
            clock,
            optimized_code_size: 10,
            current_optimized_size: 10,
            opt_compilations: 1,
            baseline_compilations: 2,
            samples: 5,
            traces_recorded: 3,
            frames_walked: 9,
            dcg_entries: 3,
            final_rules: 1,
            trace_stats: aoci_profile::TraceStatsCollector::new().report(),
            counters: ExecCounters { calls: 10, virtual_dispatches: 4, guard_checks: 8, guard_misses: 2 },
            compilations: Vec::new(),
        };
        assert_eq!(r.total_cycles(), 1000);
        assert_eq!(r.compile_cycles(), 100);
        assert!((r.fraction(Component::CompilationThread) - 0.1).abs() < 1e-12);
        assert!((r.guard_miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.aos_overhead(), 100);
    }
}
