use super::*;
use crate::AosConfig;
use aoci_core::PolicyKind;
use aoci_ir::{BinOp, Cond, ProgramBuilder};
use aoci_vm::{CostModel, Value};

/// A program with a hot loop: `main` iterates `n` times calling
/// `compute(i)`, a medium-sized method that virtually calls `val` on a
/// receiver chosen by the iteration's parity. With `poly = false` only one
/// receiver class exists (monomorphic site); with `poly = true` the site
/// alternates A/B 50/50 — but each *call site of main* is monomorphic, so
/// context distinguishes them.
fn hot_loop_program(n: i64, poly: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    {
        let mut m = b.virtual_method("A.val", a, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    if poly {
        let mut m = b.virtual_method("B.val", cb, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let ga = b.global("objA");
    let gb = b.global("objB");
    let compute = {
        let mut m = b.static_method("compute", 1);
        m.work(60); // medium with the call: profile-directed only
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        let two = m.fresh_reg();
        let rem = m.fresh_reg();
        m.const_int(two, 2);
        m.bin(BinOp::Rem, rem, m.param(0), two);
        let use_b = m.label();
        let call = m.label();
        let zero = m.fresh_reg();
        m.const_int(zero, 0);
        m.branch(Cond::Ne, rem, zero, use_b);
        m.get_global(o, ga);
        m.jump(call);
        m.bind(use_b);
        m.get_global(o, gb);
        m.bind(call);
        m.call_virtual(Some(r), sel, o, &[]);
        m.bin(BinOp::Add, r, r, m.param(0));
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        m.new_obj(oa, a);
        m.put_global(ga, oa);
        m.new_obj(ob, if poly { cb } else { a });
        m.put_global(gb, ob);
        let i = m.fresh_reg();
        let nn = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(nn, n);
        m.const_int(one, 1);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, nn, out);
        m.call_static(Some(r), compute, &[i]);
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };
    b.finish(main).unwrap()
}

fn fast_config(policy: PolicyKind) -> AosConfig {
    let mut c = AosConfig::new(policy);
    c.cost = CostModel { sample_period: 3_000, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.decay_period_samples = 64;
    c
}

fn baseline_result(p: &Program) -> Option<Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(p, cost).run_to_completion().expect("baseline runs")
}

#[test]
fn optimizes_hot_methods_and_preserves_semantics() {
    let p = hot_loop_program(400, false);
    let expected = baseline_result(&p);
    let report = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive))
        .run()
        .expect("aos run succeeds");
    assert_eq!(report.result, expected);
    assert!(report.opt_compilations >= 1, "hot method should be recompiled");
    assert!(report.optimized_code_size > 0);
    assert!(report.samples > 20);
    assert!(report.final_rules > 0, "hot edges should become rules");
}

#[test]
fn context_sensitive_run_matches_baseline_too() {
    let p = hot_loop_program(400, true);
    let expected = baseline_result(&p);
    for policy in [
        PolicyKind::Fixed { max: 3 },
        PolicyKind::Parameterless { max: 4 },
        PolicyKind::ParameterlessLarge { max: 4 },
        PolicyKind::AdaptiveResolving { max: 4 },
    ] {
        let report = AosSystem::new(&p, fast_config(policy)).run().expect("runs");
        assert_eq!(report.result, expected, "policy {policy:?} changed semantics");
    }
}

#[test]
fn fixed_policy_collects_deep_traces_cins_does_not() {
    let p = hot_loop_program(400, true);

    let mut cs_sys = AosSystem::new(&p, fast_config(PolicyKind::Fixed { max: 3 }));
    // Drive manually so we can inspect the DCG before the run ends.
    loop {
        match cs_sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => cs_sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
        }
    }
    assert!(
        cs_sys.profile().entries().iter().any(|(k, _)| k.depth() >= 2),
        "fixed(3) should record multi-edge traces"
    );

    let mut ci_sys = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive));
    loop {
        match ci_sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => ci_sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
        }
    }
    assert!(
        ci_sys.profile().entries().iter().all(|(k, _)| k.depth() == 1),
        "cins must record single edges only"
    );
}

#[test]
fn recompilations_stay_bounded() {
    let p = hot_loop_program(600, true);
    let mut config = fast_config(PolicyKind::Fixed { max: 2 });
    config.max_recompiles_per_method = 3;
    let mut sys = AosSystem::new(&p, config);
    loop {
        match sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
        }
    }
    for m in sys.database().optimized_methods() {
        assert!(sys.database().recompiles(m) <= 3);
    }
}

#[test]
fn report_accounts_listener_and_compilation_time() {
    let p = hot_loop_program(8_000, false);
    let report = AosSystem::new(&p, fast_config(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("runs");
    assert!(report.fraction(Component::Listeners) > 0.0);
    assert!(report.compile_cycles() > 0);
    assert!(report.aos_overhead() < report.total_cycles());
    // Application time dominates.
    let app = report.fraction(Component::AppBaseline) + report.fraction(Component::AppOptimized);
    assert!(app > 0.5, "application should dominate, got {app}");
}

#[test]
fn optimized_code_eliminates_dispatch_over_time() {
    // With a monomorphic hot call, the optimized version inlines the callee
    // (CHA): virtual dispatches per iteration drop after recompilation, so
    // the total is well below one dispatch per iteration.
    let n = 2_000;
    let p = hot_loop_program(n, false);
    let report = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive))
        .run()
        .expect("runs");
    assert!(report.opt_compilations >= 1);
    assert!(
        (report.counters.virtual_dispatches as i64) < n,
        "dispatches {} should be below iterations {n}",
        report.counters.virtual_dispatches
    );
}

#[test]
fn adaptive_resolving_escalates_unskewed_sites() {
    let p = hot_loop_program(1_500, true);
    let mut sys = AosSystem::new(&p, fast_config(PolicyKind::AdaptiveResolving { max: 4 }));
    loop {
        match sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
        }
    }
    assert!(
        sys.policy().adaptive().flagged() > 0,
        "the 50/50 site should have been flagged for escalation"
    );
}

#[test]
fn context_tree_backend_matches_flat_semantics() {
    let p = hot_loop_program(600, true);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::Fixed { max: 3 });
    config.profile_backend = crate::ProfileBackend::ContextTree;
    let report = AosSystem::new(&p, config).run().expect("cct run succeeds");
    assert_eq!(report.result, expected);
    assert!(report.final_rules > 0, "the CCT backend should also form rules");
}
