use super::*;
use crate::AosConfig;
use aoci_core::PolicyKind;
use aoci_ir::{BinOp, Cond, ProgramBuilder};
use aoci_vm::{CostModel, Value};

/// A program with a hot loop: `main` iterates `n` times calling
/// `compute(i)`, a medium-sized method that virtually calls `val` on a
/// receiver chosen by the iteration's parity. With `poly = false` only one
/// receiver class exists (monomorphic site); with `poly = true` the site
/// alternates A/B 50/50 — but each *call site of main* is monomorphic, so
/// context distinguishes them.
fn hot_loop_program(n: i64, poly: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    {
        let mut m = b.virtual_method("A.val", a, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    if poly {
        let mut m = b.virtual_method("B.val", cb, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let ga = b.global("objA");
    let gb = b.global("objB");
    let compute = {
        let mut m = b.static_method("compute", 1);
        m.work(60); // medium with the call: profile-directed only
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        let two = m.fresh_reg();
        let rem = m.fresh_reg();
        m.const_int(two, 2);
        m.bin(BinOp::Rem, rem, m.param(0), two);
        let use_b = m.label();
        let call = m.label();
        let zero = m.fresh_reg();
        m.const_int(zero, 0);
        m.branch(Cond::Ne, rem, zero, use_b);
        m.get_global(o, ga);
        m.jump(call);
        m.bind(use_b);
        m.get_global(o, gb);
        m.bind(call);
        m.call_virtual(Some(r), sel, o, &[]);
        m.bin(BinOp::Add, r, r, m.param(0));
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        m.new_obj(oa, a);
        m.put_global(ga, oa);
        m.new_obj(ob, if poly { cb } else { a });
        m.put_global(gb, ob);
        let i = m.fresh_reg();
        let nn = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(nn, n);
        m.const_int(one, 1);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, nn, out);
        m.call_static(Some(r), compute, &[i]);
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };
    b.finish(main).unwrap()
}

fn fast_config(policy: PolicyKind) -> AosConfig {
    let mut c = AosConfig::new(policy);
    c.cost = CostModel { sample_period: 3_000, ..CostModel::default() };
    c.hot_method_samples = 2;
    c.organizer_period_samples = 4;
    c.missing_edge_period_samples = 8;
    c.decay_period_samples = 64;
    c
}

fn baseline_result(p: &Program) -> Option<Value> {
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    Vm::new(p, cost).run_to_completion().expect("baseline runs")
}

#[test]
fn optimizes_hot_methods_and_preserves_semantics() {
    let p = hot_loop_program(400, false);
    let expected = baseline_result(&p);
    let report = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive))
        .run()
        .expect("aos run succeeds");
    assert_eq!(report.result, expected);
    assert!(report.opt_compilations >= 1, "hot method should be recompiled");
    assert!(report.optimized_code_size > 0);
    assert!(report.samples > 20);
    assert!(report.final_rules > 0, "hot edges should become rules");
}

#[test]
fn context_sensitive_run_matches_baseline_too() {
    let p = hot_loop_program(400, true);
    let expected = baseline_result(&p);
    for policy in [
        PolicyKind::Fixed { max: 3 },
        PolicyKind::Parameterless { max: 4 },
        PolicyKind::ParameterlessLarge { max: 4 },
        PolicyKind::AdaptiveResolving { max: 4 },
    ] {
        let report = AosSystem::new(&p, fast_config(policy)).run().expect("runs");
        assert_eq!(report.result, expected, "policy {policy:?} changed semantics");
    }
}

#[test]
fn fixed_policy_collects_deep_traces_cins_does_not() {
    let p = hot_loop_program(400, true);

    let mut cs_sys = AosSystem::new(&p, fast_config(PolicyKind::Fixed { max: 3 }));
    // Drive manually so we can inspect the DCG before the run ends.
    loop {
        match cs_sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => cs_sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
            RunOutcome::OsrRequest(_) => unreachable!("osr disabled"),
        }
    }
    assert!(
        cs_sys.profile().entries().iter().any(|(k, _)| k.depth() >= 2),
        "fixed(3) should record multi-edge traces"
    );

    let mut ci_sys = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive));
    loop {
        match ci_sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => ci_sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
            RunOutcome::OsrRequest(_) => unreachable!("osr disabled"),
        }
    }
    assert!(
        ci_sys.profile().entries().iter().all(|(k, _)| k.depth() == 1),
        "cins must record single edges only"
    );
}

#[test]
fn recompilations_stay_bounded() {
    let p = hot_loop_program(600, true);
    let mut config = fast_config(PolicyKind::Fixed { max: 2 });
    config.max_recompiles_per_method = 3;
    let mut sys = AosSystem::new(&p, config);
    loop {
        match sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
            RunOutcome::OsrRequest(_) => unreachable!("osr disabled"),
        }
    }
    for m in sys.database().optimized_methods() {
        assert!(sys.database().recompiles(m) <= 3);
    }
}

#[test]
fn report_accounts_listener_and_compilation_time() {
    let p = hot_loop_program(8_000, false);
    let report = AosSystem::new(&p, fast_config(PolicyKind::Fixed { max: 3 }))
        .run()
        .expect("runs");
    assert!(report.fraction(Component::Listeners) > 0.0);
    assert!(report.compile_cycles() > 0);
    assert!(report.aos_overhead() < report.total_cycles());
    // Application time dominates.
    let app = report.fraction(Component::AppBaseline) + report.fraction(Component::AppOptimized);
    assert!(app > 0.5, "application should dominate, got {app}");
}

#[test]
fn optimized_code_eliminates_dispatch_over_time() {
    // With a monomorphic hot call, the optimized version inlines the callee
    // (CHA): virtual dispatches per iteration drop after recompilation, so
    // the total is well below one dispatch per iteration.
    let n = 2_000;
    let p = hot_loop_program(n, false);
    let report = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive))
        .run()
        .expect("runs");
    assert!(report.opt_compilations >= 1);
    assert!(
        (report.counters.virtual_dispatches as i64) < n,
        "dispatches {} should be below iterations {n}",
        report.counters.virtual_dispatches
    );
}

#[test]
fn adaptive_resolving_escalates_unskewed_sites() {
    let p = hot_loop_program(1_500, true);
    let mut sys = AosSystem::new(&p, fast_config(PolicyKind::AdaptiveResolving { max: 4 }));
    loop {
        match sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(_) => break,
            RunOutcome::Sample(s) => sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
            RunOutcome::OsrRequest(_) => unreachable!("osr disabled"),
        }
    }
    assert!(
        sys.policy().adaptive().flagged() > 0,
        "the 50/50 site should have been flagged for escalation"
    );
}

// ---- Recovery layer -----------------------------------------------------

use crate::fault::FaultConfig;

/// Phase-shift program: `compute` virtually calls `val` on a global
/// receiver that `main` swaps from class A to class B (which overrides
/// `val`) halfway through the loop. A guarded inline of `A.val` compiled in
/// phase 1 misses on every check in phase 2 — organic guard thrash.
fn phase_shift_program(n: i64) -> (Program, MethodId) {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let cb = b.class("B", Some(a));
    {
        let mut m = b.virtual_method("A.val", a, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    {
        let mut m = b.virtual_method("B.val", cb, sel);
        m.work(10);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let g = b.global("obj");
    let compute = {
        let mut m = b.static_method("compute", 1);
        m.work(60);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.get_global(o, g);
        m.call_virtual(Some(r), sel, o, &[]);
        m.bin(BinOp::Add, r, r, m.param(0));
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, cb);
        m.put_global(g, oa);
        let i = m.fresh_reg();
        let nn = m.fresh_reg();
        let one = m.fresh_reg();
        let half = m.fresh_reg();
        let acc = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(nn, n);
        m.const_int(one, 1);
        m.const_int(half, n / 2);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        let skip = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, nn, out);
        m.branch(Cond::Ne, i, half, skip);
        m.put_global(g, ob);
        m.bind(skip);
        m.call_static(Some(r), compute, &[i]);
        m.bin(BinOp::Add, acc, acc, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };
    (b.finish(main).unwrap(), compute)
}

#[test]
fn guard_thrash_invalidates_and_recovers() {
    let (p, compute) = phase_shift_program(6_000);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::ContextInsensitive);
    config.recovery.monitor_guard_health = true;
    let mut sys = AosSystem::new(&p, config);
    loop {
        match sys.vm.run(u64::MAX).expect("runs") {
            RunOutcome::Finished(r) => {
                assert_eq!(r, expected, "recovery must not change semantics");
                break;
            }
            RunOutcome::Sample(s) => sys.on_sample(&s),
            RunOutcome::BudgetExhausted => unreachable!(),
            RunOutcome::OsrRequest(_) => unreachable!("osr disabled"),
        }
    }
    let ev = sys.recovery_events();
    assert!(ev.invalidations >= 1, "phase shift should thrash the guarded inline: {ev:?}");
    assert!(
        sys.database().times_invalidated(compute) >= 1,
        "the thrashing method itself should have been invalidated"
    );
    assert!(
        sys.database().recompiles(compute) >= 2,
        "the invalidated method should be recompiled once reselected"
    );
    // The run never ends mid-thrash: the method is either re-optimized
    // with a healthy guard window (the health check would otherwise have
    // invalidated it again) or it has been quarantined to baseline.
    if sys.database().is_optimized(compute) {
        let stats = sys.vm.guard_stats(compute);
        let base = sys.guard_window_start.get(&compute).copied().unwrap_or_default();
        let checks = stats.checks - base.checks;
        if checks >= sys.config.recovery.guard_miss_min_checks {
            let rate = (stats.misses - base.misses) as f64 / checks as f64;
            assert!(
                rate <= sys.config.recovery.guard_miss_threshold,
                "final window must be healthy, got miss rate {rate}"
            );
        }
    } else {
        assert!(
            sys.quarantined.contains(&compute)
                || sys.database().recompiles(compute)
                    >= sys.config.max_recompiles_per_method,
            "a de-optimized method left unoptimized must be quarantined or \
             out of recompile budget"
        );
    }
}

#[test]
fn failing_compiles_back_off_then_quarantine() {
    let p = hot_loop_program(6_000, false);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::ContextInsensitive);
    config.fault = Some(FaultConfig { compile_bailout_prob: 1.0, ..FaultConfig::default() });
    let report = AosSystem::new(&p, config).run().expect("runs despite compile faults");
    assert_eq!(report.result, expected);
    assert_eq!(report.opt_compilations, 0, "every compilation bails out");
    assert!(
        report.recovery.compile_retries >= 2,
        "retries precede quarantine: {:?}",
        report.recovery
    );
    assert!(report.recovery.quarantined_methods >= 1);
    assert_eq!(
        report.recovery.injected_compile_faults,
        report.recovery.compile_retries + report.recovery.quarantined_methods,
        "each bailout either schedules a retry or quarantines"
    );
    assert!(
        report.clock.component(Component::Recovery) > 0,
        "recovery events are charged to the cost model"
    );
}

#[test]
fn corrupted_traces_are_rejected_at_the_store_boundary() {
    let p = hot_loop_program(2_000, true);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::Fixed { max: 3 });
    config.fault = Some(FaultConfig { trace_corruption_prob: 1.0, ..FaultConfig::default() });
    let report = AosSystem::new(&p, config).run().expect("runs despite corrupt traces");
    assert_eq!(report.result, expected);
    assert!(report.recovery.injected_corrupt_traces > 0);
    assert_eq!(
        report.recovery.rejected_traces, report.recovery.injected_corrupt_traces,
        "every corrupted trace must be caught by sanitization"
    );
    assert_eq!(report.dcg_entries, 0, "nothing malformed reaches the profile store");
    assert_eq!(report.final_rules, 0);
}

#[test]
fn seed_profile_rejects_malformed_entries() {
    let p = hot_loop_program(50, false);
    let mut sys = AosSystem::new(&p, fast_config(PolicyKind::ContextInsensitive));
    let bogus_method = MethodId::from_index(p.num_methods() + 1);
    let site = CallSiteRef::new(bogus_method, aoci_ir::SiteIdx(0));
    sys.seed_profile([
        (aoci_profile::TraceKey::new(bogus_method, vec![site]), 1.0),
        (aoci_profile::TraceKey::new(bogus_method, vec![site]), f64::NAN),
    ]);
    assert_eq!(sys.recovery_events().rejected_traces, 2);
    assert_eq!(sys.profile().len(), 0);
}

#[test]
fn chaos_run_degrades_gracefully() {
    let p = hot_loop_program(6_000, true);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::Fixed { max: 3 });
    config.fault = Some(FaultConfig::chaos(42));
    let report = AosSystem::new(&p, config).run().expect("faulted run completes");
    assert_eq!(report.result, expected, "faults must not change program semantics");
    let ev = report.recovery;
    assert!(
        ev.injected_compile_faults + ev.injected_corrupt_traces + ev.dropped_samples > 0,
        "chaos config should actually deliver faults: {ev:?}"
    );
    assert!(ev.total_actions() > 0, "the system should visibly react: {ev:?}");
}

#[test]
fn faulted_runs_with_same_seed_are_deterministic() {
    let p = hot_loop_program(4_000, true);
    let run = || {
        let mut config = fast_config(PolicyKind::Fixed { max: 3 });
        config.fault = Some(FaultConfig::chaos(9));
        AosSystem::new(&p, config).run().expect("runs")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.result, b.result);
    assert_eq!(a.clock.total(), b.clock.total());
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn unfaulted_runs_are_deterministic() {
    let p = hot_loop_program(3_000, true);
    let run = || {
        AosSystem::new(&p, fast_config(PolicyKind::Fixed { max: 3 }))
            .run()
            .expect("runs")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.result, b.result);
    assert_eq!(a.clock.total(), b.clock.total());
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.opt_compilations, b.opt_compilations);
    assert_eq!(a.optimized_code_size, b.optimized_code_size);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.recovery, b.recovery);
    // No injector: only organic recovery actions, never injected faults.
    assert_eq!(a.recovery.injected_compile_faults, 0);
    assert_eq!(a.recovery.injected_corrupt_traces, 0);
    assert_eq!(a.recovery.dropped_samples, 0);
    assert_eq!(a.recovery.receiver_bursts, 0);
}

// ---- Asynchronous background compilation --------------------------------

use crate::config::AsyncCompileConfig;
use crate::report::AsyncCompileEvents;

#[test]
fn capped_sync_compile_budget_preserves_semantics() {
    let p = hot_loop_program(4_000, true);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::Fixed { max: 3 });
    config.max_compiles_per_epoch = 1;
    let report = AosSystem::new(&p, config).run().expect("capped run succeeds");
    assert_eq!(report.result, expected);
    assert!(report.opt_compilations >= 1, "the cap delays compiles, it must not starve them");
    assert_eq!(
        report.async_compile,
        AsyncCompileEvents::default(),
        "synchronous mode must not book async activity"
    );
}

#[test]
fn async_run_preserves_semantics_and_overlaps_compiles() {
    let p = hot_loop_program(6_000, true);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::Fixed { max: 3 });
    config.async_compile = Some(AsyncCompileConfig::default());
    let report = AosSystem::new(&p, config).run().expect("async run succeeds");
    assert_eq!(report.result, expected, "background compilation must not change semantics");
    let ev = report.async_compile;
    assert!(ev.enqueued >= 1, "hot methods should queue plans: {ev:?}");
    assert!(ev.dispatched >= 1 && ev.completed >= 1, "plans should run to completion: {ev:?}");
    assert!(
        ev.background_overlap_cycles > 0,
        "compiles should overlap application execution: {ev:?}"
    );
    assert_eq!(
        report.compile_cycles(),
        ev.foreground_stall_cycles,
        "without OSR or faults, every compilation-thread cycle is async stall"
    );
}

#[test]
fn async_queue_backpressure_evicts_worst() {
    let p = hot_loop_program(50, true);
    let mut config = fast_config(PolicyKind::ContextInsensitive);
    config.async_compile =
        Some(AsyncCompileConfig { workers: 1, queue_capacity: 2, zero_latency: false });
    let mut sys = AosSystem::new(&p, config);
    // No rules yet: every plan prices at benefit 0, so ordering falls back
    // to the deterministic method-id tie-break (lower id runs first).
    for idx in [1, 2, 3] {
        sys.controller_enqueue(MethodId::from_index(idx), PlanReason::MissingEdge);
    }
    // Method 3 arrived at a full queue as the worst plan: dropped.
    assert_eq!(sys.async_events.enqueued, 2);
    assert_eq!(sys.async_events.queue_full_drops, 1);
    assert!(!sys.queued.contains(&MethodId::from_index(3)));
    // Method 0 outranks both residents: the worst resident (2) is evicted.
    sys.controller_enqueue(MethodId::from_index(0), PlanReason::MissingEdge);
    assert_eq!(sys.async_events.enqueued, 3);
    assert_eq!(sys.async_events.queue_full_drops, 2);
    assert!(sys.queued.contains(&MethodId::from_index(0)));
    assert!(!sys.queued.contains(&MethodId::from_index(2)));
    assert_eq!(sys.async_events.max_queue_depth, 2);
}

#[test]
fn stale_plans_drop_at_dequeue_with_reasons() {
    let p = hot_loop_program(50, true);
    let mut config = fast_config(PolicyKind::ContextInsensitive);
    config.async_compile =
        Some(AsyncCompileConfig { workers: 1, queue_capacity: 8, zero_latency: true });
    let mut sys = AosSystem::new(&p, config);
    // Quarantined while waiting.
    let quarantined = MethodId::from_index(2);
    sys.controller_enqueue(quarantined, PlanReason::MissingEdge);
    sys.quarantine(quarantined);
    // A hot-method plan whose method never accumulated samples: by dispatch
    // time it no longer (here: never) satisfies the hotness criterion.
    let cooled = MethodId::from_index(1);
    sys.controller_enqueue(cooled, PlanReason::HotMethod);
    sys.process_compile_queue();
    assert_eq!(sys.async_events.stale_drops, 2, "{:?}", sys.async_events);
    assert_eq!(sys.async_events.dispatched, 0);
    assert!(!sys.queued.contains(&quarantined));
    assert!(!sys.queued.contains(&cooled));
}

#[test]
fn context_tree_backend_matches_flat_semantics() {
    let p = hot_loop_program(600, true);
    let expected = baseline_result(&p);
    let mut config = fast_config(PolicyKind::Fixed { max: 3 });
    config.profile_backend = crate::ProfileBackend::ContextTree;
    let report = AosSystem::new(&p, config).run().expect("cct run succeeds");
    assert_eq!(report.result, expected);
    assert!(report.final_rules > 0, "the CCT backend should also form rules");
}
