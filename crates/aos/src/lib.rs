//! # aoci-aos — the adaptive optimization system
//!
//! The top-level driver reproducing the Jikes RVM adaptive optimization
//! system architecture of *Adaptive Online Context-Sensitive Inlining*
//! (CGO 2003), Figure 3: listeners feed organizers, organizers feed the
//! controller, the controller plans compilations, and the compilation
//! thread installs optimized code — all **online**, interleaved with
//! program execution on a shared simulated clock.
//!
//! [`AosSystem`] owns the VM and runs the whole feedback loop:
//!
//! 1. every timer sample drives the **method listener** (hot-method
//!    detection) and the **trace listener** (context-sensitive call traces,
//!    shaped per the configured [`PolicyKind`]);
//! 2. the **DCG / AI organizers** periodically fold trace buffers into the
//!    dynamic call graph and regenerate inlining rules from traces above
//!    the hot threshold (1.5% of total profile weight);
//! 3. the **decay organizer** ages the DCG so the system adapts to phase
//!    shifts;
//! 4. the **AI missing-edge organizer** requests recompilation of optimized
//!    methods for which new hot, uninlined, unrefused rules have appeared;
//! 5. the **controller** turns hot-method counts into compilation plans,
//!    each carrying an [`InlineOracle`] snapshot of the current rules;
//! 6. the **compilation thread** runs the `aoci-opt` inliner, charges
//!    compile cycles, installs the result, and records refusals in the
//!    [`AosDatabase`].
//!
//! Every step charges its cycles to a [`Component`], producing the
//! Figure 6 overhead breakdown in the final [`AosReport`].
//!
//! A **recovery layer** hardens the loop against a hostile environment
//! (see [`FaultInjector`] for the adversary and [`RecoveryEvents`] for the
//! ledger): guard-thrashing optimized code is invalidated back to baseline,
//! failed compilations retry under capped exponential backoff (and are
//! quarantined after repeated failures), and malformed profile traces are
//! rejected at the store boundary.
//!
//! A **flight recorder** ([`AosConfig::with_trace`], `aoci-trace`) captures
//! every layer's activity — sampler ticks, trace walks, promotions,
//! per-candidate inlining decisions with full provenance, installs,
//! invalidations, OSR transitions, injected faults — as typed events
//! timestamped in simulated cycles, so same-seed reruns record
//! bit-identical streams. Recording charges no cycles: a traced run's
//! metrics are exactly an untraced run's.
//!
//! ```
//! use aoci_aos::{AosConfig, AosSystem};
//! use aoci_core::PolicyKind;
//! use aoci_ir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! let main = {
//!     let mut m = b.static_method("main", 0);
//!     let r = m.fresh_reg();
//!     m.const_int(r, 1);
//!     m.ret(Some(r));
//!     m.finish()
//! };
//! let program = b.finish(main)?;
//! let config = AosConfig::new(PolicyKind::Fixed { max: 3 });
//! let report = AosSystem::new(&program, config).run()?;
//! assert_eq!(report.result.and_then(|v| v.as_int()), Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`PolicyKind`]: aoci_core::PolicyKind
//! [`InlineOracle`]: aoci_core::InlineOracle
//! [`Component`]: aoci_vm::Component

#![warn(missing_docs)]

mod config;
mod database;
mod fault;
mod report;
mod system;

pub use config::{AosConfig, AsyncCompileConfig, ProfileBackend, RecoveryConfig};
pub use database::{AosDatabase, CompilationRecord};
pub use fault::{CompileFault, FaultConfig, FaultInjector, InjectedFaults, TraceCorruption};
pub use aoci_telemetry::{MetricsConfig, MetricsLog};
pub use aoci_trace::{TraceConfig, TraceEvent, TraceLog};
pub use report::{AosReport, AsyncCompileEvents, OsrEvents, RecoveryEvents};
pub use system::{AosSystem, FullRunResult};
