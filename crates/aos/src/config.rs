//! Configuration of the adaptive optimization system.

use aoci_core::{AdaptiveConfig, MatchMode, PolicyKind};
use aoci_opt::OptConfig;
use aoci_profile::DcgConfig;
use aoci_vm::{CostModel, VmConfig};

/// Which profile-data representation backs the dynamic call graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProfileBackend {
    /// The paper's flat trace table ([`aoci_profile::Dcg`]).
    #[default]
    FlatTraces,
    /// The calling-context tree of Ammons et al.
    /// ([`aoci_profile::CallingContextTree`]) — the "more sophisticated
    /// representation" the paper's Section 6 contemplates.
    ContextTree,
}

/// Tunables of the whole adaptive system; [`AosConfig::new`] supplies
/// defaults matching the paper's setup where it states them (1.5% hot
/// threshold, decay toward recent samples) and plausible Jikes-era values
/// elsewhere.
#[derive(Clone, Debug)]
pub struct AosConfig {
    /// The context-sensitivity policy (paper Section 4).
    pub policy: PolicyKind,
    /// Hot-trace threshold as a fraction of total DCG weight (paper: 1.5%).
    pub hot_edge_threshold: f64,
    /// Method-listener samples a method must accumulate before the
    /// controller selects it for optimizing recompilation.
    pub hot_method_samples: u32,
    /// Additionally, a method must hold at least this fraction of all
    /// method samples so far — the stand-in for the Jikes controller's
    /// analytic cost/benefit model, which only recompiles methods expected
    /// to account for a significant share of future execution.
    pub hot_method_fraction: f64,
    /// Organizer wake-up period, in samples (listener buffers are drained
    /// and rules regenerated every this many samples).
    pub organizer_period_samples: u64,
    /// Decay-organizer period, in samples.
    pub decay_period_samples: u64,
    /// DCG decay factor applied at each decay-organizer wake-up.
    pub decay_factor: f64,
    /// Missing-edge-organizer period, in samples.
    pub missing_edge_period_samples: u64,
    /// Upper bound on optimizing recompilations of a single method
    /// (bounds recompilation churn from the missing-edge organizer).
    pub max_recompiles_per_method: u32,
    /// Inliner budgets.
    pub opt: OptConfig,
    /// Adaptive-resolving policy tunables.
    pub adaptive: AdaptiveConfig,
    /// DCG collection behaviour (merge ablation, pruning).
    pub dcg: DcgConfig,
    /// Profile-data representation.
    pub profile_backend: ProfileBackend,
    /// Oracle matching mode (exact matching is an ablation).
    pub match_mode: MatchMode,
    /// Simulated-machine costs (sampling period lives here).
    pub cost: CostModel,
    /// VM behaviour (source-level stack walking, prologue window).
    pub vm: VmConfig,
    /// Organizer cost: cycles charged per buffered item processed.
    pub organizer_cost_per_item: u64,
    /// Controller cost: cycles charged per event considered.
    pub controller_cost_per_event: u64,
}

impl AosConfig {
    /// Default configuration for a given policy.
    pub fn new(policy: PolicyKind) -> Self {
        AosConfig {
            policy,
            hot_edge_threshold: 0.015,
            hot_method_samples: 3,
            hot_method_fraction: 0.01,
            organizer_period_samples: 8,
            decay_period_samples: 96,
            decay_factor: 0.95,
            missing_edge_period_samples: 24,
            max_recompiles_per_method: 4,
            opt: OptConfig::default(),
            adaptive: AdaptiveConfig::default(),
            dcg: DcgConfig::default(),
            profile_backend: ProfileBackend::FlatTraces,
            match_mode: MatchMode::Partial,
            cost: CostModel::default(),
            vm: VmConfig::default(),
            organizer_cost_per_item: 12,
            controller_cost_per_event: 150,
        }
    }

    /// The paper's baseline: context-insensitive profile-directed inlining.
    pub fn context_insensitive() -> Self {
        Self::new(PolicyKind::ContextInsensitive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = AosConfig::new(PolicyKind::Fixed { max: 3 });
        assert!((c.hot_edge_threshold - 0.015).abs() < 1e-12);
        assert!(c.decay_factor > 0.0 && c.decay_factor < 1.0);
        assert_eq!(c.policy, PolicyKind::Fixed { max: 3 });
    }

    #[test]
    fn cins_helper() {
        let c = AosConfig::context_insensitive();
        assert_eq!(c.policy, PolicyKind::ContextInsensitive);
    }
}
