//! Configuration of the adaptive optimization system.

use crate::fault::FaultConfig;
use aoci_core::{AdaptiveConfig, MatchMode, PolicyKind};
use aoci_opt::OptConfig;
use aoci_profile::DcgConfig;
use aoci_telemetry::MetricsConfig;
use aoci_trace::TraceConfig;
use aoci_vm::{CostModel, VmConfig};

/// Tunables of the recovery layer: guard-thrash invalidation, compile
/// retry/backoff, and quarantine. Trace sanitization and compile
/// retry/backoff are always active (they cost nothing on clean runs);
/// guard-health monitoring runs when [`RecoveryConfig::monitor_guard_health`]
/// is set or fault injection is on, and organic guard thrash (a phase
/// shift defeating a speculative inline) then takes the same path as
/// injected thrash.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Whether guard-health monitoring (and thrash invalidation) runs even
    /// without fault injection. Defaults to `false`: a guarded inline that
    /// misses falls back to virtual dispatch — degraded, never wrong — and
    /// the paper's AOS adapts to receiver shifts through decay and
    /// recompilation, not deoptimization, so unconditional monitoring
    /// would distort the reproduction sweeps. Fault injection
    /// (`AosConfig::fault`) enables monitoring automatically, since an
    /// adversary that bursts guard misses is exactly what invalidation is
    /// for.
    pub monitor_guard_health: bool,
    /// Guard-miss rate (misses / checks over the current observation
    /// window) above which an optimized version is invalidated. The
    /// default is deliberately high: a guarded inline of one target of a
    /// 50/50 polymorphic site misses ~half its checks *by design* (the
    /// virtual fallback keeps it profitable), so only near-total miss
    /// rates — a phase shift defeating the speculation outright, or an
    /// adversarial receiver burst — count as thrash.
    pub guard_miss_threshold: f64,
    /// Minimum guard checks in the window before the rate is meaningful.
    pub guard_miss_min_checks: u64,
    /// Backoff before the first compile retry, in simulated cycles;
    /// doubles per consecutive failure of the same method.
    pub retry_backoff_base_cycles: u64,
    /// Upper bound on the per-retry backoff, in simulated cycles.
    pub retry_backoff_cap_cycles: u64,
    /// Consecutive compile failures (or repeated invalidations) of one
    /// method after which it is quarantined: blocked from optimizing
    /// compilation for the rest of the run.
    pub quarantine_after_failures: u32,
    /// Cycles charged to [`Component::Recovery`](aoci_vm::Component) per
    /// recovery event (invalidation, retry scheduling, quarantine,
    /// rejected trace).
    pub recovery_cost_per_event: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            monitor_guard_health: false,
            guard_miss_threshold: 0.9,
            guard_miss_min_checks: 48,
            retry_backoff_base_cycles: 25_000,
            retry_backoff_cap_cycles: 400_000,
            quarantine_after_failures: 3,
            recovery_cost_per_event: 200,
        }
    }
}

/// Tunables of the simulated asynchronous background-compilation pool (the
/// paper's — and Jikes RVM's — compilation *thread*, modelled in
/// deterministic simulated time). Absent (`AosConfig::async_compile =
/// None`, the default), every plan compiles synchronously inside its epoch
/// tick, bit-identical to the system before this subsystem existed.
#[derive(Clone, Debug)]
pub struct AsyncCompileConfig {
    /// Simulated compiler workers: how many plans can be in flight at once.
    pub workers: usize,
    /// Bounded priority-queue capacity; a plan arriving at a full queue
    /// evicts the lowest-priority resident (or is itself dropped when it
    /// *is* the lowest) — the backpressure counter records either way.
    pub queue_capacity: usize,
    /// Degenerate mode: every dispatched compile completes at dispatch,
    /// with its full cost charged as foreground stall. With one worker this
    /// reproduces legacy synchronous metrics bit-identically (the
    /// degenerate-equivalence oracle asserts it).
    pub zero_latency: bool,
}

impl Default for AsyncCompileConfig {
    fn default() -> Self {
        AsyncCompileConfig { workers: 2, queue_capacity: 16, zero_latency: false }
    }
}

/// Which profile-data representation backs the dynamic call graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProfileBackend {
    /// The paper's flat trace table ([`aoci_profile::Dcg`]).
    #[default]
    FlatTraces,
    /// The calling-context tree of Ammons et al.
    /// ([`aoci_profile::CallingContextTree`]) — the "more sophisticated
    /// representation" the paper's Section 6 contemplates.
    ContextTree,
}

/// Tunables of the whole adaptive system; [`AosConfig::new`] supplies
/// defaults matching the paper's setup where it states them (1.5% hot
/// threshold, decay toward recent samples) and plausible Jikes-era values
/// elsewhere.
#[derive(Clone, Debug)]
pub struct AosConfig {
    /// The context-sensitivity policy (paper Section 4).
    pub policy: PolicyKind,
    /// Hot-trace threshold as a fraction of total DCG weight (paper: 1.5%).
    pub hot_edge_threshold: f64,
    /// Method-listener samples a method must accumulate before the
    /// controller selects it for optimizing recompilation.
    pub hot_method_samples: u32,
    /// Additionally, a method must hold at least this fraction of all
    /// method samples so far — the stand-in for the Jikes controller's
    /// analytic cost/benefit model, which only recompiles methods expected
    /// to account for a significant share of future execution.
    pub hot_method_fraction: f64,
    /// Organizer wake-up period, in samples (listener buffers are drained
    /// and rules regenerated every this many samples).
    pub organizer_period_samples: u64,
    /// Decay-organizer period, in samples.
    pub decay_period_samples: u64,
    /// DCG decay factor applied at each decay-organizer wake-up.
    pub decay_factor: f64,
    /// Missing-edge-organizer period, in samples.
    pub missing_edge_period_samples: u64,
    /// Upper bound on optimizing recompilations of a single method
    /// (bounds recompilation churn from the missing-edge organizer).
    pub max_recompiles_per_method: u32,
    /// Upper bound on compilations *started* per epoch tick. In legacy
    /// synchronous mode this caps the stop-the-world pause a burst of hot
    /// methods can charge to one tick (leftover plans stay queued for the
    /// next); in async mode it caps dispatches per pump. The default
    /// (`u32::MAX`) preserves the historical drain-everything behaviour
    /// byte-identically.
    pub max_compiles_per_epoch: u32,
    /// Inliner budgets.
    pub opt: OptConfig,
    /// Adaptive-resolving policy tunables.
    pub adaptive: AdaptiveConfig,
    /// DCG collection behaviour (merge ablation, pruning).
    pub dcg: DcgConfig,
    /// Profile-data representation.
    pub profile_backend: ProfileBackend,
    /// Oracle matching mode (exact matching is an ablation).
    pub match_mode: MatchMode,
    /// Simulated-machine costs (sampling period lives here).
    pub cost: CostModel,
    /// VM behaviour (source-level stack walking, prologue window).
    pub vm: VmConfig,
    /// Organizer cost: cycles charged per buffered item processed.
    pub organizer_cost_per_item: u64,
    /// Controller cost: cycles charged per event considered.
    pub controller_cost_per_event: u64,
    /// Recovery-layer tunables (always active).
    pub recovery: RecoveryConfig,
    /// Fault injection; `None` (the default) runs faultless and the system
    /// is bit-identical to one built before this subsystem existed.
    pub fault: Option<FaultConfig>,
    /// Flight-recorder event tracing; `None` (the default) skips every
    /// emit site with a single branch, and — since recording charges no
    /// simulated cycles — a traced run produces exactly the metrics of an
    /// untraced one.
    pub trace: Option<TraceConfig>,
    /// Asynchronous background compilation; `None` (the default) compiles
    /// every plan synchronously inside its epoch tick, bit-identical to
    /// the pre-async system.
    pub async_compile: Option<AsyncCompileConfig>,
    /// Telemetry metrics registry; `None` (the default) skips every record
    /// site with a single branch, and — since recording charges no
    /// simulated cycles — a metered run produces exactly the report of an
    /// unmetered one (DESIGN.md §14).
    pub metrics: Option<MetricsConfig>,
    /// Dump the controller's hot-method selection to stderr each epoch
    /// tick (`AOCI_DEBUG_HOT` in the harness binaries). Diagnostics only:
    /// the flag never changes simulated behaviour, and keeping it in the
    /// config (rather than an ambient environment read) keeps every
    /// `AosSystem` run a pure function of `(program, AosConfig)` — the
    /// invariant the parallel sweep harness relies on.
    pub debug_hot: bool,
}

impl AosConfig {
    /// Default configuration for a given policy.
    pub fn new(policy: PolicyKind) -> Self {
        AosConfig {
            policy,
            hot_edge_threshold: 0.015,
            hot_method_samples: 3,
            hot_method_fraction: 0.01,
            organizer_period_samples: 8,
            decay_period_samples: 96,
            decay_factor: 0.95,
            missing_edge_period_samples: 24,
            max_recompiles_per_method: 4,
            max_compiles_per_epoch: u32::MAX,
            opt: OptConfig::default(),
            adaptive: AdaptiveConfig::default(),
            dcg: DcgConfig::default(),
            profile_backend: ProfileBackend::FlatTraces,
            match_mode: MatchMode::Partial,
            cost: CostModel::default(),
            vm: VmConfig::default(),
            organizer_cost_per_item: 12,
            controller_cost_per_event: 150,
            recovery: RecoveryConfig::default(),
            fault: None,
            trace: None,
            async_compile: None,
            metrics: None,
            debug_hot: false,
        }
    }

    /// The paper's baseline: context-insensitive profile-directed inlining.
    pub fn context_insensitive() -> Self {
        Self::new(PolicyKind::ContextInsensitive)
    }

    // --- Opt-in subsystems (builder-style, chainable) -------------------
    //
    // Every subsystem that is off by default — OSR, the flight recorder,
    // asynchronous compilation, fault injection, guard-health monitoring —
    // is enabled through one uniformly named, chainable `enable_*` method:
    //
    // ```
    // # use aoci_aos::AosConfig;
    // # use aoci_core::PolicyKind;
    // let config = AosConfig::new(PolicyKind::Fixed { max: 3 })
    //     .enable_osr()
    //     .enable_trace();
    // ```
    //
    // Each `enable_x` switches the subsystem on with its default tunables;
    // subsystems with a config struct additionally have `enable_x_with` to
    // supply non-default tunables. Disabled remains the default everywhere,
    // and every subsystem documents that its *off* state is bit-identical
    // to the system before the subsystem existed.

    /// Enables on-stack replacement: hot baseline loops are promoted into
    /// optimized code mid-activation, and invalidated or thrashing
    /// optimized activations deoptimize back to baseline mid-loop instead
    /// of finishing on stale code (DESIGN.md §7).
    pub fn enable_osr(mut self) -> Self {
        self.vm.osr_enabled = true;
        self
    }

    /// Enables the flight recorder with default tunables: every layer
    /// emits typed, cycle-timestamped events into a ring buffer the final
    /// [`AosReport`](crate::AosReport) carries (DESIGN.md §8).
    pub fn enable_trace(self) -> Self {
        self.enable_trace_with(TraceConfig::default())
    }

    /// Enables the flight recorder with explicit tunables (ring capacity,
    /// post-mortem window).
    pub fn enable_trace_with(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Enables asynchronous background compilation with default tunables:
    /// plans queue by predicted benefit, a simulated worker pool compiles
    /// them while the application keeps executing baseline or stale code,
    /// and only the unoverlapped remainder of each compile stalls the
    /// virtual clock (DESIGN.md §10).
    pub fn enable_async_compile(self) -> Self {
        self.enable_async_compile_with(AsyncCompileConfig::default())
    }

    /// Enables asynchronous background compilation with explicit tunables
    /// (worker count, queue capacity, zero-latency degenerate mode).
    pub fn enable_async_compile_with(mut self, async_compile: AsyncCompileConfig) -> Self {
        self.async_compile = Some(async_compile);
        self
    }

    /// Enables fault injection with the given profile (see
    /// [`FaultConfig::chaos`] for the everything-on profile); also implies
    /// guard-health monitoring, as documented on
    /// [`RecoveryConfig::monitor_guard_health`] (DESIGN.md §6).
    pub fn enable_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Enables the telemetry metrics registry with default tunables:
    /// counters, gauges and histograms over AOS/VM internals, snapshotted
    /// into a per-epoch time series on the simulated clock and carried by
    /// the final [`AosReport`](crate::AosReport) (DESIGN.md §14).
    pub fn enable_metrics(self) -> Self {
        self.enable_metrics_with(MetricsConfig::default())
    }

    /// Enables the telemetry metrics registry with explicit tunables
    /// (epoch length in samples).
    pub fn enable_metrics_with(mut self, metrics: MetricsConfig) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Enables guard-health monitoring (and thrash invalidation) even
    /// without fault injection — see
    /// [`RecoveryConfig::monitor_guard_health`] for why it is off by
    /// default.
    pub fn enable_guard_monitoring(mut self) -> Self {
        self.recovery.monitor_guard_health = true;
        self
    }

    /// Enables the per-tick hot-method selection dump on stderr
    /// ([`AosConfig::debug_hot`]).
    pub fn enable_debug_hot(mut self) -> Self {
        self.debug_hot = true;
        self
    }

    // --- Legacy constructor shims ----------------------------------------

    /// Legacy shim for [`AosConfig::enable_osr`].
    #[doc(hidden)]
    pub fn with_osr(policy: PolicyKind) -> Self {
        Self::new(policy).enable_osr()
    }

    /// Legacy shim for [`AosConfig::enable_trace`].
    #[doc(hidden)]
    pub fn with_trace(policy: PolicyKind) -> Self {
        Self::new(policy).enable_trace()
    }

    /// Legacy shim for [`AosConfig::enable_async_compile`].
    #[doc(hidden)]
    pub fn with_async_compile(policy: PolicyKind) -> Self {
        Self::new(policy).enable_async_compile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = AosConfig::new(PolicyKind::Fixed { max: 3 });
        assert!((c.hot_edge_threshold - 0.015).abs() < 1e-12);
        assert!(c.decay_factor > 0.0 && c.decay_factor < 1.0);
        assert_eq!(c.policy, PolicyKind::Fixed { max: 3 });
    }

    #[test]
    fn cins_helper() {
        let c = AosConfig::context_insensitive();
        assert_eq!(c.policy, PolicyKind::ContextInsensitive);
    }

    #[test]
    fn enable_builders_chain_and_compose() {
        let c = AosConfig::new(PolicyKind::Fixed { max: 3 })
            .enable_osr()
            .enable_trace()
            .enable_async_compile()
            .enable_metrics()
            .enable_guard_monitoring()
            .enable_debug_hot();
        assert!(c.vm.osr_enabled);
        assert!(c.trace.is_some());
        assert!(c.async_compile.is_some());
        assert!(c.metrics.is_some());
        assert!(c.recovery.monitor_guard_health);
        assert!(c.debug_hot);
        let c = AosConfig::context_insensitive()
            .enable_async_compile_with(AsyncCompileConfig { workers: 5, ..Default::default() });
        assert_eq!(c.async_compile.expect("enabled").workers, 5);
    }

    #[test]
    fn legacy_shims_match_builders() {
        let shim = AosConfig::with_osr(PolicyKind::Fixed { max: 2 });
        let built = AosConfig::new(PolicyKind::Fixed { max: 2 }).enable_osr();
        assert_eq!(shim.vm.osr_enabled, built.vm.osr_enabled);
        assert!(AosConfig::with_trace(PolicyKind::ContextInsensitive).trace.is_some());
        assert!(
            AosConfig::with_async_compile(PolicyKind::ContextInsensitive)
                .async_compile
                .is_some()
        );
    }
}
