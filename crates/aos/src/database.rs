//! The AOS database: the central repository of compilation decisions and
//! events (paper Section 3.2).

use aoci_ir::{CallSiteRef, MethodId};
use aoci_opt::{Compilation, InlineDecision, Refusal};
use std::collections::{HashMap, HashSet};

/// One optimizing compilation, as logged by the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CompilationRecord {
    /// The compiled method.
    pub method: MethodId,
    /// Abstract size of the generated code.
    pub generated_size: u32,
    /// Inlines performed.
    pub inlines: u32,
    /// Of which guarded.
    pub guarded: u32,
}

/// Records compilation history: which methods are optimized, which call
/// edges each compilation inlined, and which edges the compiler *refused*
/// to inline.
///
/// The refusal records are its paper-described use: "to avoid recommending
/// a method for recompilation due to a hot call edge that the optimizing
/// compiler has already refused to inline".
#[derive(Clone, Debug, Default)]
pub struct AosDatabase {
    /// Hot refusals: edges the compiler declined while they were hot.
    refused: HashSet<(CallSiteRef, MethodId)>,
    /// Per method: inlined callees in its current optimized version.
    inlined: HashMap<MethodId, HashSet<(CallSiteRef, MethodId)>>,
    /// Per method: number of optimizing compilations so far.
    recompiles: HashMap<MethodId, u32>,
    /// Per method: the AI-organizer generation its current version was
    /// compiled at (used to detect rules that became hot afterwards).
    compiled_generation: HashMap<MethodId, u64>,
    /// All inline decisions ever made (analysis / reporting).
    decision_log: Vec<(MethodId, InlineDecision)>,
    /// All refusals ever recorded.
    refusal_log: Vec<(MethodId, Refusal)>,
    /// Every optimizing compilation, in order.
    compilation_log: Vec<CompilationRecord>,
    /// `(host, site, callee)` triples a compilation of `host` failed to
    /// realise: the rule was hot and applicable, but the compiled code did
    /// not end up inlining the callee (e.g. the intermediate chain did not
    /// inline, or the context intersection blocked it). The missing-edge
    /// organizer skips these to avoid recompilation churn.
    unrealized: HashSet<(MethodId, CallSiteRef, MethodId)>,
    /// Methods whose optimized version was invalidated and not yet
    /// replaced: compiled at least once, but *not currently* optimized —
    /// the hot-methods organizer may select them again.
    invalidated: HashSet<MethodId>,
    /// Per method: how many times its optimized code has been invalidated.
    invalidation_counts: HashMap<MethodId, u32>,
}

impl AosDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of an optimizing compilation of `method`
    /// performed at the given AI-organizer generation.
    pub fn record_compilation(
        &mut self,
        method: MethodId,
        compilation: &Compilation,
        ai_generation: u64,
    ) {
        *self.recompiles.entry(method).or_insert(0) += 1;
        self.invalidated.remove(&method);
        self.compiled_generation.insert(method, ai_generation);
        self.compilation_log.push(CompilationRecord {
            method,
            generated_size: compilation.generated_size,
            inlines: compilation.decisions.len() as u32,
            guarded: compilation.guarded_count() as u32,
        });
        let entry = self.inlined.entry(method).or_default();
        entry.clear();
        for d in &compilation.decisions {
            // The emitter always seeds a decision's context with its own
            // call site, but the database must not trust that invariant: a
            // malformed record (e.g. a compiler bug or a hand-built
            // compilation) is skipped, not a panic that takes the run down.
            let Some(&site) = d.context.first() else { continue };
            entry.insert((site, d.callee));
            self.decision_log.push((method, d.clone()));
        }
        for r in &compilation.refusals {
            if r.hot {
                self.refused.insert((r.site, r.callee));
            }
            self.refusal_log.push((method, *r));
        }
    }

    /// Returns `true` if the compiler has refused `site ⇒ callee` while hot.
    pub fn was_refused(&self, site: CallSiteRef, callee: MethodId) -> bool {
        self.refused.contains(&(site, callee))
    }

    /// Returns `true` if `method`'s current optimized version inlines
    /// `callee` at `site`.
    pub fn has_inlined(&self, method: MethodId, site: CallSiteRef, callee: MethodId) -> bool {
        self.inlined
            .get(&method)
            .is_some_and(|s| s.contains(&(site, callee)))
    }

    /// Returns `true` if `method`'s current optimized version inlines
    /// `callee` at any site.
    pub fn inlines_method(&self, method: MethodId, callee: MethodId) -> bool {
        self.inlined
            .get(&method)
            .is_some_and(|s| s.iter().any(|&(_, c)| c == callee))
    }

    /// The AI-organizer generation `method` was last compiled at, if it has
    /// been optimize-compiled.
    pub fn compiled_generation(&self, method: MethodId) -> Option<u64> {
        self.compiled_generation.get(&method).copied()
    }

    /// Number of optimizing compilations of `method`.
    pub fn recompiles(&self, method: MethodId) -> u32 {
        self.recompiles.get(&method).copied().unwrap_or(0)
    }

    /// Returns `true` if `method` *currently* holds an optimized version:
    /// compiled at least once and not since invalidated.
    pub fn is_optimized(&self, method: MethodId) -> bool {
        self.recompiles(method) > 0 && !self.invalidated.contains(&method)
    }

    /// Methods currently holding an optimized version.
    pub fn optimized_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.recompiles
            .keys()
            .copied()
            .filter(|m| !self.invalidated.contains(m))
    }

    /// Records that `method`'s optimized version was invalidated (guard
    /// thrash): its inline set is cleared and it is no longer *currently*
    /// optimized, so the hot-methods organizer may select it for a fresh
    /// compilation; its cumulative compilation history is preserved.
    pub fn record_invalidation(&mut self, method: MethodId) {
        self.inlined.remove(&method);
        self.invalidated.insert(method);
        *self.invalidation_counts.entry(method).or_insert(0) += 1;
    }

    /// How many times `method`'s optimized code has been invalidated.
    pub fn times_invalidated(&self, method: MethodId) -> u32 {
        self.invalidation_counts.get(&method).copied().unwrap_or(0)
    }

    /// Full decision log, in compilation order.
    pub fn decision_log(&self) -> &[(MethodId, InlineDecision)] {
        &self.decision_log
    }

    /// Full refusal log, in compilation order.
    pub fn refusal_log(&self) -> &[(MethodId, Refusal)] {
        &self.refusal_log
    }

    /// Every optimizing compilation performed, in order.
    pub fn compilation_log(&self) -> &[CompilationRecord] {
        &self.compilation_log
    }

    /// Marks that compiling `host` did not realise inlining `callee` at
    /// `site` even though a hot rule suggested it.
    pub fn mark_unrealized(&mut self, host: MethodId, site: CallSiteRef, callee: MethodId) {
        self.unrealized.insert((host, site, callee));
    }

    /// Returns `true` if a previous compilation of `host` failed to realise
    /// this inline.
    pub fn is_unrealized(&self, host: MethodId, site: CallSiteRef, callee: MethodId) -> bool {
        self.unrealized.contains(&(host, site, callee))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_opt::RefusalReason;
    use aoci_ir::SiteIdx;
    use aoci_vm::{InlineMap, MethodVersion, OptLevel};

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(mid(m), SiteIdx(s))
    }

    fn compilation(decisions: Vec<InlineDecision>, refusals: Vec<Refusal>) -> Compilation {
        Compilation {
            version: MethodVersion {
                method: mid(0),
                level: OptLevel::Optimized,
                body: vec![],
                num_regs: 0,
                inline_map: InlineMap::baseline(mid(0), 0),
                code_size: 0,
                version_id: 0,
                osr_map: aoci_vm::OsrMap::empty(),
                decoded: aoci_vm::DecodeCache::default(),
            },
            decisions,
            refusals,
            generated_size: 0,
        }
    }

    #[test]
    fn records_inlines_and_refusals() {
        let mut db = AosDatabase::new();
        let c = compilation(
            vec![InlineDecision {
                context: vec![cs(0, 0)],
                callee: mid(1),
                guarded: false,
                provenance: Default::default(),
            }],
            vec![
                Refusal {
                    site: cs(0, 1),
                    callee: mid(2),
                    reason: RefusalReason::TooLarge,
                    hot: true,
                    provenance: Default::default(),
                },
                Refusal {
                    site: cs(0, 2),
                    callee: mid(3),
                    reason: RefusalReason::NotHot,
                    hot: false,
                    provenance: Default::default(),
                },
            ],
        );
        db.record_compilation(mid(0), &c, 42);
        assert!(db.is_optimized(mid(0)));
        assert_eq!(db.compiled_generation(mid(0)), Some(42));
        assert!(db.has_inlined(mid(0), cs(0, 0), mid(1)));
        assert!(!db.has_inlined(mid(0), cs(0, 0), mid(2)));
        // Only the hot refusal gates the missing-edge organizer.
        assert!(db.was_refused(cs(0, 1), mid(2)));
        assert!(!db.was_refused(cs(0, 2), mid(3)));
        assert_eq!(db.recompiles(mid(0)), 1);
        assert_eq!(db.decision_log().len(), 1);
        assert_eq!(db.refusal_log().len(), 2);
    }

    #[test]
    fn empty_context_decision_is_skipped_not_a_panic() {
        let mut db = AosDatabase::new();
        let c = compilation(
            vec![
                InlineDecision {
                    context: vec![], // malformed: no call site at all
                    callee: mid(1),
                    guarded: false,
                    provenance: Default::default(),
                },
                InlineDecision {
                    context: vec![cs(0, 0)],
                    callee: mid(2),
                    guarded: false,
                    provenance: Default::default(),
                },
            ],
            vec![],
        );
        db.record_compilation(mid(0), &c, 1);
        // The malformed record is dropped; the well-formed one is kept and
        // the compilation itself is still logged.
        assert!(db.is_optimized(mid(0)));
        assert!(!db.inlines_method(mid(0), mid(1)));
        assert!(db.has_inlined(mid(0), cs(0, 0), mid(2)));
        assert_eq!(db.decision_log().len(), 1);
        assert_eq!(db.compilation_log().len(), 1);
    }

    #[test]
    fn invalidation_revokes_current_status_but_keeps_history() {
        let mut db = AosDatabase::new();
        db.record_compilation(
            mid(0),
            &compilation(
                vec![InlineDecision {
                    context: vec![cs(0, 0)],
                    callee: mid(1),
                    guarded: true,
                    provenance: Default::default(),
                }],
                vec![],
            ),
            1,
        );
        assert!(db.is_optimized(mid(0)));
        db.record_invalidation(mid(0));
        assert!(!db.is_optimized(mid(0)), "invalidated ⇒ not currently optimized");
        assert!(!db.has_inlined(mid(0), cs(0, 0), mid(1)), "inline set cleared");
        assert_eq!(db.recompiles(mid(0)), 1, "compile history survives");
        assert_eq!(db.times_invalidated(mid(0)), 1);
        assert_eq!(db.optimized_methods().count(), 0);
        // A fresh compilation restores currently-optimized status.
        db.record_compilation(mid(0), &compilation(vec![], vec![]), 2);
        assert!(db.is_optimized(mid(0)));
        assert_eq!(db.optimized_methods().count(), 1);
    }

    #[test]
    fn recompilation_replaces_inline_set() {
        let mut db = AosDatabase::new();
        db.record_compilation(
            mid(0),
            &compilation(
                vec![InlineDecision {
                context: vec![cs(0, 0)],
                callee: mid(1),
                guarded: false,
                provenance: Default::default(),
            }],
                vec![],
            ),
            1,
        );
        db.record_compilation(
            mid(0),
            &compilation(
                vec![InlineDecision {
                    context: vec![cs(0, 1)],
                    callee: mid(2),
                    guarded: true,
                    provenance: Default::default(),
                }],
                vec![],
            ),
            2,
        );
        assert_eq!(db.compiled_generation(mid(0)), Some(2));
        assert_eq!(db.recompiles(mid(0)), 2);
        // The first version's inline is no longer "current".
        assert!(!db.has_inlined(mid(0), cs(0, 0), mid(1)));
        assert!(db.has_inlined(mid(0), cs(0, 1), mid(2)));
    }
}
