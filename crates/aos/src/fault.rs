//! Seeded, deterministic fault injection for robustness testing.
//!
//! The paper's adaptive optimization system assumes a cooperative
//! environment: compilations succeed, profile data is well-formed, the
//! sampler never misses. A production VM gets none of those guarantees.
//! This module provides the adversary: a [`FaultInjector`] that, driven by
//! its own seeded RNG (independent of program execution), perturbs the
//! system at its trust boundaries —
//!
//! * **compile-thread bailouts** — an optimizing compilation aborts partway
//!   (simulating a compiler bug or resource exhaustion);
//! * **oversized-code bailouts** — the compilation finishes but the
//!   generated code trips the code-space guard and is discarded;
//! * **trace corruption** — profile traces arrive with unknown method or
//!   call-site indices, or NaN / negative weights;
//! * **sampler dropouts** — a timer sample is lost before the listeners
//!   see it;
//! * **receiver bursts** — an adversarial phase shift floods an optimized
//!   method's inline guards with miss-path receivers, forcing guard thrash.
//!
//! Everything is deterministic for a given [`FaultConfig::seed`]: the same
//! configuration over the same program produces the same fault schedule,
//! which is what makes backoff and recovery behaviour unit-testable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Probabilities and intensities of each injected fault class.
///
/// `Default` disables every fault (all probabilities zero) — an injector
/// built from it is a deterministic no-op, so production configurations pay
/// nothing. Use [`FaultConfig::chaos`] for an everything-on profile.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the injector's private RNG.
    pub seed: u64,
    /// Probability that an optimizing compilation bails out partway.
    pub compile_bailout_prob: f64,
    /// Probability that a completed compilation is rejected as oversized.
    pub oversize_code_prob: f64,
    /// Probability that a drained profile trace is corrupted.
    pub trace_corruption_prob: f64,
    /// Probability that a timer sample is dropped before the listeners.
    pub sampler_dropout_prob: f64,
    /// Probability (per sample) of an adversarial receiver burst against
    /// one currently-optimized method.
    pub receiver_burst_prob: f64,
    /// Synthetic guard misses delivered by one receiver burst.
    pub receiver_burst_misses: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x5EED,
            compile_bailout_prob: 0.0,
            oversize_code_prob: 0.0,
            trace_corruption_prob: 0.0,
            sampler_dropout_prob: 0.0,
            receiver_burst_prob: 0.0,
            receiver_burst_misses: 0,
        }
    }
}

impl FaultConfig {
    /// An everything-on profile: every fault class enabled at rates high
    /// enough that short runs exercise all recovery paths.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            compile_bailout_prob: 0.25,
            oversize_code_prob: 0.10,
            trace_corruption_prob: 0.20,
            sampler_dropout_prob: 0.10,
            receiver_burst_prob: 0.05,
            receiver_burst_misses: 96,
        }
    }

    /// Returns `true` if every fault class is disabled.
    pub fn is_inert(&self) -> bool {
        self.compile_bailout_prob == 0.0
            && self.oversize_code_prob == 0.0
            && self.trace_corruption_prob == 0.0
            && self.sampler_dropout_prob == 0.0
            && self.receiver_burst_prob == 0.0
    }
}

/// How an injected compilation failure presents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompileFault {
    /// The compilation aborted partway; only its fixed overhead was spent.
    Bailout,
    /// The compilation completed (full cost) but the generated code was
    /// rejected by the code-space guard and discarded.
    Oversize,
}

/// How an injected trace corruption presents.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceCorruption {
    /// The callee method index is replaced with a non-existent one.
    UnknownCallee,
    /// A context call-site index is replaced with an out-of-range one.
    UnknownCallSite,
    /// The weight becomes NaN.
    NanWeight,
    /// The weight becomes negative.
    NegativeWeight,
}

/// Counters of every fault the injector actually delivered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedFaults {
    /// Compile-thread bailouts injected.
    pub compile_bailouts: u64,
    /// Oversized-code rejections injected.
    pub oversize_rejections: u64,
    /// Profile traces corrupted.
    pub corrupted_traces: u64,
    /// Timer samples dropped.
    pub dropped_samples: u64,
    /// Receiver bursts delivered.
    pub receiver_bursts: u64,
}

/// The fault injector: draws from its own seeded RNG at each decision
/// point, so the fault schedule is a pure function of the seed and the
/// sequence of queries (which is deterministic for a deterministic system).
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SmallRng,
    injected: InjectedFaults,
}

impl FaultInjector {
    /// Creates an injector from `config`, seeding its private RNG.
    pub fn new(config: FaultConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        FaultInjector { config, rng, injected: InjectedFaults::default() }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Counters of faults delivered so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// Consulted once per optimizing compilation: should it fail, and how?
    pub fn compile_fault(&mut self) -> Option<CompileFault> {
        if self.roll(self.config.compile_bailout_prob) {
            self.injected.compile_bailouts += 1;
            return Some(CompileFault::Bailout);
        }
        if self.roll(self.config.oversize_code_prob) {
            self.injected.oversize_rejections += 1;
            return Some(CompileFault::Oversize);
        }
        None
    }

    /// Consulted once per timer sample: is this sample lost?
    pub fn drop_sample(&mut self) -> bool {
        if self.roll(self.config.sampler_dropout_prob) {
            self.injected.dropped_samples += 1;
            true
        } else {
            false
        }
    }

    /// Consulted once per drained profile trace: corrupt it, and how?
    pub fn corrupt_trace(&mut self) -> Option<TraceCorruption> {
        if !self.roll(self.config.trace_corruption_prob) {
            return None;
        }
        self.injected.corrupted_traces += 1;
        Some(match self.rng.gen_range(0..4u32) {
            0 => TraceCorruption::UnknownCallee,
            1 => TraceCorruption::UnknownCallSite,
            2 => TraceCorruption::NanWeight,
            _ => TraceCorruption::NegativeWeight,
        })
    }

    /// Consulted once per timer sample: deliver a receiver burst? Returns
    /// the number of synthetic guard misses and a selector value used to
    /// pick the victim among currently-optimized methods.
    pub fn receiver_burst(&mut self) -> Option<(u64, u64)> {
        if self.config.receiver_burst_misses == 0
            || !self.roll(self.config.receiver_burst_prob)
        {
            return None;
        }
        self.injected.receiver_bursts += 1;
        Some((self.config.receiver_burst_misses, self.rng.gen::<u64>()))
    }

    fn roll(&mut self, p: f64) -> bool {
        // Draw even for p == 0 so enabling one fault class does not shift
        // the schedule of another: each decision consumes exactly one draw.
        let draw = self.rng.gen::<f64>();
        p > 0.0 && draw < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(inj: &mut FaultInjector, n: usize) -> Vec<Option<CompileFault>> {
        (0..n).map(|_| inj.compile_fault()).collect()
    }

    #[test]
    fn default_config_is_inert() {
        let mut inj = FaultInjector::new(FaultConfig::default());
        assert!(inj.config().is_inert());
        for _ in 0..200 {
            assert_eq!(inj.compile_fault(), None);
            assert!(!inj.drop_sample());
            assert_eq!(inj.corrupt_trace(), None);
            assert_eq!(inj.receiver_burst(), None);
        }
        assert_eq!(inj.injected(), InjectedFaults::default());
    }

    #[test]
    fn chaos_delivers_every_class() {
        let mut inj = FaultInjector::new(FaultConfig::chaos(11));
        for _ in 0..400 {
            let _ = inj.compile_fault();
            let _ = inj.drop_sample();
            let _ = inj.corrupt_trace();
            let _ = inj.receiver_burst();
        }
        let got = inj.injected();
        assert!(got.compile_bailouts > 0);
        assert!(got.oversize_rejections > 0);
        assert!(got.corrupted_traces > 0);
        assert!(got.dropped_samples > 0);
        assert!(got.receiver_bursts > 0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultInjector::new(FaultConfig::chaos(99));
        let mut b = FaultInjector::new(FaultConfig::chaos(99));
        assert_eq!(drain(&mut a, 100), drain(&mut b, 100));
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultInjector::new(FaultConfig::chaos(1));
        let mut b = FaultInjector::new(FaultConfig::chaos(2));
        assert_ne!(drain(&mut a, 100), drain(&mut b, 100));
    }

    #[test]
    fn fault_classes_draw_independently() {
        // Turning sampler dropouts on must not change the compile-fault
        // schedule: every decision consumes exactly one draw either way.
        let mut quiet = FaultConfig::chaos(5);
        quiet.sampler_dropout_prob = 0.0;
        let mut a = FaultInjector::new(FaultConfig::chaos(5));
        let mut b = FaultInjector::new(quiet);
        let mut faults_a = Vec::new();
        let mut faults_b = Vec::new();
        for _ in 0..100 {
            let _ = a.drop_sample();
            let _ = b.drop_sample();
            faults_a.push(a.compile_fault());
            faults_b.push(b.compile_fault());
        }
        assert_eq!(faults_a, faults_b);
        assert_eq!(b.injected().dropped_samples, 0);
    }
}
