//! # aoci-json — minimal JSON tree, parser and writer
//!
//! The workspace persists profiles (`aoci-profile::SavedProfile`) and the
//! benchmark measurement grid (`aoci-bench`) as JSON. The build environment
//! has no crates.io access, so instead of `serde`/`serde_json` this crate
//! provides a small self-contained JSON [`Value`] with a strict parser and
//! a pretty printer. Conversions to and from domain types are written by
//! hand at the use sites.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s arbitrary
    /// precision off mode).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strict bound: `u64::MAX as f64` rounds up to 2^64, which is
            // *not* representable in u64.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Builds an object value from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Obj(pairs.into_iter().collect())
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Num(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A parse error: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first malformed construct.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our data;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    // ASCII fast path: validating the whole remaining input
                    // per character would make large documents quadratic.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar (at most 4 bytes).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let s = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated prefix")
                        }
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    };
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(out: &mut String, n: f64) {
    if n.is_nan() || n.is_infinite() {
        // JSON has no NaN/Inf; mirror serde_json by emitting null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `v` compactly.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0, false);
    out
}

/// Serializes `v` with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, 0, true);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Value::obj([
            ("name".to_string(), Value::from("aoci")),
            ("n".to_string(), Value::from(42u64)),
            ("pi".to_string(), Value::from(3.25)),
            ("neg".to_string(), Value::from(-7i64)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "arr".to_string(),
                Value::Arr(vec![Value::from(1u64), Value::from("two")]),
            ),
        ]);
        for s in [to_string(&v), to_string_pretty(&v)] {
            assert_eq!(parse(&s).unwrap(), v);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\nb\t\"c\" A é"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\nb\t\"c\" A é");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "not json", "{", "[1,", "{\"a\":}", "[1 2]", "01x", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        assert!(parse("1 trailing").is_err());
    }

    #[test]
    fn numbers_parse_in_all_forms() {
        assert_eq!(parse("-12").unwrap().as_i64(), Some(-12));
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("2.5e-1").unwrap().as_f64(), Some(0.25));
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), None); // rounds in f64
    }

    #[test]
    fn accessors_reject_wrong_kinds() {
        let v = parse("{\"x\": 1.5}").unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("x").unwrap().as_str(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_arr(), None);
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(to_string(&Value::Num(f64::NAN)), "null");
    }
}
