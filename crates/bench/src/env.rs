//! The unified experiment-configuration surface: every `AOCI_*`
//! environment knob, parsed **once** into a typed [`EnvConfig`].
//!
//! Historically each binary, bench and test read its own ad-hoc
//! `std::env::var("AOCI_…")` calls, scattered across five files with
//! subtly different parsing rules. This module is now the only place in
//! the workspace that reads `AOCI_*` variables (enforced by
//! `knob_registry_is_closed` below plus a CI grep): a harness entry point
//! calls [`EnvConfig::from_env`] exactly once at startup and passes the
//! struct down explicitly. Everything below the entry point — and in
//! particular every job the parallel sweep pool runs — is environment-
//! read-free, which is what makes a job a pure function of its descriptor.
//!
//! Each knob is described by a [`Knob`] entry in [`KNOBS`]; the parser
//! reads variables *through* those descriptors, so the generated table
//! (`diag --knobs`, EXPERIMENTS.md) cannot drift from the implementation.
//!
//! Parsing rules, uniform across knobs:
//!
//! * **flags** (`bool`) — set to anything non-empty other than `0` ⇒ on;
//!   unset, empty or `0` ⇒ off.
//! * **numbers** — unset or empty ⇒ the default; malformed non-empty
//!   values are an error ([`EnvConfig::from_env`] exits with a diagnostic
//!   rather than silently measuring the wrong configuration).
//! * **strings** — unset ⇒ the default; set (even to empty, for
//!   `AOCI_EXPLAIN`) ⇒ the given value.

use aoci_core::{default_workers, JobPool};

/// Description of one `AOCI_*` environment knob: its name, value type,
/// default, and one-line effect. [`KNOBS`] collects every knob; the parser
/// reads the environment only through these descriptors.
#[derive(Clone, Copy, Debug)]
pub struct Knob {
    /// Environment variable name (`AOCI_…`).
    pub name: &'static str,
    /// Human-readable value type (`flag`, `usize`, …).
    pub ty: &'static str,
    /// Human-readable default.
    pub default: &'static str,
    /// One-line effect description.
    pub effect: &'static str,
}

/// `AOCI_JOBS` — sweep worker threads.
pub const JOBS: Knob = Knob {
    name: "AOCI_JOBS",
    ty: "usize",
    default: "available parallelism",
    effect: "worker threads for sweep harnesses; 0/unset = all cores, 1 = serial. \
             Results are byte-identical for any value.",
};

/// `AOCI_REPS` — repetitions per grid configuration.
pub const REPS: Knob = Knob {
    name: "AOCI_REPS",
    ty: "usize",
    default: "3",
    effect: "repetitions per (workload, policy) grid cell; median/mean aggregated \
             (the paper's best-of-20 stand-in).",
};

/// `AOCI_OSR` — enable on-stack replacement.
pub const OSR: Knob = Knob {
    name: "AOCI_OSR",
    ty: "flag",
    default: "off",
    effect: "enable on-stack replacement in sweep/smoke runs (DESIGN.md \u{a7}7).",
};

/// `AOCI_TRACE` — enable the flight recorder.
pub const TRACE: Knob = Knob {
    name: "AOCI_TRACE",
    ty: "flag",
    default: "off",
    effect: "enable flight-recorder event tracing (DESIGN.md \u{a7}8); zero simulated-cycle \
             overhead, so metrics are unchanged.",
};

/// `AOCI_ASYNC` — enable background compilation.
pub const ASYNC: Knob = Knob {
    name: "AOCI_ASYNC",
    ty: "flag",
    default: "off",
    effect: "enable asynchronous background compilation (DESIGN.md \u{a7}10) in sweep, smoke \
             and oracle runs.",
};

/// `AOCI_QUICK` — reduced sweep.
pub const QUICK: Knob = Knob {
    name: "AOCI_QUICK",
    ty: "flag",
    default: "off",
    effect: "reduced sensitivity sweep (max levels 2\u{2013}3 instead of 2\u{2013}5) for fast \
             iteration.",
};

/// `AOCI_RERUN` — ignore the cached grid.
pub const RERUN: Knob = Knob {
    name: "AOCI_RERUN",
    ty: "flag",
    default: "off",
    effect: "ignore the cached results/grid.json and re-measure every cell.",
};

/// `AOCI_RESULTS_DIR` — results directory.
pub const RESULTS_DIR: Knob = Knob {
    name: "AOCI_RESULTS_DIR",
    ty: "string",
    default: "results",
    effect: "directory holding grid.json and other sweep artifacts.",
};

/// `AOCI_FAULTS` — fault-injection seed.
pub const FAULTS: Knob = Knob {
    name: "AOCI_FAULTS",
    ty: "u64 (optional)",
    default: "unset (no faults)",
    effect: "enable the everything-on chaos fault-injection profile with this seed \
             (DESIGN.md \u{a7}6).",
};

/// `AOCI_TRACE_CAP` — flight-recorder ring capacity in smoke.
pub const TRACE_CAP: Knob = Knob {
    name: "AOCI_TRACE_CAP",
    ty: "usize",
    default: "65536",
    effect: "flight-recorder ring capacity for smoke's Chrome-trace export window.",
};

/// `AOCI_TRACE_OUT` — Chrome-trace output path.
pub const TRACE_OUT: Knob = Knob {
    name: "AOCI_TRACE_OUT",
    ty: "string",
    default: "results/smoke_trace.json",
    effect: "where smoke writes the richest retained Chrome-trace window.",
};

/// `AOCI_EXPLAIN` — inlining-decision explain filter.
pub const EXPLAIN: Knob = Knob {
    name: "AOCI_EXPLAIN",
    ty: "string (optional)",
    default: "unset (no explain lines)",
    effect: "print one explain line per inlining decision/refusal whose host, callee or \
             site matches this pattern (empty matches all); needs AOCI_TRACE=1.",
};

/// `AOCI_ORACLE_SEED` — differential-oracle fault seed.
pub const ORACLE_SEED: Knob = Knob {
    name: "AOCI_ORACLE_SEED",
    ty: "u64",
    default: "1",
    effect: "fault seed for the differential-oracle and async-compile test matrices.",
};

/// `AOCI_BENCH_ITERS` — microbench iterations.
pub const BENCH_ITERS: Knob = Knob {
    name: "AOCI_BENCH_ITERS",
    ty: "u32",
    default: "200",
    effect: "timing-loop iterations per microbenchmark.",
};

/// `AOCI_DEBUG_HOT` — hot-method selection dump.
pub const DEBUG_HOT: Knob = Knob {
    name: "AOCI_DEBUG_HOT",
    ty: "flag",
    default: "off",
    effect: "dump the controller's per-tick hot-method selection to stderr \
             (diagnostics only; simulated behaviour is unchanged).",
};

/// `AOCI_FUZZ_ITERS` — fuzz-campaign budget.
pub const FUZZ_ITERS: Knob = Knob {
    name: "AOCI_FUZZ_ITERS",
    ty: "usize",
    default: "200",
    effect: "generated programs per differential fuzzing campaign (DESIGN.md \u{a7}12); \
             each runs the full oracle matrix.",
};

/// `AOCI_DECODE` — pre-decoded threaded dispatch.
pub const DECODE: Knob = Knob {
    name: "AOCI_DECODE",
    ty: "flag",
    default: "on",
    effect: "pre-decoded threaded interpreter dispatch (DESIGN.md \u{a7}13); set to 0 for the \
             legacy per-step match loop. Bit-identical either way \u{2014} only wall-clock \
             speed changes.",
};

/// `AOCI_FUZZ_SEED` — fuzz-campaign seed.
pub const FUZZ_SEED: Knob = Knob {
    name: "AOCI_FUZZ_SEED",
    ty: "u64",
    default: "1",
    effect: "campaign seed for the fuzz generator; the corpus fingerprint is a pure \
             function of (seed, iters), independent of AOCI_JOBS.",
};

/// `AOCI_METRICS` — enable the telemetry registry.
pub const METRICS: Knob = Knob {
    name: "AOCI_METRICS",
    ty: "flag",
    default: "off",
    effect: "enable the telemetry metrics registry (DESIGN.md \u{a7}14) in sweep, smoke, \
             diag and fuzz runs; zero simulated-cycle overhead, so primary artifacts \
             are byte-identical on/off.",
};

/// `AOCI_METRICS_OUT` — telemetry export path.
pub const METRICS_OUT: Knob = Knob {
    name: "AOCI_METRICS_OUT",
    ty: "string",
    default: "results/smoke_metrics.jsonl",
    effect: "where smoke writes the JSONL time-series export (the Prometheus text dump \
             lands next to it with a .prom extension); needs AOCI_METRICS=1.",
};

/// Every knob the harness understands, in documentation order. `diag
/// --knobs` and the EXPERIMENTS.md table render from this slice.
pub const KNOBS: &[Knob] = &[
    JOBS,
    REPS,
    OSR,
    TRACE,
    ASYNC,
    QUICK,
    RERUN,
    RESULTS_DIR,
    FAULTS,
    TRACE_CAP,
    TRACE_OUT,
    EXPLAIN,
    ORACLE_SEED,
    BENCH_ITERS,
    DEBUG_HOT,
    DECODE,
    FUZZ_ITERS,
    FUZZ_SEED,
    METRICS,
    METRICS_OUT,
];

/// All `AOCI_*` knobs, parsed once. Construct with [`EnvConfig::from_env`]
/// at the entry point and pass `&EnvConfig` down; nothing below the entry
/// point reads the environment.
#[derive(Clone, Debug)]
pub struct EnvConfig {
    /// Sweep worker threads ([`JOBS`]), resolved: `0`/unset becomes the
    /// machine's available parallelism, so this is always ≥ 1.
    pub jobs: usize,
    /// Repetitions per grid configuration ([`REPS`]).
    pub reps: usize,
    /// On-stack replacement in sweeps ([`OSR`]).
    pub osr: bool,
    /// Flight recorder in sweeps ([`TRACE`]).
    pub trace: bool,
    /// Asynchronous background compilation in sweeps ([`ASYNC`]).
    pub async_compile: bool,
    /// Reduced sweep ([`QUICK`]).
    pub quick: bool,
    /// Ignore the cached grid ([`RERUN`]).
    pub rerun: bool,
    /// Results directory ([`RESULTS_DIR`]).
    pub results_dir: String,
    /// Chaos fault-injection seed ([`FAULTS`]).
    pub faults: Option<u64>,
    /// Flight-recorder ring capacity for smoke ([`TRACE_CAP`]).
    pub trace_cap: usize,
    /// Chrome-trace output path for smoke ([`TRACE_OUT`]).
    pub trace_out: String,
    /// Explain-filter pattern ([`EXPLAIN`]); `Some("")` matches everything.
    pub explain: Option<String>,
    /// Differential-oracle fault seed ([`ORACLE_SEED`]).
    pub oracle_seed: u64,
    /// Microbench timing-loop iterations ([`BENCH_ITERS`]).
    pub bench_iters: u32,
    /// Hot-method selection dump ([`DEBUG_HOT`]).
    pub debug_hot: bool,
    /// Pre-decoded threaded dispatch ([`DECODE`]). The one default-**on**
    /// flag: only an explicit `0` selects the legacy match loop.
    pub decode: bool,
    /// Fuzz-campaign program budget ([`FUZZ_ITERS`]).
    pub fuzz_iters: usize,
    /// Fuzz-campaign seed ([`FUZZ_SEED`]).
    pub fuzz_seed: u64,
    /// Telemetry metrics registry ([`METRICS`]).
    pub metrics: bool,
    /// Telemetry JSONL export path for smoke ([`METRICS_OUT`]).
    pub metrics_out: String,
}

/// Raw environment read — the **only** `std::env::var` call in the
/// workspace that touches an `AOCI_*` name, and it goes through a
/// [`Knob`] descriptor so reads and documentation cannot diverge.
fn raw(k: &Knob) -> Option<String> {
    std::env::var(k.name).ok()
}

/// Uniform flag semantics: set to anything non-empty other than `0`.
fn flag(k: &Knob) -> bool {
    raw(k).is_some_and(|s| !s.trim().is_empty() && s.trim() != "0")
}

/// Uniform number semantics: unset/empty ⇒ `None` (caller defaults),
/// malformed ⇒ `Err` naming the knob.
fn number<T: std::str::FromStr>(k: &Knob) -> Result<Option<T>, String> {
    match raw(k) {
        None => Ok(None),
        Some(s) if s.trim().is_empty() => Ok(None),
        Some(s) => s
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{} must be a {}, got {:?}", k.name, k.ty, s)),
    }
}

impl Default for EnvConfig {
    /// The configuration with **no** environment variable set — every knob
    /// at its documented default.
    fn default() -> Self {
        EnvConfig {
            jobs: default_workers(),
            reps: 3,
            osr: false,
            trace: false,
            async_compile: false,
            quick: false,
            rerun: false,
            results_dir: "results".to_string(),
            faults: None,
            trace_cap: 1 << 16,
            trace_out: "results/smoke_trace.json".to_string(),
            explain: None,
            oracle_seed: 1,
            bench_iters: 200,
            debug_hot: false,
            decode: true,
            fuzz_iters: 200,
            fuzz_seed: 1,
            metrics: false,
            metrics_out: "results/smoke_metrics.jsonl".to_string(),
        }
    }
}

impl EnvConfig {
    /// Parses every knob from the environment; malformed values are an
    /// error naming the offending variable.
    pub fn try_from_env() -> Result<Self, String> {
        let defaults = EnvConfig::default();
        Ok(EnvConfig {
            jobs: match number::<usize>(&JOBS)? {
                None | Some(0) => default_workers(),
                Some(n) => n,
            },
            reps: number(&REPS)?.unwrap_or(defaults.reps).max(1),
            osr: flag(&OSR),
            trace: flag(&TRACE),
            async_compile: flag(&ASYNC),
            quick: flag(&QUICK),
            rerun: flag(&RERUN),
            results_dir: raw(&RESULTS_DIR).unwrap_or(defaults.results_dir),
            faults: number(&FAULTS)?,
            trace_cap: number(&TRACE_CAP)?.unwrap_or(defaults.trace_cap),
            trace_out: raw(&TRACE_OUT).unwrap_or(defaults.trace_out),
            explain: raw(&EXPLAIN),
            oracle_seed: number(&ORACLE_SEED)?.unwrap_or(defaults.oracle_seed),
            bench_iters: number(&BENCH_ITERS)?.unwrap_or(defaults.bench_iters),
            debug_hot: flag(&DEBUG_HOT),
            // Default-on flag: anything but an explicit `0` keeps decode on
            // (the inverse of `flag`, which defaults off).
            decode: raw(&DECODE).is_none_or(|s| s.trim() != "0"),
            fuzz_iters: number(&FUZZ_ITERS)?.unwrap_or(defaults.fuzz_iters),
            fuzz_seed: number(&FUZZ_SEED)?.unwrap_or(defaults.fuzz_seed),
            metrics: flag(&METRICS),
            metrics_out: raw(&METRICS_OUT).unwrap_or(defaults.metrics_out),
        })
    }

    /// [`EnvConfig::try_from_env`] for binary entry points: prints the
    /// diagnostic and exits 2 on a malformed knob.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        })
    }

    /// The sweep pool this configuration asks for.
    pub fn pool(&self) -> JobPool {
        JobPool::new(self.jobs)
    }

    /// The knob table — name, type, default, effect — as table rows, for
    /// `diag --knobs` and the EXPERIMENTS.md table. Rendered straight from
    /// [`KNOBS`], so it cannot drift from what the parser understands.
    pub fn knob_rows() -> Vec<Vec<String>> {
        KNOBS
            .iter()
            .map(|k| {
                vec![
                    k.name.to_string(),
                    k.ty.to_string(),
                    k.default.to_string(),
                    k.effect.split_whitespace().collect::<Vec<_>>().join(" "),
                ]
            })
            .collect()
    }

    /// The knob table as GitHub-flavoured markdown — the exact text between
    /// the `knob-table` markers in EXPERIMENTS.md. `diag --knobs --md`
    /// prints it, and the `knob_docs` test asserts the file matches, so the
    /// documented table cannot drift from the registry ([`KNOBS`]).
    pub fn knob_markdown() -> String {
        let mut out = String::from("| Knob | Type | Default | Effect |\n|---|---|---|---|\n");
        for row in Self::knob_rows() {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                row[0], row[1], row[2], row[3]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is closed: exactly these knobs, each named once, all
    /// under the `AOCI_` prefix. (A companion CI grep asserts no
    /// `std::env::var("AOCI_` call site exists outside this module.)
    #[test]
    fn knob_registry_is_closed() {
        assert_eq!(KNOBS.len(), 20);
        let mut names: Vec<&str> = KNOBS.iter().map(|k| k.name).collect();
        names.sort_unstable();
        let mut unique = names.clone();
        unique.dedup();
        assert_eq!(names, unique, "duplicate knob names");
        for k in KNOBS {
            assert!(k.name.starts_with("AOCI_"), "{} lacks the AOCI_ prefix", k.name);
            assert!(!k.ty.is_empty() && !k.default.is_empty() && !k.effect.is_empty());
        }
    }

    #[test]
    fn defaults_are_sane() {
        let d = EnvConfig::default();
        assert!(d.jobs >= 1);
        assert_eq!(d.reps, 3);
        assert!(!d.osr && !d.trace && !d.async_compile && !d.quick && !d.rerun);
        assert_eq!(d.results_dir, "results");
        assert_eq!(d.faults, None);
        assert_eq!(d.oracle_seed, 1);
        assert_eq!(d.trace_cap, 1 << 16);
        assert!(d.decode, "decoded dispatch is the default");
    }

    #[test]
    fn knob_rows_cover_every_knob() {
        let rows = EnvConfig::knob_rows();
        assert_eq!(rows.len(), KNOBS.len());
        for (row, k) in rows.iter().zip(KNOBS) {
            assert_eq!(row[0], k.name);
            assert_eq!(row.len(), 4);
        }
    }
}
