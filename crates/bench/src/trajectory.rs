//! The wall-clock perf trajectory: reading, comparing and rendering the
//! per-PR `results/BENCH_<n>.json` entries (ROADMAP item 2).
//!
//! Schema of one entry (documented in EXPERIMENTS.md; the `perf` binary
//! emits it, `diag --bench` renders the curve):
//!
//! ```json
//! {
//!   "pr": 8, "date": "YYYY-MM-DD", "toolchain": "...", "host": "...",
//!   "note": "...",
//!   "benches": {
//!     "<name>": {"command": "...", "wall_seconds": 1.23, "detail": "..."}
//!   }
//! }
//! ```
//!
//! All numbers here are **wall-clock** — the segregated side of the
//! telemetry split. Nothing in this module feeds a deterministic artifact.

use aoci_json::Value;
use std::collections::BTreeMap;
use std::path::Path;

/// One measured benchmark inside a [`BenchEntry`].
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// The command line that produced the number.
    pub command: String,
    /// Measured wall seconds (minimum over repetitions).
    pub wall_seconds: f64,
    /// Free-form context (what changed, noise bounds, comparisons).
    pub detail: String,
}

/// One `results/BENCH_<n>.json` document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// PR number — the x-axis of the trajectory.
    pub pr: u64,
    /// ISO date the entry was measured.
    pub date: String,
    /// Toolchain description.
    pub toolchain: String,
    /// Host description (and its noise caveats).
    pub host: String,
    /// What this PR changed, perf-wise.
    pub note: String,
    /// Named benchmark results (BTreeMap: deterministic render order).
    pub benches: BTreeMap<String, BenchResult>,
}

impl BenchEntry {
    /// Serializes to the documented `aoci-json` schema.
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("pr".to_string(), Value::from(self.pr)),
            ("date".to_string(), Value::from(self.date.as_str())),
            ("toolchain".to_string(), Value::from(self.toolchain.as_str())),
            ("host".to_string(), Value::from(self.host.as_str())),
            ("note".to_string(), Value::from(self.note.as_str())),
            (
                "benches".to_string(),
                Value::Obj(
                    self.benches
                        .iter()
                        .map(|(name, b)| {
                            (
                                name.clone(),
                                Value::obj([
                                    ("command".to_string(), Value::from(b.command.as_str())),
                                    ("wall_seconds".to_string(), Value::from(b.wall_seconds)),
                                    ("detail".to_string(), Value::from(b.detail.as_str())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`BenchEntry::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Value) -> Option<Self> {
        let s = |key: &str| Some(v.get(key)?.as_str()?.to_string());
        Some(BenchEntry {
            pr: v.get("pr")?.as_u64()?,
            date: s("date")?,
            toolchain: s("toolchain")?,
            host: s("host")?,
            note: s("note")?,
            benches: v
                .get("benches")?
                .as_obj()?
                .iter()
                .map(|(name, b)| {
                    Some((
                        name.clone(),
                        BenchResult {
                            command: b.get("command")?.as_str()?.to_string(),
                            wall_seconds: b.get("wall_seconds")?.as_f64()?,
                            detail: b.get("detail")?.as_str()?.to_string(),
                        },
                    ))
                })
                .collect::<Option<BTreeMap<_, _>>>()?,
        })
    }

    /// The wall seconds of bench `name`, if this entry measured it.
    pub fn wall_seconds(&self, name: &str) -> Option<f64> {
        self.benches.get(name).map(|b| b.wall_seconds)
    }
}

/// Loads every `BENCH_<n>.json` under `dir`, sorted by PR number. Files
/// that fail to parse are skipped with a note on stderr (a malformed
/// historical entry should not brick the trajectory).
pub fn load_trajectory(dir: &Path) -> Vec<BenchEntry> {
    let Ok(read) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut entries = Vec::new();
    for file in read.flatten() {
        let name = file.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(file.path()) else { continue };
        match aoci_json::parse(&text).ok().as_ref().and_then(BenchEntry::from_value) {
            Some(entry) => entries.push(entry),
            None => eprintln!("trajectory: skipping malformed {name}"),
        }
    }
    entries.sort_by_key(|e| e.pr);
    entries
}

/// Renders the trajectory as a table: one row per bench name, one column
/// per PR, with the run-over-run ratio of the latest step. Empty cells
/// mean the PR did not measure that bench.
pub fn render_trajectory(entries: &[BenchEntry]) -> String {
    if entries.is_empty() {
        return "no BENCH_*.json entries found\n".to_string();
    }
    let mut names: Vec<&str> = entries
        .iter()
        .flat_map(|e| e.benches.keys().map(String::as_str))
        .collect();
    names.sort_unstable();
    names.dedup();
    let mut header = vec!["bench (wall s)".to_string()];
    header.extend(entries.iter().map(|e| format!("PR{}", e.pr)));
    header.push("latest Δ".to_string());
    let mut rows: Vec<Vec<String>> = Vec::new();
    for name in names {
        let mut row = vec![name.to_string()];
        for e in entries {
            row.push(e.wall_seconds(name).map_or(String::new(), |s| format!("{s:.2}")));
        }
        let measured: Vec<f64> = entries.iter().filter_map(|e| e.wall_seconds(name)).collect();
        row.push(match measured.as_slice() {
            [.., prev, last] => format!("{:+.1}%", (last / prev - 1.0) * 100.0),
            _ => String::new(),
        });
        rows.push(row);
    }
    crate::table::render_table(&header, &rows)
}

/// Advisory regression gate: compares `candidate` against the latest prior
/// entry (highest `pr` below the candidate's) on `bench`. Returns
/// `Some((prior_pr, prior_secs, ratio))` when both measured the bench;
/// ratio > 1 means the candidate is slower.
pub fn compare_latest(
    entries: &[BenchEntry],
    candidate: &BenchEntry,
    bench: &str,
) -> Option<(u64, f64, f64)> {
    let prior = entries
        .iter()
        .filter(|e| e.pr < candidate.pr && e.wall_seconds(bench).is_some())
        .max_by_key(|e| e.pr)?;
    let prior_secs = prior.wall_seconds(bench)?;
    let candidate_secs = candidate.wall_seconds(bench)?;
    Some((prior.pr, prior_secs, candidate_secs / prior_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pr: u64, smoke: f64) -> BenchEntry {
        BenchEntry {
            pr,
            date: "2026-08-09".to_string(),
            toolchain: "rustc stable".to_string(),
            host: "test".to_string(),
            note: "n".to_string(),
            benches: BTreeMap::from([(
                "smoke_full_suite".to_string(),
                BenchResult {
                    command: "smoke".to_string(),
                    wall_seconds: smoke,
                    detail: "d".to_string(),
                },
            )]),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let e = entry(8, 6.0);
        let text = aoci_json::to_string_pretty(&e.to_value());
        let parsed = aoci_json::parse(&text).expect("entry parses");
        assert_eq!(BenchEntry::from_value(&parsed), Some(e));
    }

    #[test]
    fn parses_the_committed_trajectory() {
        // The real artifacts this module exists for: the committed
        // results/BENCH_*.json files must parse and stay PR-sorted.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        let entries = load_trajectory(&dir);
        assert!(entries.len() >= 2, "expected the committed BENCH files");
        assert!(entries.windows(2).all(|w| w[0].pr < w[1].pr));
        assert!(entries.iter().all(|e| e.wall_seconds("smoke_full_suite").is_some()));
    }

    #[test]
    fn compare_picks_the_latest_prior_entry() {
        let entries = vec![entry(6, 11.48), entry(7, 5.98)];
        let candidate = entry(8, 6.1);
        let (pr, prior, ratio) =
            compare_latest(&entries, &candidate, "smoke_full_suite").expect("comparable");
        assert_eq!(pr, 7);
        assert!((prior - 5.98).abs() < 1e-9);
        assert!(ratio > 1.0 && ratio < 1.15);
        assert_eq!(compare_latest(&[], &candidate, "smoke_full_suite"), None);
    }

    #[test]
    fn trajectory_table_has_a_column_per_pr() {
        let table = render_trajectory(&[entry(6, 11.48), entry(7, 5.98)]);
        assert!(table.contains("PR6"));
        assert!(table.contains("PR7"));
        assert!(table.contains("smoke_full_suite"));
        assert!(table.contains("-47.9%"), "latest delta column: {table}");
    }
}
