//! The bare interpreter-dispatch microbenchmark, shared by the `ubench`
//! and `perf` binaries.

use aoci_ir::{BinOp, Cond, Program, ProgramBuilder};
use aoci_vm::{CostModel, Vm, VmConfig};
use std::time::Instant;

/// A bare interpreter-bound program: a tight const/bin/branch arithmetic
/// loop (fusion-friendly by construction) run on a `Vm` directly with
/// sampling off, so the measurement is *pure dispatch* — no organizers,
/// compiles or sampling in the numerator.
pub fn dispatch_loop_program() -> Program {
    dispatch_loop_program_with(10_000_000)
}

/// [`dispatch_loop_program`] with an explicit iteration count (tests use a
/// short loop; the benchmark default is 10M iterations).
pub fn dispatch_loop_program_with(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let main = {
        let mut m = b.static_method("main", 0);
        let i = m.fresh_reg();
        let n = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        let t = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(n, iters);
        m.const_int(one, 1);
        m.const_int(acc, 0);
        let top = m.label();
        m.bind(top);
        m.const_int(t, 7);
        m.bin(BinOp::Xor, acc, acc, t);
        m.bin(BinOp::Add, acc, acc, one);
        m.bin(BinOp::Add, i, i, one);
        m.branch(Cond::Lt, i, n, top);
        m.ret(Some(acc));
        m.finish()
    };
    b.finish(main).expect("dispatch loop program is valid")
}

/// Best-of-`reps` wall seconds for the bare dispatch loop in one mode,
/// plus the simulated cycle count for cross-mode identity asserts.
pub fn dispatch_loop_best(program: &Program, decode: bool, reps: usize) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut cycles = 0;
    for _ in 0..reps {
        let cost = CostModel { sample_period: 0, ..CostModel::default() };
        let mut vm =
            Vm::with_config(program, cost, VmConfig { decode, ..VmConfig::default() });
        let t = Instant::now();
        vm.run_to_completion().expect("dispatch loop runs clean");
        best = best.min(t.elapsed().as_secs_f64());
        cycles = vm.clock().total();
    }
    (cycles, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_agree_on_simulated_cycles() {
        // A short loop: the 10M-iteration default is a wall-clock bench,
        // not a unit-test workload.
        let p = dispatch_loop_program_with(10_000);
        let (decoded, _) = dispatch_loop_best(&p, true, 1);
        let (legacy, _) = dispatch_loop_best(&p, false, 1);
        assert_eq!(decoded, legacy);
        assert!(decoded > 0);
    }
}
