//! Single-run measurement and derived metrics.
//!
//! The unit of work is one **repetition**: [`run_rep`] is a pure function
//! of `(program, policy, rep, EnvConfig)` with no ambient environment
//! reads, so repetitions are `Send` jobs the parallel sweep pool can
//! execute in any order. [`aggregate`] folds a rep-ordered report slice
//! into one [`RunMetrics`] deterministically, which keeps
//! `results/grid.json` byte-identical for any `AOCI_JOBS` worker count.

use crate::env::EnvConfig;
use aoci_aos::{AosConfig, AosReport, AosSystem};
use aoci_core::PolicyKind;
use aoci_json::Value;
use aoci_vm::{Component, COMPONENTS};
use aoci_workloads::{build, WorkloadSpec};

/// Constructor for one policy group: the max context depth selects the
/// concrete [`PolicyKind`].
pub type PolicyCtor = fn(u8) -> PolicyKind;

/// The six policy groups of the paper's Figures 4/5, in subfigure order
/// (a)–(f), keyed by the short label used throughout the harness output.
pub const POLICY_GROUPS: [(&str, PolicyCtor); 6] = [
    ("fixed", |max| PolicyKind::Fixed { max }),
    ("paramLess", |max| PolicyKind::Parameterless { max }),
    ("class", |max| PolicyKind::ClassMethods { max }),
    ("large", |max| PolicyKind::LargeMethods { max }),
    ("hybrid1", |max| PolicyKind::ParameterlessClass { max }),
    ("hybrid2", |max| PolicyKind::ParameterlessLarge { max }),
];

/// Canonical label for a policy configuration (e.g. `fixed/3`, `cins`).
pub fn policy_label(policy: PolicyKind) -> String {
    match policy {
        PolicyKind::ContextInsensitive => "cins".to_string(),
        PolicyKind::Fixed { max } => format!("fixed/{max}"),
        PolicyKind::Parameterless { max } => format!("paramLess/{max}"),
        PolicyKind::ClassMethods { max } => format!("class/{max}"),
        PolicyKind::LargeMethods { max } => format!("large/{max}"),
        PolicyKind::ParameterlessClass { max } => format!("hybrid1/{max}"),
        PolicyKind::ParameterlessLarge { max } => format!("hybrid2/{max}"),
        PolicyKind::IdealApprox { max } => format!("ideal/{max}"),
        PolicyKind::AdaptiveResolving { max } => format!("adaptive/{max}"),
    }
}

/// Aggregated measurements of one (workload, policy) configuration.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Workload name.
    pub workload: String,
    /// Policy label ([`policy_label`]).
    pub policy: String,
    /// Median total simulated cycles over the repetitions (wall-clock
    /// analogue).
    pub total_cycles: u64,
    /// Mean cumulative optimized code size (all optimized code generated).
    pub cumulative_code: f64,
    /// Mean resident optimized code size at end of run.
    pub current_code: f64,
    /// Mean cycles in the optimizing compilation thread.
    pub compile_cycles: f64,
    /// Mean optimizing compilations.
    pub opt_compilations: f64,
    /// Mean fraction of execution per component, in [`COMPONENTS`] order.
    pub component_fracs: Vec<f64>,
    /// Mean samples taken.
    pub samples: f64,
    /// Mean trace samples recorded.
    pub traces_recorded: f64,
    /// Mean stack frames walked by the trace listener.
    pub frames_walked: f64,
    /// Mean guard checks executed.
    pub guard_checks: f64,
    /// Mean guard misses.
    pub guard_misses: f64,
    /// Mean virtual dispatches.
    pub virtual_dispatches: f64,
    /// Trace-walk statistics (from the first repetition).
    pub stats_immediately_parameterless: f64,
    /// Fraction with a parameterless method within 5 levels.
    pub stats_parameterless_within_5: f64,
    /// Fraction with a class method within 2 levels.
    pub stats_class_within_2: f64,
    /// Fraction needing ≥ 4 levels to reach a large method.
    pub stats_large_at_or_beyond_4: f64,
    /// Methods dynamically (baseline-)compiled — Table 1 "Methods".
    pub methods_compiled: u32,
    /// Program return value (sanity: must agree across policies).
    pub result: Option<i64>,
    /// Mean OSR promotion requests raised by hot back-edges.
    pub osr_requests: f64,
    /// Mean OSR requests the driver denied (quarantine/budget/refused map).
    pub osr_denied: f64,
    /// Mean OSR-in transfers (baseline activation promoted mid-loop).
    pub osr_entries: f64,
    /// Mean OSR-out transfers (optimized activation deoptimized mid-loop).
    pub osr_exits: f64,
    /// Mean compiled-code invalidations (guard-thrash recovery).
    pub recovery_invalidations: f64,
    /// Mean compile retries after injected/organic compile failures.
    pub recovery_retries: f64,
    /// Mean methods quarantined from optimizing compilation.
    pub recovery_quarantined: f64,
    /// Mean profile traces rejected by sanitization.
    pub recovery_rejected_traces: f64,
}

/// Builds the AOS configuration for one repetition: repetitions perturb the
/// sampling period slightly, emulating the timer non-determinism the paper
/// handles with a best-of-20 protocol. A pure function of its arguments —
/// the sweep flags (OSR, tracing, async compilation) come from the
/// [`EnvConfig`] parsed once at the entry point, never from ambient reads.
pub fn run_config(env: &EnvConfig, policy: PolicyKind, rep: usize) -> AosConfig {
    let mut config = AosConfig::new(policy);
    if env.osr {
        config = config.enable_osr();
    }
    if env.trace {
        config = config.enable_trace();
    }
    if env.async_compile {
        config = config.enable_async_compile();
    }
    if env.debug_hot {
        config = config.enable_debug_hot();
    }
    if env.metrics {
        config = config.enable_metrics();
    }
    config.vm.decode = env.decode;
    config.cost.sample_period += (rep as u64) * 37;
    config
}

/// Runs one repetition of one (workload, policy) configuration — the
/// sweep pool's job function. Deterministic: the run is a pure function of
/// `(program, policy, rep, env)` on its own simulated clock.
pub fn run_rep(
    program: &aoci_ir::Program,
    workload: &str,
    policy: PolicyKind,
    rep: usize,
    env: &EnvConfig,
) -> AosReport {
    AosSystem::new(program, run_config(env, policy, rep))
        .run()
        .unwrap_or_else(|e| panic!("{workload}/{policy:?} rep {rep} faulted: {e}"))
}

/// Runs one (workload, policy) configuration `env.reps` times — across the
/// sweep pool when `env.jobs > 1` — and aggregates.
pub fn run_one(spec: &WorkloadSpec, policy: PolicyKind, env: &EnvConfig) -> RunMetrics {
    let w = build(spec);
    let reports = env.pool().map((0..env.reps).collect(), |&rep| {
        run_rep(&w.program, spec.name, policy, rep, env)
    });
    aggregate(spec.name, policy, &reports)
}

/// Folds the rep-ordered reports of one (workload, policy) cell into its
/// [`RunMetrics`] entry. The fold iterates reports **in repetition order**
/// whatever order the pool finished them in, so every float accumulation
/// happens in the same sequence as the legacy serial loop — byte-identical
/// aggregates for any worker count.
pub fn aggregate(workload: &str, policy: PolicyKind, reports: &[AosReport]) -> RunMetrics {
    let n = reports.len();
    assert!(n > 0, "at least one repetition");
    let mut totals: Vec<u64> = Vec::with_capacity(n);
    let mut cumulative = 0.0;
    let mut current = 0.0;
    let mut compile = 0.0;
    let mut compilations = 0.0;
    let mut fracs = vec![0.0; COMPONENTS.len()];
    let mut samples = 0.0;
    let mut traces = 0.0;
    let mut frames = 0.0;
    let mut guard_checks = 0.0;
    let mut guard_misses = 0.0;
    let mut dispatches = 0.0;
    let mut first_stats = None;
    let mut methods_compiled = 0;
    let mut result = None;
    let mut invalidations = 0.0;
    let mut retries = 0.0;
    let mut quarantined = 0.0;
    let mut rejected_traces = 0.0;
    let mut osr_requests = 0.0;
    let mut osr_denied = 0.0;
    let mut osr_entries = 0.0;
    let mut osr_exits = 0.0;
    for report in reports {
        totals.push(report.total_cycles());
        cumulative += report.optimized_code_size as f64;
        current += report.current_optimized_size as f64;
        compile += report.compile_cycles() as f64;
        compilations += report.opt_compilations as f64;
        for (i, c) in COMPONENTS.iter().enumerate() {
            fracs[i] += report.fraction(*c);
        }
        samples += report.samples as f64;
        traces += report.traces_recorded as f64;
        frames += report.frames_walked as f64;
        guard_checks += report.counters.guard_checks as f64;
        guard_misses += report.counters.guard_misses as f64;
        dispatches += report.counters.virtual_dispatches as f64;
        invalidations += report.recovery.invalidations as f64;
        retries += report.recovery.compile_retries as f64;
        quarantined += report.recovery.quarantined_methods as f64;
        rejected_traces += report.recovery.rejected_traces as f64;
        osr_requests += report.osr.requests as f64;
        osr_denied += report.osr.denied as f64;
        osr_entries += report.osr.entries as f64;
        osr_exits += report.osr.exits as f64;
        if first_stats.is_none() {
            first_stats = Some(report.trace_stats);
            methods_compiled = report.baseline_compilations;
            result = report.result.and_then(|v| v.as_int());
        } else {
            let r = report.result.and_then(|v| v.as_int());
            assert_eq!(r, result, "nondeterministic program result");
        }
    }
    totals.sort_unstable();
    let inv = 1.0 / n as f64;
    let stats = first_stats.expect("at least one repetition");
    RunMetrics {
        workload: workload.to_string(),
        policy: policy_label(policy),
        total_cycles: totals[totals.len() / 2],
        cumulative_code: cumulative * inv,
        current_code: current * inv,
        compile_cycles: compile * inv,
        opt_compilations: compilations * inv,
        component_fracs: fracs.iter().map(|f| f * inv).collect(),
        samples: samples * inv,
        traces_recorded: traces * inv,
        frames_walked: frames * inv,
        guard_checks: guard_checks * inv,
        guard_misses: guard_misses * inv,
        virtual_dispatches: dispatches * inv,
        stats_immediately_parameterless: stats.immediately_parameterless,
        stats_parameterless_within_5: stats.parameterless_within_5,
        stats_class_within_2: stats.class_method_within_2,
        stats_large_at_or_beyond_4: stats.large_at_or_beyond_4,
        methods_compiled,
        result,
        osr_requests: osr_requests * inv,
        osr_denied: osr_denied * inv,
        osr_entries: osr_entries * inv,
        osr_exits: osr_exits * inv,
        recovery_invalidations: invalidations * inv,
        recovery_retries: retries * inv,
        recovery_quarantined: quarantined * inv,
        recovery_rejected_traces: rejected_traces * inv,
    }
}

impl RunMetrics {
    /// Serializes to an [`aoci_json::Value`] object (one grid entry).
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("workload".to_string(), Value::from(self.workload.clone())),
            ("policy".to_string(), Value::from(self.policy.clone())),
            ("total_cycles".to_string(), Value::from(self.total_cycles)),
            ("cumulative_code".to_string(), Value::from(self.cumulative_code)),
            ("current_code".to_string(), Value::from(self.current_code)),
            ("compile_cycles".to_string(), Value::from(self.compile_cycles)),
            ("opt_compilations".to_string(), Value::from(self.opt_compilations)),
            (
                "component_fracs".to_string(),
                Value::Arr(self.component_fracs.iter().map(|&f| Value::from(f)).collect()),
            ),
            ("samples".to_string(), Value::from(self.samples)),
            ("traces_recorded".to_string(), Value::from(self.traces_recorded)),
            ("frames_walked".to_string(), Value::from(self.frames_walked)),
            ("guard_checks".to_string(), Value::from(self.guard_checks)),
            ("guard_misses".to_string(), Value::from(self.guard_misses)),
            ("virtual_dispatches".to_string(), Value::from(self.virtual_dispatches)),
            (
                "stats_immediately_parameterless".to_string(),
                Value::from(self.stats_immediately_parameterless),
            ),
            (
                "stats_parameterless_within_5".to_string(),
                Value::from(self.stats_parameterless_within_5),
            ),
            ("stats_class_within_2".to_string(), Value::from(self.stats_class_within_2)),
            (
                "stats_large_at_or_beyond_4".to_string(),
                Value::from(self.stats_large_at_or_beyond_4),
            ),
            ("methods_compiled".to_string(), Value::from(self.methods_compiled)),
            (
                "result".to_string(),
                self.result.map_or(Value::Null, Value::from),
            ),
            ("osr_requests".to_string(), Value::from(self.osr_requests)),
            ("osr_denied".to_string(), Value::from(self.osr_denied)),
            ("osr_entries".to_string(), Value::from(self.osr_entries)),
            ("osr_exits".to_string(), Value::from(self.osr_exits)),
            ("recovery_invalidations".to_string(), Value::from(self.recovery_invalidations)),
            ("recovery_retries".to_string(), Value::from(self.recovery_retries)),
            ("recovery_quarantined".to_string(), Value::from(self.recovery_quarantined)),
            (
                "recovery_rejected_traces".to_string(),
                Value::from(self.recovery_rejected_traces),
            ),
        ])
    }

    /// Deserializes one grid entry; `None` if the value has the wrong shape.
    pub fn from_value(v: &Value) -> Option<RunMetrics> {
        let f = |key: &str| v.get(key).and_then(Value::as_f64);
        Some(RunMetrics {
            workload: v.get("workload")?.as_str()?.to_string(),
            policy: v.get("policy")?.as_str()?.to_string(),
            total_cycles: v.get("total_cycles")?.as_u64()?,
            cumulative_code: f("cumulative_code")?,
            current_code: f("current_code")?,
            compile_cycles: f("compile_cycles")?,
            opt_compilations: f("opt_compilations")?,
            component_fracs: v
                .get("component_fracs")?
                .as_arr()?
                .iter()
                .map(Value::as_f64)
                .collect::<Option<Vec<f64>>>()?,
            samples: f("samples")?,
            traces_recorded: f("traces_recorded")?,
            frames_walked: f("frames_walked")?,
            guard_checks: f("guard_checks")?,
            guard_misses: f("guard_misses")?,
            virtual_dispatches: f("virtual_dispatches")?,
            stats_immediately_parameterless: f("stats_immediately_parameterless")?,
            stats_parameterless_within_5: f("stats_parameterless_within_5")?,
            stats_class_within_2: f("stats_class_within_2")?,
            stats_large_at_or_beyond_4: f("stats_large_at_or_beyond_4")?,
            methods_compiled: u32::try_from(v.get("methods_compiled")?.as_u64()?).ok()?,
            result: match v.get("result") {
                None | Some(Value::Null) => None,
                Some(r) => Some(r.as_i64()?),
            },
            osr_requests: f("osr_requests").unwrap_or(0.0),
            osr_denied: f("osr_denied").unwrap_or(0.0),
            osr_entries: f("osr_entries").unwrap_or(0.0),
            osr_exits: f("osr_exits").unwrap_or(0.0),
            recovery_invalidations: f("recovery_invalidations").unwrap_or(0.0),
            recovery_retries: f("recovery_retries").unwrap_or(0.0),
            recovery_quarantined: f("recovery_quarantined").unwrap_or(0.0),
            recovery_rejected_traces: f("recovery_rejected_traces").unwrap_or(0.0),
        })
    }

    /// Fraction of execution in `component`.
    pub fn fraction(&self, component: Component) -> f64 {
        let idx = COMPONENTS
            .iter()
            .position(|&c| c == component)
            .expect("known component");
        self.component_fracs[idx]
    }
}

/// Figure 4 y-axis: percent wall-clock speedup of `policy` over the
/// context-insensitive baseline (positive = faster).
pub fn speedup_pct(cins: &RunMetrics, policy: &RunMetrics) -> f64 {
    (cins.total_cycles as f64 / policy.total_cycles as f64 - 1.0) * 100.0
}

/// Figure 5 y-axis: percent change in optimized code space over the
/// context-insensitive baseline (negative = smaller, desirable).
pub fn code_delta_pct(cins: &RunMetrics, policy: &RunMetrics) -> f64 {
    (policy.cumulative_code / cins.cumulative_code - 1.0) * 100.0
}

/// Percent change in optimizing-compilation time over the baseline.
pub fn compile_delta_pct(cins: &RunMetrics, policy: &RunMetrics) -> f64 {
    (policy.compile_cycles / cins.compile_cycles - 1.0) * 100.0
}

/// The paper's `harMean` bar: harmonic mean of the per-benchmark runtime
/// ratios, expressed as a percent speedup.
pub fn harmonic_mean_speedup_pct(pairs: &[(&RunMetrics, &RunMetrics)]) -> f64 {
    let n = pairs.len() as f64;
    let denom: f64 = pairs
        .iter()
        .map(|(cins, p)| 1.0 / (cins.total_cycles as f64 / p.total_cycles as f64))
        .sum();
    (n / denom - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: u64, code: f64) -> RunMetrics {
        RunMetrics {
            workload: "w".into(),
            policy: "p".into(),
            total_cycles: cycles,
            cumulative_code: code,
            current_code: code,
            compile_cycles: 1.0,
            opt_compilations: 1.0,
            component_fracs: vec![0.0; COMPONENTS.len()],
            samples: 0.0,
            traces_recorded: 0.0,
            frames_walked: 0.0,
            guard_checks: 0.0,
            guard_misses: 0.0,
            virtual_dispatches: 0.0,
            stats_immediately_parameterless: 0.0,
            stats_parameterless_within_5: 0.0,
            stats_class_within_2: 0.0,
            stats_large_at_or_beyond_4: 0.0,
            methods_compiled: 0,
            result: None,
            osr_requests: 0.0,
            osr_denied: 0.0,
            osr_entries: 0.0,
            osr_exits: 0.0,
            recovery_invalidations: 0.0,
            recovery_retries: 0.0,
            recovery_quarantined: 0.0,
            recovery_rejected_traces: 0.0,
        }
    }

    #[test]
    fn json_round_trip() {
        let m = metrics(1234, 56.0);
        let v = m.to_value();
        let back = RunMetrics::from_value(&v).expect("round trip");
        assert_eq!(back.workload, m.workload);
        assert_eq!(back.total_cycles, m.total_cycles);
        assert_eq!(back.component_fracs.len(), m.component_fracs.len());
        assert_eq!(back.result, m.result);
    }

    #[test]
    fn speedup_sign_convention() {
        let cins = metrics(1100, 100.0);
        let faster = metrics(1000, 100.0);
        assert!(speedup_pct(&cins, &faster) > 9.9);
        let slower = metrics(1200, 100.0);
        assert!(speedup_pct(&cins, &slower) < 0.0);
    }

    #[test]
    fn code_delta_sign_convention() {
        let cins = metrics(1000, 100.0);
        let smaller = metrics(1000, 90.0);
        assert!((code_delta_pct(&cins, &smaller) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_of_equal_ratios() {
        let cins = metrics(1000, 100.0);
        let p = metrics(800, 100.0);
        let hm = harmonic_mean_speedup_pct(&[(&cins, &p), (&cins, &p)]);
        assert!((hm - 25.0).abs() < 1e-9);
    }

    /// Satellite guard for the tentpole's zero-overhead claim: a traced run
    /// must produce metrics **byte-identical** (as serialized JSON) to an
    /// untraced run of the same workload — so `results/grid.json` cannot
    /// depend on whether the build recorded events.
    #[test]
    fn tracing_does_not_perturb_metrics() {
        use aoci_workloads::{build, suite};
        let spec = suite().into_iter().next().expect("non-empty suite");
        let w = build(&spec);
        let policy = PolicyKind::Fixed { max: 3 };
        let untraced = AosSystem::new(&w.program, AosConfig::new(policy))
            .run()
            .expect("untraced run");
        let traced = AosSystem::new(&w.program, AosConfig::with_trace(policy))
            .run()
            .expect("traced run");
        assert!(
            traced.trace_log.as_ref().is_some_and(|l| l.emitted > 0),
            "the traced run must actually record events"
        );
        assert!(untraced.trace_log.is_none());
        assert_eq!(traced.total_cycles(), untraced.total_cycles());
        assert_eq!(
            aoci_json::to_string(&traced.to_value()),
            aoci_json::to_string(&untraced.to_value()),
            "recording events must not perturb any metric"
        );
    }

    /// The telemetry mirror of `tracing_does_not_perturb_metrics`: a
    /// metered run's report must serialize byte-identically to an
    /// unmetered one (the telemetry log travels outside `to_value`).
    #[test]
    fn metering_does_not_perturb_metrics() {
        use aoci_workloads::{build, suite};
        let spec = suite().into_iter().next().expect("non-empty suite");
        let w = build(&spec);
        let policy = PolicyKind::Fixed { max: 3 };
        let plain = AosSystem::new(&w.program, AosConfig::new(policy))
            .run()
            .expect("unmetered run");
        let metered = AosSystem::new(&w.program, AosConfig::new(policy).enable_metrics())
            .run()
            .expect("metered run");
        let log = metered.telemetry.as_ref().expect("metered run carries a log");
        assert!(!log.series.is_empty(), "the metered run must record epochs");
        assert!(plain.telemetry.is_none());
        assert_eq!(metered.total_cycles(), plain.total_cycles());
        assert_eq!(
            aoci_json::to_string(&metered.to_value()),
            aoci_json::to_string(&plain.to_value()),
            "recording metrics must not perturb any metric"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(policy_label(PolicyKind::ContextInsensitive), "cins");
        assert_eq!(policy_label(PolicyKind::Fixed { max: 4 }), "fixed/4");
        assert_eq!(
            policy_label(PolicyKind::ParameterlessLarge { max: 2 }),
            "hybrid2/2"
        );
    }
}
