//! Single-run measurement and derived metrics.

use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_vm::{Component, COMPONENTS};
use aoci_workloads::{build, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// The six policy groups of the paper's Figures 4/5, in subfigure order
/// (a)–(f), keyed by the short label used throughout the harness output.
pub const POLICY_GROUPS: [(&str, fn(u8) -> PolicyKind); 6] = [
    ("fixed", |max| PolicyKind::Fixed { max }),
    ("paramLess", |max| PolicyKind::Parameterless { max }),
    ("class", |max| PolicyKind::ClassMethods { max }),
    ("large", |max| PolicyKind::LargeMethods { max }),
    ("hybrid1", |max| PolicyKind::ParameterlessClass { max }),
    ("hybrid2", |max| PolicyKind::ParameterlessLarge { max }),
];

/// Canonical label for a policy configuration (e.g. `fixed/3`, `cins`).
pub fn policy_label(policy: PolicyKind) -> String {
    match policy {
        PolicyKind::ContextInsensitive => "cins".to_string(),
        PolicyKind::Fixed { max } => format!("fixed/{max}"),
        PolicyKind::Parameterless { max } => format!("paramLess/{max}"),
        PolicyKind::ClassMethods { max } => format!("class/{max}"),
        PolicyKind::LargeMethods { max } => format!("large/{max}"),
        PolicyKind::ParameterlessClass { max } => format!("hybrid1/{max}"),
        PolicyKind::ParameterlessLarge { max } => format!("hybrid2/{max}"),
        PolicyKind::IdealApprox { max } => format!("ideal/{max}"),
        PolicyKind::AdaptiveResolving { max } => format!("adaptive/{max}"),
    }
}

/// Aggregated measurements of one (workload, policy) configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Workload name.
    pub workload: String,
    /// Policy label ([`policy_label`]).
    pub policy: String,
    /// Median total simulated cycles over the repetitions (wall-clock
    /// analogue).
    pub total_cycles: u64,
    /// Mean cumulative optimized code size (all optimized code generated).
    pub cumulative_code: f64,
    /// Mean resident optimized code size at end of run.
    pub current_code: f64,
    /// Mean cycles in the optimizing compilation thread.
    pub compile_cycles: f64,
    /// Mean optimizing compilations.
    pub opt_compilations: f64,
    /// Mean fraction of execution per component, in [`COMPONENTS`] order.
    pub component_fracs: Vec<f64>,
    /// Mean samples taken.
    pub samples: f64,
    /// Mean trace samples recorded.
    pub traces_recorded: f64,
    /// Mean stack frames walked by the trace listener.
    pub frames_walked: f64,
    /// Mean guard checks executed.
    pub guard_checks: f64,
    /// Mean guard misses.
    pub guard_misses: f64,
    /// Mean virtual dispatches.
    pub virtual_dispatches: f64,
    /// Trace-walk statistics (from the first repetition).
    pub stats_immediately_parameterless: f64,
    /// Fraction with a parameterless method within 5 levels.
    pub stats_parameterless_within_5: f64,
    /// Fraction with a class method within 2 levels.
    pub stats_class_within_2: f64,
    /// Fraction needing ≥ 4 levels to reach a large method.
    pub stats_large_at_or_beyond_4: f64,
    /// Methods dynamically (baseline-)compiled — Table 1 "Methods".
    pub methods_compiled: u32,
    /// Program return value (sanity: must agree across policies).
    pub result: Option<i64>,
}

/// Number of repetitions per configuration (`AOCI_REPS`, default 3).
pub fn reps() -> usize {
    std::env::var("AOCI_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Builds the AOS configuration for one repetition: repetitions perturb the
/// sampling period slightly, emulating the timer non-determinism the paper
/// handles with a best-of-20 protocol.
pub fn run_config(policy: PolicyKind, rep: usize) -> AosConfig {
    let mut config = AosConfig::new(policy);
    config.cost.sample_period += (rep as u64) * 37;
    config
}

/// Runs one (workload, policy) configuration `reps` times and aggregates.
pub fn run_one(spec: &WorkloadSpec, policy: PolicyKind) -> RunMetrics {
    let w = build(spec);
    let n = reps();
    let mut totals: Vec<u64> = Vec::with_capacity(n);
    let mut cumulative = 0.0;
    let mut current = 0.0;
    let mut compile = 0.0;
    let mut compilations = 0.0;
    let mut fracs = vec![0.0; COMPONENTS.len()];
    let mut samples = 0.0;
    let mut traces = 0.0;
    let mut frames = 0.0;
    let mut guard_checks = 0.0;
    let mut guard_misses = 0.0;
    let mut dispatches = 0.0;
    let mut first_stats = None;
    let mut methods_compiled = 0;
    let mut result = None;
    for rep in 0..n {
        let report = AosSystem::new(&w.program, run_config(policy, rep))
            .run()
            .unwrap_or_else(|e| panic!("{}/{policy:?} rep {rep} faulted: {e}", spec.name));
        totals.push(report.total_cycles());
        cumulative += report.optimized_code_size as f64;
        current += report.current_optimized_size as f64;
        compile += report.compile_cycles() as f64;
        compilations += report.opt_compilations as f64;
        for (i, c) in COMPONENTS.iter().enumerate() {
            fracs[i] += report.fraction(*c);
        }
        samples += report.samples as f64;
        traces += report.traces_recorded as f64;
        frames += report.frames_walked as f64;
        guard_checks += report.counters.guard_checks as f64;
        guard_misses += report.counters.guard_misses as f64;
        dispatches += report.counters.virtual_dispatches as f64;
        if first_stats.is_none() {
            first_stats = Some(report.trace_stats);
            methods_compiled = report.baseline_compilations;
            result = report.result.and_then(|v| v.as_int());
        } else {
            let r = report.result.and_then(|v| v.as_int());
            assert_eq!(r, result, "nondeterministic program result");
        }
    }
    totals.sort_unstable();
    let inv = 1.0 / n as f64;
    let stats = first_stats.expect("at least one repetition");
    RunMetrics {
        workload: spec.name.to_string(),
        policy: policy_label(policy),
        total_cycles: totals[totals.len() / 2],
        cumulative_code: cumulative * inv,
        current_code: current * inv,
        compile_cycles: compile * inv,
        opt_compilations: compilations * inv,
        component_fracs: fracs.iter().map(|f| f * inv).collect(),
        samples: samples * inv,
        traces_recorded: traces * inv,
        frames_walked: frames * inv,
        guard_checks: guard_checks * inv,
        guard_misses: guard_misses * inv,
        virtual_dispatches: dispatches * inv,
        stats_immediately_parameterless: stats.immediately_parameterless,
        stats_parameterless_within_5: stats.parameterless_within_5,
        stats_class_within_2: stats.class_method_within_2,
        stats_large_at_or_beyond_4: stats.large_at_or_beyond_4,
        methods_compiled,
        result,
    }
}

impl RunMetrics {
    /// Fraction of execution in `component`.
    pub fn fraction(&self, component: Component) -> f64 {
        let idx = COMPONENTS
            .iter()
            .position(|&c| c == component)
            .expect("known component");
        self.component_fracs[idx]
    }
}

/// Figure 4 y-axis: percent wall-clock speedup of `policy` over the
/// context-insensitive baseline (positive = faster).
pub fn speedup_pct(cins: &RunMetrics, policy: &RunMetrics) -> f64 {
    (cins.total_cycles as f64 / policy.total_cycles as f64 - 1.0) * 100.0
}

/// Figure 5 y-axis: percent change in optimized code space over the
/// context-insensitive baseline (negative = smaller, desirable).
pub fn code_delta_pct(cins: &RunMetrics, policy: &RunMetrics) -> f64 {
    (policy.cumulative_code / cins.cumulative_code - 1.0) * 100.0
}

/// Percent change in optimizing-compilation time over the baseline.
pub fn compile_delta_pct(cins: &RunMetrics, policy: &RunMetrics) -> f64 {
    (policy.compile_cycles / cins.compile_cycles - 1.0) * 100.0
}

/// The paper's `harMean` bar: harmonic mean of the per-benchmark runtime
/// ratios, expressed as a percent speedup.
pub fn harmonic_mean_speedup_pct(pairs: &[(&RunMetrics, &RunMetrics)]) -> f64 {
    let n = pairs.len() as f64;
    let denom: f64 = pairs
        .iter()
        .map(|(cins, p)| 1.0 / (cins.total_cycles as f64 / p.total_cycles as f64))
        .sum();
    (n / denom - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(cycles: u64, code: f64) -> RunMetrics {
        RunMetrics {
            workload: "w".into(),
            policy: "p".into(),
            total_cycles: cycles,
            cumulative_code: code,
            current_code: code,
            compile_cycles: 1.0,
            opt_compilations: 1.0,
            component_fracs: vec![0.0; COMPONENTS.len()],
            samples: 0.0,
            traces_recorded: 0.0,
            frames_walked: 0.0,
            guard_checks: 0.0,
            guard_misses: 0.0,
            virtual_dispatches: 0.0,
            stats_immediately_parameterless: 0.0,
            stats_parameterless_within_5: 0.0,
            stats_class_within_2: 0.0,
            stats_large_at_or_beyond_4: 0.0,
            methods_compiled: 0,
            result: None,
        }
    }

    #[test]
    fn speedup_sign_convention() {
        let cins = metrics(1100, 100.0);
        let faster = metrics(1000, 100.0);
        assert!(speedup_pct(&cins, &faster) > 9.9);
        let slower = metrics(1200, 100.0);
        assert!(speedup_pct(&cins, &slower) < 0.0);
    }

    #[test]
    fn code_delta_sign_convention() {
        let cins = metrics(1000, 100.0);
        let smaller = metrics(1000, 90.0);
        assert!((code_delta_pct(&cins, &smaller) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_of_equal_ratios() {
        let cins = metrics(1000, 100.0);
        let p = metrics(800, 100.0);
        let hm = harmonic_mean_speedup_pct(&[(&cins, &p), (&cins, &p)]);
        assert!((hm - 25.0).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(policy_label(PolicyKind::ContextInsensitive), "cins");
        assert_eq!(policy_label(PolicyKind::Fixed { max: 4 }), "fixed/4");
        assert_eq!(
            policy_label(PolicyKind::ParameterlessLarge { max: 2 }),
            "hybrid2/2"
        );
    }
}
