//! Regenerates the **Section 4 trace-walk statistics**: how quickly the
//! early-termination conditions trigger on sampled call stacks.
//!
//! Paper numbers: ~20% of sampled callees are immediately parameterless;
//! 50–80% of traces contain a parameterless call within five levels; in
//! 50–80% of cases only two edges are traversed before the first class
//! method; roughly half the time four or more edges precede the first
//! large method.

use aoci_bench::{load_or_run_grid, render_table};
use aoci_workloads::suite;

fn main() {
    let grid = load_or_run_grid();
    let mut rows = Vec::new();
    let mut sums = [0.0; 4];
    let specs = suite();
    for spec in &specs {
        // The stack-shape statistics do not depend on the policy (the
        // collector sees the full snapshot); use the baseline run.
        let m = grid.get(spec.name, "cins").expect("baseline present");
        let vals = [
            m.stats_immediately_parameterless,
            m.stats_parameterless_within_5,
            m.stats_class_within_2,
            m.stats_large_at_or_beyond_4,
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.0}%", vals[0] * 100.0),
            format!("{:.0}%", vals[1] * 100.0),
            format!("{:.0}%", vals[2] * 100.0),
            format!("{:.0}%", vals[3] * 100.0),
        ]);
    }
    let n = specs.len() as f64;
    rows.push(vec![
        "mean".to_string(),
        format!("{:.0}%", sums[0] / n * 100.0),
        format!("{:.0}%", sums[1] / n * 100.0),
        format!("{:.0}%", sums[2] / n * 100.0),
        format!("{:.0}%", sums[3] / n * 100.0),
    ]);

    println!("Section 4 trace-walk statistics\n");
    println!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "callee paramless".into(),
                "paramless ≤5".into(),
                "class ≤2".into(),
                "large ≥4".into(),
            ],
            &rows,
        )
    );
    println!("Paper: ~20%, 50–80%, 50–80%, ~50% respectively.");
}
