//! Regenerates **Figure 5(a–f)** — percent change in optimized code space
//! over context-insensitive inlining (negative = smaller, desirable), per
//! benchmark and maximum sensitivity, plus the harmonic-mean-style average.

use aoci_bench::grid::max_levels;
use aoci_bench::{load_or_run_grid_with, EnvConfig};
use aoci_bench::{
    code_delta_pct, fmt_pct, policy_label, render_table, POLICY_GROUPS,
};
use aoci_workloads::suite;

fn main() {
    let env = EnvConfig::from_env();
    let (grid, _) = load_or_run_grid_with(&env);
    let specs = suite();
    let subfig = ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"];

    println!("Figure 5: change in optimized code space over context-insensitive inlining");
    println!("(cumulative bytes of optimized code generated; negative is a reduction)\n");
    for (i, (group, make)) in POLICY_GROUPS.iter().enumerate() {
        println!("Figure 5{} — {group}", subfig[i]);
        let mut header = vec!["benchmark".to_string()];
        for max in max_levels(env.quick) {
            header.push(format!("max={max}"));
        }
        let mut rows = Vec::new();
        for spec in &specs {
            let cins = grid.get(spec.name, "cins").expect("baseline present");
            let mut row = vec![spec.name.to_string()];
            for max in max_levels(env.quick) {
                let label = policy_label(make(max));
                let m = grid.get(spec.name, &label).expect("policy present");
                row.push(fmt_pct(code_delta_pct(cins, m)));
            }
            rows.push(row);
        }
        let mut mean_row = vec!["mean".to_string()];
        for max in max_levels(env.quick) {
            let label = policy_label(make(max));
            let mean: f64 = specs
                .iter()
                .map(|s| {
                    code_delta_pct(
                        grid.get(s.name, "cins").expect("baseline"),
                        grid.get(s.name, &label).expect("policy"),
                    )
                })
                .sum::<f64>()
                / specs.len() as f64;
            mean_row.push(fmt_pct(mean));
        }
        rows.push(mean_row);
        println!("{}", render_table(&header, &rows));
    }

    println!("Resident (end-of-run) optimized code for reference, fixed policy:");
    let mut rows = Vec::new();
    for spec in &specs {
        let cins = grid.get(spec.name, "cins").expect("baseline");
        let mut row = vec![spec.name.to_string(), format!("{:.0}", cins.current_code)];
        for max in max_levels(env.quick) {
            let m = grid
                .get(spec.name, &format!("fixed/{max}"))
                .expect("policy");
            row.push(fmt_pct((m.current_code / cins.current_code - 1.0) * 100.0));
        }
        rows.push(row);
    }
    let mut header = vec!["benchmark".to_string(), "cins units".to_string()];
    for max in max_levels(env.quick) {
        header.push(format!("max={max}"));
    }
    println!("{}", render_table(&header, &rows));
}
