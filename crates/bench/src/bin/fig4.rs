//! Regenerates **Figure 4(a–f)** — wall-clock speedup of each context-
//! sensitive profiling policy over context-insensitive inlining, per
//! benchmark, for maximum sensitivity 2–5, plus the harmonic mean.

use aoci_bench::{
    fmt_pct, harmonic_mean_speedup_pct, load_or_run_grid_with, policy_label, render_table, EnvConfig,
    speedup_pct, POLICY_GROUPS,
};
use aoci_bench::grid::max_levels;
use aoci_workloads::suite;

fn main() {
    let env = EnvConfig::from_env();
    let (grid, _) = load_or_run_grid_with(&env);
    let specs = suite();
    let subfig = ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)"];

    println!("Figure 4: wall-clock speedup over context-insensitive inlining\n");
    for (i, (group, make)) in POLICY_GROUPS.iter().enumerate() {
        println!("Figure 4{} — {group}", subfig[i]);
        let mut header = vec!["benchmark".to_string()];
        for max in max_levels(env.quick) {
            header.push(format!("max={max}"));
        }
        let mut rows = Vec::new();
        for spec in &specs {
            let cins = grid.get(spec.name, "cins").expect("baseline present");
            let mut row = vec![spec.name.to_string()];
            for max in max_levels(env.quick) {
                let label = policy_label(make(max));
                let m = grid.get(spec.name, &label).expect("policy present");
                row.push(fmt_pct(speedup_pct(cins, m)));
            }
            rows.push(row);
        }
        // Harmonic-mean row, as in the paper's rightmost bars.
        let mut hm_row = vec!["harMean".to_string()];
        for max in max_levels(env.quick) {
            let label = policy_label(make(max));
            let pairs: Vec<_> = specs
                .iter()
                .map(|s| {
                    (
                        grid.get(s.name, "cins").expect("baseline"),
                        grid.get(s.name, &label).expect("policy"),
                    )
                })
                .collect();
            hm_row.push(fmt_pct(harmonic_mean_speedup_pct(&pairs)));
        }
        rows.push(hm_row);
        println!("{}", render_table(&header, &rows));
    }

    println!("(extension) adaptive-resolving policy:");
    let mut header = vec!["benchmark".to_string()];
    for max in max_levels(env.quick) {
        header.push(format!("max={max}"));
    }
    let mut rows = Vec::new();
    for spec in &specs {
        let cins = grid.get(spec.name, "cins").expect("baseline");
        let mut row = vec![spec.name.to_string()];
        for max in max_levels(env.quick) {
            let m = grid
                .get(spec.name, &format!("adaptive/{max}"))
                .expect("adaptive present");
            row.push(fmt_pct(speedup_pct(cins, m)));
        }
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
}
