use aoci_aos::{AosConfig, AosSystem, FaultConfig, TraceConfig};
use aoci_core::PolicyKind;
use aoci_workloads::{build, suite};
use std::time::Instant;

/// Quick end-to-end sanity run over the whole suite.
///
/// Set `AOCI_FAULTS=<seed>` to enable the everything-on fault-injection
/// profile ([`FaultConfig::chaos`]) with that seed: every run must still
/// complete, and the per-run line gains the recovery-event counts. Set
/// `AOCI_OSR=1` to enable on-stack replacement; the per-run line then
/// gains the OSR request/entry/exit counts. Set `AOCI_ASYNC=1` to compile
/// on the simulated background worker pool; the per-run line then gains
/// the queue/overlap counters.
///
/// Set `AOCI_TRACE=1` to turn the flight recorder on: the per-run line
/// gains the emitted/dropped/kind counts, the richest retained window of
/// the sweep (preferring windows that span inlining decisions, then most
/// distinct event kinds) is written as Chrome-trace JSON to
/// `AOCI_TRACE_OUT` (default `results/smoke_trace.json`, loadable in
/// `chrome://tracing` / Perfetto), and `AOCI_EXPLAIN=<pattern>`
/// additionally prints one `explain: …` line per inlining decision or
/// refusal whose host, callee or call site matches the pattern (empty
/// pattern matches all).
fn main() {
    let faults: Option<u64> = match std::env::var("AOCI_FAULTS") {
        Ok(s) if s.trim().is_empty() => None,
        Ok(s) => match s.trim().parse() {
            Ok(seed) => Some(seed),
            Err(_) => {
                eprintln!("AOCI_FAULTS must be an integer seed, got {s:?}");
                std::process::exit(2);
            }
        },
        Err(_) => None,
    };
    let osr = aoci_bench::osr_enabled();
    let trace = aoci_bench::trace_enabled();
    let async_compile = aoci_bench::async_enabled();
    // The post-mortem default ring (8192) is sized for crash dumps; an
    // explicit export wants a window wide enough to span compile activity,
    // so smoke defaults much larger (`AOCI_TRACE_CAP` overrides).
    let trace_cap: usize = std::env::var("AOCI_TRACE_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 16);
    let explain = std::env::var("AOCI_EXPLAIN").ok();
    let trace_out = std::env::var("AOCI_TRACE_OUT")
        .unwrap_or_else(|_| "results/smoke_trace.json".to_string());
    // Best export candidate so far: (spans inline decisions, distinct
    // kinds) lexicographically, with the run label and rendered JSON.
    let mut best_trace: Option<((bool, usize), String, String)> = None;
    for spec in suite() {
        let w = build(&spec);
        for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
            let t = Instant::now();
            let mut config = if osr { AosConfig::with_osr(policy) } else { AosConfig::new(policy) };
            if trace {
                config.trace = Some(TraceConfig { capacity: trace_cap, ..TraceConfig::default() });
            }
            if async_compile {
                config.async_compile = Some(aoci_aos::AsyncCompileConfig::default());
            }
            config.fault = faults.map(FaultConfig::chaos);
            let report = AosSystem::new(&w.program, config).run().expect("runs");
            print!(
                "{:<10} {:?}: wall={:?} cycles={} cum={} cur={} compiles={} samples={} rules={} baseline_methods={} frac_compile={:.3}% frac_listen={:.3}%",
                w.name,
                policy,
                t.elapsed(),
                report.total_cycles(),
                report.optimized_code_size,
                report.current_optimized_size,
                report.opt_compilations,
                report.samples,
                report.final_rules,
                report.baseline_compilations,
                report.fraction(aoci_vm::Component::CompilationThread) * 100.0,
                report.fraction(aoci_vm::Component::Listeners) * 100.0,
            );
            if osr {
                print!(
                    " | osr: requests={} denied={} entries={} exits={}",
                    report.osr.requests, report.osr.denied, report.osr.entries, report.osr.exits,
                );
            }
            if async_compile {
                let ev = &report.async_compile;
                print!(
                    " | async: enqueued={} dispatched={} completed={} stale={} full={} abandoned={} depth={} overlap={} stall={}",
                    ev.enqueued,
                    ev.dispatched,
                    ev.completed,
                    ev.stale_drops,
                    ev.queue_full_drops,
                    ev.abandoned_in_flight,
                    ev.max_queue_depth,
                    ev.background_overlap_cycles,
                    ev.foreground_stall_cycles,
                );
            }
            if faults.is_some() {
                let ev = &report.recovery;
                print!(
                    " | recovery: inval={} retries={} quarantined={} rejected={} (injected: compile={} traces={} drops={} bursts={})",
                    ev.invalidations,
                    ev.compile_retries,
                    ev.quarantined_methods,
                    ev.rejected_traces,
                    ev.injected_compile_faults,
                    ev.injected_corrupt_traces,
                    ev.dropped_samples,
                    ev.receiver_bursts,
                );
            }
            if let Some((emitted, dropped, kinds)) = report.trace_summary() {
                print!(" | trace: emitted={emitted} dropped={dropped} kinds={kinds}");
            }
            println!();
            if let Some(log) = &report.trace_log {
                let resolve = |m: aoci_ir::MethodId| w.program.method(m).name().to_string();
                if let Some(pattern) = &explain {
                    for line in log.explain(pattern, &resolve) {
                        println!("explain: {line}");
                    }
                }
                let kinds = log.kinds();
                let score = (kinds.contains("inline-decision"), kinds.len());
                if best_trace.as_ref().is_none_or(|(s, _, _)| score > *s) {
                    let label = format!("{} {policy:?}", w.name);
                    best_trace = Some((score, label, log.to_chrome_string(&resolve)));
                }
            }
        }
    }
    if let Some((_, label, json)) = best_trace {
        if let Some(dir) = std::path::Path::new(&trace_out).parent() {
            std::fs::create_dir_all(dir).expect("create trace output directory");
        }
        std::fs::write(&trace_out, json).expect("write Chrome trace");
        println!("trace smoke complete: Chrome trace of `{label}` written to {trace_out}");
    }
    if faults.is_some() {
        println!("fault-injected smoke complete: every run degraded gracefully");
    }
    if osr {
        println!("osr smoke complete: every run finished with OSR enabled");
    }
    if async_compile {
        println!("async smoke complete: every run finished with background compilation");
    }
}
