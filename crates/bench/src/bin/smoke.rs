use aoci_aos::{AosConfig, AosSystem};
use aoci_core::PolicyKind;
use aoci_workloads::{build, suite};
use std::time::Instant;

fn main() {
    for spec in suite() {
        let w = build(&spec);
        for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
            let t = Instant::now();
            let report = AosSystem::new(&w.program, AosConfig::new(policy))
                .run()
                .expect("runs");
            println!(
                "{:<10} {:?}: wall={:?} cycles={} cum={} cur={} compiles={} samples={} rules={} baseline_methods={} frac_compile={:.3}% frac_listen={:.3}%",
                w.name,
                policy,
                t.elapsed(),
                report.total_cycles(),
                report.optimized_code_size,
                report.current_optimized_size,
                report.opt_compilations,
                report.samples,
                report.final_rules,
                report.baseline_compilations,
                report.fraction(aoci_vm::Component::CompilationThread) * 100.0,
                report.fraction(aoci_vm::Component::Listeners) * 100.0,
            );
        }
    }
}
