use aoci_aos::{AosConfig, AosSystem, FaultConfig};
use aoci_core::PolicyKind;
use aoci_workloads::{build, suite};
use std::time::Instant;

/// Quick end-to-end sanity run over the whole suite.
///
/// Set `AOCI_FAULTS=<seed>` to enable the everything-on fault-injection
/// profile ([`FaultConfig::chaos`]) with that seed: every run must still
/// complete, and the per-run line gains the recovery-event counts. Set
/// `AOCI_OSR=1` to enable on-stack replacement; the per-run line then
/// gains the OSR request/entry/exit counts.
fn main() {
    let faults: Option<u64> = match std::env::var("AOCI_FAULTS") {
        Ok(s) if s.trim().is_empty() => None,
        Ok(s) => match s.trim().parse() {
            Ok(seed) => Some(seed),
            Err(_) => {
                eprintln!("AOCI_FAULTS must be an integer seed, got {s:?}");
                std::process::exit(2);
            }
        },
        Err(_) => None,
    };
    let osr = aoci_bench::metrics::osr_enabled();
    for spec in suite() {
        let w = build(&spec);
        for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
            let t = Instant::now();
            let mut config = if osr { AosConfig::with_osr(policy) } else { AosConfig::new(policy) };
            config.fault = faults.map(FaultConfig::chaos);
            let report = AosSystem::new(&w.program, config).run().expect("runs");
            print!(
                "{:<10} {:?}: wall={:?} cycles={} cum={} cur={} compiles={} samples={} rules={} baseline_methods={} frac_compile={:.3}% frac_listen={:.3}%",
                w.name,
                policy,
                t.elapsed(),
                report.total_cycles(),
                report.optimized_code_size,
                report.current_optimized_size,
                report.opt_compilations,
                report.samples,
                report.final_rules,
                report.baseline_compilations,
                report.fraction(aoci_vm::Component::CompilationThread) * 100.0,
                report.fraction(aoci_vm::Component::Listeners) * 100.0,
            );
            if osr {
                print!(
                    " | osr: requests={} denied={} entries={} exits={}",
                    report.osr.requests, report.osr.denied, report.osr.entries, report.osr.exits,
                );
            }
            if faults.is_some() {
                let ev = report.recovery;
                print!(
                    " | recovery: inval={} retries={} quarantined={} rejected={} (injected: compile={} traces={} drops={} bursts={})",
                    ev.invalidations,
                    ev.compile_retries,
                    ev.quarantined_methods,
                    ev.rejected_traces,
                    ev.injected_compile_faults,
                    ev.injected_corrupt_traces,
                    ev.dropped_samples,
                    ev.receiver_bursts,
                );
            }
            println!();
        }
    }
    if faults.is_some() {
        println!("fault-injected smoke complete: every run degraded gracefully");
    }
    if osr {
        println!("osr smoke complete: every run finished with OSR enabled");
    }
}
