use aoci_aos::{AosConfig, AosSystem, FaultConfig, TraceConfig};
use aoci_bench::EnvConfig;
use aoci_core::PolicyKind;
use aoci_telemetry::{dashboard, to_jsonl, to_prometheus, write_text};
use aoci_workloads::{build, suite};

/// Quick end-to-end sanity run over the whole suite, executed across the
/// `AOCI_JOBS` sweep pool (default: all cores; the per-run lines print in
/// canonical suite × policy order whatever order the workers finish in).
///
/// Set `AOCI_FAULTS=<seed>` to enable the everything-on fault-injection
/// profile ([`FaultConfig::chaos`]) with that seed: every run must still
/// complete, and the per-run line gains the recovery-event counts. Set
/// `AOCI_OSR=1` to enable on-stack replacement; the per-run line then
/// gains the OSR request/entry/exit counts. Set `AOCI_ASYNC=1` to compile
/// on the simulated background worker pool; the per-run line then gains
/// the queue/overlap counters.
///
/// Set `AOCI_TRACE=1` to turn the flight recorder on: the per-run line
/// gains the emitted/dropped/kind counts, the richest retained window of
/// the sweep (preferring windows that span inlining decisions, then most
/// distinct event kinds) is written as Chrome-trace JSON to
/// `AOCI_TRACE_OUT` (default `results/smoke_trace.json`, loadable in
/// `chrome://tracing` / Perfetto), and `AOCI_EXPLAIN=<pattern>`
/// additionally prints one `explain: …` line per inlining decision or
/// refusal whose host, callee or call site matches the pattern (empty
/// pattern matches all).
///
/// Set `AOCI_METRICS=1` to turn the telemetry registry on: the per-run
/// line gains the epoch/counter/histogram counts, every run's time series
/// is appended to the JSONL export at `AOCI_METRICS_OUT` (default
/// `results/smoke_metrics.jsonl`; a Prometheus text dump lands next to it
/// with a `.prom` extension), and the richest run renders as a terminal
/// sparkline dashboard. Zero simulated-cycle overhead: all printed cycle
/// metrics are identical with metrics on or off.
///
/// Run `diag --knobs` for the full knob table.
fn main() {
    let env = EnvConfig::from_env();
    let workloads: Vec<_> = suite().iter().map(build).collect();
    let policies = [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }];

    // The (workload × policy) smoke matrix as a job list; each job is a
    // pure function of its descriptor and the shared immutable programs.
    let jobs: Vec<(usize, PolicyKind)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| policies.iter().map(move |&p| (wi, p)))
        .collect();
    let (results, stats) = env.pool().run(jobs, |&(wi, policy)| {
        let mut config = AosConfig::new(policy);
        if env.osr {
            config = config.enable_osr();
        }
        if env.trace {
            config = config
                .enable_trace_with(TraceConfig { capacity: env.trace_cap, ..TraceConfig::default() });
        }
        if env.async_compile {
            config = config.enable_async_compile();
        }
        if env.debug_hot {
            config = config.enable_debug_hot();
        }
        if env.metrics {
            config = config.enable_metrics();
        }
        if let Some(seed) = env.faults {
            config = config.enable_faults(FaultConfig::chaos(seed));
        }
        config.vm.decode = env.decode;
        AosSystem::new(&workloads[wi].program, config).run().expect("runs")
    });

    // Best export candidate so far: (spans inline decisions, distinct
    // kinds) lexicographically, with the run label and rendered JSON.
    let mut best_trace: Option<((bool, usize), String, String)> = None;
    // Metrics exports accumulate across the sweep: JSONL + Prometheus text
    // for every run, one dashboard for the richest run (most epochs).
    let (mut jsonl, mut prom) = (String::new(), String::new());
    let mut best_dash: Option<(usize, String)> = None;
    for (i, jr) in results.iter().enumerate() {
        let (wi, policy) = (i / policies.len(), policies[i % policies.len()]);
        let (report, wall) = (&jr.output, jr.wall);
        let w = &workloads[wi];
        print!(
            "{:<10} {:?}: wall={:?} cycles={} cum={} cur={} compiles={} samples={} rules={} baseline_methods={} frac_compile={:.3}% frac_listen={:.3}%",
            w.name,
            policy,
            wall,
            report.total_cycles(),
            report.optimized_code_size,
            report.current_optimized_size,
            report.opt_compilations,
            report.samples,
            report.final_rules,
            report.baseline_compilations,
            report.fraction(aoci_vm::Component::CompilationThread) * 100.0,
            report.fraction(aoci_vm::Component::Listeners) * 100.0,
        );
        if env.osr {
            print!(
                " | osr: requests={} denied={} entries={} exits={}",
                report.osr.requests, report.osr.denied, report.osr.entries, report.osr.exits,
            );
        }
        if env.async_compile {
            let ev = &report.async_compile;
            print!(
                " | async: enqueued={} dispatched={} completed={} stale={} full={} abandoned={} depth={} overlap={} stall={}",
                ev.enqueued,
                ev.dispatched,
                ev.completed,
                ev.stale_drops,
                ev.queue_full_drops,
                ev.abandoned_in_flight,
                ev.max_queue_depth,
                ev.background_overlap_cycles,
                ev.foreground_stall_cycles,
            );
        }
        if env.faults.is_some() {
            let ev = &report.recovery;
            print!(
                " | recovery: inval={} retries={} quarantined={} rejected={} (injected: compile={} traces={} drops={} bursts={})",
                ev.invalidations,
                ev.compile_retries,
                ev.quarantined_methods,
                ev.rejected_traces,
                ev.injected_compile_faults,
                ev.injected_corrupt_traces,
                ev.dropped_samples,
                ev.receiver_bursts,
            );
        }
        if let Some((emitted, dropped, kinds)) = report.trace_summary() {
            print!(" | trace: emitted={emitted} dropped={dropped} kinds={kinds}");
        }
        if let Some(log) = &report.telemetry {
            print!(
                " | metrics: epochs={} counters={} hists={}",
                log.series.len(),
                log.counters.len(),
                log.histograms.len(),
            );
        }
        println!();
        if let Some(log) = &report.telemetry {
            let label = format!("{}/{policy:?}", w.name);
            jsonl.push_str(&to_jsonl(&label, log));
            prom.push_str(&to_prometheus(&label, log));
            if best_dash.as_ref().is_none_or(|(n, _)| log.series.len() > *n) {
                best_dash = Some((log.series.len(), dashboard(&label, log)));
            }
        }
        if let Some(log) = &report.trace_log {
            let resolve = |m: aoci_ir::MethodId| w.program.method(m).name().to_string();
            if let Some(pattern) = &env.explain {
                for line in log.explain(pattern, &resolve) {
                    println!("explain: {line}");
                }
            }
            let kinds = log.kinds();
            let score = (kinds.contains("inline-decision"), kinds.len());
            if best_trace.as_ref().is_none_or(|(s, _, _)| score > *s) {
                let label = format!("{} {policy:?}", w.name);
                best_trace = Some((score, label, log.to_chrome_string(&resolve)));
            }
        }
    }
    if let Some((_, label, json)) = best_trace {
        if let Err(e) = write_text(std::path::Path::new(&env.trace_out), &json) {
            eprintln!("smoke: {e}");
            std::process::exit(1);
        }
        println!("trace smoke complete: Chrome trace of `{label}` written to {}", env.trace_out);
    }
    if let Some((_, dash)) = best_dash {
        let jsonl_path = std::path::PathBuf::from(&env.metrics_out);
        let prom_path = jsonl_path.with_extension("prom");
        if let Err(e) =
            write_text(&jsonl_path, &jsonl).and_then(|()| write_text(&prom_path, &prom))
        {
            eprintln!("smoke: {e}");
            std::process::exit(1);
        }
        print!("{dash}");
        println!(
            "metrics smoke complete: JSONL time series written to {}, Prometheus dump to {}",
            jsonl_path.display(),
            prom_path.display(),
        );
    }
    if env.faults.is_some() {
        println!("fault-injected smoke complete: every run degraded gracefully");
    }
    if env.osr {
        println!("osr smoke complete: every run finished with OSR enabled");
    }
    if env.async_compile {
        println!("async smoke complete: every run finished with background compilation");
    }
    println!("smoke sweep: {}", stats.render());
}
