//! Regenerates **Figure 6** — percent of execution time spent in each
//! component of the adaptive optimization system, averaged over the
//! benchmark suite, for the context-insensitive baseline and each policy ×
//! maximum sensitivity.

use aoci_bench::grid::max_levels;
use aoci_bench::{load_or_run_grid_with, EnvConfig};
use aoci_bench::{policy_label, render_table, RunMetrics, POLICY_GROUPS};
use aoci_vm::Component;
use aoci_workloads::suite;

/// The figure's component rows. The missing-edge organizer is folded into
/// the AI organizer, matching the paper's legend.
const ROWS: [(&str, &[Component]); 6] = [
    ("AOS Listeners", &[Component::Listeners]),
    ("CompilationThread", &[Component::CompilationThread]),
    ("DecayOrganizer", &[Component::DecayOrganizer]),
    (
        "AIOrganizer",
        &[Component::AiOrganizer, Component::MissingEdgeOrganizer],
    ),
    ("MethodSampleOrganizer", &[Component::MethodSampleOrganizer]),
    ("ControllerThread", &[Component::ControllerThread]),
];

fn mean_fraction(ms: &[&RunMetrics], components: &[Component]) -> f64 {
    ms.iter()
        .map(|m| components.iter().map(|&c| m.fraction(c)).sum::<f64>())
        .sum::<f64>()
        / ms.len() as f64
}

fn main() {
    let env = EnvConfig::from_env();
    let (grid, _) = load_or_run_grid_with(&env);
    let specs = suite();
    // Paper's x-axis: cins, then each policy at max 2..4 (we include every
    // measured level).
    let mut columns: Vec<(String, Vec<&RunMetrics>)> = Vec::new();
    let gather = |label: &str| -> Vec<&RunMetrics> {
        specs
            .iter()
            .map(|s| grid.get(s.name, label).expect("entry present"))
            .collect()
    };
    columns.push(("cins".to_string(), gather("cins")));
    for (_, make) in POLICY_GROUPS.iter() {
        for max in max_levels(env.quick) {
            let label = policy_label(make(max));
            columns.push((label.clone(), gather(&label)));
        }
    }

    println!("Figure 6: percent of execution time per AOS component (suite average)\n");
    let mut header = vec!["component".to_string()];
    header.extend(columns.iter().map(|(l, _)| l.clone()));
    let mut rows = Vec::new();
    let mut totals = vec![0.0; columns.len()];
    for (name, comps) in ROWS {
        let mut row = vec![name.to_string()];
        for (i, (_, ms)) in columns.iter().enumerate() {
            let f = mean_fraction(ms, comps) * 100.0;
            totals[i] += f;
            row.push(format!("{f:.3}%"));
        }
        rows.push(row);
    }
    let mut total_row = vec!["TOTAL overhead".to_string()];
    for t in &totals {
        total_row.push(format!("{t:.3}%"));
    }
    rows.push(total_row);
    println!("{}", render_table(&header, &rows));
    println!(
        "\nThe paper's observations to check: optimizing compilation dominates the\n\
         overhead; context-sensitive policies reduce it relative to cins; listener +\n\
         organizer overhead of context sensitivity stays a tiny fraction of execution."
    );
}
