//! Wall-clock microbenchmark of the interpreter dispatch paths.
//!
//! Runs every suite workload twice per dispatch mode — pre-decoded
//! threaded dispatch (`AOCI_DECODE=1`, the default) versus the legacy
//! per-step `match` loop (`AOCI_DECODE=0`) — under a representative
//! adaptive configuration, and reports real seconds per mode plus the
//! speedup. Simulated-cycle metrics are asserted identical between the
//! two modes for every workload, so each invocation is also a coarse
//! dispatch-equivalence check (the fine-grained one lives in
//! `tests/tests/dispatch_equivalence.rs`).
//!
//! Each (workload, mode) cell runs `AOCI_REPS` times (default 3) and
//! keeps the *minimum* wall time — the standard microbenchmark protocol
//! for a deterministic computation, where every cycle above the minimum
//! is measurement noise. Results print as a table and are written as
//! JSON to `<AOCI_RESULTS_DIR>/ubench.json` for the per-PR bench
//! trajectory (`results/BENCH_<n>.json` quotes these numbers).

use aoci_aos::{AosConfig, AosReport, AosSystem};
use aoci_bench::{dispatch_loop_best, dispatch_loop_program, EnvConfig};
use aoci_core::PolicyKind;
use aoci_json::Value;
use aoci_workloads::{build, suite, Workload};
use std::time::Instant;

/// The representative adaptive configuration: the fixed-depth policy the
/// smoke matrix uses, with the dispatch mode as the only variable.
fn config(decode: bool) -> AosConfig {
    let mut c = AosConfig::new(PolicyKind::Fixed { max: 3 });
    c.vm.decode = decode;
    c
}

/// Runs `w` once in the given mode, returning the report and wall seconds.
fn run_once(w: &Workload, decode: bool) -> (AosReport, f64) {
    let t = Instant::now();
    let report = AosSystem::new(&w.program, config(decode)).run().expect("workload runs");
    (report, t.elapsed().as_secs_f64())
}

/// Minimum wall seconds over `reps` runs (plus one report for equivalence
/// checking — every rep is bit-identical, so any rep's report serves).
fn best_of(w: &Workload, decode: bool, reps: usize) -> (AosReport, f64) {
    let mut best: Option<(AosReport, f64)> = None;
    for _ in 0..reps {
        let (report, secs) = run_once(w, decode);
        match &best {
            Some((_, b)) if *b <= secs => {}
            _ => best = Some((report, secs)),
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let env = EnvConfig::from_env();
    let reps = env.reps;
    let workloads: Vec<Workload> = suite().iter().map(build).collect();

    println!("dispatch microbenchmark: decoded vs legacy, best of {reps} (seconds)");
    println!("{:<12} {:>10} {:>10} {:>9}", "workload", "decoded", "legacy", "speedup");

    let mut rows = std::collections::BTreeMap::new();
    let (mut total_dec, mut total_leg) = (0.0f64, 0.0f64);

    // Pure-dispatch row first: a bare Vm on an interpreter-bound loop.
    let loop_program = dispatch_loop_program();
    let (cycles_dec, loop_dec) = dispatch_loop_best(&loop_program, true, reps);
    let (cycles_leg, loop_leg) = dispatch_loop_best(&loop_program, false, reps);
    assert_eq!(
        cycles_dec, cycles_leg,
        "dispatch_loop: decoded and legacy dispatch disagree on simulated cycles"
    );
    println!("{:<12} {:>10.4} {:>10.4} {:>8.2}x", "(dispatch)", loop_dec, loop_leg, loop_leg / loop_dec);
    let dispatch_row = Value::obj([
        ("decoded_seconds".to_string(), Value::Num(loop_dec)),
        ("legacy_seconds".to_string(), Value::Num(loop_leg)),
        ("speedup".to_string(), Value::Num(loop_leg / loop_dec)),
    ]);

    for w in &workloads {
        let (rep_dec, dec) = best_of(w, true, reps);
        let (rep_leg, leg) = best_of(w, false, reps);
        assert_eq!(
            rep_dec.result, rep_leg.result,
            "{}: decoded and legacy dispatch disagree on the program result",
            w.name
        );
        assert_eq!(
            rep_dec.total_cycles(),
            rep_leg.total_cycles(),
            "{}: decoded and legacy dispatch disagree on simulated cycles",
            w.name
        );
        assert_eq!(
            rep_dec.counters, rep_leg.counters,
            "{}: decoded and legacy dispatch disagree on exec counters",
            w.name
        );
        total_dec += dec;
        total_leg += leg;
        println!("{:<12} {:>10.4} {:>10.4} {:>8.2}x", w.name, dec, leg, leg / dec);
        rows.insert(
            w.name.to_string(),
            Value::obj([
                ("decoded_seconds".to_string(), Value::Num(dec)),
                ("legacy_seconds".to_string(), Value::Num(leg)),
                ("speedup".to_string(), Value::Num(leg / dec)),
            ]),
        );
    }
    println!(
        "{:<12} {:>10.4} {:>10.4} {:>8.2}x",
        "TOTAL",
        total_dec,
        total_leg,
        total_leg / total_dec
    );

    let doc = Value::obj([
        ("bench".to_string(), Value::Str("ubench_dispatch".to_string())),
        ("reps".to_string(), Value::Num(reps as f64)),
        ("dispatch_loop".to_string(), dispatch_row),
        ("workloads".to_string(), Value::Obj(rows)),
        (
            "total".to_string(),
            Value::obj([
                ("decoded_seconds".to_string(), Value::Num(total_dec)),
                ("legacy_seconds".to_string(), Value::Num(total_leg)),
                ("speedup".to_string(), Value::Num(total_leg / total_dec)),
            ]),
        ),
    ]);
    let path = format!("{}/ubench.json", env.results_dir);
    if let Err(e) = std::fs::create_dir_all(&env.results_dir) {
        eprintln!("ubench: cannot create {}: {e}", env.results_dir);
        std::process::exit(1);
    }
    match std::fs::write(&path, aoci_json::to_string_pretty(&doc) + "\n") {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("ubench: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
