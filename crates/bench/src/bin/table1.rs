//! Regenerates **Table 1** — benchmark characteristics: classes loaded,
//! methods dynamically compiled, and bytecodes of compiled methods — for
//! the synthetic suite, next to the paper's SPEC numbers for reference.

use aoci_aos::{AosConfig, AosSystem};
use aoci_bench::render_table;
use aoci_core::PolicyKind;
use aoci_workloads::{build, suite};

/// (paper classes, paper methods, paper bytecodes) per Table 1 row.
const PAPER: [(u32, u32, u32); 8] = [
    (48, 489, 19_480),
    (176, 1_101, 35_316),
    (41, 510, 20_495),
    (176, 1_496, 56_282),
    (85, 712, 51_308),
    (62, 629, 24_435),
    (86, 743, 36_253),
    (132, 1_778, 73_608),
];

fn main() {
    let mut rows = Vec::new();
    for (spec, paper) in suite().iter().zip(PAPER) {
        let w = build(spec);
        // "Methods" and "Bytecodes" in the paper count *dynamically
        // compiled* code; run once to observe what actually compiles.
        let report = AosSystem::new(&w.program, AosConfig::new(PolicyKind::ContextInsensitive))
            .run()
            .expect("workload runs");
        let compiled_bytecodes: u64 = w
            .program
            .methods()
            .map(|m| m.size_estimate() as u64)
            .sum();
        rows.push(vec![
            w.name.clone(),
            w.program.num_classes().to_string(),
            report.baseline_compilations.to_string(),
            compiled_bytecodes.to_string(),
            paper.0.to_string(),
            paper.1.to_string(),
            paper.2.to_string(),
        ]);
    }
    println!("Table 1: benchmark characteristics (ours vs paper's SPEC originals)\n");
    println!(
        "{}",
        render_table(
            &[
                "benchmark".into(),
                "classes".into(),
                "methods compiled".into(),
                "bytecodes".into(),
                "paper classes".into(),
                "paper methods".into(),
                "paper bytecodes".into(),
            ],
            &rows,
        )
    );
    println!(
        "Synthetic stand-ins are smaller than the SPEC originals; the paper\n\
         columns are reproduced for scale comparison (see DESIGN.md)."
    );
}
