use aoci_json::Value;
use std::collections::BTreeSet;

/// Validates a Chrome-trace JSON file produced by the flight recorder
/// (`smoke` with `AOCI_TRACE=1`, or any embedding of
/// `TraceLog::to_chrome_string`): the file must parse, carry the expected
/// top-level shape, and retain at least six distinct event kinds —
/// including the sampler ticks and per-candidate inlining decisions the
/// tentpole exists for. Exits non-zero with a diagnostic otherwise.
///
/// Usage: `tracecheck [path]` (default `results/smoke_trace.json`).
fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/smoke_trace.json".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("tracecheck: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = aoci_json::parse(&text).unwrap_or_else(|e| {
        eprintln!("tracecheck: {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        eprintln!("tracecheck: {path} has no traceEvents array");
        std::process::exit(1);
    };
    let other = doc.get("otherData");
    let clock = other
        .and_then(|o| o.get("clock"))
        .and_then(Value::as_str)
        .unwrap_or("?");
    if clock != "simulated-cycles" {
        eprintln!("tracecheck: expected otherData.clock == \"simulated-cycles\", got {clock:?}");
        std::process::exit(1);
    }
    let mut kinds: BTreeSet<String> = BTreeSet::new();
    let mut metadata = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Some(ph) = ev.get("ph").and_then(Value::as_str) else {
            eprintln!("tracecheck: event {i} has no ph");
            std::process::exit(1);
        };
        let Some(name) = ev.get("name").and_then(Value::as_str) else {
            eprintln!("tracecheck: event {i} has no name");
            std::process::exit(1);
        };
        if ph == "M" {
            metadata += 1;
            continue; // thread_name lane labels, not recorded events
        }
        if ev.get("ts").and_then(Value::as_u64).is_none() {
            eprintln!("tracecheck: event {i} ({name}) has no integral ts");
            std::process::exit(1);
        }
        if ph == "X" && ev.get("dur").and_then(Value::as_u64).is_none() {
            eprintln!("tracecheck: complete event {i} ({name}) has no dur");
            std::process::exit(1);
        }
        kinds.insert(name.to_string());
    }
    let mut failed = false;
    if kinds.len() < 6 {
        eprintln!("tracecheck: only {} distinct event kinds, need >= 6", kinds.len());
        failed = true;
    }
    for required in ["sample-tick", "inline-decision"] {
        if !kinds.contains(required) {
            eprintln!("tracecheck: required event kind {required:?} missing");
            failed = true;
        }
    }
    if failed {
        eprintln!("tracecheck: kinds present: {kinds:?}");
        std::process::exit(1);
    }
    println!(
        "tracecheck: {path} ok — {} events ({} metadata), {} kinds: {}",
        events.len(),
        metadata,
        kinds.len(),
        kinds.iter().cloned().collect::<Vec<_>>().join(", ")
    );
}
