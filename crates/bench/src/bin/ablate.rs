//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! 1. **partial vs exact context matching** in the inline oracle
//!    (Section 3.3's hybrid scheme);
//! 2. **no-merge collection vs merge-on-collect** in the DCG;
//! 3. **decay factor** sweep on the phase-shift workload;
//! 4. **hot threshold** sweep (profile dilution);
//! 5. **source-level stack recovery vs naive walk** in the trace listener
//!    (Section 3.3, "Optimized Stack Frames").
//!
//! ```sh
//! cargo run --release -p aoci-bench --bin ablate
//! ```

use aoci_aos::{AosConfig, AosSystem};
use aoci_bench::render_table;
use aoci_core::{MatchMode, PolicyKind};
use aoci_workloads::{build, spec_by_name, Workload};

fn run(w: &Workload, config: AosConfig) -> aoci_aos::AosReport {
    AosSystem::new(&w.program, config).run().expect("workload runs")
}

fn row(label: &str, r: &aoci_aos::AosReport) -> Vec<String> {
    vec![
        label.to_string(),
        r.total_cycles().to_string(),
        format!("{}", r.optimized_code_size),
        format!("{}", r.opt_compilations),
        format!("{}", r.final_rules),
        format!("{:.1}%", r.guard_miss_rate() * 100.0),
    ]
}

fn header() -> Vec<String> {
    vec![
        "config".into(),
        "cycles".into(),
        "code".into(),
        "compiles".into(),
        "rules".into(),
        "guard miss".into(),
    ]
}

fn main() {
    let jess = build(&spec_by_name("jess").expect("suite"));
    let javac = build(&spec_by_name("javac").expect("suite"));
    let jbb = build(&spec_by_name("jbb").expect("suite"));

    // 1. Partial vs exact matching.
    println!("Ablation 1: oracle context matching (jess, fixed/3)");
    let mut rows = Vec::new();
    for (label, mode) in [("partial (paper)", MatchMode::Partial), ("exact only", MatchMode::Exact)] {
        let mut c = AosConfig::new(PolicyKind::Fixed { max: 3 });
        c.match_mode = mode;
        rows.push(row(label, &run(&jess, c)));
    }
    println!("{}", render_table(&header(), &rows));

    // 2. DCG collection: no-merge vs merge-on-collect. The adaptive-
    // resolving policy observes the *same* chains at increasing depths as
    // sites escalate — exactly when collection-time merging has prefixes to
    // fold into, collapsing the deeper (disambiguating) context back into
    // the ambiguous edge.
    println!("Ablation 2: DCG partial-match handling at collection (jbb, adaptive/4)");
    let mut rows = Vec::new();
    for (label, merge) in [("keep separate (paper)", false), ("merge on collect", true)] {
        let mut c = AosConfig::new(PolicyKind::AdaptiveResolving { max: 4 });
        c.dcg.merge_on_collect = merge;
        rows.push(row(label, &run(&jbb, c)));
    }
    println!("{}", render_table(&header(), &rows));

    // 3. Decay sweep on the phase-shift workload.
    println!("Ablation 3: decay factor under a phase shift (jbb, fixed/3)");
    let mut rows = Vec::new();
    for factor in [1.0, 0.98, 0.95, 0.85, 0.5] {
        let mut c = AosConfig::new(PolicyKind::Fixed { max: 3 });
        c.decay_factor = factor;
        rows.push(row(&format!("decay {factor}"), &run(&jbb, c)));
    }
    println!("{}", render_table(&header(), &rows));

    // 4. Hot-threshold sweep (dilution sensitivity).
    println!("Ablation 4: hot-trace threshold (javac; dilution-prone)");
    let mut rows = Vec::new();
    for threshold in [0.005, 0.015, 0.05] {
        for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
            let mut c = AosConfig::new(policy);
            c.hot_edge_threshold = threshold;
            rows.push(row(&format!("{threshold} × {policy}"), &run(&javac, c)));
        }
    }
    println!("{}", render_table(&header(), &rows));

    // 5. Source-level stack recovery vs naive walk.
    println!("Ablation 5: inline-map stack recovery (jess, fixed/3)");
    let mut rows = Vec::new();
    for (label, source_level) in [("source-level (paper)", true), ("naive walk", false)] {
        let mut c = AosConfig::new(PolicyKind::Fixed { max: 3 });
        c.vm.source_level_walk = source_level;
        rows.push(row(label, &run(&jess, c)));
    }
    println!("{}", render_table(&header(), &rows));
    println!(
        "The naive walk records misleading traces once inlining begins (e.g. A ⇒ C\n\
         when the truth is A ⇒ B ⇒ C), so its rules degrade as optimization proceeds."
    );
}
