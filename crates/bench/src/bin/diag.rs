//! Per-method compilation diagnostics, plus the experiment-knob table.
//!
//! * `diag [workload]` — runs the workload (default `compress`) under the
//!   baseline and `fixed/3` policies and dumps every optimizing
//!   compilation per method.
//! * `diag --knobs` — prints the generated table of every `AOCI_*`
//!   environment variable: name, type, default, and effect. Rendered
//!   straight from the [`aoci_bench::env`] knob registry — the same
//!   descriptors the parser reads through — so the table cannot drift
//!   from the implementation.

use aoci_aos::{AosConfig, AosSystem};
use aoci_bench::{render_table, EnvConfig};
use aoci_core::PolicyKind;
use aoci_workloads::{build, spec_by_name};
use std::collections::HashMap;

fn print_knobs() {
    println!("AOCI_* experiment knobs (all parsed once, in aoci_bench::env):\n");
    let header =
        vec!["variable".to_string(), "type".to_string(), "default".to_string(), "effect".to_string()];
    println!("{}", render_table(&header, &EnvConfig::knob_rows()));
}

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--knobs") {
        print_knobs();
        return;
    }
    let name = arg.unwrap_or_else(|| "compress".into());
    let w = build(&spec_by_name(&name).unwrap());
    for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
        let report = AosSystem::new(&w.program, AosConfig::new(policy)).run().unwrap();
        println!("=== {policy:?}: cumulative={} current={} compiles={} total_cycles={}",
            report.optimized_code_size, report.current_optimized_size,
            report.opt_compilations, report.total_cycles());
        let mut per_method: HashMap<_, Vec<_>> = HashMap::new();
        for c in &report.compilations {
            per_method.entry(c.method).or_default().push(c);
        }
        let mut rows: Vec<_> = per_method.into_iter().collect();
        rows.sort_by_key(|(m, _)| *m);
        for (m, cs) in rows {
            let name = w.program.method(m).name();
            let sizes: Vec<_> = cs.iter().map(|c| (c.generated_size, c.inlines, c.guarded)).collect();
            println!("  {name:<10} x{}: {:?} (orig {})", cs.len(), sizes, w.program.method(m).size_estimate());
        }
    }
}
