//! Per-method compilation diagnostics, plus the experiment-knob table,
//! telemetry dashboards and the wall-clock bench trajectory.
//!
//! * `diag [workload]` — runs the workload (default `compress`) under the
//!   baseline and `fixed/3` policies and dumps every optimizing
//!   compilation per method.
//! * `diag --knobs [--md]` — prints the generated table of every `AOCI_*`
//!   environment variable: name, type, default, and effect. Rendered
//!   straight from the [`aoci_bench::env`] knob registry — the same
//!   descriptors the parser reads through — so the table cannot drift
//!   from the implementation. `--md` emits the markdown flavour that the
//!   EXPERIMENTS.md knob table (and its CI drift check) uses.
//! * `diag --metrics [workload]` — runs the workload with the telemetry
//!   registry on and renders the per-policy sparkline dashboards plus the
//!   final counter/histogram summary (DESIGN.md §14).
//! * `diag --bench` — renders the per-PR wall-clock trajectory from the
//!   committed `results/BENCH_*.json` entries (see the `perf` binary).

use aoci_aos::{AosConfig, AosSystem};
use aoci_bench::{load_trajectory, render_table, render_trajectory, EnvConfig};
use aoci_core::PolicyKind;
use aoci_telemetry::dashboard;
use aoci_workloads::{build, spec_by_name};
use std::collections::HashMap;

fn print_knobs(markdown: bool) {
    if markdown {
        print!("{}", EnvConfig::knob_markdown());
        return;
    }
    println!("AOCI_* experiment knobs (all parsed once, in aoci_bench::env):\n");
    let header =
        vec!["variable".to_string(), "type".to_string(), "default".to_string(), "effect".to_string()];
    println!("{}", render_table(&header, &EnvConfig::knob_rows()));
}

/// `diag --metrics`: both policies with the registry on, dashboards and
/// final aggregates on stdout.
fn print_metrics(name: &str) {
    let Some(spec) = spec_by_name(name) else {
        eprintln!("diag: unknown workload {name:?}");
        std::process::exit(2);
    };
    let w = build(&spec);
    for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
        let report = AosSystem::new(&w.program, AosConfig::new(policy).enable_metrics())
            .run()
            .expect("metered diag run");
        let log = report.telemetry.as_ref().expect("metrics were enabled");
        print!("{}", dashboard(&format!("{name}/{policy:?}"), log));
        println!("  final: {} counters, {} gauges, {} histograms", log.counters.len(), log.gauges.len(), log.histograms.len());
        for (hname, h) in &log.histograms {
            println!(
                "  hist {hname}: n={} mean={:.1} p50={} max={}",
                h.count(),
                h.mean().unwrap_or(0.0),
                h.quantile(0.5).unwrap_or(0),
                h.max().unwrap_or(0),
            );
        }
    }
}

/// `diag --bench`: the committed wall-clock trajectory.
fn print_bench(env: &EnvConfig) {
    let dir = std::path::Path::new(&env.results_dir);
    print!("{}", render_trajectory(&load_trajectory(dir)));
}

fn main() {
    let env = EnvConfig::from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--knobs") => {
            print_knobs(args.get(1).map(String::as_str) == Some("--md"));
            return;
        }
        Some("--metrics") => {
            print_metrics(args.get(1).map_or("compress", String::as_str));
            return;
        }
        Some("--bench") => {
            print_bench(&env);
            return;
        }
        _ => {}
    }
    let name = args.first().cloned().unwrap_or_else(|| "compress".into());
    let w = build(&spec_by_name(&name).unwrap());
    for policy in [PolicyKind::ContextInsensitive, PolicyKind::Fixed { max: 3 }] {
        let report = AosSystem::new(&w.program, AosConfig::new(policy)).run().unwrap();
        println!("=== {policy:?}: cumulative={} current={} compiles={} total_cycles={}",
            report.optimized_code_size, report.current_optimized_size,
            report.opt_compilations, report.total_cycles());
        let mut per_method: HashMap<_, Vec<_>> = HashMap::new();
        for c in &report.compilations {
            per_method.entry(c.method).or_default().push(c);
        }
        let mut rows: Vec<_> = per_method.into_iter().collect();
        rows.sort_by_key(|(m, _)| *m);
        for (m, cs) in rows {
            let name = w.program.method(m).name();
            let sizes: Vec<_> = cs.iter().map(|c| (c.generated_size, c.inlines, c.guarded)).collect();
            println!("  {name:<10} x{}: {:?} (orig {})", cs.len(), sizes, w.program.method(m).size_estimate());
        }
    }
}
