//! Regenerates the **abstract / conclusion summary statistics**: with
//! minimal impact on performance (±1% on average) context sensitivity
//! enables ~10% reductions in compiled code space and compile time;
//! per-program performance ranged −4.2%..+5.3%; maximum reductions in
//! compile time and code space were 33.0% and 56.7%.

use aoci_bench::grid::max_levels;
use aoci_bench::metrics::compile_delta_pct;
use aoci_bench::{
    code_delta_pct, load_or_run_grid_with, policy_label, render_table, speedup_pct, EnvConfig,
    POLICY_GROUPS,
};
use aoci_workloads::suite;

fn main() {
    let env = EnvConfig::from_env();
    let (grid, sweep) = load_or_run_grid_with(&env);
    let specs = suite();

    let mut speedups: Vec<f64> = Vec::new();
    let mut code_deltas: Vec<f64> = Vec::new();
    let mut compile_deltas: Vec<f64> = Vec::new();
    let mut recovery_actions = 0.0;
    let mut per_policy_rows = Vec::new();

    for (group, make) in POLICY_GROUPS.iter() {
        for max in max_levels(env.quick) {
            let label = policy_label(make(max));
            let mut s_sum = 0.0;
            let mut c_sum = 0.0;
            let mut t_sum = 0.0;
            for spec in &specs {
                let cins = grid.get(spec.name, "cins").expect("baseline");
                let m = grid.get(spec.name, &label).expect("policy");
                let s = speedup_pct(cins, m);
                let c = code_delta_pct(cins, m);
                let t = compile_delta_pct(cins, m);
                recovery_actions += m.recovery_invalidations
                    + m.recovery_retries
                    + m.recovery_quarantined
                    + m.recovery_rejected_traces;
                speedups.push(s);
                code_deltas.push(c);
                compile_deltas.push(t);
                s_sum += s;
                c_sum += c;
                t_sum += t;
            }
            let n = specs.len() as f64;
            per_policy_rows.push(vec![
                format!("{group}/{max}"),
                format!("{:+.2}%", s_sum / n),
                format!("{:+.2}%", c_sum / n),
                format!("{:+.2}%", t_sum / n),
            ]);
        }
    }

    println!("Summary statistics over all policies × max levels × benchmarks\n");
    println!(
        "{}",
        render_table(
            &[
                "policy".into(),
                "mean speedup".into(),
                "mean code Δ".into(),
                "mean compile Δ".into(),
            ],
            &per_policy_rows,
        )
    );

    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let max_ = |v: &[f64]| v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;

    println!("Aggregates (paper's claims in parentheses):");
    println!(
        "  mean performance impact : {:+.2}%   (paper: within ±1%)",
        mean(&speedups)
    );
    println!(
        "  performance range       : {:+.1}% .. {:+.1}%   (paper: -4.2% .. +5.3%)",
        min(&speedups),
        max_(&speedups)
    );
    println!(
        "  best code-space cut     : {:+.1}%   (paper: up to -56.7%)",
        min(&code_deltas)
    );
    println!(
        "  best compile-time cut   : {:+.1}%   (paper: up to -33.0%)",
        min(&compile_deltas)
    );
    println!(
        "  mean code-space change  : {:+.2}%   (paper: about -10% for good policies)",
        mean(&code_deltas)
    );
    println!(
        "  mean compile-time change: {:+.2}%   (paper: about -10%)",
        mean(&compile_deltas)
    );
    println!(
        "  recovery actions        : {recovery_actions:.1} total (0 expected: the grid runs \
         unfaulted, and guard-health monitoring is opt-in / fault-triggered)"
    );
    // Sweep trajectory datapoint: only printed when this invocation
    // actually measured cells (a fully cached grid stays byte-stable).
    if let Some(stats) = sweep {
        println!("  sweep                   : {}", stats.render());
    }
}
