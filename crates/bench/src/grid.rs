//! The shared (workload × policy) measurement grid with JSON caching.

use crate::metrics::{policy_label, run_one, RunMetrics, POLICY_GROUPS};
use aoci_core::PolicyKind;
use aoci_json::Value;
use aoci_workloads::suite;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A `(workload, policy-label)` key into the grid.
pub type GridKey = (String, String);

/// The cached measurement grid.
#[derive(Debug, Default)]
pub struct GridStore {
    /// Keyed as `"workload::policy"`.
    pub entries: BTreeMap<String, RunMetrics>,
}

impl GridStore {
    fn key(workload: &str, policy: &str) -> String {
        format!("{workload}::{policy}")
    }

    /// Serializes the grid as a JSON document.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|(k, m)| (k.clone(), m.to_value()))
            .collect::<BTreeMap<_, _>>();
        let doc = Value::obj([("entries".to_string(), Value::Obj(entries))]);
        aoci_json::to_string_pretty(&doc)
    }

    /// Deserializes a grid; `None` for malformed documents.
    pub fn from_json(s: &str) -> Option<GridStore> {
        let doc = aoci_json::parse(s).ok()?;
        let mut entries = BTreeMap::new();
        for (k, v) in doc.get("entries")?.as_obj()? {
            entries.insert(k.clone(), RunMetrics::from_value(v)?);
        }
        Some(GridStore { entries })
    }

    /// Fetches an entry.
    pub fn get(&self, workload: &str, policy: &str) -> Option<&RunMetrics> {
        self.entries.get(&Self::key(workload, policy))
    }

    /// Inserts an entry.
    pub fn insert(&mut self, m: RunMetrics) {
        self.entries
            .insert(Self::key(&m.workload, &m.policy), m);
    }
}

/// Path of the cached grid (`results/grid.json` next to the workspace
/// root, honouring `AOCI_RESULTS_DIR`).
pub fn grid_path() -> PathBuf {
    let dir = std::env::var("AOCI_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir).join("grid.json")
}

/// The sensitivity sweep of the paper's figures: 2–5 normally, 2–3 under
/// `AOCI_QUICK=1`.
pub fn max_levels() -> Vec<u8> {
    if quick() {
        vec![2, 3]
    } else {
        vec![2, 3, 4, 5]
    }
}

fn quick() -> bool {
    std::env::var("AOCI_QUICK").is_ok_and(|v| v == "1")
}

/// All policies the figures need: the context-insensitive baseline plus
/// every group × max level (and the adaptive-resolving extension).
pub fn all_policies() -> Vec<PolicyKind> {
    let mut v = vec![PolicyKind::ContextInsensitive];
    for max in max_levels() {
        for (_, make) in POLICY_GROUPS {
            v.push(make(max));
        }
        v.push(PolicyKind::AdaptiveResolving { max });
    }
    v
}

/// Loads the cached grid (unless `AOCI_RERUN=1`), measures any missing
/// entries, saves, and returns the complete grid.
pub fn load_or_run_grid() -> GridStore {
    let path = grid_path();
    let mut store = if std::env::var("AOCI_RERUN").is_ok_and(|v| v == "1") {
        GridStore::default()
    } else {
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| GridStore::from_json(&s))
            .unwrap_or_default()
    };

    let specs = suite();
    let policies = all_policies();
    let total = specs.len() * policies.len();
    let mut done = 0;
    let mut dirty = false;
    for spec in &specs {
        for &policy in &policies {
            done += 1;
            let label = policy_label(policy);
            if store.get(spec.name, &label).is_some() {
                continue;
            }
            eprintln!("[grid {done}/{total}] {} × {label}", spec.name);
            store.insert(run_one(spec, policy));
            dirty = true;
        }
    }
    if dirty {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let json = store.to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not cache grid to {}: {e}", path.display());
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        let mut s = GridStore::default();
        let m = crate::metrics::RunMetrics {
            workload: "w".into(),
            policy: "fixed/3".into(),
            total_cycles: 1,
            cumulative_code: 1.0,
            current_code: 1.0,
            compile_cycles: 1.0,
            opt_compilations: 1.0,
            component_fracs: vec![],
            samples: 0.0,
            traces_recorded: 0.0,
            frames_walked: 0.0,
            guard_checks: 0.0,
            guard_misses: 0.0,
            virtual_dispatches: 0.0,
            stats_immediately_parameterless: 0.0,
            stats_parameterless_within_5: 0.0,
            stats_class_within_2: 0.0,
            stats_large_at_or_beyond_4: 0.0,
            methods_compiled: 0,
            result: None,
            osr_requests: 0.0,
            osr_denied: 0.0,
            osr_entries: 0.0,
            osr_exits: 0.0,
            recovery_invalidations: 0.0,
            recovery_retries: 0.0,
            recovery_quarantined: 0.0,
            recovery_rejected_traces: 0.0,
        };
        s.insert(m);
        assert!(s.get("w", "fixed/3").is_some());
        assert!(s.get("w", "fixed/4").is_none());
        let json = s.to_json();
        let back = GridStore::from_json(&json).unwrap();
        assert!(back.get("w", "fixed/3").is_some());
    }

    #[test]
    fn policy_roster_covers_figures() {
        // Without AOCI_QUICK the roster is 1 + 4 × 7 = 29 configurations.
        let policies = all_policies();
        assert!(policies.contains(&PolicyKind::ContextInsensitive));
        assert!(policies.len() == 1 + max_levels().len() * 7);
    }
}
