//! The shared (workload × policy) measurement grid with JSON caching and
//! a deterministic parallel sweep.
//!
//! The sweep materializes the (workload × policy × rep) matrix as a
//! [`SweepJob`] list in **canonical order** (suite order, then policy
//! roster order, then repetition index), runs it across the fixed-worker
//! [`JobPool`], and merges results back by walking the job list in that
//! same canonical order. Each job is a pure function of its descriptor
//! (see [`run_rep`](crate::metrics::run_rep)), the pool returns results in
//! job-list order regardless of scheduling, and [`GridStore`] is a
//! `BTreeMap` keyed by `"workload::policy"` — three layers of ordering
//! that together make `results/grid.json` byte-identical for any
//! `AOCI_JOBS` value (asserted by `tests/parallel_determinism.rs`).

use crate::env::EnvConfig;
use crate::metrics::{aggregate, policy_label, run_rep, RunMetrics, POLICY_GROUPS};
use aoci_core::{PolicyKind, SweepStats};
use aoci_json::Value;
use aoci_workloads::{build, suite, WorkloadSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A `(workload, policy-label)` key into the grid.
pub type GridKey = (String, String);

/// The cached measurement grid.
#[derive(Debug, Default)]
pub struct GridStore {
    /// Keyed as `"workload::policy"`.
    pub entries: BTreeMap<String, RunMetrics>,
}

impl GridStore {
    fn key(workload: &str, policy: &str) -> String {
        format!("{workload}::{policy}")
    }

    /// Serializes the grid as a JSON document.
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|(k, m)| (k.clone(), m.to_value()))
            .collect::<BTreeMap<_, _>>();
        let doc = Value::obj([("entries".to_string(), Value::Obj(entries))]);
        aoci_json::to_string_pretty(&doc)
    }

    /// Deserializes a grid; `None` for malformed documents.
    pub fn from_json(s: &str) -> Option<GridStore> {
        let doc = aoci_json::parse(s).ok()?;
        let mut entries = BTreeMap::new();
        for (k, v) in doc.get("entries")?.as_obj()? {
            entries.insert(k.clone(), RunMetrics::from_value(v)?);
        }
        Some(GridStore { entries })
    }

    /// Fetches an entry.
    pub fn get(&self, workload: &str, policy: &str) -> Option<&RunMetrics> {
        self.entries.get(&Self::key(workload, policy))
    }

    /// Inserts an entry.
    pub fn insert(&mut self, m: RunMetrics) {
        self.entries
            .insert(Self::key(&m.workload, &m.policy), m);
    }
}

/// Path of the cached grid: `grid.json` under the configured results
/// directory (`AOCI_RESULTS_DIR`).
pub fn grid_path(env: &EnvConfig) -> PathBuf {
    PathBuf::from(&env.results_dir).join("grid.json")
}

/// The sensitivity sweep of the paper's figures: 2–5 normally, 2–3 in
/// quick mode (`AOCI_QUICK`).
pub fn max_levels(quick: bool) -> Vec<u8> {
    if quick {
        vec![2, 3]
    } else {
        vec![2, 3, 4, 5]
    }
}

/// All policies the figures need: the context-insensitive baseline plus
/// every group × max level (and the adaptive-resolving extension).
pub fn all_policies(quick: bool) -> Vec<PolicyKind> {
    let mut v = vec![PolicyKind::ContextInsensitive];
    for max in max_levels(quick) {
        for (_, make) in POLICY_GROUPS {
            v.push(make(max));
        }
        v.push(PolicyKind::AdaptiveResolving { max });
    }
    v
}

/// One repetition of one (workload × policy) cell — the unit the sweep
/// pool schedules. `workload` indexes the spec list the job list was built
/// from (jobs stay `Copy + Send`; the program itself is shared by
/// reference).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepJob {
    /// Index into the sweep's spec list.
    pub workload: usize,
    /// Index into the sweep's policy roster.
    pub policy: usize,
    /// Repetition index, `0..reps`.
    pub rep: usize,
}

/// Materializes the (workload × policy × rep) matrix as a job list in
/// **canonical order**: workload-major, then policy, then repetition — a
/// pure function of the three extents (property-tested in
/// `tests/proptest_sweep.rs`). `cells` restricts the matrix to the listed
/// (workload, policy) pairs, preserving canonical order; pass the full
/// cross product to sweep everything.
pub fn job_list(cells: &[(usize, usize)], reps: usize) -> Vec<SweepJob> {
    let mut jobs = Vec::with_capacity(cells.len() * reps);
    for &(workload, policy) in cells {
        for rep in 0..reps {
            jobs.push(SweepJob { workload, policy, rep });
        }
    }
    jobs
}

/// Measures every (spec × policy) cell missing from `store`, running the
/// (cell × rep) job list across the `env.jobs`-worker pool, and merges the
/// aggregates in canonical order. Returns the sweep timing, or `None` if
/// nothing was missing. The resulting store contents are byte-identical
/// for any worker count.
pub fn sweep_into(
    store: &mut GridStore,
    specs: &[WorkloadSpec],
    policies: &[PolicyKind],
    env: &EnvConfig,
) -> Option<SweepStats> {
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for (wi, spec) in specs.iter().enumerate() {
        for (pi, &policy) in policies.iter().enumerate() {
            if store.get(spec.name, &policy_label(policy)).is_none() {
                cells.push((wi, pi));
            }
        }
    }
    if cells.is_empty() {
        return None;
    }

    // Build each needed workload once; jobs share the programs by
    // reference (an `AosSystem` run never mutates its program).
    let workloads: BTreeMap<usize, aoci_workloads::Workload> = cells
        .iter()
        .map(|&(wi, _)| wi)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|wi| (wi, build(&specs[wi])))
        .collect();

    let jobs = job_list(&cells, env.reps);
    let total = jobs.len();
    let (results, stats) = env.pool().run(jobs, |job| {
        let spec = &specs[job.workload];
        let policy = policies[job.policy];
        eprintln!(
            "[grid] {} × {} rep {} ({} jobs total)",
            spec.name,
            policy_label(policy),
            job.rep,
            total
        );
        run_rep(&workloads[&job.workload].program, spec.name, policy, job.rep, env)
    });

    // Merge in canonical cell order: results arrive in job-list order, so
    // each cell's repetitions are one contiguous rep-ordered chunk.
    for (ci, &(wi, pi)) in cells.iter().enumerate() {
        let reports: Vec<_> = results[ci * env.reps..(ci + 1) * env.reps]
            .iter()
            .map(|r| r.output.clone())
            .collect();
        store.insert(aggregate(specs[wi].name, policies[pi], &reports));
    }
    Some(stats)
}

/// Loads the cached grid (unless `env.rerun`), measures any missing
/// entries across the sweep pool, saves, and returns the complete grid
/// plus the sweep timing (when anything was measured).
pub fn load_or_run_grid_with(env: &EnvConfig) -> (GridStore, Option<SweepStats>) {
    let path = grid_path(env);
    let mut store = if env.rerun {
        GridStore::default()
    } else {
        std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| GridStore::from_json(&s))
            .unwrap_or_default()
    };

    let stats = sweep_into(&mut store, &suite(), &all_policies(env.quick), env);
    if let Some(stats) = &stats {
        eprintln!("[grid] sweep complete: {}", stats.render());
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        let json = store.to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("warning: could not cache grid to {}: {e}", path.display());
        }
    }
    (store, stats)
}

/// [`load_or_run_grid_with`] under the process environment — the figure
/// binaries' entry point.
pub fn load_or_run_grid() -> GridStore {
    load_or_run_grid_with(&EnvConfig::from_env()).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        let mut s = GridStore::default();
        let m = crate::metrics::RunMetrics {
            workload: "w".into(),
            policy: "fixed/3".into(),
            total_cycles: 1,
            cumulative_code: 1.0,
            current_code: 1.0,
            compile_cycles: 1.0,
            opt_compilations: 1.0,
            component_fracs: vec![],
            samples: 0.0,
            traces_recorded: 0.0,
            frames_walked: 0.0,
            guard_checks: 0.0,
            guard_misses: 0.0,
            virtual_dispatches: 0.0,
            stats_immediately_parameterless: 0.0,
            stats_parameterless_within_5: 0.0,
            stats_class_within_2: 0.0,
            stats_large_at_or_beyond_4: 0.0,
            methods_compiled: 0,
            result: None,
            osr_requests: 0.0,
            osr_denied: 0.0,
            osr_entries: 0.0,
            osr_exits: 0.0,
            recovery_invalidations: 0.0,
            recovery_retries: 0.0,
            recovery_quarantined: 0.0,
            recovery_rejected_traces: 0.0,
        };
        s.insert(m);
        assert!(s.get("w", "fixed/3").is_some());
        assert!(s.get("w", "fixed/4").is_none());
        let json = s.to_json();
        let back = GridStore::from_json(&json).unwrap();
        assert!(back.get("w", "fixed/3").is_some());
    }

    #[test]
    fn policy_roster_covers_figures() {
        // The full roster is 1 + 4 × 7 = 29 configurations; quick mode
        // halves the level sweep.
        for quick in [false, true] {
            let policies = all_policies(quick);
            assert!(policies.contains(&PolicyKind::ContextInsensitive));
            assert!(policies.len() == 1 + max_levels(quick).len() * 7);
        }
    }

    #[test]
    fn job_list_is_canonical_and_complete() {
        let cells = vec![(0, 0), (0, 2), (3, 1)];
        let jobs = job_list(&cells, 2);
        assert_eq!(jobs.len(), 6);
        // Cell-major, rep-minor, in the given cell order.
        assert_eq!(jobs[0], SweepJob { workload: 0, policy: 0, rep: 0 });
        assert_eq!(jobs[1], SweepJob { workload: 0, policy: 0, rep: 1 });
        assert_eq!(jobs[2], SweepJob { workload: 0, policy: 2, rep: 0 });
        assert_eq!(jobs[5], SweepJob { workload: 3, policy: 1, rep: 1 });
        // Pure function: rebuilding yields the identical list.
        assert_eq!(jobs, job_list(&cells, 2));
    }
}
