//! Minimal ASCII table rendering for harness output.

/// Formats a percentage with sign, one decimal.
pub fn fmt_pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Renders a table: header row plus data rows, columns padded to content.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let pad = widths[i].saturating_sub(cell.len());
            if i == 0 {
                line.push_str(cell);
                line.push_str(&" ".repeat(pad));
            } else {
                line.push_str(&" ".repeat(pad));
                line.push_str(cell);
            }
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render_table(
            &["name".into(), "x".into()],
            &[
                vec!["alpha".into(), "1.0".into()],
                vec!["b".into(), "10.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("10.25"));
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(1.23), "+1.2%");
        assert_eq!(fmt_pct(-10.0), "-10.0%");
    }
}
