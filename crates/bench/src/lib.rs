//! # aoci-bench — the evaluation harness
//!
//! Regenerates every table and figure of *Adaptive Online Context-Sensitive
//! Inlining* (CGO 2003) over the `aoci-workloads` suite:
//!
//! | binary     | paper artifact |
//! |------------|----------------|
//! | `table1`   | Table 1 — benchmark characteristics |
//! | `fig4`     | Figure 4(a–f) — wall-clock speedup vs context-insensitive |
//! | `fig5`     | Figure 5(a–f) — optimized code-size change |
//! | `fig6`     | Figure 6 — % execution time per AOS component |
//! | `summary`  | Abstract / Conclusion aggregate statistics |
//! | `section4` | Section 4 trace-walk statistics |
//! | `ablate`   | DESIGN.md ablations (matching, merging, decay, threshold, inline maps) |
//!
//! Runs are deterministic; to emulate the paper's best-of-20 protocol under
//! timer non-determinism, each configuration is run `AOCI_REPS` times
//! (default 3) with slightly perturbed sample periods and the median total
//! time / mean code size are reported. Grid results are cached in
//! `results/grid.json` so the figure binaries share one sweep; delete the
//! file (or set `AOCI_RERUN=1`) to re-measure. `AOCI_QUICK=1` runs a
//! reduced grid for fast iteration.

pub mod grid;
pub mod metrics;
pub mod table;

pub use grid::{grid_path, load_or_run_grid, GridKey, GridStore};
pub use metrics::{
    async_enabled, code_delta_pct, harmonic_mean_speedup_pct, osr_enabled, policy_label,
    run_config, run_one,
    speedup_pct, trace_enabled, RunMetrics, POLICY_GROUPS,
};
pub use table::{fmt_pct, render_table};
