//! # aoci-bench — the evaluation harness
//!
//! Regenerates every table and figure of *Adaptive Online Context-Sensitive
//! Inlining* (CGO 2003) over the `aoci-workloads` suite:
//!
//! | binary     | paper artifact |
//! |------------|----------------|
//! | `table1`   | Table 1 — benchmark characteristics |
//! | `fig4`     | Figure 4(a–f) — wall-clock speedup vs context-insensitive |
//! | `fig5`     | Figure 5(a–f) — optimized code-size change |
//! | `fig6`     | Figure 6 — % execution time per AOS component |
//! | `summary`  | Abstract / Conclusion aggregate statistics |
//! | `section4` | Section 4 trace-walk statistics |
//! | `ablate`   | DESIGN.md ablations (matching, merging, decay, threshold, inline maps) |
//!
//! Runs are deterministic; to emulate the paper's best-of-20 protocol under
//! timer non-determinism, each configuration is run `AOCI_REPS` times
//! (default 3) with slightly perturbed sample periods and the median total
//! time / mean code size are reported. Grid results are cached in
//! `results/grid.json` so the figure binaries share one sweep; delete the
//! file (or set `AOCI_RERUN=1`) to re-measure. `AOCI_QUICK=1` runs a
//! reduced grid for fast iteration.
//!
//! Sweeps run the (workload × policy × rep) matrix across a fixed-worker
//! job pool — `AOCI_JOBS=N` selects the worker count (default: all cores;
//! `1` is the serial path) and `results/grid.json` is **byte-identical**
//! for any value. Every `AOCI_*` knob is parsed once, in [`env`]; run
//! `diag --knobs` for the generated table.

pub mod dispatch;
pub mod env;
pub mod grid;
pub mod metrics;
pub mod table;
pub mod trajectory;

pub use env::{EnvConfig, Knob, KNOBS};
pub use grid::{
    grid_path, job_list, load_or_run_grid, load_or_run_grid_with, sweep_into, GridKey,
    GridStore, SweepJob,
};
pub use metrics::{
    aggregate, code_delta_pct, harmonic_mean_speedup_pct, policy_label, run_config, run_one,
    run_rep, speedup_pct, RunMetrics, POLICY_GROUPS,
};
pub use dispatch::{dispatch_loop_best, dispatch_loop_program, dispatch_loop_program_with};
pub use table::{fmt_pct, render_table};
pub use trajectory::{
    compare_latest, load_trajectory, render_trajectory, BenchEntry, BenchResult,
};
