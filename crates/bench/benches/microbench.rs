//! Micro-benchmarks for the AOCI hot paths: trace recording into the DCG,
//! hot-trace extraction, oracle partial-match queries, the source-level
//! stack walk, and a full optimizing compilation.
//!
//! The build environment has no crates.io access, so instead of criterion
//! this is a plain `harness = false` binary with a small timing loop:
//! each benchmark body is warmed up, then run for a fixed number of
//! iterations, reporting mean ns/iter. Set `AOCI_BENCH_ITERS` to change
//! the iteration count (default 200).

use aoci_core::{InlineOracle, RuleSet};
use aoci_ir::{CallSiteRef, MethodId, SiteIdx};
use aoci_opt::{compile, OptConfig};
use aoci_profile::{Dcg, DcgConfig, TraceKey};
use aoci_vm::{CostModel, RunOutcome, Vm};
use aoci_workloads::{build, spec_by_name};
use std::hint::black_box;
use std::time::Instant;

fn iters() -> u32 {
    // Parsed once via the unified knob registry (`aoci_bench::env`).
    use std::sync::OnceLock;
    static ITERS: OnceLock<u32> = OnceLock::new();
    *ITERS.get_or_init(|| aoci_bench::EnvConfig::from_env().bench_iters)
}

fn bench(name: &str, mut body: impl FnMut()) {
    let n = iters();
    for _ in 0..n / 10 + 1 {
        body();
    }
    let start = Instant::now();
    for _ in 0..n {
        body();
    }
    let elapsed = start.elapsed();
    println!("{name:40} {:>12.0} ns/iter", elapsed.as_nanos() as f64 / n as f64);
}

fn cs(m: usize, s: u16) -> CallSiteRef {
    CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
}

fn synthetic_traces(n: usize) -> Vec<TraceKey> {
    (0..n)
        .map(|i| {
            let depth = 1 + i % 4;
            let ctx: Vec<CallSiteRef> =
                (0..depth).map(|d| cs((i + d * 7) % 50, (i % 3) as u16)).collect();
            TraceKey::new(MethodId::from_index(100 + i % 20), ctx)
        })
        .collect()
}

fn bench_dcg() {
    let traces = synthetic_traces(512);
    bench("dcg_record_512_traces", || {
        let mut dcg = Dcg::new(DcgConfig::default());
        for t in &traces {
            dcg.record(black_box(t.clone()), 1.0);
        }
        black_box(dcg.total_weight());
    });

    let mut dcg = Dcg::new(DcgConfig::default());
    for t in &traces {
        dcg.record(t.clone(), 1.0);
    }
    bench("dcg_hot_extraction", || {
        black_box(dcg.hot(black_box(0.015)));
    });
    bench("dcg_decay", || {
        let mut d = dcg.clone();
        d.decay(0.95);
        black_box(d.len());
    });
}

fn bench_oracle() {
    let traces = synthetic_traces(256);
    let rules = RuleSet::from_rules(traces.iter().map(|t| (t.clone(), 5.0)), 256.0 * 5.0);
    let oracle = InlineOracle::new(rules.into());
    let probes: Vec<Vec<CallSiteRef>> = traces.iter().map(|t| t.context().to_vec()).collect();
    let mut i = 0;
    bench("oracle_partial_match_query", || {
        i = (i + 1) % probes.len();
        black_box(oracle.candidates(black_box(&probes[i])));
    });
}

fn bench_stack_walk() {
    // Sample a deep stack repeatedly: build a recursive program and
    // snapshot it at depth.
    let mut b = aoci_ir::ProgramBuilder::new();
    let chain: Vec<MethodId> = {
        let mut prev: Option<MethodId> = None;
        let mut ids = Vec::new();
        for i in 0..24 {
            let mut m = b.static_method(format!("f{i}"), 0);
            if let Some(p) = prev {
                m.call_static(None, p, &[]);
            } else {
                m.work(1_000_000);
            }
            m.ret(None);
            prev = Some(m.finish());
            ids.push(prev.unwrap());
        }
        ids
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, *chain.last().unwrap(), &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).unwrap();
    let cost = CostModel { sample_period: 50_000, baseline_factor: 1, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    // Run until the first sample inside the deep leaf.
    let _ = match vm.run(u64::MAX).unwrap() {
        RunOutcome::Sample(s) => s,
        _ => panic!("expected a sample"),
    };
    bench("source_level_stack_walk_depth25", || {
        black_box(vm.snapshot());
    });
}

fn bench_compile() {
    let w = build(&spec_by_name("jess").expect("suite"));
    // Compile a mid-sized method with an aggressive oracle built from every
    // static call edge in the program.
    let mut rules = Vec::new();
    for m in w.program.methods() {
        for (site, instr) in m.call_sites() {
            if let aoci_ir::Instr::CallStatic { callee, .. } = instr {
                rules.push((TraceKey::edge(CallSiteRef::new(m.id(), site), *callee), 10.0));
            }
        }
    }
    let total = rules.len() as f64 * 10.0;
    let oracle = InlineOracle::new(RuleSet::from_rules(rules, total).into());
    let config = OptConfig::default();
    let target = w
        .program
        .methods()
        .filter(|m| m.num_sites() >= 2)
        .max_by_key(|m| m.size_estimate())
        .map(|m| m.id())
        .expect("a method with call sites");
    bench("opt_compile_with_inlining", || {
        black_box(compile(&w.program, target, &oracle, &config));
    });
}

fn bench_interpreter() {
    let w = build(&spec_by_name("db").expect("suite"));
    bench("interp_db_1pct_slice", || {
        let cost = CostModel { sample_period: 0, ..CostModel::default() };
        let mut vm = Vm::new(&w.program, cost);
        // Execute a fixed slice of the program.
        black_box(vm.run(black_box(500_000)).expect("runs"));
        black_box(vm.clock().total());
    });
}

fn main() {
    bench_dcg();
    bench_oracle();
    bench_stack_walk();
    bench_compile();
    bench_interpreter();
}
