//! # aoci-workloads — benchmark programs
//!
//! The evaluation substrate for the AOCI reproduction. SPECjvm98 and
//! SPECjbb2000 (paper Table 1) are not redistributable, so this crate
//! provides:
//!
//! * [`hashmap_test`] — a faithful port of the paper's **Figure 1**
//!   motivating example: a hash map whose `get` virtually calls
//!   `hashCode`/`equals` on keys of two classes, reached from two call
//!   sites whose key class is perfectly context-determined;
//! * a seeded **synthetic workload generator** ([`WorkloadSpec`] /
//!   [`build`]) producing layered object-oriented programs with
//!   configurable class counts, method-size mix, polymorphism degree,
//!   *context correlation* (how strongly the calling context determines
//!   virtual receivers), call-chain depth and phase behaviour;
//! * [`suite`] — eight named workloads (`compress`, `jess`, `db`, `javac`,
//!   `mpegaudio`, `mtrt`, `jack`, `jbb`) whose parameters are chosen to
//!   echo each SPEC benchmark's Table 1 size statistics and the qualitative
//!   behaviour the paper reports for it.
//!
//! ```
//! use aoci_workloads::{suite, build};
//!
//! let specs = suite();
//! assert_eq!(specs.len(), 8);
//! let w = build(&specs[0]); // compress
//! assert!(w.program.num_methods() > 50);
//! ```

#![warn(missing_docs)]

mod fuzz;
mod generator;
mod hashmap;
mod spec;

pub use fuzz::{build_fuzz, FuzzProgram, FuzzSpec, UNWIND_SENTINEL};
pub use generator::{build, Workload};
pub use hashmap::hashmap_test;
pub use spec::{suite, spec_by_name, SizeMix, WorkloadSpec};
