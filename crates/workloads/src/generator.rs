//! The synthetic workload generator.
//!
//! Builds a layered object-oriented program from a [`WorkloadSpec`]:
//!
//! ```text
//! main ──(top_sites, distinct constant contexts)──▶ layer 1 middles
//!   layer i middles ──static──▶ layer i+1 middles
//!                   ──virtual─▶ kernel families (class hierarchies)
//! ```
//!
//! Virtual receivers come from per-family receiver arrays; the index is
//! either a pure function of the context value flowing down the call chain
//! (*context-correlated* — one extra level of profile context fully
//! predicts the target) or of a per-iteration global counter (*iteration-
//! varying* — inherently unpredictable). This is precisely the structure
//! that separates context-sensitive from context-insensitive profiles.

use crate::spec::{SizeMix, WorkloadSpec};
use aoci_ir::{BinOp, Cond, GlobalId, MethodId, Program, ProgramBuilder, SelectorId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated workload: the program plus its originating spec.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Workload name.
    pub name: String,
    /// The runnable program.
    pub program: Program,
    /// The spec it was generated from.
    pub spec: WorkloadSpec,
}

struct FamilyInfo {
    selector: SelectorId,
    arity: u16,
    impls: usize,
    recv_global: GlobalId,
    classes: Vec<aoci_ir::ClassId>,
}

/// A callable middle method: either a class (static) method or an instance
/// method on its layer's service class.
#[derive(Clone, Copy)]
enum Middle {
    Static(MethodId),
    Instance(SelectorId),
}

#[derive(Clone, Copy)]
struct MiddleInfo {
    target: Middle,
    parameterless: bool,
    layer: usize,
}

/// Deterministically builds the program described by `spec`.
///
/// # Panics
///
/// Panics only if the spec is degenerate (zero layers/methods); all suite
/// specs build valid programs.
pub fn build(spec: &WorkloadSpec) -> Workload {
    assert!(spec.layers >= 1 && spec.methods_per_layer >= 1, "degenerate spec");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new();

    let g_counter = b.global("counter");
    let g_phase = b.global("phase");
    let g_ctx = b.global("sharedCtx");

    // --- Kernel families -------------------------------------------------
    let mut families = Vec::with_capacity(spec.families);
    for f in 0..spec.families {
        let arity: u16 =
            if rng.gen_bool(spec.kernel_with_param_fraction) { 1 } else { 0 };
        let selector = b.selector(format!("k{f}"), arity);
        let recv_global = b.global(format!("recv{f}"));
        let base = b.class(format!("F{f}C0"), None);
        let mut classes = vec![base];
        for j in 1..spec.impls_per_family {
            classes.push(b.class(format!("F{f}C{j}"), Some(base)));
        }
        for (j, &class) in classes.iter().enumerate() {
            let size = sample_size(&mut rng, &spec.kernel_sizes);
            let mut m = b.virtual_method(format!("F{f}C{j}.k{f}"), class, selector);
            m.work(size);
            let r = m.fresh_reg();
            if arity == 1 {
                let c = m.fresh_reg();
                m.const_int(c, (f * 10 + j) as i64);
                m.bin(BinOp::Add, r, m.param(0), c);
            } else {
                m.const_int(r, (f * 10 + j) as i64);
            }
            m.ret(Some(r));
            m.finish();
        }
        families.push(FamilyInfo { selector, arity, impls: spec.impls_per_family, recv_global, classes });
    }

    // --- Per-layer service classes (hosts of instance middle methods) -----
    let svc_classes: Vec<aoci_ir::ClassId> = (0..spec.layers)
        .map(|l| b.class(format!("SvcL{l}"), None))
        .collect();
    let svc_globals: Vec<GlobalId> =
        (0..spec.layers).map(|l| b.global(format!("svc{l}"))).collect();

    // --- Middle layers, bottom-up -----------------------------------------
    // layer index 0 = closest to main; we build from the deepest layer up.
    let mut layers: Vec<Vec<MiddleInfo>> = vec![Vec::new(); spec.layers];
    for layer in (0..spec.layers).rev() {
        let is_bottom = layer == spec.layers - 1;
        for idx in 0..spec.methods_per_layer {
            let parameterless = rng.gen_bool(spec.parameterless_fraction);
            let instance = rng.gen_bool(spec.instance_middle_fraction);
            let size = sample_size(&mut rng, &spec.middle_sizes);

            // Pre-draw per-site decisions so the RNG is not borrowed while
            // the method builder borrows the program builder.
            let mut site_plans = Vec::with_capacity(spec.calls_per_method);
            for _ in 0..spec.calls_per_method {
                let virtual_site = is_bottom || rng.gen_bool(spec.virtual_fraction);
                if virtual_site {
                    let f = pick_skewed(&mut rng, families.len());
                    let correlated = rng.gen_bool(spec.context_correlation);
                    let c_site = rng.gen_range(0..families[f].impls) as i64;
                    site_plans.push(SitePlan::Kernel { family: f, correlated, c_site });
                } else {
                    let next = &layers[layer + 1];
                    site_plans.push(SitePlan::Middle(next[pick_skewed(&mut rng, next.len())]));
                }
            }

            let arity = if parameterless { 0 } else { 1 };
            let (mut m, target) = if instance {
                let sel = b.selector(format!("mL{layer}M{idx}"), arity);
                (
                    b.virtual_method(format!("L{layer}M{idx}"), svc_classes[layer], sel),
                    Middle::Instance(sel),
                )
            } else {
                let mb = b.static_method(format!("L{layer}M{idx}"), arity);
                let id = mb.id();
                (mb, Middle::Static(id))
            };
            let ctx = m.fresh_reg();
            if parameterless {
                m.get_global(ctx, g_ctx);
            } else {
                m.mov(ctx, m.param(0));
            }
            let acc = m.fresh_reg();
            m.const_int(acc, 0);
            m.work(size / 2);
            for plan in &site_plans {
                let r = m.fresh_reg();
                match plan {
                    SitePlan::Middle(info) =>

                    {
                        emit_middle_call(&mut m, info, ctx, Some(r), &svc_globals);
                    }
                    SitePlan::Kernel { family, correlated, c_site } => {
                        let fam = &families[*family];
                        let idx_reg = m.fresh_reg();
                        let k = m.fresh_reg();
                        if *correlated {
                            let c = m.fresh_reg();
                            m.const_int(c, *c_site);
                            m.bin(BinOp::Add, idx_reg, ctx, c);
                            if spec.phase_shift {
                                let ph = m.fresh_reg();
                                m.get_global(ph, g_phase);
                                m.bin(BinOp::Add, idx_reg, idx_reg, ph);
                            }
                        } else {
                            let cnt = m.fresh_reg();
                            m.get_global(cnt, g_counter);
                            let c = m.fresh_reg();
                            m.const_int(c, *c_site);
                            m.bin(BinOp::Add, idx_reg, cnt, c);
                        }
                        m.const_int(k, fam.impls as i64);
                        m.bin(BinOp::Rem, idx_reg, idx_reg, k);
                        let arr = m.fresh_reg();
                        m.get_global(arr, fam.recv_global);
                        let recv = m.fresh_reg();
                        m.arr_get(recv, arr, idx_reg);
                        if fam.arity == 1 {
                            m.call_virtual(Some(r), fam.selector, recv, &[ctx]);
                        } else {
                            m.call_virtual(Some(r), fam.selector, recv, &[]);
                        }
                    }
                }
                m.bin(BinOp::Add, acc, acc, r);
            }
            m.work(size - size / 2);
            m.ret(Some(acc));
            m.finish();
            layers[layer].push(MiddleInfo { target, parameterless, layer });
        }
    }

    // --- main --------------------------------------------------------------
    // Pre-draw top-site targets.
    let top_plans: Vec<(MiddleInfo, i64)> = (0..spec.top_sites)
        .map(|s| {
            let t = layers[0][pick_skewed(&mut rng, layers[0].len())];
            (t, (s as i64) * 3 + 1)
        })
        .collect();

    let main = {
        let mut m = b.static_method("main", 0);
        // Receiver arrays.
        for fam in &families {
            let arr = m.fresh_reg();
            let n = m.fresh_reg();
            m.const_int(n, fam.impls as i64);
            m.arr_new(arr, n);
            for (j, &class) in fam.classes.iter().enumerate() {
                let o = m.fresh_reg();
                let jr = m.fresh_reg();
                m.new_obj(o, class);
                m.const_int(jr, j as i64);
                m.arr_set(arr, jr, o);
            }
            m.put_global(fam.recv_global, arr);
        }
        let seven = m.fresh_reg();
        m.const_int(seven, 7);
        m.put_global(g_ctx, seven);
        // Service objects hosting instance middle methods.
        for (l, &class) in svc_classes.iter().enumerate() {
            let o = m.fresh_reg();
            m.new_obj(o, class);
            m.put_global(svc_globals[l], o);
        }

        let i = m.fresh_reg();
        let n = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        let two = m.fresh_reg();
        let t = m.fresh_reg();
        let ph = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(n, spec.iterations);
        m.const_int(one, 1);
        m.const_int(two, 2);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, n, out);
        m.put_global(g_counter, i);
        // phase = (2 * i >= iterations) as int
        m.bin(BinOp::Mul, t, i, two);
        let phase1 = m.label();
        let phased = m.label();
        m.branch(Cond::Ge, t, n, phase1);
        m.const_int(ph, 0);
        m.jump(phased);
        m.bind(phase1);
        m.const_int(ph, 1);
        m.bind(phased);
        m.put_global(g_phase, ph);
        for (info, ctx_const) in &top_plans {
            let r = m.fresh_reg();
            let c = m.fresh_reg();
            m.const_int(c, *ctx_const);
            emit_middle_call(&mut m, info, c, Some(r), &svc_globals);
            m.bin(BinOp::Add, acc, acc, r);
        }
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };

    let program = b.finish(main).expect("generated workload is valid");
    Workload { name: spec.name.to_string(), program, spec: spec.clone() }
}

enum SitePlan {
    Middle(MiddleInfo),
    Kernel { family: usize, correlated: bool, c_site: i64 },
}

/// Emits a call to a middle method: a direct static call, or a virtual call
/// through the callee layer's service object.
fn emit_middle_call(
    m: &mut aoci_ir::MethodBuilder<'_>,
    info: &MiddleInfo,
    ctx: aoci_ir::Reg,
    dst: Option<aoci_ir::Reg>,
    svc_globals: &[GlobalId],
) {
    let args: &[aoci_ir::Reg] = if info.parameterless { &[] } else { std::slice::from_ref(&ctx) };
    match info.target {
        Middle::Static(target) => {
            m.call_static(dst, target, args);
        }
        Middle::Instance(selector) => {
            let recv = m.fresh_reg();
            m.get_global(recv, svc_globals[info.layer]);
            m.call_virtual(dst, selector, recv, args);
        }
    }
}

/// Picks an index in `0..n` with a log-uniform (Zipf-like) bias toward low
/// indices. Real programs have highly skewed call-frequency distributions;
/// without skew the profile weight spreads so thin that nothing crosses the
/// paper's 1.5% hot threshold.
fn pick_skewed(rng: &mut SmallRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let u: f64 = rng.gen();
    // Squaring the uniform sharpens the head of the distribution; combined
    // with the log-uniform map this approximates the strongly skewed call
    // frequencies of real object-oriented programs.
    let r = u * u;
    (((n as f64).powf(r) - 1.0) as usize).min(n - 1)
}

/// Samples a body size (in `Work` units) from a size-class mix. Ranges are
/// chosen so the *finished* method (work + surrounding instructions) lands
/// in the intended Jikes size class.
fn sample_size(rng: &mut SmallRng, mix: &SizeMix) -> u32 {
    let total = mix.tiny + mix.small + mix.medium + mix.large;
    let x = rng.gen_range(0..total);
    if x < mix.tiny {
        rng.gen_range(2..=6u32)
    } else if x < mix.tiny + mix.small {
        rng.gen_range(18..=30u32)
    } else if x < mix.tiny + mix.small + mix.medium {
        rng.gen_range(45..=150u32)
    } else {
        rng.gen_range(210..=380u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::suite;

    #[test]
    fn all_suite_workloads_build() {
        for spec in suite() {
            let w = build(&spec);
            assert_eq!(w.name, spec.name);
            assert!(w.program.num_methods() > 50, "{} too small", spec.name);
            assert!(w.program.num_classes() >= spec.families * spec.impls_per_family);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = suite().remove(1); // jess
        let a = build(&spec);
        let c = build(&spec);
        assert_eq!(a.program.num_methods(), c.program.num_methods());
        assert_eq!(a.program.total_bytecode_size(), c.program.total_bytecode_size());
        // Compare a few method bodies structurally.
        for i in (0..a.program.num_methods()).step_by(17) {
            let ma = a.program.method(aoci_ir::MethodId::from_index(i));
            let mc = c.program.method(aoci_ir::MethodId::from_index(i));
            assert_eq!(ma.body(), mc.body());
        }
    }

    #[test]
    fn seeds_differentiate_workloads() {
        let specs = suite();
        let a = build(&specs[0]);
        let c = build(&specs[1]);
        assert_ne!(
            a.program.total_bytecode_size(),
            c.program.total_bytecode_size()
        );
    }

    #[test]
    fn size_mix_within_class_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mix = SizeMix::balanced();
        for _ in 0..200 {
            let s = sample_size(&mut rng, &mix);
            assert!((2..=380).contains(&s));
        }
    }
}

#[cfg(test)]
mod verify_tests {
    use crate::spec::suite;
    use crate::{build, hashmap_test};
    use aoci_ir::typecheck;

    #[test]
    fn all_suite_workloads_typecheck() {
        for spec in suite() {
            let w = build(&spec);
            typecheck::verify(&w.program)
                .unwrap_or_else(|e| panic!("{} fails verification: {e}", spec.name));
        }
    }

    #[test]
    fn hashmap_test_typechecks() {
        let p = hashmap_test(10);
        let report = typecheck::verify(&p).expect("hashmap verifies");
        // The map's table is an array of (entry) objects.
        assert!(p.class_by_name("HashMap").is_some(), "class exists");
        // runTest returns the integer counter.
        let run_test = p.method_by_name("runTest").unwrap();
        assert_eq!(
            report.methods[run_test.index()].1,
            Some(typecheck::Shape::Int)
        );
    }

    #[test]
    fn suite_workloads_execute_correctly_at_small_scale() {
        use aoci_vm::{CostModel, Vm};
        for mut spec in suite() {
            spec.iterations = 50;
            let w = build(&spec);
            let cost = CostModel { sample_period: 0, ..CostModel::default() };
            let result = Vm::new(&w.program, cost)
                .run_to_completion()
                .unwrap_or_else(|e| panic!("{} faults: {e}", spec.name));
            assert!(result.is_some(), "{} returns a value", spec.name);
        }
    }
}
