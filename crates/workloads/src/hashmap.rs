//! The paper's Figure 1 motivating example, as an AOCI program.
//!
//! `main` builds a small hash map, inserts a `MyKey` and a plain `Object`
//! key, then `runTest` repeatedly calls `map.get(k1)` and `map.get(k2)`
//! from two distinct call sites. Inside `HashMap.get`, `key.hashCode()` and
//! `key.equals(...)` are virtual calls whose receiver class is **perfectly
//! determined by which `runTest` call site we came through** — the shape
//! where context-insensitive profiles see a useless 50/50 split but one
//! extra level of context resolves every call (paper Figure 2).

use aoci_ir::{BinOp, Cond, Program, ProgramBuilder, Reg};

/// Builds the Figure 1 program. `iterations` controls how many times
/// `runTest` executes its two `get` calls (the paper's example runs once;
/// an online system needs repetition to gather profile).
///
/// The entry point returns the accumulated counter, so every lookup's
/// result is observable.
///
/// # Panics
///
/// Never panics for `iterations >= 0`; the program is validated at build
/// time.
pub fn hashmap_test(iterations: i64) -> Program {
    let mut b = ProgramBuilder::new();

    // Classes and fields.
    let object = b.class("Object", None);
    let mykey = b.class("MyKey", Some(object));
    let f_key = b.field(mykey, "key");
    let entry = b.class("HashMapEntry", None);
    let f_ekey = b.field(entry, "key");
    let f_eval = b.field(entry, "value");
    let f_enext = b.field(entry, "next");
    let hashmap = b.class("HashMap", None);
    let f_table = b.field(hashmap, "elementData");

    // Selectors.
    let sel_hash = b.selector("hashCode", 0);
    let sel_equals = b.selector("equals", 1);
    let sel_get = b.selector("get", 1);
    let sel_put = b.selector("put", 2);

    // Object.hashCode — a fixed value (stands in for identity hash).
    {
        let mut m = b.virtual_method("Object.hashCode", object, sel_hash);
        let r = m.fresh_reg();
        m.const_int(r, 13);
        m.ret(Some(r));
        m.finish();
    }
    // Object.equals — reference identity.
    {
        let mut m = b.virtual_method("Object.equals", object, sel_equals);
        let this = m.receiver().expect("virtual");
        let other = m.param(0);
        let r = m.fresh_reg();
        let yes = m.label();
        m.const_int(r, 0);
        m.branch(Cond::Eq, this, other, yes);
        m.ret(Some(r));
        m.bind(yes);
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish();
    }
    // MyKey.hashCode — returns the key field.
    {
        let mut m = b.virtual_method("MyKey.hashCode", mykey, sel_hash);
        let this = m.receiver().expect("virtual");
        let r = m.fresh_reg();
        m.get_field(r, this, f_key);
        m.ret(Some(r));
        m.finish();
    }
    // MyKey.equals — `other instanceof MyKey && other.key == this.key`.
    {
        let mut m = b.virtual_method("MyKey.equals", mykey, sel_equals);
        let this = m.receiver().expect("virtual");
        let other = m.param(0);
        let r = m.fresh_reg();
        let is_key = m.fresh_reg();
        let zero = m.fresh_reg();
        let no = m.label();
        m.const_int(zero, 0);
        m.const_int(r, 0);
        m.instance_of(is_key, other, mykey);
        m.branch(Cond::Eq, is_key, zero, no);
        let ok = m.fresh_reg();
        let tk = m.fresh_reg();
        m.get_field(ok, other, f_key);
        m.get_field(tk, this, f_key);
        m.branch(Cond::Ne, ok, tk, no);
        m.const_int(r, 1);
        m.bind(no);
        m.ret(Some(r));
        m.finish();
    }

    // HashMap.get(key) — the paper's simplified version.
    {
        let mut m = b.virtual_method("HashMap.get", hashmap, sel_get);
        let this = m.receiver().expect("virtual");
        let key = m.param(0);
        let hash = m.fresh_reg();
        m.call_virtual(Some(hash), sel_hash, key, &[]); // site 0: key.hashCode()
        let mask = m.fresh_reg();
        m.const_int(mask, 0x7FFF_FFFF);
        m.bin(BinOp::And, hash, hash, mask);
        let table = m.fresh_reg();
        m.get_field(table, this, f_table);
        let len = m.fresh_reg();
        m.arr_len(len, table);
        let index = m.fresh_reg();
        m.bin(BinOp::Rem, index, hash, len);
        let e = m.fresh_reg();
        m.arr_get(e, table, index);
        let null = m.fresh_reg();
        m.const_null(null);
        let loop_top = m.label();
        let not_found = m.label();
        let found = m.label();
        let next_entry = m.label();
        let eq = m.fresh_reg();
        let ekey = m.fresh_reg();
        let zero = m.fresh_reg();
        m.const_int(zero, 0);
        m.bind(loop_top);
        m.branch(Cond::Eq, e, null, not_found);
        m.get_field(ekey, e, f_ekey);
        m.branch(Cond::Eq, ekey, key, found); // identity fast path
        m.call_virtual(Some(eq), sel_equals, key, &[ekey]); // site 1: key.equals(...)
        m.branch(Cond::Ne, eq, zero, found);
        m.jump(next_entry);
        m.bind(next_entry);
        m.get_field(e, e, f_enext);
        m.jump(loop_top);
        m.bind(found);
        let v = m.fresh_reg();
        m.get_field(v, e, f_eval);
        m.ret(Some(v));
        m.bind(not_found);
        let mi = m.fresh_reg();
        m.const_int(mi, -1);
        m.ret(Some(mi));
        m.finish();
    }

    // HashMap.put(key, value).
    {
        let mut m = b.virtual_method("HashMap.put", hashmap, sel_put);
        let this = m.receiver().expect("virtual");
        let key = m.param(0);
        let value = m.param(1);
        let hash = m.fresh_reg();
        m.call_virtual(Some(hash), sel_hash, key, &[]);
        let mask = m.fresh_reg();
        m.const_int(mask, 0x7FFF_FFFF);
        m.bin(BinOp::And, hash, hash, mask);
        let table = m.fresh_reg();
        m.get_field(table, this, f_table);
        let len = m.fresh_reg();
        m.arr_len(len, table);
        let index = m.fresh_reg();
        m.bin(BinOp::Rem, index, hash, len);
        let e = m.fresh_reg();
        m.new_obj(e, entry);
        m.put_field(e, f_ekey, key);
        m.put_field(e, f_eval, value);
        let head = m.fresh_reg();
        m.arr_get(head, table, index);
        m.put_field(e, f_enext, head);
        m.arr_set(table, index, e);
        m.ret(None);
        m.finish();
    }

    // runTest(k1, k2, map, iters) — the two context-distinguishing sites.
    let run_test = {
        let mut m = b.static_method("runTest", 4);
        let k1 = m.param(0);
        let k2 = m.param(1);
        let map = m.param(2);
        let iters = m.param(3);
        let counter = m.fresh_reg();
        let i = m.fresh_reg();
        let one = m.fresh_reg();
        let r: Reg = m.fresh_reg();
        m.const_int(counter, 0);
        m.const_int(i, 0);
        m.const_int(one, 1);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, iters, out);
        m.call_virtual(Some(r), sel_get, map, &[k1]); // site 0: MyKey path
        m.bin(BinOp::Add, counter, counter, r);
        m.call_virtual(Some(r), sel_get, map, &[k2]); // site 1: Object path
        m.bin(BinOp::Add, counter, counter, r);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(counter));
        m.finish()
    };

    // main — sets up keys and the map, then runs the test loop.
    let main = {
        let mut m = b.static_method("main", 0);
        let k1 = m.fresh_reg();
        m.new_obj(k1, mykey);
        let kv = m.fresh_reg();
        // 29 % 16 == 13 % 16: both keys share a bucket, so `key.equals`
        // genuinely executes during lookups (as in the paper's discussion).
        m.const_int(kv, 29);
        m.put_field(k1, f_key, kv);
        let k2 = m.fresh_reg();
        m.new_obj(k2, object);
        let map = m.fresh_reg();
        m.new_obj(map, hashmap);
        let sz = m.fresh_reg();
        m.const_int(sz, 16);
        let table = m.fresh_reg();
        m.arr_new(table, sz);
        m.put_field(map, f_table, table);
        let v1 = m.fresh_reg();
        m.const_int(v1, 1);
        m.call_virtual(None, sel_put, map, &[k1, v1]);
        let v2 = m.fresh_reg();
        m.const_int(v2, 2);
        m.call_virtual(None, sel_put, map, &[k2, v2]);
        let it = m.fresh_reg();
        m.const_int(it, iterations);
        let r = m.fresh_reg();
        m.call_static(Some(r), run_test, &[k1, k2, map, it]);
        m.ret(Some(r));
        m.finish()
    };

    b.finish(main).expect("hashmap_test is a valid program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_names_match_figure_1() {
        let p = hashmap_test(1);
        for name in [
            "Object.hashCode",
            "MyKey.hashCode",
            "Object.equals",
            "MyKey.equals",
            "HashMap.get",
            "HashMap.put",
            "runTest",
            "main",
        ] {
            assert!(p.method_by_name(name).is_some(), "missing {name}");
        }
        assert!(p.class_by_name("MyKey").is_some());
    }

    #[test]
    fn hash_code_site_is_polymorphic_under_cha() {
        let p = hashmap_test(1);
        let get = p.method_by_name("HashMap.get").unwrap();
        // The hashCode selector has two implementations — guarded inlining
        // territory, exactly the paper's setup.
        let m = p.method(get);
        let (_, instr) = m.call_sites().next().expect("hashCode call");
        match instr {
            aoci_ir::Instr::CallVirtual { selector, .. } => {
                assert_eq!(p.implementations(*selector).len(), 2);
            }
            other => panic!("expected a virtual call, got {other:?}"),
        }
    }
}
