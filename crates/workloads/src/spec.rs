//! Workload specifications: the knobs the generator understands, plus the
//! eight named suite entries standing in for SPECjvm98 + SPECjbb2000.

/// Weights of the method-size classes used when sampling body sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeMix {
    /// Weight of tiny bodies (< 2× call size).
    pub tiny: u32,
    /// Weight of small bodies (2–5×).
    pub small: u32,
    /// Weight of medium bodies (5–25×).
    pub medium: u32,
    /// Weight of large bodies (> 25×).
    pub large: u32,
}

impl SizeMix {
    /// A balanced object-oriented mix.
    pub fn balanced() -> Self {
        SizeMix { tiny: 30, small: 35, medium: 25, large: 10 }
    }
}

/// Parameters of one synthetic workload.
///
/// The generator builds a layered call graph: `main` drives `top_sites`
/// call sites into the first layer of *middle* methods (each taking a
/// context argument), middle layers call downward, and the bottom layer
/// calls into *kernel* families — groups of virtual methods implementing a
/// shared selector across a small class hierarchy. Virtual receiver choice
/// is either **context-correlated** (a pure function of the context value
/// flowing down the call chain — one extra profile level fully predicts
/// the target) or **iteration-varying** (driven by a global counter — no
/// amount of context helps).
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Workload name (Table 1 row).
    pub name: &'static str,
    /// RNG seed — workloads are fully deterministic.
    pub seed: u64,
    /// Number of kernel families (each contributes `impls_per_family`
    /// classes and virtual methods).
    pub families: usize,
    /// Implementations (classes) per family.
    pub impls_per_family: usize,
    /// Number of middle layers between `main` and the kernels.
    pub layers: usize,
    /// Middle methods per layer.
    pub methods_per_layer: usize,
    /// Call sites per middle method.
    pub calls_per_method: usize,
    /// Fraction (0–1) of middle call sites that are virtual kernel calls
    /// (the rest are static calls to the next layer).
    pub virtual_fraction: f64,
    /// Fraction (0–1) of virtual sites whose receiver is context-
    /// correlated; the rest vary per iteration.
    pub context_correlation: f64,
    /// Fraction (0–1) of middle methods that are parameterless (reading
    /// their context from a global) — early-termination fodder for the
    /// *Parameterless Methods* policy.
    pub parameterless_fraction: f64,
    /// Fraction (0–1) of middle methods that are *instance* methods
    /// (virtual, on a per-layer service class with a single implementation).
    /// The rest are class (static) methods — the *Class Methods* policy
    /// terminates trace walks at the first of those.
    pub instance_middle_fraction: f64,
    /// Fraction (0–1) of kernel methods taking one parameter (the rest are
    /// receiver-only, i.e. parameterless).
    pub kernel_with_param_fraction: f64,
    /// Method body size mix for middle methods.
    pub middle_sizes: SizeMix,
    /// Method body size mix for kernel methods.
    pub kernel_sizes: SizeMix,
    /// Call sites in `main`'s loop body (each with a distinct constant
    /// context — the source of context diversity).
    pub top_sites: usize,
    /// Main-loop iterations (run length).
    pub iterations: i64,
    /// Shift the receiver mapping halfway through the run (exercises the
    /// decay organizer).
    pub phase_shift: bool,
}

/// Returns the eight-workload suite, in the paper's Table 1 order.
///
/// Parameters echo each benchmark's scale (classes / methods / bytecodes)
/// and the qualitative traits the paper reports: `compress` and `mpegaudio`
/// are loop-heavy and nearly monomorphic, `jess` is class-rich, highly
/// polymorphic, context-predictable and short-running, `db` is small but
/// context-dependent, `javac` is large with deep call chains (profile-
/// dilution-prone), `mtrt` and `jack` are moderate, and `jbb` is the
/// largest, with a warehouse-style phase shift.
pub fn suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "compress",
            seed: 0xC0_0001,
            families: 6,
            impls_per_family: 2,
            layers: 4,
            methods_per_layer: 20,
            calls_per_method: 2,
            virtual_fraction: 0.15,
            context_correlation: 0.5,
            parameterless_fraction: 0.2,
            instance_middle_fraction: 0.25,
            kernel_with_param_fraction: 0.5,
            middle_sizes: SizeMix { tiny: 10, small: 25, medium: 35, large: 30 },
            kernel_sizes: SizeMix { tiny: 20, small: 30, medium: 30, large: 20 },
            top_sites: 4,
            iterations: 6_000,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "jess",
            seed: 0xC0_0002,
            families: 26,
            impls_per_family: 3,
            layers: 5,
            methods_per_layer: 36,
            calls_per_method: 3,
            virtual_fraction: 0.55,
            context_correlation: 0.85,
            parameterless_fraction: 0.25,
            instance_middle_fraction: 0.6,
            kernel_with_param_fraction: 0.4,
            middle_sizes: SizeMix { tiny: 40, small: 35, medium: 20, large: 5 },
            kernel_sizes: SizeMix { tiny: 45, small: 35, medium: 18, large: 2 },
            top_sites: 8,
            iterations: 2_500,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "db",
            seed: 0xC0_0003,
            families: 6,
            impls_per_family: 2,
            layers: 4,
            methods_per_layer: 22,
            calls_per_method: 2,
            virtual_fraction: 0.5,
            context_correlation: 0.9,
            parameterless_fraction: 0.15,
            instance_middle_fraction: 0.45,
            kernel_with_param_fraction: 0.6,
            middle_sizes: SizeMix { tiny: 20, small: 30, medium: 40, large: 10 },
            kernel_sizes: SizeMix { tiny: 10, small: 30, medium: 50, large: 10 },
            top_sites: 4,
            iterations: 7_000,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "javac",
            seed: 0xC0_0004,
            families: 26,
            impls_per_family: 3,
            layers: 8,
            methods_per_layer: 42,
            calls_per_method: 3,
            virtual_fraction: 0.45,
            context_correlation: 0.6,
            parameterless_fraction: 0.2,
            instance_middle_fraction: 0.55,
            kernel_with_param_fraction: 0.5,
            middle_sizes: SizeMix::balanced(),
            kernel_sizes: SizeMix { tiny: 30, small: 35, medium: 25, large: 10 },
            top_sites: 10,
            iterations: 4_000,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "mpegaudio",
            seed: 0xC0_0005,
            families: 10,
            impls_per_family: 2,
            layers: 5,
            methods_per_layer: 26,
            calls_per_method: 2,
            virtual_fraction: 0.2,
            context_correlation: 0.6,
            parameterless_fraction: 0.2,
            instance_middle_fraction: 0.3,
            kernel_with_param_fraction: 0.6,
            middle_sizes: SizeMix { tiny: 10, small: 20, medium: 40, large: 30 },
            kernel_sizes: SizeMix { tiny: 10, small: 25, medium: 40, large: 25 },
            top_sites: 5,
            iterations: 7_000,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "mtrt",
            seed: 0xC0_0006,
            families: 12,
            impls_per_family: 2,
            layers: 5,
            methods_per_layer: 24,
            calls_per_method: 3,
            virtual_fraction: 0.5,
            context_correlation: 0.75,
            parameterless_fraction: 0.2,
            instance_middle_fraction: 0.5,
            kernel_with_param_fraction: 0.5,
            middle_sizes: SizeMix { tiny: 35, small: 35, medium: 22, large: 8 },
            kernel_sizes: SizeMix { tiny: 40, small: 35, medium: 20, large: 5 },
            top_sites: 6,
            iterations: 5_000,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "jack",
            seed: 0xC0_0007,
            families: 14,
            impls_per_family: 2,
            layers: 6,
            methods_per_layer: 26,
            calls_per_method: 3,
            virtual_fraction: 0.4,
            context_correlation: 0.7,
            parameterless_fraction: 0.3,
            instance_middle_fraction: 0.45,
            kernel_with_param_fraction: 0.4,
            middle_sizes: SizeMix::balanced(),
            kernel_sizes: SizeMix { tiny: 35, small: 35, medium: 22, large: 8 },
            top_sites: 6,
            iterations: 4_500,
            phase_shift: false,
        },
        WorkloadSpec {
            name: "jbb",
            seed: 0xC0_0008,
            families: 22,
            impls_per_family: 3,
            layers: 7,
            methods_per_layer: 46,
            calls_per_method: 3,
            virtual_fraction: 0.5,
            context_correlation: 0.75,
            parameterless_fraction: 0.2,
            instance_middle_fraction: 0.55,
            kernel_with_param_fraction: 0.5,
            middle_sizes: SizeMix::balanced(),
            kernel_sizes: SizeMix { tiny: 30, small: 35, medium: 25, large: 10 },
            top_sites: 10,
            iterations: 6_000,
            phase_shift: true,
        },
    ]
}

/// Looks up a suite workload by name.
pub fn spec_by_name(name: &str) -> Option<WorkloadSpec> {
    suite().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_1_roster() {
        let names: Vec<&str> = suite().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack", "jbb"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_by_name("jess").is_some());
        assert!(spec_by_name("nonesuch").is_none());
    }

    #[test]
    fn fractions_are_valid() {
        for s in suite() {
            for f in [
                s.virtual_fraction,
                s.context_correlation,
                s.parameterless_fraction,
                s.kernel_with_param_fraction,
            ] {
                assert!((0.0..=1.0).contains(&f), "{}: bad fraction {f}", s.name);
            }
            assert!(s.iterations > 0);
            assert!(s.impls_per_family >= 2);
        }
    }
}
