//! The fuzz-campaign program generator: random programs **beyond** the
//! eight curated suite shapes.
//!
//! [`FuzzSpec`] extends the curated layered call-graph skeleton
//! ([`crate::WorkloadSpec`] / [`crate::build`]) with the shapes the
//! differential-fuzzing campaign (`crates/fuzz`) needs to stress the
//! decision space of the adaptive system:
//!
//! * **deep inheritance chains** — a single-selector class chain of
//!   configurable depth with overrides every `chain_override_stride`
//!   levels, so virtual lookup genuinely walks superclass links;
//! * **megamorphic call sites** — one family with many implementations
//!   whose receiver is driven by the iteration counter, so a single site
//!   sees every target (guard thrash, invalidation, recovery fodder);
//! * **self and mutual recursion** — a static self-recursive method and a
//!   mutually-recursive virtual pair, exercising trace walks and inlining
//!   decisions over cyclic call graphs;
//! * **unwind-style control flow** — the IR has no exceptions, so
//!   exception-heavy shapes are modelled as sentinel propagation: callees
//!   conditionally return a sentinel value and every caller on the chain
//!   checks for it and early-returns, giving the dense side-exit control
//!   flow that exception handling induces;
//! * **degenerate method sizes** — tiny (1–2 work units) and huge
//!   (400–900) bodies at configurable rates, probing the size-class
//!   budget boundaries of the inliner.
//!
//! Generation is a pure function of the spec (seeded RNG, no ambient
//! state); every program that [`build_fuzz`] returns has already passed
//! [`ProgramBuilder::finish`]'s whole-program validation, and the campaign
//! additionally typechecks it before the first run.

use aoci_ir::{BinOp, ClassId, Cond, GlobalId, MethodId, Program, ProgramBuilder, SelectorId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated fuzz program: the runnable program plus the spec that
/// produced it (the analog of [`crate::Workload`] for fuzz specs).
#[derive(Clone, Debug)]
pub struct FuzzProgram {
    /// Program name (from the spec).
    pub name: String,
    /// The runnable program.
    pub program: Program,
    /// The (normalized) spec it was generated from.
    pub spec: FuzzSpec,
}

/// The sentinel value that models a thrown exception: callees return it on
/// their "throw" path and callers propagate it upward (see module docs).
pub const UNWIND_SENTINEL: i64 = -999_983;

/// Parameters of one generated fuzz program. All counts are clamped into
/// buildable ranges by [`FuzzSpec::normalized`]; a spec with every
/// optional shape at zero still builds (sites fall back to a static leaf
/// method), which is what lets the minimizer shrink fields independently.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzSpec {
    /// Program name (used in campaign logs and regression files).
    pub name: String,
    /// RNG seed — generation is fully deterministic.
    pub seed: u64,
    /// Middle layers between `main` and the leaf shapes (≥ 1).
    pub layers: usize,
    /// Middle methods per layer (≥ 1).
    pub methods_per_layer: usize,
    /// Call sites per middle method (≥ 1).
    pub calls_per_method: usize,
    /// Ordinary kernel families (as in the curated generator; may be 0).
    pub families: usize,
    /// Implementations per ordinary family (≥ 2 when `families > 0`).
    pub impls_per_family: usize,
    /// Depth of the deep-inheritance chain family (0 = no chain).
    pub chain_depth: usize,
    /// Override the chain selector every this-many levels (≥ 1).
    pub chain_override_stride: usize,
    /// Implementations of the megamorphic family (0 = none).
    pub megamorphic_impls: usize,
    /// Recursion depth passed to the recursive shapes (0 = no recursion).
    pub recursion_depth: i64,
    /// Fraction (0–1) of non-bottom middle sites that call a leaf shape
    /// instead of the next layer.
    pub virtual_fraction: f64,
    /// Fraction (0–1) of index-driven sites whose receiver is a function
    /// of the context value (the rest follow the iteration counter).
    pub context_correlation: f64,
    /// Fraction (0–1) of middle methods that read their context from a
    /// global instead of a parameter.
    pub parameterless_fraction: f64,
    /// Fraction (0–1) of middle methods hosted as instance methods on a
    /// per-layer service class.
    pub instance_middle_fraction: f64,
    /// Fraction (0–1) of call sites followed by a sentinel check that
    /// early-returns (unwind-style propagation); also the rate at which
    /// kernels get a conditional "throw" path.
    pub unwind_fraction: f64,
    /// Fraction (0–1) of bodies that are degenerate tiny (1–2 work units).
    pub tiny_fraction: f64,
    /// Fraction (0–1) of bodies that are degenerate huge (400–900 units).
    pub huge_fraction: f64,
    /// Call sites in `main`'s loop body (≥ 1).
    pub top_sites: usize,
    /// Main-loop iterations (≥ 1).
    pub iterations: i64,
}

impl FuzzSpec {
    /// A minimal valid spec: one layer, one method, one site, no optional
    /// shapes — the floor every shrink sequence bottoms out at.
    pub fn minimal(name: impl Into<String>, seed: u64) -> Self {
        FuzzSpec {
            name: name.into(),
            seed,
            layers: 1,
            methods_per_layer: 1,
            calls_per_method: 1,
            families: 0,
            impls_per_family: 2,
            chain_depth: 0,
            chain_override_stride: 1,
            megamorphic_impls: 0,
            recursion_depth: 0,
            virtual_fraction: 0.0,
            context_correlation: 0.0,
            parameterless_fraction: 0.0,
            instance_middle_fraction: 0.0,
            unwind_fraction: 0.0,
            tiny_fraction: 0.0,
            huge_fraction: 0.0,
            top_sites: 1,
            iterations: 1,
        }
    }

    /// Returns the spec with every field clamped into its buildable range
    /// (counts to their floors, fractions to 0–1). [`build_fuzz`] calls
    /// this first, so *any* field combination builds a valid program.
    pub fn normalized(mut self) -> Self {
        self.layers = self.layers.max(1);
        self.methods_per_layer = self.methods_per_layer.max(1);
        self.calls_per_method = self.calls_per_method.max(1);
        if self.families > 0 {
            self.impls_per_family = self.impls_per_family.max(2);
        }
        if self.chain_depth > 0 {
            self.chain_depth = self.chain_depth.min(32);
        }
        self.chain_override_stride = self.chain_override_stride.max(1);
        if self.megamorphic_impls > 0 {
            self.megamorphic_impls = self.megamorphic_impls.clamp(2, 32);
        }
        self.recursion_depth = self.recursion_depth.clamp(0, 32);
        for f in [
            &mut self.virtual_fraction,
            &mut self.context_correlation,
            &mut self.parameterless_fraction,
            &mut self.instance_middle_fraction,
            &mut self.unwind_fraction,
            &mut self.tiny_fraction,
            &mut self.huge_fraction,
        ] {
            *f = f.clamp(0.0, 1.0);
        }
        // Tiny + huge must leave room for the ordinary size class.
        let sum = self.tiny_fraction + self.huge_fraction;
        if sum > 1.0 {
            self.tiny_fraction /= sum;
            self.huge_fraction /= sum;
        }
        self.top_sites = self.top_sites.max(1);
        self.iterations = self.iterations.max(1);
        self
    }

    /// Checks every fraction field is in range (used by spec tests).
    pub fn fractions_valid(&self) -> bool {
        [
            self.virtual_fraction,
            self.context_correlation,
            self.parameterless_fraction,
            self.instance_middle_fraction,
            self.unwind_fraction,
            self.tiny_fraction,
            self.huge_fraction,
        ]
        .iter()
        .all(|f| (0.0..=1.0).contains(f))
    }
}

/// One leaf target a middle call site can dispatch to.
#[derive(Clone, Copy)]
enum Leaf {
    /// Plain static leaf method (always exists).
    Static,
    /// Virtual call into ordinary kernel family `f`, receiver index from
    /// context (`correlated`) or the iteration counter, biased by `c_site`.
    Kernel { family: usize, correlated: bool, c_site: i64 },
    /// Virtual call through the deep-inheritance chain.
    Chain { correlated: bool, c_site: i64 },
    /// Virtual call through the megamorphic family (always counter-driven).
    Mega { c_site: i64 },
    /// Static self-recursive call.
    RecSelf,
    /// Virtual mutually-recursive call.
    RecMutual,
}

/// One pre-drawn call-site plan inside a middle method.
enum SitePlan {
    /// Call a middle method of the next layer.
    Middle(MiddleRef),
    /// Call a leaf shape.
    Leaf(Leaf),
}

/// A callable middle method, as seen by its callers.
#[derive(Clone, Copy)]
struct MiddleRef {
    target: MiddleTarget,
    parameterless: bool,
    layer: usize,
}

#[derive(Clone, Copy)]
enum MiddleTarget {
    Static(MethodId),
    Instance(SelectorId),
}

struct FamilyInfo {
    selector: SelectorId,
    impls: usize,
    recv_global: GlobalId,
    classes: Vec<ClassId>,
}

/// Deterministically builds the program described by `spec` (normalizing
/// it first — see [`FuzzSpec::normalized`]).
///
/// # Errors
///
/// Propagates [`ProgramBuilder::finish`] validation errors. The generator
/// is intended to *never* produce one — the campaign treats an `Err` as a
/// finding in its own right rather than panicking.
pub fn build_fuzz(spec: &FuzzSpec) -> Result<FuzzProgram, aoci_ir::IrError> {
    let spec = spec.clone().normalized();
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = ProgramBuilder::new();

    let g_counter = b.global("fzCounter");
    let g_ctx = b.global("fzSharedCtx");

    // --- Ordinary kernel families (curated-style) -------------------------
    let mut families = Vec::with_capacity(spec.families);
    for f in 0..spec.families {
        let selector = b.selector(format!("fzK{f}"), 1);
        let recv_global = b.global(format!("fzRecv{f}"));
        let base = b.class(format!("FzF{f}C0"), None);
        let mut classes = vec![base];
        for j in 1..spec.impls_per_family {
            classes.push(b.class(format!("FzF{f}C{j}"), Some(base)));
        }
        families.push(FamilyInfo { selector, impls: spec.impls_per_family, recv_global, classes });
    }

    // --- Deep inheritance chain ------------------------------------------
    // Classes FzD0 <- FzD1 <- … <- FzD{depth}; the selector is overridden
    // at the base, every `stride` levels, and at the leaf, so dispatch on
    // intermediate classes resolves through genuine superclass walks.
    let chain = if spec.chain_depth > 0 {
        let selector = b.selector("fzDeep", 1);
        let recv_global = b.global("fzChainRecv");
        let mut classes = Vec::with_capacity(spec.chain_depth + 1);
        let mut parent = None;
        for l in 0..=spec.chain_depth {
            let c = b.class(format!("FzD{l}"), parent);
            classes.push(c);
            parent = Some(c);
        }
        Some((selector, recv_global, classes))
    } else {
        None
    };

    // --- Megamorphic family ----------------------------------------------
    let mega = if spec.megamorphic_impls > 0 {
        let selector = b.selector("fzMega", 1);
        let recv_global = b.global("fzMegaRecv");
        let base = b.class("FzMega0", None);
        let mut classes = vec![base];
        for j in 1..spec.megamorphic_impls {
            classes.push(b.class(format!("FzMega{j}"), Some(base)));
        }
        Some((selector, recv_global, classes))
    } else {
        None
    };

    // --- Recursion host --------------------------------------------------
    let recursion = if spec.recursion_depth > 0 {
        let class = b.class("FzRecC", None);
        let sel_a = b.selector("fzRecA", 1);
        let sel_b = b.selector("fzRecB", 1);
        let recv_global = b.global("fzRecObj");
        Some((class, sel_a, sel_b, recv_global))
    } else {
        None
    };

    // --- Per-layer service classes for instance middles --------------------
    let svc_classes: Vec<ClassId> =
        (0..spec.layers).map(|l| b.class(format!("FzSvcL{l}"), None)).collect();
    let svc_globals: Vec<GlobalId> =
        (0..spec.layers).map(|l| b.global(format!("fzSvc{l}"))).collect();

    // --- Leaf method bodies ------------------------------------------------
    // The static leaf always exists: the fallback target that keeps every
    // spec buildable even with all optional shapes at zero.
    let leaf_static = {
        let mut m = b.static_method("fzLeaf", 1);
        let id = m.id();
        m.work(sample_size(&mut rng, &spec));
        let r = m.fresh_reg();
        let c = m.fresh_reg();
        m.const_int(c, 3);
        m.bin(BinOp::Mul, r, m.param(0), c);
        m.ret(Some(r));
        m.finish();
        id
    };

    // Ordinary kernels: one virtual method per family implementation, with
    // a conditional "throw" path at the unwind rate.
    for (f, fam) in families.iter().enumerate() {
        // Pre-draw per-impl choices (the method builder borrows `b`).
        let plans: Vec<(u32, bool)> = (0..fam.classes.len())
            .map(|_| (sample_size(&mut rng, &spec), rng.gen_bool(spec.unwind_fraction)))
            .collect();
        for (j, (&class, (size, throws))) in fam.classes.iter().zip(plans).enumerate() {
            let mut m = b.virtual_method(format!("FzF{f}C{j}.fzK{f}"), class, fam.selector);
            m.work(size);
            emit_leaf_value(m, (f * 10 + j) as i64, throws);
        }
    }

    // Chain: overrides at base, every stride levels, and the leaf.
    if let Some((selector, _, classes)) = &chain {
        let stride = spec.chain_override_stride;
        let plans: Vec<(usize, u32, bool)> = classes
            .iter()
            .enumerate()
            .filter(|(l, _)| *l == 0 || *l == spec.chain_depth || l % stride == 0)
            .map(|(l, _)| (l, sample_size(&mut rng, &spec), rng.gen_bool(spec.unwind_fraction)))
            .collect();
        for (l, size, throws) in plans {
            let mut m = b.virtual_method(format!("FzD{l}.fzDeep"), classes[l], *selector);
            m.work(size);
            emit_leaf_value(m, 100 + l as i64, throws);
        }
    }

    // Megamorphic: every implementation overrides, most of them tiny (the
    // interesting pressure is dispatch diversity, not body cost).
    if let Some((selector, _, classes)) = &mega {
        let plans: Vec<(u32, bool)> = classes
            .iter()
            .map(|_| (sample_size(&mut rng, &spec).min(40), rng.gen_bool(spec.unwind_fraction)))
            .collect();
        for (j, (&class, (size, throws))) in classes.iter().zip(plans).enumerate() {
            let mut m = b.virtual_method(format!("FzMega{j}.fzMega"), class, *selector);
            m.work(size);
            emit_leaf_value(m, 200 + j as i64, throws);
        }
    }

    // Recursion: a static self-recursive method, and a mutually-recursive
    // virtual pair on the recursion host class (the vtable registers each
    // implementation as soon as its builder is created, so `fzRecA` can
    // call `fzRecB` before the latter's body exists).
    let rec_self = if recursion.is_some() {
        let mut m = b.static_method("fzRecSelf", 1);
        let id = m.id();
        let zero = m.fresh_reg();
        m.const_int(zero, 0);
        let base = m.label();
        m.branch(Cond::Le, m.param(0), zero, base);
        m.work(3);
        let one = m.fresh_reg();
        let next = m.fresh_reg();
        m.const_int(one, 1);
        m.bin(BinOp::Sub, next, m.param(0), one);
        let r = m.fresh_reg();
        m.call_static(Some(r), id, &[next]);
        let sum = m.fresh_reg();
        m.bin(BinOp::Add, sum, r, m.param(0));
        m.ret(Some(sum));
        m.bind(base);
        let unit = m.fresh_reg();
        m.const_int(unit, 1);
        m.ret(Some(unit));
        m.finish();
        Some(id)
    } else {
        None
    };
    if let Some((class, sel_a, sel_b, _)) = &recursion {
        for (name, own, other) in
            [("FzRecC.fzRecA", *sel_a, *sel_b), ("FzRecC.fzRecB", *sel_b, *sel_a)]
        {
            let mut m = b.virtual_method(name, *class, own);
            let recv = m.receiver().expect("virtual method has a receiver");
            let zero = m.fresh_reg();
            m.const_int(zero, 0);
            let base = m.label();
            m.branch(Cond::Le, m.param(0), zero, base);
            m.work(2);
            let one = m.fresh_reg();
            let next = m.fresh_reg();
            m.const_int(one, 1);
            m.bin(BinOp::Sub, next, m.param(0), one);
            let r = m.fresh_reg();
            m.call_virtual(Some(r), other, recv, &[next]);
            let sum = m.fresh_reg();
            m.bin(BinOp::Add, sum, r, one);
            m.ret(Some(sum));
            m.bind(base);
            let two = m.fresh_reg();
            m.const_int(two, 2);
            m.ret(Some(two));
            m.finish();
        }
    }

    // --- Middle layers, bottom-up ------------------------------------------
    let mut layers: Vec<Vec<MiddleRef>> = vec![Vec::new(); spec.layers];
    for layer in (0..spec.layers).rev() {
        let is_bottom = layer == spec.layers - 1;
        for idx in 0..spec.methods_per_layer {
            let parameterless = rng.gen_bool(spec.parameterless_fraction);
            let instance = rng.gen_bool(spec.instance_middle_fraction);
            let size = sample_size(&mut rng, &spec);

            // Pre-draw per-site plans (cannot borrow the RNG while the
            // method builder borrows the program builder).
            let mut site_plans = Vec::with_capacity(spec.calls_per_method);
            for _ in 0..spec.calls_per_method {
                let leaf_site = is_bottom || rng.gen_bool(spec.virtual_fraction);
                let plan = if leaf_site {
                    SitePlan::Leaf(pick_leaf(&mut rng, &spec, families.len()))
                } else {
                    let next = &layers[layer + 1];
                    SitePlan::Middle(next[rng.gen_range(0..next.len())])
                };
                site_plans.push((plan, rng.gen_bool(spec.unwind_fraction)));
            }

            let arity = if parameterless { 0 } else { 1 };
            let (mut m, target) = if instance {
                let sel = b.selector(format!("fzML{layer}M{idx}"), arity);
                (
                    b.virtual_method(format!("FzL{layer}M{idx}"), svc_classes[layer], sel),
                    MiddleTarget::Instance(sel),
                )
            } else {
                let mb = b.static_method(format!("FzL{layer}M{idx}"), arity);
                let id = mb.id();
                (mb, MiddleTarget::Static(id))
            };

            let ctx = m.fresh_reg();
            if parameterless {
                m.get_global(ctx, g_ctx);
            } else {
                m.mov(ctx, m.param(0));
            }
            let acc = m.fresh_reg();
            let sent = m.fresh_reg();
            m.const_int(acc, 0);
            m.const_int(sent, UNWIND_SENTINEL);
            m.work(size / 2);
            for (plan, check_unwind) in &site_plans {
                let r = m.fresh_reg();
                match plan {
                    SitePlan::Middle(info) => {
                        emit_middle_call(&mut m, info, ctx, r, &svc_globals);
                    }
                    SitePlan::Leaf(leaf) => emit_leaf_call(
                        &mut m,
                        leaf,
                        ctx,
                        r,
                        &spec,
                        &families,
                        &chain,
                        &mega,
                        &recursion,
                        leaf_static,
                        rec_self,
                        g_counter,
                    ),
                }
                if *check_unwind {
                    // Unwind-style propagation: a sentinel return aborts
                    // this frame immediately (the "exception" travels up).
                    let cont = m.label();
                    m.branch(Cond::Ne, r, sent, cont);
                    m.ret(Some(sent));
                    m.bind(cont);
                }
                m.bin(BinOp::Add, acc, acc, r);
            }
            m.work(size - size / 2);
            m.ret(Some(acc));
            m.finish();
            layers[layer].push(MiddleRef { target, parameterless, layer });
        }
    }

    // --- main ---------------------------------------------------------------
    let top_plans: Vec<(MiddleRef, i64)> = (0..spec.top_sites)
        .map(|s| {
            let t = layers[0][rng.gen_range(0..layers[0].len())];
            (t, (s as i64) * 5 + 2)
        })
        .collect();

    let main = {
        let mut m = b.static_method("main", 0);
        for fam in &families {
            emit_receiver_array(&mut m, &fam.classes, fam.recv_global);
        }
        if let Some((_, recv_global, classes)) = &chain {
            emit_receiver_array(&mut m, classes, *recv_global);
        }
        if let Some((_, recv_global, classes)) = &mega {
            emit_receiver_array(&mut m, classes, *recv_global);
        }
        if let Some((class, _, _, recv_global)) = &recursion {
            let o = m.fresh_reg();
            m.new_obj(o, *class);
            m.put_global(*recv_global, o);
        }
        for (l, &class) in svc_classes.iter().enumerate() {
            let o = m.fresh_reg();
            m.new_obj(o, class);
            m.put_global(svc_globals[l], o);
        }
        let seven = m.fresh_reg();
        m.const_int(seven, 7);
        m.put_global(g_ctx, seven);

        let i = m.fresh_reg();
        let n = m.fresh_reg();
        let one = m.fresh_reg();
        let acc = m.fresh_reg();
        m.const_int(i, 0);
        m.const_int(n, spec.iterations);
        m.const_int(one, 1);
        m.const_int(acc, 0);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Ge, i, n, out);
        m.put_global(g_counter, i);
        for (info, ctx_const) in &top_plans {
            let r = m.fresh_reg();
            let c = m.fresh_reg();
            m.const_int(c, *ctx_const);
            emit_middle_call(&mut m, info, c, r, &svc_globals);
            m.bin(BinOp::Add, acc, acc, r);
        }
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(acc));
        m.finish()
    };

    let program: Program = b.finish(main)?;
    Ok(FuzzProgram { name: spec.name.clone(), program, spec })
}

/// Emits the tail of a leaf body: compute a value from the context
/// parameter, optionally with a conditional sentinel ("throw") path.
/// Consumes the builder (the tail always ends the method).
fn emit_leaf_value(mut m: aoci_ir::MethodBuilder<'_>, bias: i64, throws: bool) {
    let v = m.fresh_reg();
    let c = m.fresh_reg();
    m.const_int(c, bias);
    m.bin(BinOp::Add, v, m.param(0), c);
    if throws {
        // Throw when v ≡ 0 (mod 7): a data-dependent, deterministic
        // exceptional path that fires for some but not all contexts.
        let t = m.fresh_reg();
        let seven = m.fresh_reg();
        let zero = m.fresh_reg();
        m.const_int(seven, 7);
        m.const_int(zero, 0);
        m.bin(BinOp::Rem, t, v, seven);
        let ok = m.label();
        m.branch(Cond::Ne, t, zero, ok);
        let sent = m.fresh_reg();
        m.const_int(sent, UNWIND_SENTINEL);
        m.ret(Some(sent));
        m.bind(ok);
    }
    m.ret(Some(v));
    m.finish();
}

/// Emits `arr = [new C0, new C1, …]; global = arr` — the receiver array of
/// one family, in class-declaration order.
fn emit_receiver_array(m: &mut aoci_ir::MethodBuilder<'_>, classes: &[ClassId], global: GlobalId) {
    let arr = m.fresh_reg();
    let n = m.fresh_reg();
    m.const_int(n, classes.len() as i64);
    m.arr_new(arr, n);
    for (j, &class) in classes.iter().enumerate() {
        let o = m.fresh_reg();
        let jr = m.fresh_reg();
        m.new_obj(o, class);
        m.const_int(jr, j as i64);
        m.arr_set(arr, jr, o);
    }
    m.put_global(global, arr);
}

/// Emits a call to a middle method (static, or virtual through the callee
/// layer's service object).
fn emit_middle_call(
    m: &mut aoci_ir::MethodBuilder<'_>,
    info: &MiddleRef,
    ctx: aoci_ir::Reg,
    dst: aoci_ir::Reg,
    svc_globals: &[GlobalId],
) {
    let args: &[aoci_ir::Reg] = if info.parameterless { &[] } else { std::slice::from_ref(&ctx) };
    match info.target {
        MiddleTarget::Static(target) => {
            m.call_static(Some(dst), target, args);
        }
        MiddleTarget::Instance(selector) => {
            let recv = m.fresh_reg();
            m.get_global(recv, svc_globals[info.layer]);
            m.call_virtual(Some(dst), selector, recv, args);
        }
    }
}

/// Emits a virtual call through a receiver array: `recv = global[idx]`
/// where `idx` is `(source + c_site) mod len` and `source` is the context
/// value (correlated) or the iteration counter (varying).
#[allow(clippy::too_many_arguments)]
fn emit_indexed_virtual(
    m: &mut aoci_ir::MethodBuilder<'_>,
    selector: SelectorId,
    recv_global: GlobalId,
    len: usize,
    correlated: bool,
    c_site: i64,
    ctx: aoci_ir::Reg,
    dst: aoci_ir::Reg,
    g_counter: GlobalId,
) {
    let idx = m.fresh_reg();
    let c = m.fresh_reg();
    m.const_int(c, c_site);
    if correlated {
        m.bin(BinOp::Add, idx, ctx, c);
    } else {
        let cnt = m.fresh_reg();
        m.get_global(cnt, g_counter);
        m.bin(BinOp::Add, idx, cnt, c);
    }
    let k = m.fresh_reg();
    m.const_int(k, len as i64);
    m.bin(BinOp::Rem, idx, idx, k);
    let arr = m.fresh_reg();
    m.get_global(arr, recv_global);
    let recv = m.fresh_reg();
    m.arr_get(recv, arr, idx);
    m.call_virtual(Some(dst), selector, recv, &[ctx]);
}

type ChainInfo = (SelectorId, GlobalId, Vec<ClassId>);
type RecursionInfo = (ClassId, SelectorId, SelectorId, GlobalId);

/// Emits one leaf call site.
#[allow(clippy::too_many_arguments)]
fn emit_leaf_call(
    m: &mut aoci_ir::MethodBuilder<'_>,
    leaf: &Leaf,
    ctx: aoci_ir::Reg,
    dst: aoci_ir::Reg,
    spec: &FuzzSpec,
    families: &[FamilyInfo],
    chain: &Option<ChainInfo>,
    mega: &Option<ChainInfo>,
    recursion: &Option<RecursionInfo>,
    leaf_static: MethodId,
    rec_self: Option<MethodId>,
    g_counter: GlobalId,
) {
    match leaf {
        Leaf::Static => {
            m.call_static(Some(dst), leaf_static, &[ctx]);
        }
        Leaf::Kernel { family, correlated, c_site } => {
            let fam = &families[*family];
            emit_indexed_virtual(
                m,
                fam.selector,
                fam.recv_global,
                fam.impls,
                *correlated,
                *c_site,
                ctx,
                dst,
                g_counter,
            );
        }
        Leaf::Chain { correlated, c_site } => {
            let (selector, recv_global, classes) =
                chain.as_ref().expect("chain leaf drawn only when the chain exists");
            emit_indexed_virtual(
                m,
                *selector,
                *recv_global,
                classes.len(),
                *correlated,
                *c_site,
                ctx,
                dst,
                g_counter,
            );
        }
        Leaf::Mega { c_site } => {
            let (selector, recv_global, classes) =
                mega.as_ref().expect("mega leaf drawn only when the family exists");
            emit_indexed_virtual(
                m,
                *selector,
                *recv_global,
                classes.len(),
                false,
                *c_site,
                ctx,
                dst,
                g_counter,
            );
        }
        Leaf::RecSelf => {
            let depth = m.fresh_reg();
            m.const_int(depth, spec.recursion_depth);
            m.call_static(Some(dst), rec_self.expect("recursion enabled"), &[depth]);
        }
        Leaf::RecMutual => {
            let (_, sel_a, _, recv_global) =
                recursion.as_ref().expect("recursion leaf drawn only when enabled");
            let recv = m.fresh_reg();
            m.get_global(recv, *recv_global);
            let depth = m.fresh_reg();
            m.const_int(depth, spec.recursion_depth);
            m.call_virtual(Some(dst), *sel_a, recv, &[depth]);
        }
    }
}

/// Picks a leaf kind uniformly among the shapes the spec enables (the
/// static leaf is always a candidate, so the choice set is never empty).
fn pick_leaf(rng: &mut SmallRng, spec: &FuzzSpec, n_families: usize) -> Leaf {
    let mut kinds: Vec<u8> = vec![0];
    if n_families > 0 {
        kinds.push(1);
    }
    if spec.chain_depth > 0 {
        kinds.push(2);
    }
    if spec.megamorphic_impls > 0 {
        kinds.push(3);
    }
    if spec.recursion_depth > 0 {
        kinds.push(4);
        kinds.push(5);
    }
    match kinds[rng.gen_range(0..kinds.len())] {
        1 => {
            let family = rng.gen_range(0..n_families);
            Leaf::Kernel {
                family,
                correlated: rng.gen_bool(spec.context_correlation),
                c_site: rng.gen_range(0..8i64),
            }
        }
        2 => Leaf::Chain {
            correlated: rng.gen_bool(spec.context_correlation),
            c_site: rng.gen_range(0..8i64),
        },
        3 => Leaf::Mega { c_site: rng.gen_range(0..8i64) },
        4 => Leaf::RecSelf,
        5 => Leaf::RecMutual,
        _ => Leaf::Static,
    }
}

/// Samples a body size: degenerate tiny, degenerate huge, or ordinary.
fn sample_size(rng: &mut SmallRng, spec: &FuzzSpec) -> u32 {
    let u: f64 = rng.gen();
    if u < spec.tiny_fraction {
        rng.gen_range(1..=2u32)
    } else if u < spec.tiny_fraction + spec.huge_fraction {
        rng.gen_range(400..=900u32)
    } else {
        rng.gen_range(8..=80u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::typecheck;
    use aoci_vm::{CostModel, Vm};

    fn everything_spec(seed: u64) -> FuzzSpec {
        FuzzSpec {
            families: 2,
            impls_per_family: 3,
            chain_depth: 6,
            chain_override_stride: 2,
            megamorphic_impls: 8,
            recursion_depth: 9,
            layers: 3,
            methods_per_layer: 4,
            calls_per_method: 2,
            virtual_fraction: 0.5,
            context_correlation: 0.6,
            parameterless_fraction: 0.3,
            instance_middle_fraction: 0.4,
            unwind_fraction: 0.5,
            tiny_fraction: 0.3,
            huge_fraction: 0.2,
            top_sites: 3,
            iterations: 60,
            ..FuzzSpec::minimal("everything", seed)
        }
    }

    #[test]
    fn everything_builds_verifies_and_runs() {
        for seed in 0..8 {
            let w = build_fuzz(&everything_spec(seed)).expect("builds");
            typecheck::verify(&w.program).expect("typechecks");
            let cost = CostModel { sample_period: 0, ..CostModel::default() };
            let r = Vm::new(&w.program, cost).run_to_completion().expect("runs");
            assert!(r.is_some(), "seed {seed} returns a value");
        }
    }

    #[test]
    fn minimal_spec_builds_and_runs() {
        let w = build_fuzz(&FuzzSpec::minimal("floor", 1)).expect("builds");
        typecheck::verify(&w.program).expect("typechecks");
        let cost = CostModel { sample_period: 0, ..CostModel::default() };
        assert!(Vm::new(&w.program, cost).run_to_completion().expect("runs").is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_fuzz(&everything_spec(7)).unwrap();
        let b = build_fuzz(&everything_spec(7)).unwrap();
        assert_eq!(a.program.num_methods(), b.program.num_methods());
        for i in 0..a.program.num_methods() {
            let ma = a.program.method(aoci_ir::MethodId::from_index(i));
            let mb = b.program.method(aoci_ir::MethodId::from_index(i));
            assert_eq!(ma.body(), mb.body(), "method {i} differs");
        }
    }

    #[test]
    fn seeds_differentiate_programs() {
        let a = build_fuzz(&everything_spec(1)).unwrap();
        let b = build_fuzz(&everything_spec(2)).unwrap();
        assert_ne!(a.program.total_bytecode_size(), b.program.total_bytecode_size());
    }

    #[test]
    fn normalization_clamps_degenerate_fields() {
        let mut s = FuzzSpec::minimal("degenerate", 3);
        s.layers = 0;
        s.methods_per_layer = 0;
        s.calls_per_method = 0;
        s.top_sites = 0;
        s.iterations = -5;
        s.tiny_fraction = 0.9;
        s.huge_fraction = 0.9;
        s.virtual_fraction = 7.0;
        let n = s.normalized();
        assert_eq!(n.layers, 1);
        assert_eq!(n.methods_per_layer, 1);
        assert_eq!(n.calls_per_method, 1);
        assert_eq!(n.top_sites, 1);
        assert_eq!(n.iterations, 1);
        assert!(n.tiny_fraction + n.huge_fraction <= 1.0 + 1e-9);
        assert!(n.fractions_valid());
        build_fuzz(&n).expect("normalized degenerate spec builds");
    }

    #[test]
    fn deep_chain_dispatch_walks_superclasses() {
        let mut s = FuzzSpec::minimal("chain", 11);
        s.chain_depth = 8;
        s.chain_override_stride = 3;
        s.virtual_fraction = 1.0;
        s.iterations = 30;
        let w = build_fuzz(&s).unwrap();
        // Some chain classes must *not* override (depth 8, stride 3 ⇒
        // levels 1,2,4,5,7 inherit), so dispatch walks superclass links.
        let overridden = w
            .program
            .classes()
            .filter(|c| c.name().starts_with("FzD"))
            .filter(|c| c.declared_methods().count() > 0)
            .count();
        let total = w.program.classes().filter(|c| c.name().starts_with("FzD")).count();
        assert_eq!(total, 9);
        assert!(overridden < total, "{overridden}/{total} overridden");
        let cost = CostModel { sample_period: 0, ..CostModel::default() };
        assert!(Vm::new(&w.program, cost).run_to_completion().expect("runs").is_some());
    }
}
