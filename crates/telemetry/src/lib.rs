//! # aoci-telemetry — the deterministic metrics subsystem
//!
//! A typed metrics registry — counters, gauges and log-bucketed
//! [`Histogram`]s — sampled on the **simulated** clock into per-epoch
//! time-series snapshots, plus the exporters that consume them and a
//! wall-clock [`PhaseProfiler`] for the harness binaries (DESIGN.md §14).
//!
//! The design splits cleanly along the determinism boundary:
//!
//! * **Deterministic side** ([`registry`], [`histogram`]): every value in a
//!   [`MetricsLog`] is derived from simulated-clock state — cycle counts,
//!   queue depths, code sizes, event counters. Recording charges **zero
//!   simulated cycles** (the flight-recorder-style
//!   `Rc<RefCell<…>>` sink is invisible to the run), all maps are
//!   `BTreeMap`s, and snapshots fire on sample-tick cadences — so a
//!   metrics-on run produces byte-identical primary artifacts
//!   (`results/grid.json`, the fuzz corpus) to a metrics-off run, and the
//!   snapshots themselves are bit-identical across same-seed reruns at any
//!   `AOCI_JOBS` worker count.
//! * **Wall-clock side** ([`phase`]): scoped RAII timers over harness
//!   phases, producing a hierarchical real-seconds attribution report.
//!   Wall-clock numbers only ever flow into wall-clock artifacts
//!   (`results/BENCH_*.json`, stderr reports) — never into deterministic
//!   ones.
//!
//! [`export`] holds the consumers: JSONL time-series, Prometheus
//! text-exposition dumps, terminal sparkline dashboards, and the typed
//! [`ExportError`] every harness I/O path reports through.

pub mod export;
pub mod histogram;
pub mod phase;
pub mod registry;

pub use export::{dashboard, sparkline, to_jsonl, to_prometheus, write_text, ExportError};
pub use histogram::{bucket_bounds, bucket_index, Histogram, BUCKETS};
pub use phase::{PhaseGuard, PhaseProfiler};
pub use registry::{EpochSnapshot, MetricsConfig, MetricsLog, MetricsRegistry, MetricsSink};
