//! The metrics registry, its shared sink handle, and the owned
//! end-of-run snapshot ([`MetricsLog`]).
//!
//! Mirrors the flight-recorder split (`TraceSink` / `TraceLog`): the
//! registry lives behind an `Rc<RefCell<…>>` [`MetricsSink`] shared by the
//! single-threaded run that feeds it, and the report carries an owned,
//! plain-data [`MetricsLog`] — `Send`, so parallel sweep pools can move it
//! across workers. Recording charges **no simulated cycles** and reads no
//! wall clock; every container is a `BTreeMap`, so serialization order is
//! deterministic.

use crate::histogram::Histogram;
use aoci_json::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Telemetry tunables.
#[derive(Clone, Debug)]
pub struct MetricsConfig {
    /// Epoch length in timer samples: a time-series snapshot of every
    /// counter and gauge is taken each time the sample count crosses a
    /// multiple of this. The default matches the hot-methods organizer
    /// cadence, so each snapshot brackets one organizer/controller round.
    pub epoch_samples: u64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig { epoch_samples: 8 }
    }
}

/// One per-epoch time-series snapshot: every counter and gauge, frozen at
/// a simulated-clock instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpochSnapshot {
    /// 0-based snapshot index.
    pub epoch: u64,
    /// Timer samples taken when the snapshot fired.
    pub sample_tick: u64,
    /// Simulated cycles when the snapshot fired.
    pub cycle: u64,
    /// Cumulative counters at the instant.
    pub counters: BTreeMap<String, u64>,
    /// Instantaneous gauges at the instant.
    pub gauges: BTreeMap<String, u64>,
}

impl EpochSnapshot {
    /// Serializes to a (flat) `aoci-json` object.
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("epoch".to_string(), Value::from(self.epoch)),
            ("sample_tick".to_string(), Value::from(self.sample_tick)),
            ("cycle".to_string(), Value::from(self.cycle)),
            (
                "counters".to_string(),
                Value::Obj(self.counters.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect()),
            ),
            (
                "gauges".to_string(),
                Value::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect()),
            ),
        ])
    }

    /// Inverse of [`EpochSnapshot::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Value) -> Option<Self> {
        let map = |key: &str| -> Option<BTreeMap<String, u64>> {
            v.get(key)?
                .as_obj()?
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                .collect()
        };
        Some(EpochSnapshot {
            epoch: v.get("epoch")?.as_u64()?,
            sample_tick: v.get("sample_tick")?.as_u64()?,
            cycle: v.get("cycle")?.as_u64()?,
            counters: map("counters")?,
            gauges: map("gauges")?,
        })
    }
}

/// The live registry: typed metric families keyed by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    config: MetricsConfig,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: Vec<EpochSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry under `config`.
    pub fn new(config: MetricsConfig) -> Self {
        MetricsRegistry {
            config,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series: Vec::new(),
        }
    }

    /// Epoch length in samples (always ≥ 1).
    pub fn epoch_samples(&self) -> u64 {
        self.config.epoch_samples.max(1)
    }

    /// Adds `delta` to counter `name` (event-driven counters).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets counter `name` to the cumulative value `v` (counters sampled
    /// from authoritative state rather than accumulated event by event).
    pub fn counter_set(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(v);
    }

    /// Freezes the current counters and gauges into the next time-series
    /// snapshot.
    pub fn snapshot(&mut self, sample_tick: u64, cycle: u64) {
        self.series.push(EpochSnapshot {
            epoch: self.series.len() as u64,
            sample_tick,
            cycle,
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
        });
    }

    /// Snapshots taken so far.
    pub fn epochs(&self) -> usize {
        self.series.len()
    }

    /// Copies everything into an owned, `Send` log.
    pub fn log(&self) -> MetricsLog {
        MetricsLog {
            epoch_samples: self.epoch_samples(),
            series: self.series.clone(),
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// A cheaply-cloneable handle to one [`MetricsRegistry`], shared by the
/// layers of a single-threaded AOS run (the flight-recorder sink idiom).
#[derive(Clone, Debug)]
pub struct MetricsSink {
    registry: Rc<RefCell<MetricsRegistry>>,
}

impl MetricsSink {
    /// Creates a sink over a fresh registry.
    pub fn new(config: MetricsConfig) -> Self {
        MetricsSink { registry: Rc::new(RefCell::new(MetricsRegistry::new(config))) }
    }

    /// Epoch length in samples (always ≥ 1).
    pub fn epoch_samples(&self) -> u64 {
        self.registry.borrow().epoch_samples()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.registry.borrow_mut().counter_add(name, delta);
    }

    /// Sets counter `name` to the cumulative value `v`.
    pub fn counter_set(&self, name: &str, v: u64) {
        self.registry.borrow_mut().counter_set(name, v);
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: u64) {
        self.registry.borrow_mut().gauge_set(name, v);
    }

    /// Records `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.registry.borrow_mut().observe(name, v);
    }

    /// Freezes a time-series snapshot at `(sample_tick, cycle)`.
    pub fn snapshot(&self, sample_tick: u64, cycle: u64) {
        self.registry.borrow_mut().snapshot(sample_tick, cycle);
    }

    /// Copies the registry into an owned, `Send` [`MetricsLog`].
    pub fn log(&self) -> MetricsLog {
        self.registry.borrow().log()
    }
}

/// The owned end-of-run metrics snapshot a report carries: the full
/// time series plus the final counters, gauges and histograms. Plain data
/// (`Send`), deterministic to serialize.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsLog {
    /// Epoch length in samples the series was recorded under.
    pub epoch_samples: u64,
    /// Per-epoch snapshots, in epoch order.
    pub series: Vec<EpochSnapshot>,
    /// Final cumulative counters.
    pub counters: BTreeMap<String, u64>,
    /// Final gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Final histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsLog {
    /// The per-epoch values of series `name` — a gauge (raw value per
    /// epoch) or counter (cumulative value per epoch) — or `None` if no
    /// snapshot carries it.
    pub fn series_of(&self, name: &str) -> Option<Vec<u64>> {
        let values: Vec<u64> = self
            .series
            .iter()
            .map(|s| {
                s.gauges
                    .get(name)
                    .or_else(|| s.counters.get(name))
                    .copied()
                    .unwrap_or(0)
            })
            .collect();
        let known = self
            .series
            .iter()
            .any(|s| s.gauges.contains_key(name) || s.counters.contains_key(name));
        known.then_some(values)
    }

    /// Like [`MetricsLog::series_of`], but differenced — the per-epoch
    /// *delta* of a cumulative counter (saturating at 0).
    pub fn deltas_of(&self, name: &str) -> Option<Vec<u64>> {
        let values = self.series_of(name)?;
        let mut prev = 0u64;
        Some(
            values
                .into_iter()
                .map(|v| {
                    let d = v.saturating_sub(prev);
                    prev = v;
                    d
                })
                .collect(),
        )
    }

    /// Serializes to an `aoci-json` object (the JSON mirror of the JSONL
    /// export; used by the round-trip tests).
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("epoch_samples".to_string(), Value::from(self.epoch_samples)),
            (
                "series".to_string(),
                Value::Arr(self.series.iter().map(EpochSnapshot::to_value).collect()),
            ),
            (
                "counters".to_string(),
                Value::Obj(self.counters.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect()),
            ),
            (
                "gauges".to_string(),
                Value::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Value::from(v))).collect()),
            ),
            (
                "histograms".to_string(),
                Value::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`MetricsLog::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Value) -> Option<Self> {
        let map = |key: &str| -> Option<BTreeMap<String, u64>> {
            v.get(key)?
                .as_obj()?
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                .collect()
        };
        Some(MetricsLog {
            epoch_samples: v.get("epoch_samples")?.as_u64()?,
            series: v
                .get("series")?
                .as_arr()?
                .iter()
                .map(EpochSnapshot::from_value)
                .collect::<Option<Vec<_>>>()?,
            counters: map("counters")?,
            gauges: map("gauges")?,
            histograms: v
                .get("histograms")?
                .as_obj()?
                .iter()
                .map(|(k, h)| Some((k.clone(), Histogram::from_value(h)?)))
                .collect::<Option<BTreeMap<_, _>>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> MetricsLog {
        let sink = MetricsSink::new(MetricsConfig::default());
        sink.counter_add("inline_decisions", 3);
        sink.gauge_set("compile_queue_depth", 2);
        sink.observe("compile_cost_cycles", 4096);
        sink.snapshot(8, 120_000);
        sink.counter_add("inline_decisions", 1);
        sink.gauge_set("compile_queue_depth", 0);
        sink.observe("compile_cost_cycles", 900);
        sink.snapshot(16, 250_000);
        sink.log()
    }

    #[test]
    fn snapshots_freeze_counters_at_their_instant() {
        let log = populated();
        assert_eq!(log.series.len(), 2);
        assert_eq!(log.series[0].counters["inline_decisions"], 3);
        assert_eq!(log.series[1].counters["inline_decisions"], 4);
        assert_eq!(log.series[0].gauges["compile_queue_depth"], 2);
        assert_eq!(log.series[1].gauges["compile_queue_depth"], 0);
        assert_eq!(log.counters["inline_decisions"], 4);
        assert_eq!(log.histograms["compile_cost_cycles"].count(), 2);
        assert_eq!(log.series_of("inline_decisions"), Some(vec![3, 4]));
        assert_eq!(log.deltas_of("inline_decisions"), Some(vec![3, 1]));
        assert_eq!(log.series_of("no_such_metric"), None);
    }

    #[test]
    fn cloned_sinks_share_one_registry() {
        let sink = MetricsSink::new(MetricsConfig::default());
        let other = sink.clone();
        sink.counter_add("a", 1);
        other.counter_add("a", 2);
        assert_eq!(sink.log().counters["a"], 3);
    }

    #[test]
    fn log_round_trips_through_json_text() {
        let log = populated();
        let text = aoci_json::to_string_pretty(&log.to_value());
        let parsed = aoci_json::parse(&text).expect("metrics JSON parses");
        assert_eq!(MetricsLog::from_value(&parsed), Some(log));
    }

    #[test]
    fn same_feed_sequence_is_bit_identical() {
        let render = |l: &MetricsLog| aoci_json::to_string_pretty(&l.to_value());
        assert_eq!(render(&populated()), render(&populated()));
    }
}
