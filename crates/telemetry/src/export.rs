//! Metrics consumers: JSONL time-series, Prometheus text exposition,
//! terminal sparkline dashboards — and the typed [`ExportError`] every
//! harness export path reports through instead of `expect()`ing.

use crate::registry::MetricsLog;
use std::fmt;
use std::path::{Path, PathBuf};

/// A failed artifact export: the path we were writing plus the OS error.
/// The harness bins print this and exit nonzero instead of panicking
/// (the `VmError` discipline applied to I/O).
#[derive(Debug)]
pub struct ExportError {
    /// Destination that could not be written.
    pub path: PathBuf,
    /// Underlying I/O failure.
    pub source: std::io::Error,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Writes `contents` to `path`, creating parent directories as needed.
/// The one write primitive all harness exports route through.
pub fn write_text(path: &Path, contents: &str) -> Result<(), ExportError> {
    let wrap = |source| ExportError { path: path.to_path_buf(), source };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(wrap)?;
        }
    }
    std::fs::write(path, contents).map_err(wrap)
}

/// Renders a [`MetricsLog`] as JSON Lines: one `{"kind":"epoch",…}` object
/// per time-series snapshot, then one `{"kind":"final",…}` object carrying
/// the end-of-run counters, gauges and histograms. `label` tags every line
/// so multiple runs can share a file.
pub fn to_jsonl(label: &str, log: &MetricsLog) -> String {
    use aoci_json::Value;
    let mut out = String::new();
    for snap in &log.series {
        let mut v = snap.to_value();
        if let Value::Obj(map) = &mut v {
            map.insert("kind".to_string(), Value::from("epoch"));
            map.insert("run".to_string(), Value::from(label));
        }
        out.push_str(&aoci_json::to_string(&v));
        out.push('\n');
    }
    let mut v = log.to_value();
    if let Value::Obj(map) = &mut v {
        map.remove("series");
        map.insert("kind".to_string(), Value::from("final"));
        map.insert("run".to_string(), Value::from(label));
    }
    out.push_str(&aoci_json::to_string(&v));
    out.push('\n');
    out
}

/// Renders the final counters/gauges/histograms of a [`MetricsLog`] in
/// Prometheus text exposition format, metric names prefixed `aoci_` and
/// every sample labelled `run="label"`. Histograms render as cumulative
/// `_bucket{le="…"}` series plus `_sum` / `_count`, per the format.
pub fn to_prometheus(label: &str, log: &MetricsLog) -> String {
    let mut out = String::new();
    for (name, v) in &log.counters {
        out.push_str(&format!("# TYPE aoci_{name} counter\n"));
        out.push_str(&format!("aoci_{name}{{run=\"{label}\"}} {v}\n"));
    }
    for (name, v) in &log.gauges {
        out.push_str(&format!("# TYPE aoci_{name} gauge\n"));
        out.push_str(&format!("aoci_{name}{{run=\"{label}\"}} {v}\n"));
    }
    for (name, h) in &log.histograms {
        out.push_str(&format!("# TYPE aoci_{name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in h.nonzero_buckets() {
            cumulative += c;
            let le = crate::histogram::bucket_bounds(i).1;
            out.push_str(&format!(
                "aoci_{name}_bucket{{run=\"{label}\",le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "aoci_{name}_bucket{{run=\"{label}\",le=\"+Inf\"}} {}\n",
            h.count()
        ));
        out.push_str(&format!("aoci_{name}_sum{{run=\"{label}\"}} {}\n", h.sum()));
        out.push_str(&format!("aoci_{name}_count{{run=\"{label}\"}} {}\n", h.count()));
    }
    out
}

const SPARK_RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline, scaled to the series max.
/// An all-zero (or empty) series renders as flat `▁`s.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                SPARK_RAMP[0]
            } else {
                // Top value maps to the full block, zero to the lowest.
                let level = (v as u128 * (SPARK_RAMP.len() as u128 - 1)).div_ceil(max as u128);
                SPARK_RAMP[level as usize]
            }
        })
        .collect()
}

/// Widest sparkline the dashboard renders; longer series fold into
/// contiguous chunks so a multi-thousand-epoch run stays terminal-sized.
const DASH_WIDTH: usize = 72;

/// Folds `values` into at most `width` columns, combining each contiguous
/// chunk with `fold` (chunk lengths differ by at most one). Series at or
/// under `width` pass through untouched.
fn fold_chunks(values: &[u64], width: usize, fold: impl Fn(&[u64]) -> u64) -> Vec<u64> {
    if values.len() <= width {
        return values.to_vec();
    }
    (0..width)
        .map(|i| {
            let lo = i * values.len() / width;
            let hi = ((i + 1) * values.len() / width).max(lo + 1);
            fold(&values[lo..hi])
        })
        .collect()
}

/// Dashboard rows: selected series rendered per-epoch. Counters show
/// per-epoch *deltas* (activity), gauges show raw values (state).
const DASHBOARD_COUNTERS: [&str; 6] = [
    "samples",
    "inline_decisions",
    "guard_misses",
    "osr_entries",
    "recovery_invalidations",
    "async_completed",
];
const DASHBOARD_GAUGES: [&str; 4] = [
    "compile_queue_depth",
    "compiles_in_flight",
    "code_cache_bytes",
    "code_versions",
];

/// Renders a terminal sparkline dashboard over a run's time series:
/// one row per known counter (per-epoch deltas) and gauge (raw values),
/// with first/last numeric values for scale. Rows whose series never
/// appears are omitted; a log with no snapshots yields a one-line note.
pub fn dashboard(label: &str, log: &MetricsLog) -> String {
    let epochs = log.series.len();
    let mut out = format!(
        "metrics dashboard [{label}] — {epochs} epochs x {} samples\n",
        log.epoch_samples
    );
    if epochs == 0 {
        out.push_str("  (no epoch snapshots recorded)\n");
        return out;
    }
    let width = DASHBOARD_COUNTERS
        .iter()
        .chain(DASHBOARD_GAUGES.iter())
        .map(|n| n.len())
        .max()
        .unwrap_or(0);
    for name in DASHBOARD_COUNTERS {
        if let Some(deltas) = log.deltas_of(name) {
            let total: u64 = deltas.iter().sum();
            // Summing within a chunk keeps each column an activity count.
            let folded = fold_chunks(&deltas, DASH_WIDTH, |c| c.iter().sum());
            out.push_str(&format!(
                "  {name:width$}  {}  Δ/epoch, total {total}\n",
                sparkline(&folded)
            ));
        }
    }
    for name in DASHBOARD_GAUGES {
        if let Some(values) = log.series_of(name) {
            let last = values.last().copied().unwrap_or(0);
            let peak = values.iter().copied().max().unwrap_or(0);
            // Max within a chunk keeps gauge peaks visible after folding.
            let folded =
                fold_chunks(&values, DASH_WIDTH, |c| c.iter().copied().max().unwrap_or(0));
            out.push_str(&format!(
                "  {name:width$}  {}  peak {peak}, final {last}\n",
                sparkline(&folded)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricsConfig, MetricsSink};

    fn sample_log() -> MetricsLog {
        let sink = MetricsSink::new(MetricsConfig::default());
        sink.counter_set("samples", 8);
        sink.counter_add("inline_decisions", 2);
        sink.gauge_set("compile_queue_depth", 3);
        sink.observe("compile_cost_cycles", 1000);
        sink.snapshot(8, 50_000);
        sink.counter_set("samples", 16);
        sink.counter_add("inline_decisions", 5);
        sink.gauge_set("compile_queue_depth", 1);
        sink.snapshot(16, 110_000);
        sink.log()
    }

    #[test]
    fn jsonl_has_one_line_per_epoch_plus_final() {
        let text = to_jsonl("smoke", &sample_log());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\": \"epoch\"") || lines[0].contains("\"kind\":\"epoch\""));
        assert!(lines[2].contains("final"));
        for line in &lines {
            aoci_json::parse(line).expect("every JSONL line parses");
        }
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_labelled() {
        let text = to_prometheus("smoke", &sample_log());
        assert!(text.contains("# TYPE aoci_samples counter"));
        assert!(text.contains("aoci_samples{run=\"smoke\"} 16"));
        assert!(text.contains("# TYPE aoci_compile_queue_depth gauge"));
        assert!(text.contains("aoci_compile_cost_cycles_bucket{run=\"smoke\",le=\"+Inf\"} 1"));
        assert!(text.contains("aoci_compile_cost_cycles_sum{run=\"smoke\"} 1000"));
    }

    #[test]
    fn sparkline_scales_to_series_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let line = sparkline(&[0, 5, 10]);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn folding_caps_width_and_preserves_sums_and_peaks() {
        let long: Vec<u64> = (0..1_000).collect();
        let summed = fold_chunks(&long, DASH_WIDTH, |c| c.iter().sum());
        assert_eq!(summed.len(), DASH_WIDTH);
        assert_eq!(summed.iter().sum::<u64>(), long.iter().sum::<u64>());
        let peaks = fold_chunks(&long, DASH_WIDTH, |c| c.iter().copied().max().unwrap_or(0));
        assert_eq!(peaks.len(), DASH_WIDTH);
        assert_eq!(peaks.last(), Some(&999));
        // Short series pass through untouched.
        assert_eq!(fold_chunks(&[1, 2, 3], DASH_WIDTH, |c| c.iter().sum()), vec![1, 2, 3]);
        // Dashboard lines stay terminal-sized for multi-thousand-epoch runs.
        let sink = MetricsSink::new(MetricsConfig::default());
        for i in 0..3_000u64 {
            sink.counter_set("samples", i * 8);
            sink.gauge_set("compile_queue_depth", i % 7);
            sink.snapshot(i * 8, i * 50_000);
        }
        for line in dashboard("wide", &sink.log()).lines() {
            assert!(line.chars().count() < 140, "over-wide dashboard line: {line}");
        }
    }

    #[test]
    fn dashboard_renders_known_rows_only() {
        let text = dashboard("smoke", &sample_log());
        assert!(text.contains("samples"));
        assert!(text.contains("compile_queue_depth"));
        assert!(!text.contains("osr_entries"), "absent series are omitted");
    }

    #[test]
    fn write_text_creates_parent_dirs_and_reports_typed_errors() {
        let dir = std::env::temp_dir().join("aoci-telemetry-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.txt");
        write_text(&path, "hello").expect("write succeeds");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let err = write_text(&dir.join("nested"), "clobber a directory")
            .expect_err("writing over a directory fails");
        assert!(err.to_string().contains("nested"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
