//! Log-bucketed histograms over `u64` observations.
//!
//! Bucketing is by *significant bits*: value `0` lands in bucket `0`, and
//! a value `v > 0` lands in bucket `64 - v.leading_zeros()`, i.e. bucket
//! `k` holds the half-open power-of-two range `[2^(k-1), 2^k)`. Two
//! properties the property tests pin down (and the exporters rely on):
//!
//! * **monotone** — `a <= b` implies `bucket_index(a) <= bucket_index(b)`,
//!   so cumulative bucket counts are a valid CDF;
//! * **merge-associative** (and commutative) — merging is element-wise
//!   addition of bucket counts plus min/max/sum/count folds, so a
//!   histogram built from shards equals the histogram of the
//!   concatenation, in any association order.

use aoci_json::Value;

/// Number of buckets: one for zero plus one per possible bit width.
pub const BUCKETS: usize = 65;

/// The bucket an observation falls into (see the module docs).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `(lo, hi)` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1 => (1, 1),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A fixed-shape log-bucketed histogram. Cheap to clone, deterministic to
/// serialize (buckets render sparsely, lowest index first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The non-empty buckets as `(index, count)`, lowest index first.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }

    /// Smallest value `x` such that at least `q * count` observations fall
    /// in buckets whose upper bound is `<= bucket_bounds(bucket(x)).1` —
    /// i.e. the bucket-upper-bound approximation of the `q`-quantile.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Serializes to an `aoci-json` object (sparse buckets).
    pub fn to_value(&self) -> Value {
        Value::obj([
            ("count".to_string(), Value::from(self.count)),
            ("sum".to_string(), Value::from(self.sum)),
            ("min".to_string(), self.min().map_or(Value::Null, Value::from)),
            ("max".to_string(), self.max().map_or(Value::Null, Value::from)),
            (
                "buckets".to_string(),
                Value::Arr(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(i, c)| {
                            Value::Arr(vec![Value::from(i as u64), Value::from(c)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`Histogram::to_value`]; `None` on shape mismatch.
    pub fn from_value(v: &Value) -> Option<Self> {
        let mut h = Histogram::new();
        h.count = v.get("count")?.as_u64()?;
        h.sum = v.get("sum")?.as_u64()?;
        h.min = match v.get("min")? {
            Value::Null => u64::MAX,
            m => m.as_u64()?,
        };
        h.max = match v.get("max")? {
            Value::Null => 0,
            m => m.as_u64()?,
        };
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            let (i, c) = (pair.first()?.as_u64()? as usize, pair.get(1)?.as_u64()?);
            if i >= BUCKETS {
                return None;
            }
            h.buckets[i] = c;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_powers_land_in_distinct_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_cover_the_domain_without_gaps() {
        let mut next = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, next, "bucket {i} starts where {} ended", i.wrapping_sub(1));
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            next = hi + 1;
        }
    }

    #[test]
    fn observe_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
        for v in [3, 0, 700, 9] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 712);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(700));
        assert_eq!(h.mean(), Some(178.0));
        assert!(h.quantile(1.0) == Some(700));
    }

    #[test]
    fn merge_matches_concatenated_observation() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 5, 1000] {
            a.observe(v);
            all.observe(v);
        }
        for v in [0u64, 5, 1 << 40] {
            b.observe(v);
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn json_round_trip_is_exact() {
        // Values stay below 2^53: aoci-json numbers are f64-backed, so
        // only exactly-representable integers round-trip.
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, 1 << 40] {
            h.observe(v);
        }
        let text = aoci_json::to_string_pretty(&h.to_value());
        let parsed = aoci_json::parse(&text).expect("histogram JSON parses");
        assert_eq!(Histogram::from_value(&parsed), Some(h));
        let empty = Histogram::new();
        assert_eq!(Histogram::from_value(&empty.to_value()), Some(empty));
    }
}
