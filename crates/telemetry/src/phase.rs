//! Wall-clock phase profiling for the harness binaries.
//!
//! [`PhaseProfiler`] hands out scoped RAII [`PhaseGuard`]s; dropping a
//! guard attributes its elapsed real time to a named phase, and nested
//! guards build `parent/child` paths so the report is hierarchical.
//!
//! This is the **wall-clock side** of the telemetry split: nothing here
//! may feed a deterministic artifact. Phase timings go to stderr reports
//! and the `wall_phases` block of `results/BENCH_*.json` — files that are
//! wall-clock by definition — never into `grid.json`, metrics snapshots,
//! or the fuzz corpus.

use aoci_json::Value;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

#[derive(Debug, Default)]
struct Inner {
    /// Accumulated `(path, seconds, entries)` rows in first-entry order.
    rows: Vec<(String, f64, u64)>,
    /// Stack of currently-open phase names (builds the path prefix).
    open: Vec<String>,
}

impl Inner {
    fn charge(&mut self, path: &str, seconds: f64) {
        if let Some(row) = self.rows.iter_mut().find(|(p, _, _)| p == path) {
            row.1 += seconds;
            row.2 += 1;
        } else {
            self.rows.push((path.to_string(), seconds, 1));
        }
    }
}

/// Accumulates wall-clock time per named (possibly nested) phase.
/// Cheap to clone; clones share the same accumulator.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    inner: Rc<RefCell<Inner>>,
}

impl PhaseProfiler {
    /// A fresh profiler with no recorded phases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens phase `name`; time until the returned guard drops is charged
    /// to it. Guards opened while this one is alive become its children
    /// (`parent/child` paths).
    pub fn enter(&self, name: &str) -> PhaseGuard {
        self.inner.borrow_mut().open.push(name.to_string());
        PhaseGuard { profiler: self.clone(), started: Instant::now(), closed: false }
    }

    /// Times `f` under phase `name`.
    pub fn scope<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.enter(name);
        f()
    }

    /// The recorded `(path, seconds, entries)` rows, in first-entry order.
    pub fn rows(&self) -> Vec<(String, f64, u64)> {
        self.inner.borrow().rows.clone()
    }

    /// Total seconds across top-level (un-nested) phases.
    pub fn total_seconds(&self) -> f64 {
        self.inner
            .borrow()
            .rows
            .iter()
            .filter(|(p, _, _)| !p.contains('/'))
            .map(|(_, s, _)| s)
            .sum()
    }

    /// A plain-text attribution report: one indented line per phase with
    /// seconds, share of its top-level total, and entry count.
    pub fn render(&self) -> String {
        let rows = self.rows();
        let total = self.total_seconds().max(f64::EPSILON);
        let mut out = String::from("wall-clock phases\n");
        if rows.is_empty() {
            out.push_str("  (none recorded)\n");
            return out;
        }
        let width = rows.iter().map(|(p, _, _)| p.len()).max().unwrap_or(0);
        for (path, seconds, entries) in &rows {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let indent = "  ".repeat(depth + 1);
            let pad = width.saturating_sub(name.len() + depth * 2);
            out.push_str(&format!(
                "{indent}{name}{:pad$}  {seconds:9.3}s  {:5.1}%  x{entries}\n",
                "",
                100.0 * seconds / total,
            ));
        }
        out
    }

    /// Serializes the rows to an `aoci-json` array (the `wall_phases`
    /// block of `BENCH_*.json`).
    pub fn to_value(&self) -> Value {
        Value::Arr(
            self.rows()
                .into_iter()
                .map(|(path, seconds, entries)| {
                    Value::obj([
                        ("phase".to_string(), Value::from(path)),
                        // Microsecond-rounded so the JSON stays readable.
                        (
                            "wall_seconds".to_string(),
                            Value::from((seconds * 1e6).round() / 1e6),
                        ),
                        ("entries".to_string(), Value::from(entries)),
                    ])
                })
                .collect(),
        )
    }
}

/// RAII guard for one phase entry; records elapsed time on drop.
#[derive(Debug)]
pub struct PhaseGuard {
    profiler: PhaseProfiler,
    started: Instant,
    closed: bool,
}

impl PhaseGuard {
    /// Ends the phase now (identical to dropping the guard).
    pub fn finish(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let seconds = self.started.elapsed().as_secs_f64();
        let mut inner = self.profiler.inner.borrow_mut();
        let path = inner.open.join("/");
        inner.open.pop();
        inner.charge(&path, seconds);
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_guards_build_hierarchical_paths() {
        let prof = PhaseProfiler::new();
        {
            let _outer = prof.enter("smoke");
            prof.scope("decode", || ());
            prof.scope("decode", || ());
            prof.scope("sweep", || ());
        }
        let paths: Vec<(String, u64)> =
            prof.rows().into_iter().map(|(p, _, n)| (p, n)).collect();
        assert_eq!(
            paths,
            vec![
                ("smoke/decode".to_string(), 2),
                ("smoke/sweep".to_string(), 1),
                ("smoke".to_string(), 1),
            ]
        );
    }

    #[test]
    fn totals_count_only_top_level_phases() {
        let prof = PhaseProfiler::new();
        prof.scope("a", || prof.scope("inner", || ()));
        prof.scope("b", || ());
        let top: Vec<String> = prof
            .rows()
            .into_iter()
            .map(|(p, _, _)| p)
            .filter(|p| !p.contains('/'))
            .collect();
        assert_eq!(top, vec!["a".to_string(), "b".to_string()]);
        assert!(prof.total_seconds() >= 0.0);
    }

    #[test]
    fn render_and_value_cover_every_row() {
        let prof = PhaseProfiler::new();
        prof.scope("fuzz", || prof.scope("oracle", || ()));
        let text = prof.render();
        assert!(text.contains("fuzz"));
        assert!(text.contains("oracle"));
        let v = prof.to_value();
        assert_eq!(v.as_arr().map(<[Value]>::len), Some(2));
        assert!(aoci_json::to_string(&v).contains("fuzz/oracle"));
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let prof = PhaseProfiler::new();
        assert_eq!(prof.scope("calc", || 41 + 1), 42);
    }
}
