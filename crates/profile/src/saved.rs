//! Offline profile persistence.
//!
//! The paper's related-work section contrasts its online system with the
//! classic offline pipeline: gather profile data in a training run, then
//! feed it to the compiler for the production run. This module provides
//! that pipeline for AOCI: a [`SavedProfile`] snapshots the trace profile
//! of one run as JSON; a later run seeds its dynamic call graph with it and
//! reaches good inlining decisions without a warm-up (see the
//! `offline_profile` example).
//!
//! Saved profiles reference methods and call sites by raw index, so they
//! are only meaningful for the *same program* (same builder inputs) that
//! produced them.

use crate::key::TraceKey;
use aoci_ir::{CallSiteRef, MethodId, SiteIdx};
use aoci_json::{JsonError, Value};

/// One serialized trace: callee index, context as (method index, site)
/// pairs innermost-first, and profile weight.
#[derive(Clone, Debug)]
pub struct SavedTrace {
    /// Callee method index.
    pub callee: u32,
    /// Context as `(method index, site index)` pairs, innermost caller
    /// first.
    pub context: Vec<(u32, u16)>,
    /// Profile weight.
    pub weight: f64,
}

/// A serializable snapshot of a trace profile.
#[derive(Clone, Debug, Default)]
pub struct SavedProfile {
    /// The traces.
    pub traces: Vec<SavedTrace>,
}

impl SavedProfile {
    /// Snapshots `(trace, weight)` entries.
    pub fn from_entries<'a>(entries: impl IntoIterator<Item = (&'a TraceKey, f64)>) -> Self {
        let traces = entries
            .into_iter()
            .map(|(k, weight)| SavedTrace {
                callee: k.callee().index() as u32,
                context: k
                    .context()
                    .iter()
                    .map(|cs| (cs.method.index() as u32, cs.site.0))
                    .collect(),
                weight,
            })
            .collect();
        SavedProfile { traces }
    }

    /// Reconstructs `(trace, weight)` entries.
    pub fn entries(&self) -> Vec<(TraceKey, f64)> {
        self.traces
            .iter()
            .filter(|t| !t.context.is_empty())
            .map(|t| {
                let context = t
                    .context
                    .iter()
                    .map(|&(m, s)| CallSiteRef::new(MethodId::from_index(m as usize), SiteIdx(s)))
                    .collect();
                (TraceKey::new(MethodId::from_index(t.callee as usize), context), t.weight)
            })
            .collect()
    }

    /// Serializes to JSON (the same shape the original serde-derived form
    /// produced: `{"traces": [{"callee", "context": [[m, s], ...],
    /// "weight"}, ...]}`).
    ///
    /// # Errors
    ///
    /// Encoding cannot fail for this data shape; the `Result` is kept so
    /// the signature matches a fallible serializer.
    pub fn to_json(&self) -> Result<String, JsonError> {
        let traces: Vec<Value> = self
            .traces
            .iter()
            .map(|t| {
                Value::obj([
                    ("callee".to_string(), Value::from(t.callee)),
                    (
                        "context".to_string(),
                        Value::Arr(
                            t.context
                                .iter()
                                .map(|&(m, s)| {
                                    Value::Arr(vec![
                                        Value::from(m),
                                        Value::from(s as u32),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("weight".to_string(), Value::from(t.weight)),
                ])
            })
            .collect();
        let doc = Value::obj([("traces".to_string(), Value::Arr(traces))]);
        Ok(aoci_json::to_string_pretty(&doc))
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed input, including documents
    /// that parse as JSON but do not match the [`SavedProfile`] shape.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        let shape_err = |message: &str| JsonError { offset: 0, message: message.to_string() };
        let doc = aoci_json::parse(s)?;
        let traces = doc
            .get("traces")
            .and_then(Value::as_arr)
            .ok_or_else(|| shape_err("missing 'traces' array"))?;
        let mut out = Vec::with_capacity(traces.len());
        for t in traces {
            let callee = t
                .get("callee")
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| shape_err("trace missing u32 'callee'"))?;
            let weight = t
                .get("weight")
                .and_then(Value::as_f64)
                .ok_or_else(|| shape_err("trace missing numeric 'weight'"))?;
            let raw_context = t
                .get("context")
                .and_then(Value::as_arr)
                .ok_or_else(|| shape_err("trace missing 'context' array"))?;
            let mut context = Vec::with_capacity(raw_context.len());
            for pair in raw_context {
                let pair = pair.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                    shape_err("context entries must be [method, site] pairs")
                })?;
                let m = pair[0]
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| shape_err("context method must be u32"))?;
                let site = pair[1]
                    .as_u64()
                    .and_then(|n| u16::try_from(n).ok())
                    .ok_or_else(|| shape_err("context site must be u16"))?;
                context.push((m, site));
            }
            out.push(SavedTrace { callee, context, weight });
        }
        Ok(SavedProfile { traces: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    #[test]
    fn round_trips_through_json() {
        let k1 = TraceKey::edge(cs(0, 1), MethodId::from_index(5));
        let k2 = TraceKey::new(MethodId::from_index(6), vec![cs(1, 0), cs(2, 3)]);
        let saved = SavedProfile::from_entries([(&k1, 2.0), (&k2, 7.5)]);
        let json = saved.to_json().unwrap();
        let back = SavedProfile::from_json(&json).unwrap();
        let entries = back.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|(k, w)| *k == k1 && (*w - 2.0).abs() < 1e-12));
        assert!(entries.iter().any(|(k, w)| *k == k2 && (*w - 7.5).abs() < 1e-12));
    }

    #[test]
    fn corrupt_entries_are_skipped() {
        let saved = SavedProfile {
            traces: vec![SavedTrace { callee: 1, context: vec![], weight: 1.0 }],
        };
        assert!(saved.entries().is_empty());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(SavedProfile::from_json("not json").is_err());
    }
}
