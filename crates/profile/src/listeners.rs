//! Sample listeners: method, edge and trace.
//!
//! Listeners mirror the Jikes RVM architecture (paper Figure 3): each holds
//! a buffer of raw samples that an organizer periodically drains. The VM
//! invokes them with a [`StackSnapshot`] at every timer sample; edge and
//! trace listeners only record samples that landed in a method prologue.

use crate::key::TraceKey;
use aoci_ir::MethodId;
use aoci_trace::{TraceEvent, TraceSink};
use aoci_vm::StackSnapshot;

/// Records the currently executing (machine-level) compiled method at every
/// sample; feeds hot-method detection.
#[derive(Clone, Debug, Default)]
pub struct MethodListener {
    buffer: Vec<MethodId>,
}

impl MethodListener {
    /// Creates an empty listener.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one sample.
    pub fn on_sample(&mut self, snapshot: &StackSnapshot) {
        self.buffer.push(snapshot.root_method);
    }

    /// Number of buffered samples.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Drains the buffer (organizer side).
    pub fn drain(&mut self) -> Vec<MethodId> {
        std::mem::take(&mut self.buffer)
    }
}

/// Records context-insensitive call edges ⟨caller, callsite, callee⟩ from
/// prologue samples (paper Equation 1).
#[derive(Clone, Debug, Default)]
pub struct EdgeListener {
    buffer: Vec<TraceKey>,
    /// Samples inspected (prologue or not) — overhead accounting.
    samples_seen: u64,
    /// Prologue samples actually recorded.
    samples_recorded: u64,
}

impl EdgeListener {
    /// Creates an empty listener.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one sample; records an edge only for prologue samples with
    /// at least one caller. Returns the number of stack frames inspected
    /// (for listener-cost accounting).
    pub fn on_sample(&mut self, snapshot: &StackSnapshot) -> usize {
        self.samples_seen += 1;
        if !snapshot.top_in_prologue {
            return 0;
        }
        if let Some((callee, context)) = snapshot.call_trace(1, |_| true) {
            self.buffer.push(TraceKey::new(callee, context));
            self.samples_recorded += 1;
            2
        } else {
            1
        }
    }

    /// Number of buffered samples.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Drains the buffer (organizer side).
    pub fn drain(&mut self) -> Vec<TraceKey> {
        std::mem::take(&mut self.buffer)
    }

    /// Total samples inspected.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Prologue samples recorded as edges.
    pub fn samples_recorded(&self) -> u64 {
        self.samples_recorded
    }
}

/// Records variable-length call traces (paper Equation 2); the
/// context-sensitive replacement for [`EdgeListener`].
///
/// The maximum context depth and the early-termination predicate are
/// supplied per sample by the embedding driver, which owns the
/// context-sensitivity policy.
#[derive(Clone, Debug, Default)]
pub struct TraceListener {
    buffer: Vec<TraceKey>,
    samples_seen: u64,
    samples_recorded: u64,
    frames_walked: u64,
    trace: Option<TraceSink>,
}

impl TraceListener {
    /// Creates an empty listener.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a flight-recorder sink; the listener emits a
    /// [`TraceEvent::TraceWalk`] for every recorded call trace, timestamped
    /// with the snapshot's simulated-cycle clock.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Consumes one sample, collecting at most `max_context` caller levels
    /// and stopping early when `keep_extending` returns `false` (see
    /// [`StackSnapshot::call_trace`]). Returns the number of stack frames
    /// walked (for listener-cost accounting).
    pub fn on_sample(
        &mut self,
        snapshot: &StackSnapshot,
        max_context: usize,
        keep_extending: impl FnMut(MethodId) -> bool,
    ) -> usize {
        self.samples_seen += 1;
        if !snapshot.top_in_prologue {
            return 0;
        }
        match snapshot.call_trace(max_context, keep_extending) {
            Some((callee, context)) => {
                let walked = context.len() + 1;
                self.frames_walked += walked as u64;
                if let Some(t) = &self.trace {
                    t.emit(
                        snapshot.cycles,
                        TraceEvent::TraceWalk { callee, depth: walked as u32 },
                    );
                }
                self.buffer.push(TraceKey::new(callee, context));
                self.samples_recorded += 1;
                walked
            }
            None => 1,
        }
    }

    /// Number of buffered samples.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Drains the buffer (organizer side).
    pub fn drain(&mut self) -> Vec<TraceKey> {
        std::mem::take(&mut self.buffer)
    }

    /// Total samples inspected.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Prologue samples recorded as traces.
    pub fn samples_recorded(&self) -> u64 {
        self.samples_recorded
    }

    /// Total stack frames walked over all recorded samples.
    pub fn frames_walked(&self) -> u64 {
        self.frames_walked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::{CallSiteRef, SiteIdx};
    use aoci_vm::SourceFrame;

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    fn snapshot(prologue: bool, methods: &[usize]) -> StackSnapshot {
        // methods[0] is innermost; give frame i>0 call site i.
        let frames = methods
            .iter()
            .enumerate()
            .map(|(i, &m)| SourceFrame {
                method: mid(m),
                callsite_to_inner: if i == 0 { None } else { Some(SiteIdx(i as u16)) },
            })
            .collect();
        StackSnapshot {
            frames,
            root_method: mid(*methods.last().unwrap_or(&0)),
            top_in_prologue: prologue,
            cycles: 0,
        }
    }

    #[test]
    fn method_listener_records_root() {
        let mut l = MethodListener::new();
        l.on_sample(&snapshot(false, &[3, 2, 1]));
        l.on_sample(&snapshot(true, &[3, 2, 1]));
        assert_eq!(l.drain(), vec![mid(1), mid(1)]);
        assert_eq!(l.buffered(), 0);
    }

    #[test]
    fn edge_listener_requires_prologue() {
        let mut l = EdgeListener::new();
        l.on_sample(&snapshot(false, &[3, 2, 1]));
        assert_eq!(l.buffered(), 0);
        l.on_sample(&snapshot(true, &[3, 2, 1]));
        let edges = l.drain();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].depth(), 1);
        assert_eq!(edges[0].callee(), mid(3));
        assert_eq!(
            edges[0].immediate_caller(),
            CallSiteRef::new(mid(2), SiteIdx(1))
        );
        assert_eq!(l.samples_seen(), 2);
        assert_eq!(l.samples_recorded(), 1);
    }

    #[test]
    fn edge_listener_skips_bottom_frame() {
        let mut l = EdgeListener::new();
        l.on_sample(&snapshot(true, &[7])); // no caller
        assert_eq!(l.buffered(), 0);
    }

    #[test]
    fn trace_listener_collects_variable_depth() {
        let mut l = TraceListener::new();
        l.on_sample(&snapshot(true, &[4, 3, 2, 1]), 2, |_| true);
        l.on_sample(&snapshot(true, &[4, 3, 2, 1]), 5, |_| true);
        let traces = l.drain();
        assert_eq!(traces[0].depth(), 2);
        assert_eq!(traces[1].depth(), 3);
        assert!(l.frames_walked() >= 3 + 4);
    }

    #[test]
    fn trace_listener_honours_early_termination() {
        let mut l = TraceListener::new();
        // The sampled callee m4 blocks extension: depth stays 1.
        l.on_sample(&snapshot(true, &[4, 3, 2, 1]), 5, |m| m != mid(4));
        // The immediate caller m3 blocks extension: depth stays 2.
        l.on_sample(&snapshot(true, &[4, 3, 2, 1]), 5, |m| m != mid(3));
        let traces = l.drain();
        assert_eq!(traces[0].depth(), 1);
        assert_eq!(traces[1].depth(), 2);
    }

    #[test]
    fn trace_listener_ignores_non_prologue() {
        let mut l = TraceListener::new();
        let walked = l.on_sample(&snapshot(false, &[4, 3]), 5, |_| true);
        assert_eq!(walked, 0);
        assert_eq!(l.buffered(), 0);
        assert_eq!(l.samples_seen(), 1);
        assert_eq!(l.samples_recorded(), 0);
    }
}
