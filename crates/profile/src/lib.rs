//! # aoci-profile — online sampling profiles
//!
//! The profiling side of *Adaptive Online Context-Sensitive Inlining*
//! (CGO 2003): listeners that turn timer-sample stack snapshots into raw
//! profile data, and the **dynamic call graph** (DCG) that aggregates them.
//!
//! * [`TraceKey`] — the paper's Equation 2 record: a callee plus a
//!   variable-length chain of ⟨caller, callsite⟩ pairs (innermost caller
//!   first). Length-1 contexts are the classic context-insensitive call
//!   edges of Equation 1.
//! * [`MethodListener`], [`EdgeListener`], [`TraceListener`] — consume
//!   [`StackSnapshot`]s. The method listener feeds hot-method detection; the
//!   edge and trace listeners record only *prologue* samples, as in Jikes
//!   RVM. The trace listener accepts a per-sample maximum depth and an
//!   early-termination predicate, which is how the `aoci-core` policies plug
//!   in without this crate depending on them.
//! * [`Dcg`] — weighted trace store with decay (phase-shift adaptation) and
//!   hot extraction against a total-weight threshold (1.5% in the paper).
//!   Collection does **not** merge partial matches (the paper's hybrid
//!   scheme leaves matching to the inline oracle); an opt-in
//!   [`DcgConfig::merge_on_collect`] mode exists as an ablation.
//! * [`TraceStatsCollector`] — reproduces the Section 4 trace-walk
//!   statistics (how soon a parameterless / class / large method appears in
//!   sampled call chains).
//!
//! [`StackSnapshot`]: aoci_vm::StackSnapshot

#![warn(missing_docs)]

mod cct;
mod dcg;
mod key;
mod listeners;
mod sanitize;
mod saved;
mod stats;
mod store;

pub use cct::CallingContextTree;
pub use dcg::{Dcg, DcgConfig, HotTrace};
pub use key::TraceKey;
pub use listeners::{EdgeListener, MethodListener, TraceListener};
pub use sanitize::{validate_trace, TraceDefect};
pub use saved::{SavedProfile, SavedTrace};
pub use stats::{DepthHistogram, TraceStatsCollector, TraceStatsReport};
pub use store::ProfileStore;
