//! A (partial) calling-context tree.
//!
//! The representation of Ammons, Ball and Larus (PLDI '97), built here by
//! periodic stack sampling in the style of Arnold & Sweeney's approximate
//! CCT construction (paper Section 6, related work): each sampled trace
//! `⟨caller_n, …, caller_1, callee⟩` is attached below the synthetic root
//! at its *outermost observed* frame, sharing prefixes with previously
//! observed traces. Weights live on the leaf (full-context) nodes; interior
//! nodes aggregate their subtree on demand.
//!
//! Compared to the paper's flat trace table, the CCT shares context
//! prefixes (smaller for deep, redundant profiles) and supports subtree
//! queries; both back the same [`ProfileStore`](crate::ProfileStore)
//! interface.

use crate::dcg::HotTrace;
use crate::key::TraceKey;
use crate::store::ProfileStore;
use aoci_ir::{CallSiteRef, MethodId};
use std::collections::HashMap;

/// Edge label within the tree: the call-site step from a context node to a
/// deeper one.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Step {
    /// A ⟨caller, callsite⟩ context level.
    Through(CallSiteRef),
    /// The terminal step to the callee method.
    Into(MethodId),
}

#[derive(Clone, Debug)]
struct Node {
    children: HashMap<Step, u32>,
    /// Weight of traces terminating exactly here (leaf weight).
    weight: f64,
}

impl Node {
    fn new() -> Self {
        Node { children: HashMap::new(), weight: 0.0 }
    }
}

/// The partial calling-context tree.
#[derive(Clone, Debug)]
pub struct CallingContextTree {
    nodes: Vec<Node>,
    total_weight: f64,
    prune_epsilon: f64,
    /// Distinct terminated traces (== number of nodes with weight > 0).
    distinct: usize,
}

impl Default for CallingContextTree {
    fn default() -> Self {
        Self::new(0.01)
    }
}

impl CallingContextTree {
    /// Creates an empty tree; entries whose weight decays below
    /// `prune_epsilon` are dropped.
    pub fn new(prune_epsilon: f64) -> Self {
        CallingContextTree {
            nodes: vec![Node::new()],
            total_weight: 0.0,
            prune_epsilon,
            distinct: 0,
        }
    }

    /// Number of tree nodes (including the root and interior nodes).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn child(&mut self, node: u32, step: Step) -> u32 {
        if let Some(&c) = self.nodes[node as usize].children.get(&step) {
            return c;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::new());
        self.nodes[node as usize].children.insert(step, id);
        id
    }

    /// Walks the tree depth-first, reconstructing trace keys for weighted
    /// nodes.
    fn collect(
        &self,
        node: u32,
        stack: &mut Vec<Step>,
        out: &mut Vec<(TraceKey, f64)>,
    ) {
        let n = &self.nodes[node as usize];
        if n.weight > 0.0 {
            if let Some(key) = key_of(stack) {
                out.push((key, n.weight));
            }
        }
        for (&step, &c) in &n.children {
            stack.push(step);
            self.collect(c, stack, out);
            stack.pop();
        }
    }
}

/// Reconstructs the trace key from a root-to-node step path. The path is
/// outermost-first: context steps then the terminal callee step.
fn key_of(path: &[Step]) -> Option<TraceKey> {
    let (&last, rest) = path.split_last()?;
    let callee = match last {
        Step::Into(m) => m,
        Step::Through(_) => return None, // interior node
    };
    let mut context: Vec<CallSiteRef> = rest
        .iter()
        .map(|s| match s {
            Step::Through(cs) => *cs,
            Step::Into(_) => unreachable!("Into steps are terminal"),
        })
        .collect();
    if context.is_empty() {
        return None; // traces need at least one caller level
    }
    context.reverse(); // innermost-first, as TraceKey expects
    Some(TraceKey::new(callee, context))
}

impl ProfileStore for CallingContextTree {
    fn record(&mut self, key: TraceKey, weight: f64) {
        self.total_weight += weight;
        // Attach below the root at the outermost observed caller.
        let mut node = 0u32;
        for cs in key.context().iter().rev() {
            node = self.child(node, Step::Through(*cs));
        }
        node = self.child(node, Step::Into(key.callee()));
        let leaf = &mut self.nodes[node as usize];
        if leaf.weight == 0.0 {
            self.distinct += 1;
        }
        leaf.weight += weight;
    }

    fn decay(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor must be in (0, 1]");
        let mut new_total = 0.0;
        let mut distinct = 0;
        for n in &mut self.nodes {
            n.weight *= factor;
            if n.weight < self.prune_epsilon {
                n.weight = 0.0;
            } else {
                new_total += n.weight;
                distinct += 1;
            }
        }
        self.total_weight = new_total;
        self.distinct = distinct;
        // Empty subtrees are left in place (they are cheap and likely to be
        // repopulated); a full rebuild would also remap node ids.
    }

    fn total_weight(&self) -> f64 {
        self.total_weight
    }

    fn len(&self) -> usize {
        self.distinct
    }

    fn hot(&self, threshold_fraction: f64) -> Vec<HotTrace> {
        if self.total_weight <= 0.0 {
            return Vec::new();
        }
        let mut all = Vec::new();
        self.collect(0, &mut Vec::new(), &mut all);
        let mut v: Vec<HotTrace> = all
            .into_iter()
            .filter(|(_, w)| w / self.total_weight >= threshold_fraction)
            .map(|(key, weight)| HotTrace {
                fraction: weight / self.total_weight,
                key,
                weight,
            })
            .collect();
        // `total_cmp`, not `partial_cmp(..).expect(..)`: weights are
        // sanitized at the store boundary, but repeated decay of a denormal
        // can reach states no one anticipated — a poisoned weight must sort
        // deterministically, never panic mid-run.
        v.sort_by(|a, b| b.weight.total_cmp(&a.weight).then_with(|| a.key.cmp(&b.key)));
        v
    }

    fn site_distribution(&self, site: CallSiteRef) -> HashMap<MethodId, f64> {
        let mut out = HashMap::new();
        let mut all = Vec::new();
        self.collect(0, &mut Vec::new(), &mut all);
        for (key, w) in all {
            if key.immediate_caller() == site {
                *out.entry(key.callee()).or_insert(0.0) += w;
            }
        }
        out
    }

    fn entries(&self) -> Vec<(TraceKey, f64)> {
        let mut all = Vec::new();
        self.collect(0, &mut Vec::new(), &mut all);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::SiteIdx;

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    #[test]
    fn records_and_reconstructs_traces() {
        let mut t = CallingContextTree::default();
        let key = TraceKey::new(mid(9), vec![cs(1, 0), cs(2, 1)]);
        t.record(key.clone(), 3.0);
        t.record(key.clone(), 2.0);
        let entries = t.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, key);
        assert!((entries[0].1 - 5.0).abs() < 1e-12);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn prefix_sharing_reduces_nodes() {
        let mut t = CallingContextTree::default();
        // Two traces sharing the outer context (cs(3,0) ⇒ cs(2,1) prefix).
        t.record(TraceKey::new(mid(8), vec![cs(1, 0), cs(2, 1), cs(3, 0)]), 1.0);
        t.record(TraceKey::new(mid(9), vec![cs(1, 1), cs(2, 1), cs(3, 0)]), 1.0);
        // Root + shared Through(3,0) + shared Through(2,1) + two divergent
        // Through + two Into leaves = 7.
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn denormal_decay_and_nan_poison_never_panic_hot() {
        // Pruning off, so an underflowing weight stays in the tree.
        let mut t = CallingContextTree::new(0.0);
        t.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        // The smallest positive denormal: one decay step underflows it to
        // exactly 0.0, the poisoned-weight state the sort must tolerate.
        t.record(TraceKey::new(mid(2), vec![cs(0, 1), cs(3, 0)]), 5e-324);
        for _ in 0..64 {
            t.decay(0.5);
            assert_eq!(t.hot(0.0), t.hot(0.0), "hot() must stay deterministic");
        }
        // A NaN recorded past the AOS sanitization boundary: extraction
        // must degrade deterministically, never panic in the weight sort.
        t.record(TraceKey::edge(cs(0, 2), mid(3)), f64::NAN);
        assert_eq!(t.hot(0.015), t.hot(0.015));
        assert_eq!(t.hot(0.0), t.hot(0.0));
    }

    #[test]
    fn hot_matches_flat_dcg() {
        let traces = [
            (TraceKey::edge(cs(0, 0), mid(1)), 80.0),
            (TraceKey::new(mid(2), vec![cs(0, 1), cs(4, 0)]), 19.0),
            (TraceKey::edge(cs(0, 2), mid(3)), 1.0),
        ];
        let mut cct = CallingContextTree::default();
        let mut dcg = crate::Dcg::default();
        for (k, w) in &traces {
            cct.record(k.clone(), *w);
            ProfileStore::record(&mut dcg, k.clone(), *w);
        }
        let a = cct.hot(0.015);
        let b = ProfileStore::hot(&dcg, 0.015);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key, y.key);
            assert!((x.weight - y.weight).abs() < 1e-12);
        }
    }

    #[test]
    fn decay_prunes_leaves() {
        let mut t = CallingContextTree::new(0.3);
        t.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        t.record(TraceKey::edge(cs(0, 1), mid(2)), 0.5);
        t.decay(0.5);
        assert_eq!(t.len(), 1);
        assert!((t.total_weight() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn site_distribution_aggregates_contexts() {
        let mut t = CallingContextTree::default();
        t.record(TraceKey::new(mid(1), vec![cs(0, 0), cs(7, 0)]), 2.0);
        t.record(TraceKey::new(mid(1), vec![cs(0, 0), cs(8, 0)]), 3.0);
        t.record(TraceKey::edge(cs(0, 0), mid(2)), 5.0);
        let d = t.site_distribution(cs(0, 0));
        assert!((d[&mid(1)] - 5.0).abs() < 1e-12);
        assert!((d[&mid(2)] - 5.0).abs() < 1e-12);
    }
}
