//! Trace keys: the unit of profile data.

use aoci_ir::{CallSiteRef, MethodId};
use std::fmt;

/// A call trace of the paper's Equation 2:
/// `⟨caller_n, callsite_n, …, caller_1, callsite_1, callee⟩`.
///
/// The context is stored innermost-first: `context[0]` is the immediate
/// caller edge (`caller_1, callsite_1`), matching the index convention of
/// the paper's Equation 3 partial-match rule. Every trace has at least one
/// context element; a length-1 context is a plain context-insensitive call
/// edge (Equation 1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TraceKey {
    callee: MethodId,
    context: Vec<CallSiteRef>,
}

impl TraceKey {
    /// Creates a trace key.
    ///
    /// # Panics
    ///
    /// Panics if `context` is empty — a trace needs at least the immediate
    /// caller edge.
    pub fn new(callee: MethodId, context: Vec<CallSiteRef>) -> Self {
        assert!(!context.is_empty(), "a trace requires at least one context level");
        TraceKey { callee, context }
    }

    /// Creates a length-1 (context-insensitive edge) key.
    pub fn edge(caller: CallSiteRef, callee: MethodId) -> Self {
        TraceKey { callee, context: vec![caller] }
    }

    /// The callee — the method whose invocation this trace describes.
    pub fn callee(&self) -> MethodId {
        self.callee
    }

    /// The calling context, innermost caller first.
    pub fn context(&self) -> &[CallSiteRef] {
        &self.context
    }

    /// The immediate caller edge (`context[0]`).
    pub fn immediate_caller(&self) -> CallSiteRef {
        self.context[0]
    }

    /// Number of context levels (≥ 1).
    pub fn depth(&self) -> usize {
        self.context.len()
    }

    /// Returns this trace truncated to its first `k` context levels.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`TraceKey::depth`].
    pub fn prefix(&self, k: usize) -> TraceKey {
        assert!(k >= 1 && k <= self.context.len(), "prefix length out of range");
        TraceKey {
            callee: self.callee,
            context: self.context[..k].to_vec(),
        }
    }

    /// Returns `true` if `self` and `other` describe the same callee and
    /// their contexts agree on every level both have — the applicability
    /// condition of the paper's Equation 3.
    pub fn partial_matches(&self, other: &TraceKey) -> bool {
        if self.callee != other.callee {
            return false;
        }
        self.context
            .iter()
            .zip(other.context.iter())
            .all(|(a, b)| a == b)
    }

    /// Returns `true` if `other`'s context is a (non-strict) prefix of
    /// `self`'s and the callees agree.
    pub fn extends(&self, other: &TraceKey) -> bool {
        other.context.len() <= self.context.len() && self.partial_matches(other)
    }
}

impl fmt::Display for TraceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print outermost-first, the paper's A ⇒ B ⇒ C reading order.
        for cs in self.context.iter().rev() {
            write!(f, "{cs} => ")?;
        }
        write!(f, "{}", self.callee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::SiteIdx;

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    #[test]
    #[should_panic(expected = "at least one context level")]
    fn empty_context_rejected() {
        let _ = TraceKey::new(mid(0), vec![]);
    }

    #[test]
    fn edge_is_depth_one() {
        let k = TraceKey::edge(cs(1, 0), mid(2));
        assert_eq!(k.depth(), 1);
        assert_eq!(k.immediate_caller(), cs(1, 0));
        assert_eq!(k.callee(), mid(2));
    }

    #[test]
    fn prefix_truncates_outer_context() {
        let k = TraceKey::new(mid(9), vec![cs(1, 0), cs(2, 1), cs(3, 2)]);
        let p = k.prefix(2);
        assert_eq!(p.context(), &[cs(1, 0), cs(2, 1)]);
        assert_eq!(p.callee(), mid(9));
    }

    #[test]
    fn partial_match_is_symmetric_on_shared_levels() {
        let long = TraceKey::new(mid(9), vec![cs(1, 0), cs(2, 1), cs(3, 2)]);
        let short = TraceKey::new(mid(9), vec![cs(1, 0)]);
        assert!(long.partial_matches(&short));
        assert!(short.partial_matches(&long));
        assert!(long.extends(&short));
        assert!(!short.extends(&long));
    }

    #[test]
    fn partial_match_fails_on_divergence() {
        let a = TraceKey::new(mid(9), vec![cs(1, 0), cs(2, 1)]);
        let b = TraceKey::new(mid(9), vec![cs(1, 0), cs(5, 1)]);
        assert!(!a.partial_matches(&b));
        let c = TraceKey::new(mid(8), vec![cs(1, 0)]);
        assert!(!a.partial_matches(&c));
    }

    #[test]
    fn display_reads_outermost_first() {
        let k = TraceKey::new(mid(9), vec![cs(1, 0), cs(2, 1)]);
        assert_eq!(k.to_string(), "m2@1 => m1@0 => m9");
    }
}
