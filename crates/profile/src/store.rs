//! The profile-store abstraction: what the DCG/AI organizers need from a
//! profile-data representation.
//!
//! The paper (Section 6) notes its system "currently uses a very simple
//! trace representation" and considers "moving to a more sophisticated
//! representation" such as the calling-context tree of Ammons, Ball and
//! Larus. Both representations are provided here — the flat [`Dcg`] and the
//! [`CallingContextTree`] — behind this common trait, selectable in the
//! AOS configuration.
//!
//! [`Dcg`]: crate::Dcg
//! [`CallingContextTree`]: crate::CallingContextTree

use crate::dcg::HotTrace;
use crate::key::TraceKey;
use aoci_ir::{CallSiteRef, MethodId};
use std::collections::HashMap;

/// Storage and query interface for weighted trace profiles.
pub trait ProfileStore: std::fmt::Debug {
    /// Records one observation of `key`.
    fn record(&mut self, key: TraceKey, weight: f64);

    /// Ages all weights by `factor`, pruning negligible entries.
    fn decay(&mut self, factor: f64);

    /// Total profile weight.
    fn total_weight(&self) -> f64;

    /// Number of distinct stored traces.
    fn len(&self) -> usize;

    /// Returns `true` if the store holds no traces.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces holding at least `threshold_fraction` of the total weight,
    /// heaviest first.
    fn hot(&self, threshold_fraction: f64) -> Vec<HotTrace>;

    /// Callee distribution of the call site (summed over all contexts with
    /// that immediate caller).
    fn site_distribution(&self, site: CallSiteRef) -> HashMap<MethodId, f64>;

    /// A snapshot of every `(trace, weight)` entry.
    fn entries(&self) -> Vec<(TraceKey, f64)>;
}

impl ProfileStore for crate::Dcg {
    fn record(&mut self, key: TraceKey, weight: f64) {
        crate::Dcg::record(self, key, weight);
    }

    fn decay(&mut self, factor: f64) {
        crate::Dcg::decay(self, factor);
    }

    fn total_weight(&self) -> f64 {
        crate::Dcg::total_weight(self)
    }

    fn len(&self) -> usize {
        crate::Dcg::len(self)
    }

    fn hot(&self, threshold_fraction: f64) -> Vec<HotTrace> {
        crate::Dcg::hot(self, threshold_fraction)
    }

    fn site_distribution(&self, site: CallSiteRef) -> HashMap<MethodId, f64> {
        crate::Dcg::site_distribution(self, site)
    }

    fn entries(&self) -> Vec<(TraceKey, f64)> {
        self.iter().map(|(k, w)| (k.clone(), w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::SiteIdx;

    #[test]
    fn dcg_implements_store() {
        let mut store: Box<dyn ProfileStore> = Box::new(crate::Dcg::default());
        let cs = CallSiteRef::new(MethodId::from_index(0), SiteIdx(0));
        store.record(TraceKey::edge(cs, MethodId::from_index(1)), 2.0);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
        assert_eq!(store.entries().len(), 1);
        assert_eq!(store.hot(0.5).len(), 1);
        store.decay(0.5);
        assert!((store.total_weight() - 1.0).abs() < 1e-12);
    }
}
