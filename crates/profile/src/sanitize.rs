//! Profile sanitization: the validation gate at the profile-store boundary.
//!
//! Profile data flows into the dynamic call graph from several producers
//! (the online trace listener, offline [`SavedProfile`](crate::SavedProfile)
//! files, and — in fault-injection runs — a deliberately hostile injector).
//! A malformed trace that reaches the DCG poisons everything downstream:
//! rules form over non-existent methods, the missing-edge organizer requests
//! impossible compilations, and weights of `NaN` make every hot-threshold
//! comparison vacuous. The sanitizer rejects such traces *at the boundary*
//! so the rest of the system can assume profile data is well-formed.

use crate::key::TraceKey;
use aoci_ir::Program;
use std::fmt;

/// Why a trace was rejected by [`validate_trace`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceDefect {
    /// The callee method index does not exist in the program.
    UnknownCallee,
    /// A context method index does not exist in the program.
    UnknownContextMethod,
    /// A context call-site index is out of range for its method.
    UnknownCallSite,
    /// The weight is NaN or infinite.
    NonFiniteWeight,
    /// The weight is zero or negative.
    NonPositiveWeight,
}

impl fmt::Display for TraceDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceDefect::UnknownCallee => "callee method does not exist",
            TraceDefect::UnknownContextMethod => "context method does not exist",
            TraceDefect::UnknownCallSite => "context call site out of range",
            TraceDefect::NonFiniteWeight => "weight is not finite",
            TraceDefect::NonPositiveWeight => "weight is not positive",
        };
        f.write_str(s)
    }
}

/// Validates one `(trace, weight)` record against `program`.
///
/// # Errors
///
/// Returns the first [`TraceDefect`] found: unknown callee, unknown context
/// method, out-of-range call site, or a non-finite / non-positive weight.
pub fn validate_trace(
    program: &Program,
    key: &TraceKey,
    weight: f64,
) -> Result<(), TraceDefect> {
    if !weight.is_finite() {
        return Err(TraceDefect::NonFiniteWeight);
    }
    if weight <= 0.0 {
        return Err(TraceDefect::NonPositiveWeight);
    }
    let num_methods = program.num_methods();
    if key.callee().index() >= num_methods {
        return Err(TraceDefect::UnknownCallee);
    }
    for cs in key.context() {
        if cs.method.index() >= num_methods {
            return Err(TraceDefect::UnknownContextMethod);
        }
        if cs.site.0 >= program.method(cs.method).num_sites() {
            return Err(TraceDefect::UnknownCallSite);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::{CallSiteRef, MethodId, ProgramBuilder, SiteIdx};

    /// `main` calls `leaf` once: one method with one call site, one without.
    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let leaf = {
            let mut m = b.static_method("leaf", 0);
            let r = m.fresh_reg();
            m.const_int(r, 1);
            m.ret(Some(r));
            m.finish()
        };
        let main = {
            let mut m = b.static_method("main", 0);
            let r = m.fresh_reg();
            m.call_static(Some(r), leaf, &[]);
            m.ret(Some(r));
            m.finish()
        };
        b.finish(main).unwrap()
    }

    fn edge(caller: usize, site: u16, callee: usize) -> TraceKey {
        TraceKey::edge(
            CallSiteRef::new(MethodId::from_index(caller), SiteIdx(site)),
            MethodId::from_index(callee),
        )
    }

    #[test]
    fn well_formed_trace_passes() {
        let p = tiny_program();
        // main (index 1) calls leaf (index 0) at its only site.
        assert_eq!(validate_trace(&p, &edge(1, 0, 0), 1.0), Ok(()));
    }

    #[test]
    fn unknown_indices_are_rejected() {
        let p = tiny_program();
        assert_eq!(
            validate_trace(&p, &edge(1, 0, 99), 1.0),
            Err(TraceDefect::UnknownCallee)
        );
        assert_eq!(
            validate_trace(&p, &edge(99, 0, 0), 1.0),
            Err(TraceDefect::UnknownContextMethod)
        );
        // `leaf` has no call sites at all.
        assert_eq!(
            validate_trace(&p, &edge(0, 0, 0), 1.0),
            Err(TraceDefect::UnknownCallSite)
        );
        assert_eq!(
            validate_trace(&p, &edge(1, 7, 0), 1.0),
            Err(TraceDefect::UnknownCallSite)
        );
    }

    #[test]
    fn bad_weights_are_rejected() {
        let p = tiny_program();
        let k = edge(1, 0, 0);
        assert_eq!(validate_trace(&p, &k, f64::NAN), Err(TraceDefect::NonFiniteWeight));
        assert_eq!(
            validate_trace(&p, &k, f64::INFINITY),
            Err(TraceDefect::NonFiniteWeight)
        );
        assert_eq!(validate_trace(&p, &k, -2.0), Err(TraceDefect::NonPositiveWeight));
        assert_eq!(validate_trace(&p, &k, 0.0), Err(TraceDefect::NonPositiveWeight));
    }
}
