//! The dynamic call graph: weighted trace profiles with decay and
//! hot-trace extraction.

use crate::key::TraceKey;
use aoci_ir::{CallSiteRef, MethodId};
use std::collections::HashMap;

/// Configuration of the dynamic call graph.
#[derive(Clone, Copy, Debug)]
pub struct DcgConfig {
    /// When `true`, recording a trace whose context extends an
    /// already-present shorter trace folds the weight into the longest such
    /// existing prefix instead of creating a separate entry.
    ///
    /// The paper's hybrid scheme keeps this **off** — partial matches are
    /// *not* merged at collection time; the inline oracle combines them at
    /// query time instead (Section 3.3). The `true` setting exists as the
    /// ablation for that design decision.
    pub merge_on_collect: bool,
    /// Entries whose weight falls below this value after decay are removed.
    pub prune_epsilon: f64,
}

impl Default for DcgConfig {
    fn default() -> Self {
        DcgConfig { merge_on_collect: false, prune_epsilon: 0.01 }
    }
}

/// A hot trace extracted from the DCG.
#[derive(Clone, PartialEq, Debug)]
pub struct HotTrace {
    /// The trace.
    pub key: TraceKey,
    /// Its absolute weight.
    pub weight: f64,
    /// Its fraction of the DCG's total weight at extraction time.
    pub fraction: f64,
}

/// The dynamic call graph: a weighted multiset of [`TraceKey`]s.
///
/// Maintained online by the DCG organizer from edge/trace listener buffers.
/// Total weight is tracked incrementally so hot extraction
/// ("edges/traces contributing more than a threshold percentage of the
/// total weight of the profile data", Section 4 — 1.5% in the paper's
/// experiments) is cheap.
#[derive(Clone, Debug)]
pub struct Dcg {
    entries: HashMap<TraceKey, f64>,
    total_weight: f64,
    config: DcgConfig,
}

impl Default for Dcg {
    fn default() -> Self {
        Self::new(DcgConfig::default())
    }
}

impl Dcg {
    /// Creates an empty DCG.
    pub fn new(config: DcgConfig) -> Self {
        Dcg { entries: HashMap::new(), total_weight: 0.0, config }
    }

    /// Returns the configuration.
    pub fn config(&self) -> DcgConfig {
        self.config
    }

    /// Records one observation of `key` with the given weight.
    pub fn record(&mut self, key: TraceKey, weight: f64) {
        self.total_weight += weight;
        if self.config.merge_on_collect && key.depth() > 1 {
            // Fold into the longest existing strict prefix, if any.
            for k in (1..key.depth()).rev() {
                let prefix = key.prefix(k);
                if let Some(w) = self.entries.get_mut(&prefix) {
                    *w += weight;
                    return;
                }
            }
        }
        *self.entries.entry(key).or_insert(0.0) += weight;
    }

    /// Total weight across all entries.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of distinct trace entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no samples have been recorded (or all decayed away).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight currently associated with exactly `key`.
    pub fn weight(&self, key: &TraceKey) -> f64 {
        self.entries.get(key).copied().unwrap_or(0.0)
    }

    /// Multiplies every weight by `factor` (0 < factor ≤ 1), pruning entries
    /// that drop below the configured epsilon. This is the decay organizer's
    /// operation: it biases hot detection toward recently sampled traces so
    /// the system adapts to phase shifts.
    pub fn decay(&mut self, factor: f64) {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor must be in (0, 1]");
        let mut new_total = 0.0;
        let eps = self.config.prune_epsilon;
        self.entries.retain(|_, w| {
            *w *= factor;
            if *w < eps {
                false
            } else {
                new_total += *w;
                true
            }
        });
        self.total_weight = new_total;
    }

    /// Returns every trace whose weight is at least `threshold_fraction` of
    /// the total weight, sorted by descending weight (ties broken by key for
    /// determinism).
    pub fn hot(&self, threshold_fraction: f64) -> Vec<HotTrace> {
        if self.total_weight <= 0.0 {
            return Vec::new();
        }
        let mut v: Vec<HotTrace> = self
            .entries
            .iter()
            .filter(|(_, &w)| w / self.total_weight >= threshold_fraction)
            .map(|(k, &w)| HotTrace {
                key: k.clone(),
                weight: w,
                fraction: w / self.total_weight,
            })
            .collect();
        // `total_cmp`, not `partial_cmp(..).expect(..)`: weights are
        // sanitized at the store boundary, but repeated decay of a denormal
        // can reach states no one anticipated — a poisoned weight must sort
        // deterministically, never panic mid-run.
        v.sort_by(|a, b| b.weight.total_cmp(&a.weight).then_with(|| a.key.cmp(&b.key)));
        v
    }

    /// Aggregated weight of every entry whose *immediate caller* is `site`,
    /// grouped by callee — the receiver/callee distribution of a call site,
    /// used by the iterative imprecision-resolving policy to find
    /// polymorphic sites without a skewed distribution.
    pub fn site_distribution(&self, site: CallSiteRef) -> HashMap<MethodId, f64> {
        let mut out = HashMap::new();
        for (k, &w) in &self.entries {
            if k.immediate_caller() == site {
                *out.entry(k.callee()).or_insert(0.0) += w;
            }
        }
        out
    }

    /// Aggregated weight of the context-insensitive edge `site ⇒ callee`
    /// (i.e. summed over all longer contexts sharing that immediate edge).
    pub fn edge_weight(&self, site: CallSiteRef, callee: MethodId) -> f64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.immediate_caller() == site && k.callee() == callee)
            .map(|(_, &w)| w)
            .sum()
    }

    /// Iterates over all `(trace, weight)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&TraceKey, f64)> {
        self.entries.iter().map(|(k, &w)| (k, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::SiteIdx;

    fn cs(m: usize, s: u16) -> CallSiteRef {
        CallSiteRef::new(MethodId::from_index(m), SiteIdx(s))
    }

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    #[test]
    fn record_and_totals() {
        let mut d = Dcg::default();
        d.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        d.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        d.record(TraceKey::edge(cs(0, 1), mid(2)), 1.0);
        assert_eq!(d.len(), 2);
        assert!((d.total_weight() - 3.0).abs() < 1e-12);
        assert!((d.weight(&TraceKey::edge(cs(0, 0), mid(1))) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_merge_by_default() {
        let mut d = Dcg::default();
        let short = TraceKey::edge(cs(0, 0), mid(1));
        let long = TraceKey::new(mid(1), vec![cs(0, 0), cs(5, 2)]);
        d.record(short.clone(), 1.0);
        d.record(long.clone(), 1.0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.weight(&short), 1.0);
        assert_eq!(d.weight(&long), 1.0);
    }

    #[test]
    fn merge_on_collect_folds_into_prefix() {
        let mut d = Dcg::new(DcgConfig { merge_on_collect: true, ..DcgConfig::default() });
        let short = TraceKey::edge(cs(0, 0), mid(1));
        let long = TraceKey::new(mid(1), vec![cs(0, 0), cs(5, 2)]);
        d.record(short.clone(), 1.0);
        d.record(long.clone(), 1.0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.weight(&short), 2.0);
    }

    #[test]
    fn decay_scales_and_prunes() {
        let mut d = Dcg::new(DcgConfig { prune_epsilon: 0.3, ..DcgConfig::default() });
        d.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        d.record(TraceKey::edge(cs(0, 1), mid(2)), 0.5);
        d.decay(0.5);
        // 1.0 → 0.5 survives; 0.5 → 0.25 pruned.
        assert_eq!(d.len(), 1);
        assert!((d.total_weight() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn denormal_decay_and_nan_poison_never_panic_hot() {
        // Pruning off, so an underflowing weight stays in the store instead
        // of being dropped at the first decay.
        let mut d = Dcg::new(DcgConfig { prune_epsilon: 0.0, ..DcgConfig::default() });
        d.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
        // The smallest positive denormal: one decay step underflows it to
        // exactly 0.0, the poisoned-weight state the sort must tolerate.
        d.record(TraceKey::edge(cs(0, 1), mid(2)), 5e-324);
        for _ in 0..64 {
            d.decay(0.5);
            assert_eq!(d.hot(0.0), d.hot(0.0), "hot() must stay deterministic");
        }
        // `record` is public and unvalidated (the AOS sanitizes at its own
        // boundary), so a NaN can be injected directly: extraction must
        // degrade deterministically, never panic in the weight sort.
        d.record(TraceKey::edge(cs(0, 2), mid(3)), f64::NAN);
        assert_eq!(d.hot(0.015), d.hot(0.015));
        assert_eq!(d.hot(0.0), d.hot(0.0));
    }

    #[test]
    fn hot_extraction_respects_threshold_and_order() {
        let mut d = Dcg::default();
        d.record(TraceKey::edge(cs(0, 0), mid(1)), 80.0);
        d.record(TraceKey::edge(cs(0, 1), mid(2)), 19.0);
        d.record(TraceKey::edge(cs(0, 2), mid(3)), 1.0);
        let hot = d.hot(0.015);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].key.callee(), mid(1));
        assert_eq!(hot[1].key.callee(), mid(2));
        assert!((hot[0].fraction - 0.8).abs() < 1e-12);
        // 1% entry is below the 1.5% threshold.
        assert!(hot.iter().all(|h| h.key.callee() != mid(3)));
    }

    #[test]
    fn profile_dilution_pushes_traces_below_threshold() {
        // The same call edge, context-insensitively, is clearly hot; spread
        // across 4 contexts evenly, each falls below a 30% threshold.
        let mut insensitive = Dcg::default();
        let mut sensitive = Dcg::default();
        for i in 0..4 {
            insensitive.record(TraceKey::edge(cs(0, 0), mid(1)), 1.0);
            sensitive.record(
                TraceKey::new(mid(1), vec![cs(0, 0), cs(10 + i, 0)]),
                1.0,
            );
        }
        assert_eq!(insensitive.hot(0.3).len(), 1);
        assert!(sensitive.hot(0.3).is_empty());
        // But the aggregated edge view still sees the full weight.
        assert!((sensitive.edge_weight(cs(0, 0), mid(1)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn site_distribution_groups_by_callee() {
        let mut d = Dcg::default();
        d.record(TraceKey::new(mid(1), vec![cs(0, 0), cs(7, 0)]), 2.0);
        d.record(TraceKey::new(mid(1), vec![cs(0, 0), cs(8, 0)]), 3.0);
        d.record(TraceKey::edge(cs(0, 0), mid(2)), 5.0);
        d.record(TraceKey::edge(cs(0, 1), mid(1)), 9.0); // different site
        let dist = d.site_distribution(cs(0, 0));
        assert_eq!(dist.len(), 2);
        assert!((dist[&mid(1)] - 5.0).abs() < 1e-12);
        assert!((dist[&mid(2)] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hot_on_empty_is_empty() {
        let d = Dcg::default();
        assert!(d.hot(0.015).is_empty());
        assert!(d.is_empty());
    }
}
