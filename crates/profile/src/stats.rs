//! Trace-walk statistics reproducing the measurements of paper Section 4.
//!
//! While exploring early-termination heuristics, the paper instrumented the
//! trace listener and reported:
//!
//! * 20% of sampled callee methods are immediately parameterless;
//! * 50–80% of sampled traces contain a parameterless call within five
//!   levels of call stack;
//! * in 50–80% of cases only two edges are traversed before the first class
//!   (static) method call;
//! * roughly half the time, four or more call edges must be traversed before
//!   the first large method.
//!
//! [`TraceStatsCollector`] gathers the same quantities from stack snapshots.

use aoci_ir::{MethodId, Program, SizeClass};
use aoci_vm::StackSnapshot;

/// Maximum depth tracked exactly; deeper occurrences land in the overflow
/// bucket.
const MAX_DEPTH: usize = 16;

/// A small depth histogram: counts of "first occurrence at depth d".
#[derive(Clone, Debug, Default)]
pub struct DepthHistogram {
    /// counts[d-1] = number of walks whose first occurrence was at depth d.
    counts: [u64; MAX_DEPTH],
    /// Walks where no occurrence was found within the walked stack.
    not_found: u64,
}

impl DepthHistogram {
    /// Records a first-occurrence depth (1-based), or `None` if not found.
    pub fn record(&mut self, depth: Option<usize>) {
        match depth {
            Some(d) if d >= 1 => {
                let idx = (d - 1).min(MAX_DEPTH - 1);
                self.counts[idx] += 1;
            }
            _ => self.not_found += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.not_found
    }

    /// Fraction of observations whose first occurrence was at depth ≤ d.
    pub fn fraction_within(&self, d: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n: u64 = self.counts.iter().take(d.min(MAX_DEPTH)).sum();
        n as f64 / total as f64
    }

    /// Fraction of observations whose first occurrence was at depth ≥ d
    /// (including not-found).
    pub fn fraction_at_or_beyond(&self, d: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.fraction_within(d.saturating_sub(1))
    }
}

/// Collects the Section 4 statistics from sampled stacks.
#[derive(Clone, Debug, Default)]
pub struct TraceStatsCollector {
    samples: u64,
    immediately_parameterless: u64,
    parameterless_depth: DepthHistogram,
    class_method_depth: DepthHistogram,
    large_method_depth: DepthHistogram,
}

impl TraceStatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one (prologue) sample.
    ///
    /// Depth conventions match the paper's phrasing: the sampled callee is
    /// depth 1, its caller depth 2, and so on. "Immediately parameterless"
    /// means the callee itself takes no parameters.
    pub fn observe(&mut self, snapshot: &StackSnapshot, program: &Program) {
        let Some(callee) = snapshot.top_method() else {
            return;
        };
        self.samples += 1;
        if program.method(callee).is_parameterless() {
            self.immediately_parameterless += 1;
        }
        let depth_of = |pred: &dyn Fn(MethodId) -> bool| {
            snapshot
                .frames
                .iter()
                .position(|f| pred(f.method))
                .map(|i| i + 1)
        };
        self.parameterless_depth
            .record(depth_of(&|m| program.method(m).is_parameterless()));
        self.class_method_depth
            .record(depth_of(&|m| program.method(m).kind().is_static()));
        self.large_method_depth
            .record(depth_of(&|m| program.method(m).size_class() == SizeClass::Large));
    }

    /// Total samples observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Produces the summary report.
    pub fn report(&self) -> TraceStatsReport {
        let frac = |n: u64| {
            if self.samples == 0 {
                0.0
            } else {
                n as f64 / self.samples as f64
            }
        };
        TraceStatsReport {
            samples: self.samples,
            immediately_parameterless: frac(self.immediately_parameterless),
            parameterless_within_5: self.parameterless_depth.fraction_within(5),
            class_method_within_2: self.class_method_depth.fraction_within(2),
            large_at_or_beyond_4: self.large_method_depth.fraction_at_or_beyond(4),
        }
    }

    /// The histogram of first-parameterless-method depths.
    pub fn parameterless_depths(&self) -> &DepthHistogram {
        &self.parameterless_depth
    }

    /// The histogram of first-class-method depths.
    pub fn class_method_depths(&self) -> &DepthHistogram {
        &self.class_method_depth
    }

    /// The histogram of first-large-method depths.
    pub fn large_method_depths(&self) -> &DepthHistogram {
        &self.large_method_depth
    }
}

/// Summary statistics corresponding to the paper's Section 4 numbers.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceStatsReport {
    /// Samples observed.
    pub samples: u64,
    /// Fraction of samples whose callee takes no parameters (paper: ~20%).
    pub immediately_parameterless: f64,
    /// Fraction with a parameterless method within 5 stack levels
    /// (paper: 50–80%).
    pub parameterless_within_5: f64,
    /// Fraction encountering a class (static) method within 2 levels
    /// (paper: 50–80%).
    pub class_method_within_2: f64,
    /// Fraction needing 4 or more levels to reach a large method
    /// (paper: ~50%).
    pub large_at_or_beyond_4: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::ProgramBuilder;
    use aoci_vm::SourceFrame;

    /// Builds a program with methods of known shapes:
    /// index 0 = main (static, parameterless, tiny)
    /// index 1 = static with 2 params, large body
    /// index 2 = virtual, parameterless, medium body
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let a = b.class("A", None);
        let sel = b.selector("v", 0);
        {
            let mut m = b.static_method("big", 2);
            m.work(500);
            m.ret(None);
            m.finish();
        }
        {
            let mut m = b.virtual_method("A.v", a, sel);
            m.work(100);
            m.ret(None);
            m.finish();
        }
        let main = {
            let mut m = b.static_method("main", 0);
            m.ret(None);
            m.finish()
        };
        b.finish(main).unwrap()
    }

    fn snap(methods: &[&str], p: &Program) -> StackSnapshot {
        let frames = methods
            .iter()
            .enumerate()
            .map(|(i, name)| SourceFrame {
                method: p.method_by_name(name).unwrap(),
                callsite_to_inner: if i == 0 {
                    None
                } else {
                    Some(aoci_ir::SiteIdx(0))
                },
            })
            .collect();
        StackSnapshot {
            frames,
            root_method: p.entry(),
            top_in_prologue: true,
            cycles: 0,
        }
    }

    #[test]
    fn classifies_immediate_parameterless() {
        let p = program();
        let mut c = TraceStatsCollector::new();
        c.observe(&snap(&["A.v", "big", "main"], &p), &p); // A.v parameterless
        c.observe(&snap(&["big", "main"], &p), &p); // big has params
        let r = c.report();
        assert_eq!(r.samples, 2);
        assert!((r.immediately_parameterless - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depth_measurements() {
        let p = program();
        let mut c = TraceStatsCollector::new();
        // Stack: big (depth1), A.v (2), main (3).
        c.observe(&snap(&["big", "A.v", "main"], &p), &p);
        // First parameterless = A.v at depth 2.
        assert!(c.parameterless_depths().fraction_within(1) < 1e-12);
        assert!((c.parameterless_depths().fraction_within(2) - 1.0).abs() < 1e-12);
        // First class (static) method = big at depth 1.
        assert!((c.class_method_depths().fraction_within(1) - 1.0).abs() < 1e-12);
        // First large = big at depth 1 → not "at or beyond 4".
        assert!(c.large_method_depths().fraction_at_or_beyond(4) < 1e-12);
    }

    #[test]
    fn not_found_counts_as_beyond() {
        let p = program();
        let mut c = TraceStatsCollector::new();
        // Stack of only tiny parameterless statics: no large method found.
        c.observe(&snap(&["main"], &p), &p);
        assert!((c.large_method_depths().fraction_at_or_beyond(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = DepthHistogram::default();
        h.record(Some(100)); // clamps to MAX_DEPTH bucket
        h.record(Some(1));
        h.record(None);
        assert_eq!(h.total(), 3);
        assert!((h.fraction_within(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.fraction_within(MAX_DEPTH) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_zeroes() {
        let c = TraceStatsCollector::new();
        let r = c.report();
        assert_eq!(r.samples, 0);
        assert_eq!(r.immediately_parameterless, 0.0);
    }
}
