//! The simulated-machine cost model.
//!
//! All costs are in abstract cycles. Absolute values are uncalibrated — the
//! reproduction targets the paper's *relative* results (speedup over
//! context-insensitive inlining, code-size deltas, component fractions) —
//! but the ratios are chosen to be plausible for the paper's era: baseline
//! code roughly an order of magnitude slower than optimized code, virtual
//! dispatch a few times the cost of a direct call, optimizing compilation
//! orders of magnitude more expensive per instruction than execution.

use crate::code::OptLevel;
use aoci_ir::{Instr, CALL_SEQUENCE_SIZE};

/// Cycle costs for execution, dispatch, compilation and sampling.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Multiplier applied to instruction costs in baseline-compiled code.
    pub baseline_factor: u64,
    /// Multiplier applied to instruction costs in optimized code.
    pub optimized_factor: u64,
    /// Cost of a statically-bound call (argument setup + frame + return).
    pub static_call_cost: u64,
    /// Additional cost of a virtual dispatch on top of the call cost.
    pub virtual_dispatch_cost: u64,
    /// Cost of one compiler-inserted class-test guard.
    pub guard_cost: u64,
    /// Cost of allocating an object or array.
    pub alloc_cost: u64,
    /// Baseline-compilation cycles per abstract instruction unit.
    pub baseline_compile_per_unit: u64,
    /// Optimizing-compilation cycles per abstract instruction unit of
    /// *generated* code (so inlining bloat directly costs compile time).
    pub opt_compile_per_unit: u64,
    /// Fixed per-method optimizing-compilation overhead.
    pub opt_compile_fixed: u64,
    /// Simulated cycles between timer samples (the paper samples at ~100 Hz;
    /// with the default workload lengths this period yields a comparable
    /// number of samples per run).
    pub sample_period: u64,
    /// Listener cycles charged per taken sample, plus
    /// [`CostModel::listener_per_frame`] per stack frame a trace listener
    /// walks.
    pub listener_base_cost: u64,
    /// Listener cycles per walked stack frame.
    pub listener_per_frame: u64,
    /// Fixed cycles per on-stack-replacement transition (either
    /// direction): locating the OSR point and setting up the new frame.
    pub osr_transition_cost: u64,
    /// Additional OSR cycles per frame slot the mapping transfers.
    pub osr_per_slot_cost: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            baseline_factor: 8,
            optimized_factor: 1,
            static_call_cost: CALL_SEQUENCE_SIZE as u64,
            virtual_dispatch_cost: 2 * CALL_SEQUENCE_SIZE as u64,
            guard_cost: 2,
            alloc_cost: 20,
            baseline_compile_per_unit: 30,
            opt_compile_per_unit: 150,
            opt_compile_fixed: 6_000,
            sample_period: 40_000,
            listener_base_cost: 40,
            listener_per_frame: 12,
            osr_transition_cost: 120,
            osr_per_slot_cost: 2,
        }
    }
}

impl CostModel {
    /// Returns the execution-speed multiplier for `level`.
    pub fn level_factor(&self, level: OptLevel) -> u64 {
        match level {
            OptLevel::Baseline => self.baseline_factor,
            OptLevel::Optimized => self.optimized_factor,
        }
    }

    /// Returns the cost in cycles of executing `instr` at `level`,
    /// *excluding* callee execution for calls.
    pub fn instr_cost(&self, instr: &Instr, level: OptLevel) -> u64 {
        let factor = self.level_factor(level);
        match instr {
            Instr::Work { units } => *units as u64 * factor,
            Instr::CallStatic { .. } => self.static_call_cost * factor,
            Instr::CallVirtual { .. } => {
                (self.static_call_cost + self.virtual_dispatch_cost) * factor
            }
            Instr::GuardClass { .. } | Instr::GuardMethod { .. } => self.guard_cost * factor,
            Instr::New { .. } | Instr::ArrNew { .. } => self.alloc_cost * factor,
            _ => factor,
        }
    }

    /// Cycles to baseline-compile a method of the given abstract size.
    pub fn baseline_compile_cost(&self, size_units: u32) -> u64 {
        self.baseline_compile_per_unit * size_units as u64
    }

    /// Cycles to optimize-compile a method whose *generated* code has the
    /// given abstract size.
    pub fn opt_compile_cost(&self, generated_units: u32) -> u64 {
        self.opt_compile_fixed + self.opt_compile_per_unit * generated_units as u64
    }

    /// Cycles charged to the listeners component for one sample that walked
    /// `frames` stack frames.
    pub fn sample_cost(&self, frames: usize) -> u64 {
        self.listener_base_cost + self.listener_per_frame * frames as u64
    }

    /// Cycles charged to the OSR component for one on-stack-replacement
    /// transition whose frame mapping transferred `slots` slots.
    pub fn osr_transfer_cost(&self, slots: usize) -> u64 {
        self.osr_transition_cost + self.osr_per_slot_cost * slots as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aoci_ir::{MethodId, Reg, SiteIdx};

    #[test]
    fn baseline_code_is_slower() {
        let m = CostModel::default();
        let w = Instr::Work { units: 10 };
        assert!(m.instr_cost(&w, OptLevel::Baseline) > m.instr_cost(&w, OptLevel::Optimized));
        assert_eq!(m.instr_cost(&w, OptLevel::Optimized), 10);
    }

    #[test]
    fn virtual_calls_cost_more_than_static() {
        let m = CostModel::default();
        let s = Instr::CallStatic { site: SiteIdx(0), dst: None, callee: MethodId::from_index(0), args: vec![] };
        let v = Instr::CallVirtual {
            site: SiteIdx(0),
            dst: None,
            selector: aoci_ir::SelectorId::from_index(0),
            recv: Reg(0),
            args: vec![],
        };
        assert!(m.instr_cost(&v, OptLevel::Optimized) > m.instr_cost(&s, OptLevel::Optimized));
    }

    #[test]
    fn guards_are_cheaper_than_dispatch() {
        let m = CostModel::default();
        let g = Instr::GuardClass {
            recv: Reg(0),
            class: aoci_ir::ClassId::from_index(0),
            else_target: 0,
        };
        assert!(m.instr_cost(&g, OptLevel::Optimized) < m.virtual_dispatch_cost);
    }

    #[test]
    fn compile_costs_scale_with_size() {
        let m = CostModel::default();
        assert!(m.opt_compile_cost(200) > m.opt_compile_cost(100));
        assert!(m.opt_compile_cost(100) > m.baseline_compile_cost(100));
        assert_eq!(
            m.baseline_compile_cost(10),
            10 * m.baseline_compile_per_unit
        );
    }


    #[test]
    fn level_factor_matches_fields() {
        let m = CostModel::default();
        assert_eq!(m.level_factor(OptLevel::Baseline), m.baseline_factor);
        assert_eq!(m.level_factor(OptLevel::Optimized), m.optimized_factor);
    }

    #[test]
    fn allocation_is_costed() {
        let m = CostModel::default();
        let new = Instr::New { dst: Reg(0), class: aoci_ir::ClassId::from_index(0) };
        assert_eq!(m.instr_cost(&new, OptLevel::Optimized), m.alloc_cost);
        let arr = Instr::ArrNew { dst: Reg(0), len: Reg(1) };
        assert_eq!(m.instr_cost(&arr, OptLevel::Optimized), m.alloc_cost);
    }

    #[test]
    fn osr_transfer_cost_scales_with_slots() {
        let m = CostModel::default();
        assert_eq!(m.osr_transfer_cost(0), m.osr_transition_cost);
        assert!(m.osr_transfer_cost(16) > m.osr_transfer_cost(4));
        assert_eq!(
            m.osr_transfer_cost(5),
            m.osr_transition_cost + 5 * m.osr_per_slot_cost
        );
    }

    #[test]
    fn sample_cost_scales_with_depth() {
        let m = CostModel::default();
        assert!(m.sample_cost(10) > m.sample_cost(1));
        assert_eq!(m.sample_cost(0), m.listener_base_cost);
    }
}
