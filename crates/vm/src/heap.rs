//! A simple non-moving heap of objects and arrays.
//!
//! The paper's evaluation uses Jikes RVM's semispace copying collector; GC
//! behaviour is orthogonal to inlining policy, so this heap never collects —
//! workloads are sized to fit. Allocation cost is modelled by the
//! [`CostModel`](crate::CostModel) instead.

use crate::value::Value;
use aoci_ir::ClassId;
use std::fmt;

/// A reference to a heap entry (object or array).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjRef(pub(crate) u32);

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Clone, Debug)]
enum Entry {
    Object { class: ClassId, fields: Vec<Value> },
    Array { elems: Vec<Value> },
}

/// The VM heap.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    entries: Vec<Entry>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object of `class` with `layout_size` null-initialised
    /// field slots.
    pub fn alloc_object(&mut self, class: ClassId, layout_size: u32) -> ObjRef {
        let r = ObjRef(self.entries.len() as u32);
        self.entries.push(Entry::Object {
            class,
            fields: vec![Value::Null; layout_size as usize],
        });
        r
    }

    /// Allocates an array of `len` elements initialised to integer 0.
    pub fn alloc_array(&mut self, len: u32) -> ObjRef {
        let r = ObjRef(self.entries.len() as u32);
        self.entries.push(Entry::Array {
            elems: vec![Value::Int(0); len as usize],
        });
        r
    }

    /// Returns the dynamic class of an object, or `None` for arrays.
    pub fn class_of(&self, r: ObjRef) -> Option<ClassId> {
        match &self.entries[r.0 as usize] {
            Entry::Object { class, .. } => Some(*class),
            Entry::Array { .. } => None,
        }
    }

    /// Reads object field slot `offset`. Returns `None` if `r` is an array
    /// or the offset is out of range.
    pub fn get_field(&self, r: ObjRef, offset: u32) -> Option<Value> {
        match &self.entries[r.0 as usize] {
            Entry::Object { fields, .. } => fields.get(offset as usize).copied(),
            Entry::Array { .. } => None,
        }
    }

    /// Writes object field slot `offset`. Returns `false` if `r` is an array
    /// or the offset is out of range.
    pub fn put_field(&mut self, r: ObjRef, offset: u32, v: Value) -> bool {
        match &mut self.entries[r.0 as usize] {
            Entry::Object { fields, .. } => match fields.get_mut(offset as usize) {
                Some(slot) => {
                    *slot = v;
                    true
                }
                None => false,
            },
            Entry::Array { .. } => false,
        }
    }

    /// Reads array element `idx`. Returns `None` if `r` is not an array or
    /// the index is out of bounds.
    pub fn arr_get(&self, r: ObjRef, idx: i64) -> Option<Value> {
        match &self.entries[r.0 as usize] {
            Entry::Array { elems } => usize::try_from(idx).ok().and_then(|i| elems.get(i)).copied(),
            Entry::Object { .. } => None,
        }
    }

    /// Writes array element `idx`. Returns `false` if `r` is not an array or
    /// the index is out of bounds.
    pub fn arr_set(&mut self, r: ObjRef, idx: i64, v: Value) -> bool {
        match &mut self.entries[r.0 as usize] {
            Entry::Array { elems } => {
                if let Some(slot) = usize::try_from(idx).ok().and_then(|i| elems.get_mut(i)) {
                    *slot = v;
                    true
                } else {
                    false
                }
            }
            Entry::Object { .. } => false,
        }
    }

    /// Returns the length of an array, or `None` if `r` is not an array.
    pub fn arr_len(&self, r: ObjRef) -> Option<i64> {
        match &self.entries[r.0 as usize] {
            Entry::Array { elems } => Some(elems.len() as i64),
            Entry::Object { .. } => None,
        }
    }

    /// Number of heap entries ever allocated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields_round_trip() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId::from_index(0), 2);
        assert_eq!(h.get_field(o, 0), Some(Value::Null));
        assert!(h.put_field(o, 1, Value::Int(9)));
        assert_eq!(h.get_field(o, 1), Some(Value::Int(9)));
        assert_eq!(h.get_field(o, 2), None);
        assert!(!h.put_field(o, 5, Value::Int(1)));
        assert_eq!(h.class_of(o), Some(ClassId::from_index(0)));
    }

    #[test]
    fn arrays_round_trip() {
        let mut h = Heap::new();
        let a = h.alloc_array(3);
        assert_eq!(h.arr_len(a), Some(3));
        assert_eq!(h.arr_get(a, 0), Some(Value::Int(0)));
        assert!(h.arr_set(a, 2, Value::Int(7)));
        assert_eq!(h.arr_get(a, 2), Some(Value::Int(7)));
        assert_eq!(h.arr_get(a, 3), None);
        assert_eq!(h.arr_get(a, -1), None);
        assert!(!h.arr_set(a, -1, Value::Int(0)));
        assert_eq!(h.class_of(a), None);
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let mut h = Heap::new();
        let o = h.alloc_object(ClassId::from_index(1), 1);
        let a = h.alloc_array(1);
        assert_eq!(h.arr_len(o), None);
        assert_eq!(h.get_field(a, 0), None);
        assert!(!h.put_field(a, 0, Value::Int(1)));
        assert!(!h.arr_set(o, 0, Value::Int(1)));
    }
}
