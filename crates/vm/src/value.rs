//! Runtime values.

use crate::heap::ObjRef;
use std::fmt;

/// A runtime value: a 64-bit integer, a heap reference, or null.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Value {
    /// The null reference (also the default / uninitialised value of
    /// reference-typed slots; integer slots default to `Int(0)` where the
    /// context demands an integer).
    #[default]
    Null,
    /// A signed 64-bit integer.
    Int(i64),
    /// A reference to a heap object or array.
    Ref(ObjRef),
}

impl Value {
    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the reference payload, if this is a [`Value::Ref`].
    pub fn as_ref(self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// Returns `true` if the value is null.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Equality as the VM's `eq`/`ne` conditions see it: integers by value,
    /// references by identity, null equal only to null, and mixed kinds
    /// unequal.
    pub fn vm_eq(self, other: Value) -> bool {
        self == other
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Ref(r)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        let r = ObjRef(3);
        assert_eq!(Value::Ref(r).as_ref(), Some(r));
    }

    #[test]
    fn vm_eq_semantics() {
        assert!(Value::Int(1).vm_eq(Value::Int(1)));
        assert!(!Value::Int(1).vm_eq(Value::Int(2)));
        assert!(Value::Null.vm_eq(Value::Null));
        assert!(!Value::Int(0).vm_eq(Value::Null));
        assert!(Value::Ref(ObjRef(7)).vm_eq(Value::Ref(ObjRef(7))));
        assert!(!Value::Ref(ObjRef(7)).vm_eq(Value::Ref(ObjRef(8))));
        assert!(!Value::Ref(ObjRef(0)).vm_eq(Value::Int(0)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }
}
