//! The compiled-code registry: current version of every method, plus the
//! code-space accounting behind the paper's Figure 5.

use crate::code::{MethodVersion, OptLevel};
use aoci_ir::MethodId;
use std::collections::HashSet;
use std::sync::Arc;

/// Tracks the currently-installed [`MethodVersion`] for each method and
/// aggregates code-space statistics.
///
/// Installation follows the Jikes model: a newly compiled version takes
/// effect at the *next invocation* of the method; activations already on the
/// stack keep running their old version (each frame holds an `Arc` to the
/// version it started in) — unless OSR transfers them. With
/// [`VmConfig::osr_enabled`](crate::VmConfig) a hot baseline activation can
/// be promoted into a freshly installed version mid-loop (OSR-in), and an
/// activation stuck on an [invalidated](CodeRegistry::invalidate) version
/// deoptimizes back to baseline at its next loop header (OSR-out).
#[derive(Clone, Debug, Default)]
pub struct CodeRegistry {
    current: Vec<Option<Arc<MethodVersion>>>,
    next_version_id: u32,
    /// Total abstract size of all *optimized* code ever generated
    /// (recompilations accumulate — each compilation emitted real machine
    /// code in the paper's measurement).
    cumulative_optimized_size: u64,
    /// Total abstract size of currently-installed optimized versions.
    current_optimized_size: u64,
    /// Number of optimizing compilations performed.
    opt_compilations: u32,
    /// Number of baseline compilations performed.
    baseline_compilations: u32,
    /// Number of optimized versions invalidated (guard-thrash recovery).
    invalidations: u32,
    /// `version_id`s of invalidated versions. The interpreter consults
    /// this at loop back-edges: an in-flight activation still running an
    /// invalidated version OSR-outs to baseline at its next loop header
    /// instead of finishing on stale code.
    invalidated_ids: HashSet<u32>,
}

impl CodeRegistry {
    /// Creates a registry for a program with `num_methods` methods.
    pub fn new(num_methods: usize) -> Self {
        CodeRegistry {
            current: vec![None; num_methods],
            ..Self::default()
        }
    }

    /// Returns the currently-installed version of `method`, if any.
    pub fn current(&self, method: MethodId) -> Option<&Arc<MethodVersion>> {
        self.current[method.index()].as_ref()
    }

    /// Installs `version` as the current code for its method, assigning it a
    /// fresh `version_id`. Returns the installed `Arc`.
    pub fn install(&mut self, mut version: MethodVersion) -> Arc<MethodVersion> {
        version.version_id = self.next_version_id;
        self.next_version_id += 1;
        match version.level {
            OptLevel::Optimized => {
                self.cumulative_optimized_size += version.code_size as u64;
                self.current_optimized_size += version.code_size as u64;
                self.opt_compilations += 1;
            }
            OptLevel::Baseline => {
                self.baseline_compilations += 1;
            }
        }
        let slot = &mut self.current[version.method.index()];
        if let Some(old) = slot.as_ref() {
            if old.level == OptLevel::Optimized {
                self.current_optimized_size -= old.code_size as u64;
            }
        }
        let arc = Arc::new(version);
        *slot = Some(Arc::clone(&arc));
        arc
    }

    /// Baseline-compiles `def` and installs the result.
    pub fn install_baseline(&mut self, def: &aoci_ir::MethodDef) -> Arc<MethodVersion> {
        self.install(MethodVersion::baseline(def))
    }

    /// Invalidates the current *optimized* version of `method`: the slot is
    /// cleared, so the method falls back to (re-)baseline compilation at its
    /// next invocation — the graceful-degradation path for guard-thrashing
    /// code. Activations already on the stack keep their `Arc`; the
    /// version's id is recorded as invalidated, and when OSR is enabled
    /// ([`VmConfig::osr_enabled`](crate::VmConfig)) the interpreter
    /// transfers such an activation back to an equivalent baseline frame
    /// at its next loop header (OSR-out) rather than letting it finish on
    /// the stale code. Returns `false` (and does nothing) when the method
    /// has no optimized version installed.
    pub fn invalidate(&mut self, method: MethodId) -> bool {
        let slot = &mut self.current[method.index()];
        match slot.as_ref() {
            Some(v) if v.level == OptLevel::Optimized => {
                self.current_optimized_size -= v.code_size as u64;
                self.invalidations += 1;
                self.invalidated_ids.insert(v.version_id);
                *slot = None;
                true
            }
            _ => false,
        }
    }

    /// Whether the version with `version_id` has been invalidated — the
    /// OSR-out trigger for in-flight activations still holding its `Arc`.
    pub fn is_invalidated(&self, version_id: u32) -> bool {
        self.invalidated_ids.contains(&version_id)
    }

    /// Number of optimized versions invalidated.
    pub fn invalidations(&self) -> u32 {
        self.invalidations
    }

    /// Total abstract size of all optimized code ever generated. This is the
    /// Figure 5 metric ("bytes of optimized machine code").
    pub fn cumulative_optimized_size(&self) -> u64 {
        self.cumulative_optimized_size
    }

    /// Total abstract size of the optimized versions currently installed.
    pub fn current_optimized_size(&self) -> u64 {
        self.current_optimized_size
    }

    /// Number of optimizing compilations performed.
    pub fn opt_compilations(&self) -> u32 {
        self.opt_compilations
    }

    /// Number of baseline compilations performed (= dynamically compiled
    /// methods; the "Methods" column of Table 1).
    pub fn baseline_compilations(&self) -> u32 {
        self.baseline_compilations
    }

    /// Iterates over currently-installed optimized versions.
    pub fn optimized_versions(&self) -> impl Iterator<Item = &Arc<MethodVersion>> {
        self.current
            .iter()
            .flatten()
            .filter(|v| v.level == OptLevel::Optimized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::InlineMap;

    fn version(method: usize, level: OptLevel, size: u32) -> MethodVersion {
        let m = MethodId::from_index(method);
        MethodVersion {
            method: m,
            level,
            body: vec![],
            num_regs: 0,
            inline_map: InlineMap::baseline(m, 0),
            code_size: size,
            version_id: 0,
            osr_map: crate::OsrMap::empty(),
            decoded: crate::DecodeCache::default(),
        }
    }

    #[test]
    fn install_and_lookup() {
        let mut r = CodeRegistry::new(2);
        assert!(r.current(MethodId::from_index(0)).is_none());
        r.install(version(0, OptLevel::Baseline, 10));
        assert!(r.current(MethodId::from_index(0)).is_some());
        assert_eq!(r.baseline_compilations(), 1);
        assert_eq!(r.cumulative_optimized_size(), 0);
    }

    #[test]
    fn optimized_size_accounting() {
        let mut r = CodeRegistry::new(1);
        r.install(version(0, OptLevel::Baseline, 10));
        r.install(version(0, OptLevel::Optimized, 100));
        assert_eq!(r.cumulative_optimized_size(), 100);
        assert_eq!(r.current_optimized_size(), 100);
        // Recompilation replaces current but accumulates cumulative.
        r.install(version(0, OptLevel::Optimized, 80));
        assert_eq!(r.cumulative_optimized_size(), 180);
        assert_eq!(r.current_optimized_size(), 80);
        assert_eq!(r.opt_compilations(), 2);
    }

    #[test]
    fn invalidation_clears_slot_and_accounting() {
        let mut r = CodeRegistry::new(2);
        let m0 = MethodId::from_index(0);
        let installed = r.install(version(0, OptLevel::Optimized, 100));
        assert_eq!(r.current_optimized_size(), 100);
        assert!(!r.is_invalidated(installed.version_id));
        assert!(r.invalidate(m0));
        assert!(r.is_invalidated(installed.version_id), "in-flight frames can see the invalidation");
        assert!(r.current(m0).is_none(), "slot cleared → baseline at next invocation");
        assert_eq!(r.current_optimized_size(), 0);
        // Cumulative size is history, not residency: it stays.
        assert_eq!(r.cumulative_optimized_size(), 100);
        assert_eq!(r.invalidations(), 1);
        // Baseline code and empty slots are not invalidatable.
        assert!(!r.invalidate(m0));
        r.install(version(1, OptLevel::Baseline, 10));
        assert!(!r.invalidate(MethodId::from_index(1)));
        assert_eq!(r.invalidations(), 1);
    }

    #[test]
    fn version_ids_are_unique_and_increasing() {
        let mut r = CodeRegistry::new(1);
        let a = r.install(version(0, OptLevel::Baseline, 1));
        let b = r.install(version(0, OptLevel::Optimized, 1));
        assert!(b.version_id > a.version_id);
    }

    #[test]
    fn old_versions_survive_via_arc() {
        let mut r = CodeRegistry::new(1);
        let old = r.install(version(0, OptLevel::Baseline, 1));
        r.install(version(0, OptLevel::Optimized, 5));
        // A frame holding `old` can still execute it.
        assert_eq!(old.level, OptLevel::Baseline);
        assert_eq!(
            r.current(MethodId::from_index(0)).unwrap().level,
            OptLevel::Optimized
        );
    }
}
