//! # aoci-vm — execution engine and simulated machine
//!
//! Executes [`aoci-ir`](../aoci_ir/index.html) programs under a deterministic
//! simulated clock, playing the role of the hardware + Jikes RVM execution
//! substrate in *Adaptive Online Context-Sensitive Inlining* (CGO 2003).
//!
//! Key pieces:
//!
//! * [`Vm`] — the interpreter. It executes *compiled method versions* (either
//!   baseline code — the method body as written — or optimized code produced
//!   by the `aoci-opt` inliner), charging simulated cycles per instruction
//!   according to a [`CostModel`]. Optimized code runs at a lower per-
//!   instruction cost, guards cost cycles and may fail into virtual-dispatch
//!   fallbacks, and eliminated calls save real call overhead — so speedup,
//!   slowdown and guard misprediction are emergent, not assumed.
//! * [`Clock`] — simulated time with per-[`Component`] accounting, the basis
//!   of the paper's Figure 6 (fraction of execution spent in each part of
//!   the adaptive optimization system).
//! * [`MethodVersion`] / [`InlineMap`] — compiled code artifacts. Inline maps
//!   record, for every instruction of optimized code, which source method it
//!   was inlined from, enabling the *source-level stack walk* the paper's
//!   trace listener depends on (Section 3.3, "Optimized Stack Frames").
//! * [`StackSnapshot`] — what a timer-based sample observes: the source-level
//!   call stack, the machine-level root method, and whether the sample
//!   landed in a method prologue (the condition under which Jikes RVM's edge
//!   listener records a call edge).
//!
//! ## Quick example
//!
//! ```
//! use aoci_ir::ProgramBuilder;
//! use aoci_vm::{CostModel, Vm};
//!
//! let mut b = ProgramBuilder::new();
//! let main = {
//!     let mut m = b.static_method("main", 0);
//!     let r = m.fresh_reg();
//!     m.const_int(r, 42);
//!     m.ret(Some(r));
//!     m.finish()
//! };
//! let program = b.finish(main)?;
//! let mut vm = Vm::new(&program, CostModel::default());
//! let result = vm.run_to_completion()?;
//! assert_eq!(result.and_then(|v| v.as_int()), Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod clock;
mod code;
mod cost;
mod error;
mod heap;
mod interp;
mod osr;
mod registry;
mod stack;
mod value;

pub use clock::{Clock, Component, COMPONENTS};
pub use code::{DecodeCache, InlineMap, InlineMapBuilder, InlineNode, MethodVersion, OptLevel};
pub use cost::CostModel;
pub use error::VmError;
pub use heap::{Heap, ObjRef};
pub use interp::{ExecCounters, MethodGuardStats, OsrRequest, RunOutcome, Vm, VmConfig};
pub use osr::{OsrError, OsrMap, OsrPoint, OsrSlot};
pub use registry::CodeRegistry;
pub use stack::{SourceFrame, StackSnapshot};
pub use value::Value;
