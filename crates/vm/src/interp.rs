//! The interpreter: executes compiled method versions under the simulated
//! clock, yielding to the caller at timer samples.

use crate::clock::{Clock, Component};
use crate::code::{MethodVersion, OptLevel};
use crate::cost::CostModel;
use crate::error::VmError;
use crate::heap::Heap;
use crate::registry::CodeRegistry;
use crate::stack::{SourceFrame, StackSnapshot};
use crate::value::Value;
use aoci_ir::{BinOp, Cond, Instr, MethodId, Program, Reg};
use aoci_trace::{TraceEvent, TraceSink};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

pub(crate) mod decode;

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// When `true` (the default), stack snapshots reconstruct source-level
    /// frames through inline maps, as Jikes RVM does (paper Section 3.3).
    /// When `false`, inlined frames are invisible to samplers — the "naive
    /// trace listener" the paper warns about; kept as an ablation.
    pub source_level_walk: bool,
    /// Number of leading instructions of a (source-level) method body that
    /// count as its prologue for edge/trace sampling purposes.
    pub prologue_window: u32,
    /// Maximum number of source-level frames a snapshot records.
    pub max_walk_frames: usize,
    /// Maximum machine call-stack depth before [`VmError::StackOverflow`].
    pub max_stack_depth: usize,
    /// Enables on-stack replacement. Off by default: the paper's system
    /// switches code versions only at invocation boundaries, so the
    /// reproduction sweeps opt in explicitly. When off, the VM neither
    /// counts loop back-edges nor deoptimizes in-flight activations, and
    /// behaves bit-identically to a VM built before OSR existed.
    pub osr_enabled: bool,
    /// Taken loop back-edges a *baseline* activation executes at one loop
    /// header before the VM yields [`RunOutcome::OsrRequest`], asking the
    /// driver for a promotion (OSR-in).
    pub osr_backedge_threshold: u32,
    /// Minimum guards an *optimized* activation must execute before its
    /// own miss rate can arm deoptimization (mirrors the recovery layer's
    /// window minimum, but frame-local: a single long-running activation
    /// thrashing its guards arms OSR-out without waiting for the method-
    /// level health monitor).
    pub osr_exit_min_checks: u64,
    /// Frame-local guard-miss rate above which an optimized activation
    /// arms deoptimization and OSR-outs at its next loop header.
    pub osr_exit_miss_threshold: f64,
    /// When `true` (the default), execute through the pre-decoded threaded
    /// dispatch loop (DESIGN.md §13): bodies are lowered once into flat
    /// [`DecodedInstr`](decode) arrays with resolved operands, precomputed
    /// costs and fused superinstructions, dispatched through function
    /// pointers. When `false`, the legacy per-step `match` loop runs
    /// instead. Both paths are bit-identical in every observable —
    /// simulated cycles, counters, trace events, errors — the switch only
    /// changes wall-clock speed (`AOCI_DECODE=0` drives it in benches and
    /// the dispatch-equivalence CI matrix).
    pub decode: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            source_level_walk: true,
            prologue_window: 3,
            max_walk_frames: 64,
            max_stack_depth: 4096,
            osr_enabled: false,
            osr_backedge_threshold: 256,
            osr_exit_min_checks: 48,
            osr_exit_miss_threshold: 0.9,
            decode: true,
        }
    }
}

/// A baseline activation tripped its loop back-edge counter and wants to
/// be promoted into optimized code mid-loop (OSR-in).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OsrRequest {
    /// The method whose baseline activation is hot.
    pub method: MethodId,
    /// The loop header (source pc) the activation is parked on; the
    /// promotion target must carry an OSR entry point for this header.
    pub loop_header: u32,
}

/// Why [`Vm::run`] returned.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// A timer sample is due; the snapshot describes the sampled stack.
    /// Call [`Vm::run`] again to continue.
    Sample(StackSnapshot),
    /// The program returned from its entry point.
    Finished(Option<Value>),
    /// The cycle budget passed to [`Vm::run`] was exhausted before a sample
    /// or completion; execution can be resumed.
    BudgetExhausted,
    /// A hot baseline loop wants promotion (only with
    /// [`VmConfig::osr_enabled`]). The driver may compile the method and
    /// transfer the activation via [`Vm::osr_enter`], or ignore the
    /// request; either way, call [`Vm::run`] again to continue. The top
    /// frame is parked exactly on the requested loop header.
    OsrRequest(OsrRequest),
}

/// Per-method guard counters, attributed to the *compiled host method*
/// executing the guard (inlined callees' guards count against the method
/// whose optimized body contains them). The adaptive system reads these to
/// detect guard-thrashing code versions worth invalidating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MethodGuardStats {
    /// Inline guards executed in this method's code.
    pub checks: u64,
    /// Of which failed into the fallback path.
    pub misses: u64,
}

/// Dynamic execution counters, useful for analysing inlining effectiveness
/// (e.g. how many guards executed and how often they failed into the
/// virtual-dispatch fallback).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Calls executed (static + virtual), excluding inlined (eliminated)
    /// calls.
    pub calls: u64,
    /// Virtual dispatches performed (including guard-fallback dispatches).
    pub virtual_dispatches: u64,
    /// Inline guards executed.
    pub guard_checks: u64,
    /// Inline guards that failed into the fallback path.
    pub guard_misses: u64,
    /// OSR-in transitions performed: baseline activations promoted into
    /// optimized code mid-loop.
    pub osr_entries: u64,
    /// OSR-out transitions performed: optimized activations deoptimized
    /// back to baseline frames mid-loop.
    pub osr_exits: u64,
}

#[derive(Debug)]
struct Frame {
    version: Arc<MethodVersion>,
    pc: usize,
    regs: Vec<Value>,
    /// Where the caller wants the return value.
    ret_dst: Option<Reg>,
    /// Guards this activation executed (optimized frames under OSR; used
    /// for the frame-local thrash detector, not the method-level stats).
    guard_checks: u64,
    /// Of which missed into the fallback path.
    guard_misses: u64,
    /// Set once this activation should deoptimize at its next OSR exit
    /// point (its version was invalidated, or its own guards thrash).
    deopt_armed: bool,
}

impl Frame {
    fn new(version: Arc<MethodVersion>, pc: usize, regs: Vec<Value>, ret_dst: Option<Reg>) -> Self {
        Frame {
            version,
            pc,
            regs,
            ret_dst,
            guard_checks: 0,
            guard_misses: 0,
            deopt_armed: false,
        }
    }
}

/// The virtual machine: interpreter, heap, globals, compiled-code registry
/// and simulated clock.
///
/// Run it in a loop around [`Vm::run`]: each return gives the embedding
/// adaptive-optimization driver a chance to consume the sample, run
/// organizers (charging their cycles via [`Vm::clock_mut`]) and install
/// newly compiled code via [`Vm::registry_mut`]; installed code takes effect
/// at the next invocation of the method.
#[derive(Debug)]
pub struct Vm<'p> {
    program: &'p Program,
    config: VmConfig,
    cost: CostModel,
    clock: Clock,
    registry: CodeRegistry,
    heap: Heap,
    globals: Vec<Value>,
    stack: Vec<Frame>,
    next_sample_at: Option<u64>,
    finished: Option<Option<Value>>,
    started: bool,
    counters: ExecCounters,
    guard_stats: Vec<MethodGuardStats>,
    /// Taken back-edge counts of *baseline* activations, per (method,
    /// loop-header) pair; reset when the OSR-in threshold fires.
    backedge_counts: HashMap<(MethodId, u32), u32>,
    /// A promotion request raised by the last [`Vm::step`], delivered at
    /// the top of the run loop.
    pending_osr: Option<OsrRequest>,
    /// Methods the driver told us to stop raising promotion requests for
    /// (quarantined or past their recompile budget).
    osr_suppressed: HashSet<MethodId>,
    /// Deoptimization targets built outside the registry: when an
    /// activation OSR-outs while the registry slot still holds optimized
    /// code (frame-local thrash without method-level invalidation), the
    /// baseline version it falls back to is cached here rather than
    /// clobbering the installed code.
    deopt_baseline: HashMap<MethodId, Arc<MethodVersion>>,
    /// Flight recorder for guard-miss and OSR-transition events. `None`
    /// (the default) skips every emit site with a single branch.
    trace: Option<TraceSink>,
}

impl<'p> Vm<'p> {
    /// Creates a VM for `program` with default [`VmConfig`].
    pub fn new(program: &'p Program, cost: CostModel) -> Self {
        Self::with_config(program, cost, VmConfig::default())
    }

    /// Creates a VM with an explicit configuration.
    pub fn with_config(program: &'p Program, cost: CostModel, config: VmConfig) -> Self {
        Vm {
            program,
            config,
            cost,
            clock: Clock::new(),
            registry: CodeRegistry::new(program.num_methods()),
            heap: Heap::new(),
            globals: vec![Value::Int(0); program.num_globals()],
            stack: Vec::new(),
            next_sample_at: None,
            finished: None,
            started: false,
            counters: ExecCounters::default(),
            guard_stats: vec![MethodGuardStats::default(); program.num_methods()],
            backedge_counts: HashMap::new(),
            pending_osr: None,
            osr_suppressed: HashSet::new(),
            deopt_baseline: HashMap::new(),
            trace: None,
        }
    }

    /// Attaches a flight-recorder sink; the VM emits guard-miss and
    /// OSR-transition events through it, timestamped with the simulated
    /// clock (emission itself charges no cycles).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Returns the dynamic execution counters.
    pub fn counters(&self) -> ExecCounters {
        self.counters
    }

    /// Cumulative guard counters of `method`'s compiled code (see
    /// [`MethodGuardStats`]).
    pub fn guard_stats(&self, method: MethodId) -> MethodGuardStats {
        self.guard_stats[method.index()]
    }

    /// Returns the program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Returns the simulated clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Returns the clock mutably, so the embedding driver can charge
    /// organizer/compilation cycles.
    pub fn clock_mut(&mut self) -> &mut Clock {
        &mut self.clock
    }

    /// Returns the compiled-code registry.
    pub fn registry(&self) -> &CodeRegistry {
        &self.registry
    }

    /// Returns the registry mutably, for installing newly compiled code.
    pub fn registry_mut(&mut self) -> &mut CodeRegistry {
        &mut self.registry
    }

    /// Returns the cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Returns the heap (useful for assertions in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Returns `true` once the entry method has returned.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Current machine call-stack depth.
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    /// Runs until a sample is due, the program finishes, or `budget` cycles
    /// of application execution have been consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the program faults; the VM is then stuck and
    /// further calls return the same fault's consequences.
    pub fn run(&mut self, budget: u64) -> Result<RunOutcome, VmError> {
        if let Some(v) = &self.finished {
            return Ok(RunOutcome::Finished(*v));
        }
        if !self.started {
            self.started = true;
            let entry = self.program.entry();
            let version = self.ensure_compiled(entry);
            self.push_frame(version, Vec::new(), None)?;
        }
        if self.next_sample_at.is_none() && self.cost.sample_period > 0 {
            self.next_sample_at = Some(self.clock.total() + self.cost.sample_period);
        }
        let start = self.clock.total();
        if self.config.decode {
            return self.run_decoded(start, budget);
        }
        // Legacy per-step `match` loop, kept (behind `decode: false` /
        // `AOCI_DECODE=0`) as the reference half of the dispatch-
        // equivalence matrix. The executing version is cached across steps
        // and refreshed only when the top frame's version changes, so the
        // steady state performs no per-step `Arc::clone`.
        let mut current: Option<Arc<MethodVersion>> = None;
        loop {
            if let Some(v) = &self.finished {
                return Ok(RunOutcome::Finished(*v));
            }
            if self.clock.total() - start >= budget {
                return Ok(RunOutcome::BudgetExhausted);
            }
            let frame = self
                .stack
                .last()
                .ok_or(VmError::NoActiveFrame { context: "executing an instruction" })?;
            if !current.as_ref().is_some_and(|v| Arc::ptr_eq(v, &frame.version)) {
                current = Some(Arc::clone(&frame.version));
            }
            let version = current.as_ref().expect("cached above");
            self.step_with(version)?;
            if let Some(req) = self.pending_osr.take() {
                return Ok(RunOutcome::OsrRequest(req));
            }
            if let Some(due) = self.next_sample_at {
                if self.clock.total() >= due && self.finished.is_none() {
                    self.next_sample_at = Some(self.clock.total() + self.cost.sample_period);
                    let snapshot = self.snapshot();
                    return Ok(RunOutcome::Sample(snapshot));
                }
            }
        }
    }

    /// Runs the program to completion, ignoring samples.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the program faults.
    pub fn run_to_completion(&mut self) -> Result<Option<Value>, VmError> {
        loop {
            match self.run(u64::MAX)? {
                RunOutcome::Finished(v) => return Ok(v),
                RunOutcome::Sample(_)
                | RunOutcome::BudgetExhausted
                | RunOutcome::OsrRequest(_) => continue,
            }
        }
    }

    /// Builds a source-level snapshot of the current stack (see
    /// [`StackSnapshot`]). Listener costs are *not* charged here; the
    /// embedding driver charges them according to how much of the snapshot
    /// its listeners consume.
    pub fn snapshot(&self) -> StackSnapshot {
        let mut frames = Vec::new();
        let mut root_method = self.program.entry();
        let mut top_in_prologue = false;
        for (depth, mf) in self.stack.iter().rev().enumerate() {
            if depth == 0 {
                root_method = mf.version.method;
                top_in_prologue = if self.config.source_level_walk {
                    mf.version.inline_map.in_prologue(mf.pc, self.config.prologue_window)
                } else {
                    (mf.pc as u32) < self.config.prologue_window
                };
            }
            // The call site through which the next-inner machine frame was
            // entered: the call instruction this frame is resting on.
            let inner_site = if depth == 0 {
                None
            } else {
                mf.version.body.get(mf.pc).and_then(Instr::call_site)
            };
            if self.config.source_level_walk {
                let chain = mf.version.inline_map.source_chain(mf.pc);
                for (j, (method, _)) in chain.iter().enumerate() {
                    let callsite_to_inner = if j == 0 { inner_site } else { chain[j - 1].1 };
                    frames.push(SourceFrame { method: *method, callsite_to_inner });
                    if frames.len() >= self.config.max_walk_frames {
                        break;
                    }
                }
            } else {
                frames.push(SourceFrame {
                    method: mf.version.method,
                    callsite_to_inner: inner_site,
                });
            }
            if frames.len() >= self.config.max_walk_frames {
                break;
            }
        }
        StackSnapshot {
            frames,
            root_method,
            top_in_prologue,
            cycles: self.clock.total(),
        }
    }

    fn ensure_compiled(&mut self, method: MethodId) -> Arc<MethodVersion> {
        if let Some(v) = self.registry.current(method) {
            return Arc::clone(v);
        }
        let def = self.program.method(method);
        self.clock.charge(
            Component::BaselineCompilation,
            self.cost.baseline_compile_cost(def.size_estimate()),
        );
        self.registry.install_baseline(def)
    }

    fn push_frame(
        &mut self,
        version: Arc<MethodVersion>,
        args: Vec<Value>,
        ret_dst: Option<Reg>,
    ) -> Result<(), VmError> {
        if self.stack.len() >= self.config.max_stack_depth {
            return Err(VmError::StackOverflow { limit: self.config.max_stack_depth });
        }
        let mut regs = vec![Value::Null; version.num_regs as usize];
        if args.len() > regs.len() {
            // More arguments than the callee has registers: a corrupt
            // version, not a program fault.
            return Err(VmError::BadRegister {
                method: version.method,
                pc: 0,
                reg: args.len() - 1,
            });
        }
        regs[..args.len()].copy_from_slice(&args);
        self.stack.push(Frame::new(version, 0, regs, ret_dst));
        Ok(())
    }

    #[inline]
    fn fault_site(&self) -> (MethodId, usize) {
        match self.stack.last() {
            Some(f) => (f.version.method, f.pc),
            None => (self.program.entry(), 0),
        }
    }

    #[inline]
    fn int(&self, v: Value) -> Result<i64, VmError> {
        let (method, pc) = self.fault_site();
        v.as_int().ok_or(VmError::TypeError { method, pc, expected: "integer" })
    }

    /// Executes one instruction of `version`, which the caller guarantees
    /// is (pointer-equal to) the top frame's version — the run loop caches
    /// it across steps so the steady state clones no `Arc` and no `Instr`;
    /// the instruction is *borrowed* from the version's body.
    fn step_with(&mut self, version: &Arc<MethodVersion>) -> Result<(), VmError> {
        let pc = self
            .stack
            .last()
            .ok_or(VmError::NoActiveFrame { context: "executing an instruction" })?
            .pc;
        let instr = version
            .body
            .get(pc)
            .ok_or(VmError::PcOutOfRange { method: version.method, pc })?;
        let app_component = match version.level {
            OptLevel::Baseline => Component::AppBaseline,
            OptLevel::Optimized => Component::AppOptimized,
        };
        self.clock.charge(app_component, self.cost.instr_cost(instr, version.level));

        let method = version.method;
        let mut next_pc = pc + 1;
        match instr {
            Instr::Const { dst, value } => self.set_reg(*dst, Value::Int(*value))?,
            Instr::ConstNull { dst } => self.set_reg(*dst, Value::Null)?,
            Instr::Move { dst, src } => {
                let v = self.reg(*src)?;
                self.set_reg(*dst, v)?;
            }
            Instr::Bin { op, dst, lhs, rhs } => {
                let a = self.int(self.reg(*lhs)?)?;
                let b = self.int(self.reg(*rhs)?)?;
                let r = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(VmError::DivideByZero { method, pc });
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(VmError::DivideByZero { method, pc });
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                };
                self.set_reg(*dst, Value::Int(r))?;
            }
            Instr::Work { .. } => {}
            Instr::New { dst, class } => {
                let layout = self.program.class(*class).layout_size();
                let r = self.heap.alloc_object(*class, layout);
                self.set_reg(*dst, Value::Ref(r))?;
            }
            Instr::GetField { dst, obj, field } => {
                let r = self.reg(*obj)?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
                let off = self.program.field(*field).offset();
                let v = self
                    .heap
                    .get_field(r, off)
                    .ok_or(VmError::TypeError { method, pc, expected: "object" })?;
                self.set_reg(*dst, v)?;
            }
            Instr::PutField { obj, field, src } => {
                let r = self.reg(*obj)?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
                let off = self.program.field(*field).offset();
                let v = self.reg(*src)?;
                if !self.heap.put_field(r, off, v) {
                    return Err(VmError::TypeError { method, pc, expected: "object" });
                }
            }
            Instr::GetGlobal { dst, global } => {
                let v = self.globals[global.index()];
                self.set_reg(*dst, v)?;
            }
            Instr::PutGlobal { global, src } => {
                self.globals[global.index()] = self.reg(*src)?;
            }
            Instr::ArrNew { dst, len } => {
                let n = self.int(self.reg(*len)?)?;
                if n < 0 {
                    return Err(VmError::NegativeArrayLength { method, pc });
                }
                let r = self.heap.alloc_array(n as u32);
                self.set_reg(*dst, Value::Ref(r))?;
            }
            Instr::ArrGet { dst, arr, idx } => {
                let r = self.reg(*arr)?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
                let i = self.int(self.reg(*idx)?)?;
                let v = self
                    .heap
                    .arr_get(r, i)
                    .ok_or(VmError::IndexOutOfBounds { method, pc, index: i })?;
                self.set_reg(*dst, v)?;
            }
            Instr::ArrSet { arr, idx, src } => {
                let r = self.reg(*arr)?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
                let i = self.int(self.reg(*idx)?)?;
                let v = self.reg(*src)?;
                if !self.heap.arr_set(r, i, v) {
                    return Err(VmError::IndexOutOfBounds { method, pc, index: i });
                }
            }
            Instr::ArrLen { dst, arr } => {
                let r = self.reg(*arr)?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
                let n = self
                    .heap
                    .arr_len(r)
                    .ok_or(VmError::TypeError { method, pc, expected: "array" })?;
                self.set_reg(*dst, Value::Int(n))?;
            }
            Instr::InstanceOf { dst, obj, class } => {
                let result = match self.reg(*obj)? {
                    Value::Ref(r) => match self.heap.class_of(r) {
                        Some(c) => self.program.is_subclass(c, *class),
                        None => false,
                    },
                    _ => false,
                };
                self.set_reg(*dst, Value::Int(result as i64))?;
            }
            Instr::Jump { target } => next_pc = *target as usize,
            Instr::Branch { cond, lhs, rhs, target } => {
                let a = self.reg(*lhs)?;
                let b = self.reg(*rhs)?;
                let taken = match cond {
                    Cond::Eq => a.vm_eq(b),
                    Cond::Ne => !a.vm_eq(b),
                    Cond::Lt => self.int(a)? < self.int(b)?,
                    Cond::Le => self.int(a)? <= self.int(b)?,
                    Cond::Gt => self.int(a)? > self.int(b)?,
                    Cond::Ge => self.int(a)? >= self.int(b)?,
                };
                if taken {
                    next_pc = *target as usize;
                }
            }
            Instr::GuardClass { recv, class, else_target } => {
                let pass = match self.reg(*recv)? {
                    Value::Ref(r) => self.heap.class_of(r) == Some(*class),
                    _ => false,
                };
                self.counters.guard_checks += 1;
                self.guard_stats[method.index()].checks += 1;
                if !pass {
                    self.counters.guard_misses += 1;
                    self.guard_stats[method.index()].misses += 1;
                    next_pc = *else_target as usize;
                    if let Some(t) = &self.trace {
                        t.emit(
                            self.clock.total(),
                            TraceEvent::GuardMiss { method, pc: pc as u32 },
                        );
                    }
                }
                self.note_guard(pass);
            }
            Instr::GuardMethod { recv, selector, target, else_target } => {
                let pass = match self.reg(*recv)? {
                    Value::Ref(r) => self
                        .heap
                        .class_of(r)
                        .and_then(|c| self.program.lookup_virtual(c, *selector))
                        == Some(*target),
                    _ => false,
                };
                self.counters.guard_checks += 1;
                self.guard_stats[method.index()].checks += 1;
                if !pass {
                    self.counters.guard_misses += 1;
                    self.guard_stats[method.index()].misses += 1;
                    next_pc = *else_target as usize;
                    if let Some(t) = &self.trace {
                        t.emit(
                            self.clock.total(),
                            TraceEvent::GuardMiss { method, pc: pc as u32 },
                        );
                    }
                }
                self.note_guard(pass);
            }
            Instr::CallStatic { dst, callee, args, .. } => {
                self.counters.calls += 1;
                let argv = args
                    .iter()
                    .map(|&a| self.reg(a))
                    .collect::<Result<Vec<Value>, VmError>>()?;
                let callee_version = self.ensure_compiled(*callee);
                // The caller's pc stays on the call instruction while the
                // callee runs (stack walks read the site from it); it is
                // advanced on return.
                self.push_frame(callee_version, argv, *dst)?;
                return Ok(());
            }
            Instr::CallVirtual { dst, selector, recv, args, .. } => {
                self.counters.calls += 1;
                self.counters.virtual_dispatches += 1;
                let recv_val = self.reg(*recv)?;
                let r = recv_val.as_ref().ok_or(VmError::NullDeref { method, pc })?;
                let class = self
                    .heap
                    .class_of(r)
                    .ok_or(VmError::TypeError { method, pc, expected: "object" })?;
                let target = self
                    .program
                    .lookup_virtual(class, *selector)
                    .ok_or(VmError::NoSuchMethod { selector: *selector, method, pc })?;
                let mut argv = Vec::with_capacity(args.len() + 1);
                argv.push(recv_val);
                for &a in args {
                    argv.push(self.reg(a)?);
                }
                let callee_version = self.ensure_compiled(target);
                self.push_frame(callee_version, argv, *dst)?;
                return Ok(());
            }
            Instr::Return { src } => {
                let value = match src {
                    Some(r) => Some(self.reg(*r)?),
                    None => None,
                };
                let finished_frame = self
                    .stack
                    .pop()
                    .ok_or(VmError::NoActiveFrame { context: "returning from a call" })?;
                match self.stack.last_mut() {
                    None => {
                        self.finished = Some(value);
                    }
                    Some(caller) => {
                        if let (Some(dst), Some(v)) = (finished_frame.ret_dst, value) {
                            let slot = caller.regs.get_mut(dst.index()).ok_or(
                                VmError::BadRegister {
                                    method: caller.version.method,
                                    pc: caller.pc,
                                    reg: dst.index(),
                                },
                            )?;
                            *slot = v;
                        }
                        caller.pc += 1; // advance past the call instruction
                    }
                }
                return Ok(());
            }
        }
        // Taken backward control flow = a loop back-edge: the OSR hook in
        // both directions. (Only `Jump`/`Branch` can move the pc backward;
        // guard else-targets always point forward.)
        if self.config.osr_enabled && next_pc <= pc {
            match version.level {
                OptLevel::Baseline => self.count_backedge(method, next_pc as u32),
                OptLevel::Optimized => {
                    let invalidated = self.registry.is_invalidated(version.version_id);
                    let armed = self.stack.last().is_some_and(|f| f.deopt_armed);
                    if (invalidated || armed)
                        && version.osr_map.exit_at_opt(next_pc as u32).is_some()
                    {
                        return self.osr_exit(version, next_pc as u32);
                    }
                }
            }
        }
        self.stack
            .last_mut()
            .ok_or(VmError::NoActiveFrame { context: "advancing the program counter" })?
            .pc = next_pc;
        Ok(())
    }

    /// Frame-local guard bookkeeping for the OSR-out thrash detector.
    #[inline]
    fn note_guard(&mut self, pass: bool) {
        if !self.config.osr_enabled {
            return;
        }
        let min_checks = self.config.osr_exit_min_checks;
        let threshold = self.config.osr_exit_miss_threshold;
        if let Some(f) = self.stack.last_mut() {
            if f.version.level != OptLevel::Optimized {
                return;
            }
            f.guard_checks += 1;
            if !pass {
                f.guard_misses += 1;
            }
            if !f.deopt_armed
                && f.guard_checks >= min_checks
                && f.guard_misses as f64 / f.guard_checks as f64 > threshold
            {
                f.deopt_armed = true;
            }
        }
    }

    /// Counts a taken back-edge of a baseline activation; at the
    /// threshold, raises an [`OsrRequest`] for the driver.
    fn count_backedge(&mut self, method: MethodId, header: u32) {
        if self.osr_suppressed.contains(&method) {
            return;
        }
        let count = self.backedge_counts.entry((method, header)).or_insert(0);
        *count += 1;
        if *count >= self.config.osr_backedge_threshold {
            *count = 0;
            self.pending_osr = Some(OsrRequest { method, loop_header: header });
        }
    }

    /// The baseline version an OSR-out lands in. Prefers the installed
    /// version when it is already baseline; compiles (and, if the slot is
    /// empty, installs) one otherwise. An installed *optimized* version is
    /// never clobbered — the frame-local thrash path deoptimizes one
    /// activation, not the method — so the compiled fallback is cached on
    /// the side for reuse.
    fn deopt_target(&mut self, method: MethodId) -> Arc<MethodVersion> {
        match self.registry.current(method) {
            Some(v) if v.level == OptLevel::Baseline => return Arc::clone(v),
            Some(_) => {}
            None => {
                let def = self.program.method(method);
                self.clock.charge(
                    Component::BaselineCompilation,
                    self.cost.baseline_compile_cost(def.size_estimate()),
                );
                return self.registry.install_baseline(def);
            }
        }
        if let Some(v) = self.deopt_baseline.get(&method) {
            return Arc::clone(v);
        }
        let def = self.program.method(method);
        self.clock.charge(
            Component::BaselineCompilation,
            self.cost.baseline_compile_cost(def.size_estimate()),
        );
        let v = Arc::new(MethodVersion::baseline(def));
        self.deopt_baseline.insert(method, Arc::clone(&v));
        v
    }

    /// OSR-out: replaces the top (optimized) frame with an equivalent
    /// baseline frame via the version's [`OsrMap`](crate::OsrMap) exit
    /// point at `opt_pc`. A mapping failure (corrupt map) refuses the
    /// transfer and keeps executing the optimized code — degraded, never
    /// wrong.
    fn osr_exit(&mut self, version: &Arc<MethodVersion>, opt_pc: u32) -> Result<(), VmError> {
        let point = version
            .osr_map
            .exit_at_opt(opt_pc)
            .cloned()
            .ok_or(VmError::PcOutOfRange { method: version.method, pc: opt_pc as usize })?;
        let baseline = self.deopt_target(version.method);
        let frame = self
            .stack
            .last_mut()
            .ok_or(VmError::NoActiveFrame { context: "deoptimizing a frame" })?;
        match point.map_to_baseline(&frame.regs, baseline.num_regs) {
            Ok(regs) => {
                frame.version = baseline;
                frame.pc = point.baseline_pc as usize;
                frame.regs = regs;
                frame.guard_checks = 0;
                frame.guard_misses = 0;
                frame.deopt_armed = false;
                self.counters.osr_exits += 1;
                self.clock
                    .charge(Component::Osr, self.cost.osr_transfer_cost(point.slots.len()));
                if let Some(t) = &self.trace {
                    t.emit(
                        self.clock.total(),
                        TraceEvent::OsrExit { method: version.method, opt_pc },
                    );
                }
            }
            Err(_) => {
                frame.pc = opt_pc as usize;
            }
        }
        Ok(())
    }

    /// OSR-in: transfers the top frame — a *baseline* activation of
    /// `version`'s method parked exactly on `loop_header` — into
    /// `version`'s optimized code through its OSR entry point for that
    /// header. Returns `true` on transfer; returns `false` (leaving the
    /// activation untouched, to continue at baseline) when the
    /// preconditions do not hold or the map refuses — promotion is an
    /// optimization, never an obligation.
    pub fn osr_enter(&mut self, version: &Arc<MethodVersion>, loop_header: u32) -> bool {
        if !self.config.osr_enabled || version.level != OptLevel::Optimized {
            return false;
        }
        let Some(frame) = self.stack.last() else { return false };
        if frame.version.method != version.method
            || frame.version.level != OptLevel::Baseline
            || frame.pc != loop_header as usize
        {
            return false;
        }
        let Some(point) = version.osr_map.entry_at_baseline(loop_header) else {
            return false;
        };
        let Ok(regs) = point.map_to_optimized(&frame.regs, version.num_regs) else {
            return false;
        };
        let slots = point.slots.len();
        let opt_pc = point.opt_pc as usize;
        let frame = self.stack.last_mut().expect("checked above");
        frame.version = Arc::clone(version);
        frame.pc = opt_pc;
        frame.regs = regs;
        frame.guard_checks = 0;
        frame.guard_misses = 0;
        frame.deopt_armed = false;
        self.counters.osr_entries += 1;
        self.clock.charge(Component::Osr, self.cost.osr_transfer_cost(slots));
        self.backedge_counts.remove(&(version.method, loop_header));
        if let Some(t) = &self.trace {
            t.emit(
                self.clock.total(),
                TraceEvent::OsrEnter { method: version.method, loop_header },
            );
        }
        true
    }

    /// Stops the VM from raising further [`RunOutcome::OsrRequest`]s for
    /// `method` (the driver's answer when the method is quarantined or out
    /// of recompile budget).
    pub fn suppress_osr(&mut self, method: MethodId) {
        self.osr_suppressed.insert(method);
    }

    #[inline]
    fn reg(&self, r: Reg) -> Result<Value, VmError> {
        let frame = self
            .stack
            .last()
            .ok_or(VmError::NoActiveFrame { context: "reading a register" })?;
        frame.regs.get(r.index()).copied().ok_or(VmError::BadRegister {
            method: frame.version.method,
            pc: frame.pc,
            reg: r.index(),
        })
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: Value) -> Result<(), VmError> {
        let frame = self
            .stack
            .last_mut()
            .ok_or(VmError::NoActiveFrame { context: "writing a register" })?;
        let (method, pc) = (frame.version.method, frame.pc);
        let slot = frame
            .regs
            .get_mut(r.index())
            .ok_or(VmError::BadRegister { method, pc, reg: r.index() })?;
        *slot = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests;
