//! On-stack replacement maps: checked, reversible frame-state mappings
//! between a method's baseline frame and an optimized frame, anchored at
//! loop headers.
//!
//! The paper's AOS (like the Jikes RVM system it models) switches code
//! versions at method invocation boundaries; a long-running activation —
//! a loop-dominated `main`, say — would never benefit from (or escape)
//! optimized code. OSR closes that gap in both directions, following the
//! standard treatment of "On-Stack Replacement à la Carte" (D'Elia &
//! Demetrescu) and "Deoptless" (Flückiger et al.):
//!
//! * **OSR-in (promotion)**: a baseline activation that trips a loop
//!   back-edge counter transfers mid-loop into freshly optimized code.
//! * **OSR-out (deoptimization)**: an optimized activation whose version
//!   was invalidated (guard thrash) or whose own guards are thrashing
//!   transfers back to an equivalent baseline frame instead of finishing
//!   on stale code.
//!
//! Both transfers happen at an [`OsrPoint`]: a loop header of the *root*
//! method that survives optimization as a control-flow join. The register
//! correspondence at such a point is the **frame-mapping invariant** (see
//! DESIGN.md §7): optimized code produced by the inliner keeps the root
//! method's register window unrenamed — inlined callees live in windows
//! above it and the simplifier only rewrites *uses*, never definitions —
//! so every baseline register maps to the same-numbered optimized
//! register. The map still carries the correspondence explicitly, per
//! slot, and every transfer is checked: a malformed map refuses to
//! transfer (the activation stays where it was — degraded, never wrong)
//! rather than building a corrupt frame.

use crate::value::Value;
use aoci_ir::Reg;

/// Why an OSR map (or a transfer through it) was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OsrError {
    /// Two points share a baseline pc or an optimized pc.
    DuplicatePoint,
    /// A slot names a register outside the frame it addresses.
    SlotOutOfRange {
        /// The offending register index.
        reg: u16,
    },
    /// Two slots read or write the same register (the mapping would not
    /// be reversible).
    SlotAliased {
        /// The register claimed twice.
        reg: u16,
    },
    /// A frame handed to a transfer was smaller than the map requires.
    FrameTooSmall {
        /// Registers the frame actually has.
        have: usize,
        /// Registers the map requires.
        need: usize,
    },
}

impl std::fmt::Display for OsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OsrError::DuplicatePoint => write!(f, "duplicate OSR point"),
            OsrError::SlotOutOfRange { reg } => write!(f, "OSR slot register r{reg} out of range"),
            OsrError::SlotAliased { reg } => write!(f, "OSR slot register r{reg} aliased"),
            OsrError::FrameTooSmall { have, need } => {
                write!(f, "frame has {have} registers, OSR map needs {need}")
            }
        }
    }
}

impl std::error::Error for OsrError {}

/// One local/stack slot correspondence: the value in baseline register
/// `baseline` lives in optimized register `optimized` at this point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OsrSlot {
    /// Register in the baseline frame.
    pub baseline: Reg,
    /// Register in the optimized frame.
    pub optimized: Reg,
}

/// One OSR anchor: a root-method loop header with its frame mapping.
///
/// `baseline_pc` indexes the baseline body (== the source body: baseline
/// compilation is the identity translation), `opt_pc` the optimized body.
/// Both sides are control-flow leaders, so the abstract state the
/// simplifier assumed at `opt_pc` holds for *any* incoming frame — the
/// property that makes transferring an interpreter frame there sound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OsrPoint {
    /// Loop-header pc in the baseline (source) body.
    pub baseline_pc: u32,
    /// The corresponding pc in the optimized body.
    pub opt_pc: u32,
    /// Slot correspondences; registers not listed are dead at the header
    /// (this reproduction lists the whole root window, so nothing is).
    pub slots: Vec<OsrSlot>,
}

impl OsrPoint {
    /// The identity mapping over the root register window `0..num_regs`,
    /// the shape the inliner emits (see the frame-mapping invariant).
    pub fn identity(baseline_pc: u32, opt_pc: u32, num_regs: u16) -> Self {
        OsrPoint {
            baseline_pc,
            opt_pc,
            slots: (0..num_regs)
                .map(|r| OsrSlot { baseline: Reg(r), optimized: Reg(r) })
                .collect(),
        }
    }

    /// Checks the point's internal consistency: every slot in range for
    /// the given frame sizes and no register claimed twice on either side
    /// (which is exactly reversibility of the mapping).
    pub fn validate(&self, baseline_regs: u16, opt_regs: u16) -> Result<(), OsrError> {
        let mut seen_base = vec![false; baseline_regs as usize];
        let mut seen_opt = vec![false; opt_regs as usize];
        for s in &self.slots {
            let b = s.baseline.index();
            let o = s.optimized.index();
            if b >= baseline_regs as usize {
                return Err(OsrError::SlotOutOfRange { reg: s.baseline.0 });
            }
            if o >= opt_regs as usize {
                return Err(OsrError::SlotOutOfRange { reg: s.optimized.0 });
            }
            if std::mem::replace(&mut seen_base[b], true) {
                return Err(OsrError::SlotAliased { reg: s.baseline.0 });
            }
            if std::mem::replace(&mut seen_opt[o], true) {
                return Err(OsrError::SlotAliased { reg: s.optimized.0 });
            }
        }
        Ok(())
    }

    /// Maps a baseline frame's registers into a fresh optimized frame of
    /// `opt_num_regs` registers (OSR-in). Unmapped optimized registers
    /// start `Null`, exactly as a fresh invocation frame would.
    ///
    /// # Errors
    ///
    /// Rejects (without transferring) if any slot is out of range for
    /// either frame.
    pub fn map_to_optimized(
        &self,
        baseline_regs: &[Value],
        opt_num_regs: u16,
    ) -> Result<Vec<Value>, OsrError> {
        let mut out = vec![Value::Null; opt_num_regs as usize];
        for s in &self.slots {
            let v = *baseline_regs
                .get(s.baseline.index())
                .ok_or(OsrError::FrameTooSmall {
                    have: baseline_regs.len(),
                    need: s.baseline.index() + 1,
                })?;
            *out.get_mut(s.optimized.index()).ok_or(OsrError::SlotOutOfRange {
                reg: s.optimized.0,
            })? = v;
        }
        Ok(out)
    }

    /// Maps an optimized frame's registers back into a fresh baseline
    /// frame of `baseline_num_regs` registers (OSR-out). The inverse of
    /// [`OsrPoint::map_to_optimized`] on every register the map covers.
    ///
    /// # Errors
    ///
    /// Rejects (without transferring) if any slot is out of range for
    /// either frame.
    pub fn map_to_baseline(
        &self,
        opt_regs: &[Value],
        baseline_num_regs: u16,
    ) -> Result<Vec<Value>, OsrError> {
        let mut out = vec![Value::Null; baseline_num_regs as usize];
        for s in &self.slots {
            let v = *opt_regs
                .get(s.optimized.index())
                .ok_or(OsrError::FrameTooSmall {
                    have: opt_regs.len(),
                    need: s.optimized.index() + 1,
                })?;
            *out.get_mut(s.baseline.index()).ok_or(OsrError::SlotOutOfRange {
                reg: s.baseline.0,
            })? = v;
        }
        Ok(out)
    }
}

/// The OSR anchors of one [`MethodVersion`](crate::MethodVersion): one
/// [`OsrPoint`] per root-method loop header that survived optimization.
/// Baseline versions carry an empty map (a baseline frame *is* the source
/// frame; there is nothing to transfer into).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OsrMap {
    points: Vec<OsrPoint>,
}

impl OsrMap {
    /// The empty map (baseline code, or optimized code with no loops).
    pub fn empty() -> Self {
        OsrMap::default()
    }

    /// Builds a map from explicit points, checking that no two points
    /// share a pc on either side.
    ///
    /// # Errors
    ///
    /// Returns [`OsrError::DuplicatePoint`] on a pc collision. Per-point
    /// slot consistency is checked by [`OsrPoint::validate`] /
    /// [`OsrMap::validate`], which need the frame sizes.
    pub fn new(points: Vec<OsrPoint>) -> Result<Self, OsrError> {
        for (i, p) in points.iter().enumerate() {
            for q in &points[..i] {
                if p.baseline_pc == q.baseline_pc || p.opt_pc == q.opt_pc {
                    return Err(OsrError::DuplicatePoint);
                }
            }
        }
        Ok(OsrMap { points })
    }

    /// Validates every point against the two frame sizes (see
    /// [`OsrPoint::validate`]).
    pub fn validate(&self, baseline_regs: u16, opt_regs: u16) -> Result<(), OsrError> {
        for p in &self.points {
            p.validate(baseline_regs, opt_regs)?;
        }
        Ok(())
    }

    /// True when the map has no points (OSR cannot target this version).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of OSR points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// All points, in emission order.
    pub fn points(&self) -> &[OsrPoint] {
        &self.points
    }

    /// The point anchored at baseline (source) pc `pc`, if any — the
    /// OSR-in lookup.
    pub fn entry_at_baseline(&self, pc: u32) -> Option<&OsrPoint> {
        self.points.iter().find(|p| p.baseline_pc == pc)
    }

    /// The point anchored at optimized pc `pc`, if any — the OSR-out
    /// lookup.
    pub fn exit_at_opt(&self, pc: u32) -> Option<&OsrPoint> {
        self.points.iter().find(|p| p.opt_pc == pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;

    #[test]
    fn identity_point_roundtrips() {
        let p = OsrPoint::identity(3, 7, 4);
        p.validate(4, 9).unwrap();
        let mut heap = Heap::new();
        let r = heap.alloc_object(aoci_ir::ClassId::from_index(0), 1);
        let base = vec![Value::Int(1), Value::Null, Value::Ref(r), Value::Int(-9)];
        let opt = p.map_to_optimized(&base, 9).unwrap();
        assert_eq!(opt.len(), 9);
        assert_eq!(&opt[..4], &base[..]);
        assert!(opt[4..].iter().all(|v| matches!(v, Value::Null)));
        let back = p.map_to_baseline(&opt, 4).unwrap();
        assert_eq!(back, base);
    }

    #[test]
    fn permuted_slots_roundtrip() {
        let p = OsrPoint {
            baseline_pc: 0,
            opt_pc: 0,
            slots: vec![
                OsrSlot { baseline: Reg(0), optimized: Reg(2) },
                OsrSlot { baseline: Reg(1), optimized: Reg(0) },
                OsrSlot { baseline: Reg(2), optimized: Reg(1) },
            ],
        };
        p.validate(3, 3).unwrap();
        let base = vec![Value::Int(10), Value::Int(20), Value::Int(30)];
        let opt = p.map_to_optimized(&base, 3).unwrap();
        assert_eq!(opt, vec![Value::Int(20), Value::Int(30), Value::Int(10)]);
        assert_eq!(p.map_to_baseline(&opt, 3).unwrap(), base);
    }

    #[test]
    fn validation_rejects_aliases_and_ranges() {
        let aliased = OsrPoint {
            baseline_pc: 0,
            opt_pc: 0,
            slots: vec![
                OsrSlot { baseline: Reg(0), optimized: Reg(0) },
                OsrSlot { baseline: Reg(0), optimized: Reg(1) },
            ],
        };
        assert_eq!(aliased.validate(2, 2), Err(OsrError::SlotAliased { reg: 0 }));
        let oob = OsrPoint::identity(0, 0, 4);
        assert_eq!(oob.validate(3, 4), Err(OsrError::SlotOutOfRange { reg: 3 }));
        assert_eq!(oob.validate(4, 3), Err(OsrError::SlotOutOfRange { reg: 3 }));
    }

    #[test]
    fn transfers_are_checked_not_trusted() {
        let p = OsrPoint::identity(0, 0, 4);
        // A frame smaller than the map refuses to transfer.
        let short = vec![Value::Int(1); 2];
        assert!(matches!(
            p.map_to_optimized(&short, 8),
            Err(OsrError::FrameTooSmall { have: 2, .. })
        ));
        assert!(matches!(
            p.map_to_baseline(&short, 4),
            Err(OsrError::FrameTooSmall { have: 2, .. })
        ));
        // A target window smaller than the map refuses too.
        let full = vec![Value::Int(1); 4];
        assert!(p.map_to_optimized(&full, 3).is_err());
    }

    #[test]
    fn map_rejects_duplicate_points() {
        let a = OsrPoint::identity(1, 5, 2);
        let b = OsrPoint::identity(1, 9, 2);
        assert_eq!(OsrMap::new(vec![a.clone(), b]), Err(OsrError::DuplicatePoint));
        let c = OsrPoint::identity(3, 5, 2);
        assert_eq!(OsrMap::new(vec![a.clone(), c]), Err(OsrError::DuplicatePoint));
        let d = OsrPoint::identity(3, 9, 2);
        let m = OsrMap::new(vec![a, d]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.entry_at_baseline(1).unwrap().opt_pc, 5);
        assert_eq!(m.exit_at_opt(9).unwrap().baseline_pc, 3);
        assert!(m.entry_at_baseline(2).is_none());
        assert!(!m.is_empty());
        assert!(OsrMap::empty().is_empty());
    }
}
