//! Compiled method versions and inline maps.
//!
//! A [`MethodVersion`] is what the VM executes: either the baseline
//! translation of a method (its body as written) or optimized code produced
//! by the inlining compiler. Optimized code carries an [`InlineMap`] that
//! records, per instruction, which source method the instruction came from
//! and through which chain of call sites it was inlined — exactly the
//! machinery Jikes RVM uses to "recover the source level view of optimized
//! stack frames" (paper Section 3.3), which the trace listener depends on to
//! avoid recording misleading samples like `A ⇒ C` when profile data exists
//! for `A ⇒ B ⇒ C`.

use crate::cost::CostModel;
use crate::interp::decode::DecodedBody;
use crate::osr::OsrMap;
use aoci_ir::{Instr, MethodId, Program, SiteIdx};
use std::sync::OnceLock;

/// Compilation level of a method version.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OptLevel {
    /// Produced by the non-optimizing baseline compiler (first invocation).
    Baseline,
    /// Produced by the optimizing compiler (inlined, simplified).
    Optimized,
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::Baseline => f.write_str("baseline"),
            OptLevel::Optimized => f.write_str("optimized"),
        }
    }
}

/// One node of an inline tree: a method body copy within compiled code.
#[derive(Clone, Debug)]
pub struct InlineNode {
    /// The source method this node's instructions come from.
    pub method: MethodId,
    /// The parent node and the call site *in the parent's method* through
    /// which this body was inlined; `None` for the root node.
    pub parent: Option<(u32, SiteIdx)>,
    /// Instruction index where this body copy begins (used to detect
    /// prologue samples within inlined bodies).
    pub body_start: u32,
}

/// Maps each instruction of compiled code to its inline-tree node.
#[derive(Clone, Debug)]
pub struct InlineMap {
    nodes: Vec<InlineNode>,
    instr_node: Vec<u32>,
}

impl InlineMap {
    /// Creates the trivial map for baseline code: every instruction belongs
    /// to the root method.
    pub fn baseline(method: MethodId, len: usize) -> Self {
        InlineMap {
            nodes: vec![InlineNode { method, parent: None, body_start: 0 }],
            instr_node: vec![0; len],
        }
    }

    /// Assembles a map from an explicit node table and per-instruction node
    /// assignment (the optimizing compiler's construction path; lets the
    /// simplifier rewrite both before assembly).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, node 0 has a parent, or `instr_node`
    /// references a missing node.
    pub fn from_parts(nodes: Vec<InlineNode>, instr_node: Vec<u32>) -> Self {
        assert!(!nodes.is_empty(), "an inline map needs a root node");
        assert!(nodes[0].parent.is_none(), "node 0 must be the root");
        assert!(
            instr_node.iter().all(|&n| (n as usize) < nodes.len()),
            "instruction references a missing inline node"
        );
        InlineMap { nodes, instr_node }
    }

    /// Returns the node for instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range for the code this map describes.
    pub fn node_at(&self, pc: usize) -> &InlineNode {
        &self.nodes[self.instr_node[pc] as usize]
    }

    /// Returns node `id`.
    pub fn node(&self, id: u32) -> &InlineNode {
        &self.nodes[id as usize]
    }

    /// Returns the number of inline-tree nodes (1 for baseline code).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Walks the inline chain at `pc` from innermost source method outward,
    /// yielding `(method, Option<(parent_method_call_site)>)` pairs: each
    /// element is a source-level frame, with the call site in the *next*
    /// (outer) frame's method through which it was entered, or `None` for
    /// the root.
    pub fn source_chain(&self, pc: usize) -> Vec<(MethodId, Option<SiteIdx>)> {
        let mut out = Vec::new();
        let mut id = self.instr_node[pc];
        loop {
            let n = &self.nodes[id as usize];
            match n.parent {
                Some((parent, site)) => {
                    out.push((n.method, Some(site)));
                    id = parent;
                }
                None => {
                    out.push((n.method, None));
                    return out;
                }
            }
        }
    }

    /// Returns `true` if `pc` lies within the first `window` instructions of
    /// its source-level body copy — the condition under which a sample
    /// counts as a *prologue* sample and the edge/trace listeners record it.
    pub fn in_prologue(&self, pc: usize, window: u32) -> bool {
        let n = self.node_at(pc);
        (pc as u32).saturating_sub(n.body_start) < window
    }
}

/// Incremental construction of optimized code plus its [`InlineMap`]
/// (used by the optimizing compiler).
#[derive(Debug)]
pub struct InlineMapBuilder {
    nodes: Vec<InlineNode>,
    instr_node: Vec<u32>,
}

impl InlineMapBuilder {
    /// Starts a map whose root is `method`.
    pub fn new(method: MethodId) -> Self {
        InlineMapBuilder {
            nodes: vec![InlineNode { method, parent: None, body_start: 0 }],
            instr_node: Vec::new(),
        }
    }

    /// Returns the root node id (always 0).
    pub fn root(&self) -> u32 {
        0
    }

    /// Adds an inline node for `method`, inlined into `parent` at `site`.
    /// `body_start` should be the index the body copy's first instruction
    /// will have.
    pub fn add_node(&mut self, parent: u32, site: SiteIdx, method: MethodId, body_start: u32) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(InlineNode { method, parent: Some((parent, site)), body_start });
        id
    }

    /// Records that the next emitted instruction belongs to `node`.
    pub fn push_instr(&mut self, node: u32) {
        self.instr_node.push(node);
    }

    /// Number of instructions recorded so far.
    pub fn len(&self) -> usize {
        self.instr_node.len()
    }

    /// Returns `true` if no instructions have been recorded.
    pub fn is_empty(&self) -> bool {
        self.instr_node.is_empty()
    }

    /// Finalises the map. The caller must have recorded exactly one node per
    /// instruction of the finished body.
    pub fn finish(self) -> InlineMap {
        InlineMap { nodes: self.nodes, instr_node: self.instr_node }
    }
}

/// A compiled version of a method: executable body, inline map, size and
/// provenance.
#[derive(Clone, Debug)]
pub struct MethodVersion {
    /// The source method this version compiles.
    pub method: MethodId,
    /// Compilation level.
    pub level: OptLevel,
    /// Executable instruction sequence.
    pub body: Vec<Instr>,
    /// Registers required to execute `body`.
    pub num_regs: u16,
    /// Inline map for source-level stack recovery.
    pub inline_map: InlineMap,
    /// Abstract machine-code size of this version (the quantity Figure 5
    /// aggregates for optimized versions).
    pub code_size: u32,
    /// Monotone install counter distinguishing recompilations.
    pub version_id: u32,
    /// OSR anchors: per surviving root loop header, the frame mapping
    /// between a baseline frame and this version's frame. Empty for
    /// baseline code and for optimized code without root loops.
    pub osr_map: OsrMap,
    /// Lazily built pre-decoded form of `body` (see DESIGN.md §13). Filled
    /// on first execution by the decoded dispatch loop; purely an execution
    /// cache — it never influences simulated cycles or observable state.
    pub decoded: DecodeCache,
}

/// Container for a method version's lazily pre-decoded body.
///
/// Lives inside [`MethodVersion`] so the cache shares the version's
/// lifetime and thread-safety story: versions are handed around as
/// `Arc<MethodVersion>` (including across the async-compile pool), and
/// `OnceLock` makes the one-time decode race-free. Cloning a version
/// deliberately does **not** clone the cache — a clone's body may be
/// edited before install, so it starts with an empty cache and decodes
/// on first execution.
#[derive(Default)]
pub struct DecodeCache(pub(crate) OnceLock<DecodedBody>);

impl Clone for DecodeCache {
    fn clone(&self) -> Self {
        DecodeCache::default()
    }
}

impl std::fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(b) => write!(f, "DecodeCache({} ops)", b.instrs.len()),
            None => f.write_str("DecodeCache(empty)"),
        }
    }
}

impl MethodVersion {
    /// Builds the baseline version of a method from its source definition.
    pub fn baseline(def: &aoci_ir::MethodDef) -> Self {
        MethodVersion {
            method: def.id(),
            level: OptLevel::Baseline,
            body: def.body().to_vec(),
            num_regs: def.num_regs(),
            inline_map: InlineMap::baseline(def.id(), def.body().len()),
            code_size: def.size_estimate(),
            version_id: 0,
            osr_map: OsrMap::empty(),
            decoded: DecodeCache::default(),
        }
    }

    /// The pre-decoded form of this version's body, built on first use.
    /// `program` and `cost` must be the ones the executing VM runs under
    /// (true for every caller: a version is only ever executed by the VM
    /// whose registry it was installed into).
    pub(crate) fn decoded_body(&self, program: &Program, cost: &CostModel) -> &DecodedBody {
        self.decoded.0.get_or_init(|| DecodedBody::build(self, program, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    #[test]
    fn baseline_map_is_trivial() {
        let m = InlineMap::baseline(mid(3), 4);
        assert_eq!(m.num_nodes(), 1);
        assert_eq!(m.source_chain(2), vec![(mid(3), None)]);
        assert!(m.in_prologue(1, 2));
        assert!(!m.in_prologue(2, 2));
    }

    #[test]
    fn builder_produces_nested_chains() {
        // Layout: [root x2][B inlined at site 1 of root, x2][root x1]
        let mut b = InlineMapBuilder::new(mid(0));
        b.push_instr(b.root());
        b.push_instr(b.root());
        let nb = b.add_node(b.root(), SiteIdx(1), mid(5), 2);
        b.push_instr(nb);
        b.push_instr(nb);
        b.push_instr(b.root());
        let map = b.finish();
        assert_eq!(map.source_chain(0), vec![(mid(0), None)]);
        assert_eq!(
            map.source_chain(3),
            vec![(mid(5), Some(SiteIdx(1))), (mid(0), None)]
        );
        // Prologue of the inlined body starts at its body_start.
        assert!(map.in_prologue(2, 1));
        assert!(!map.in_prologue(3, 1));
    }

    #[test]
    fn deep_nesting_walks_to_root() {
        let mut b = InlineMapBuilder::new(mid(0));
        let n1 = b.add_node(b.root(), SiteIdx(0), mid(1), 0);
        let n2 = b.add_node(n1, SiteIdx(2), mid(2), 0);
        b.push_instr(n2);
        let map = b.finish();
        let chain = map.source_chain(0);
        assert_eq!(
            chain,
            vec![
                (mid(2), Some(SiteIdx(2))),
                (mid(1), Some(SiteIdx(0))),
                (mid(0), None)
            ]
        );
    }
}
