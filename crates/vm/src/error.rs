//! Runtime errors.

use aoci_ir::{MethodId, SelectorId};
use std::error::Error;
use std::fmt;

/// Errors raised during execution.
///
/// Well-formed workloads never raise these; they exist so the VM fails
/// loudly instead of mis-executing when a program or a compiler transform is
/// wrong — which makes them load-bearing for the inliner's test suite.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Field/array access or virtual call on null.
    NullDeref {
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
    },
    /// An operand had the wrong kind (e.g. arithmetic on a reference).
    TypeError {
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
        /// What the instruction needed.
        expected: &'static str,
    },
    /// Integer division or remainder by zero.
    DivideByZero {
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
        /// The offending index.
        index: i64,
    },
    /// Virtual dispatch found no implementation of the selector for the
    /// receiver's class.
    NoSuchMethod {
        /// The selector being dispatched.
        selector: SelectorId,
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
    },
    /// Negative array length.
    NegativeArrayLength {
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
    },
    /// The call stack exceeded the configured maximum depth.
    StackOverflow {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// An instruction referenced a register outside the frame's register
    /// file — compiled code and its frame disagree, which indicates a
    /// corrupt or mis-installed [`MethodVersion`](crate::MethodVersion).
    BadRegister {
        /// Method executing when the fault occurred.
        method: MethodId,
        /// Program counter within the executing version.
        pc: usize,
        /// The out-of-range register index.
        reg: usize,
    },
    /// The program counter ran past the end of a method body without
    /// reaching a `Return` — a malformed or truncated code version.
    PcOutOfRange {
        /// Method whose body was overrun.
        method: MethodId,
        /// The offending program counter.
        pc: usize,
    },
    /// The interpreter needed an active frame and found none — an
    /// internally inconsistent machine state (e.g. executing after the
    /// entry frame returned).
    NoActiveFrame {
        /// What the interpreter was doing when the stack came up empty.
        context: &'static str,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NullDeref { method, pc } => {
                write!(f, "null dereference in {method} at pc {pc}")
            }
            VmError::TypeError { method, pc, expected } => {
                write!(f, "type error in {method} at pc {pc}: expected {expected}")
            }
            VmError::DivideByZero { method, pc } => {
                write!(f, "division by zero in {method} at pc {pc}")
            }
            VmError::IndexOutOfBounds { method, pc, index } => {
                write!(f, "index {index} out of bounds in {method} at pc {pc}")
            }
            VmError::NoSuchMethod { selector, method, pc } => {
                write!(f, "no implementation of {selector} found, in {method} at pc {pc}")
            }
            VmError::NegativeArrayLength { method, pc } => {
                write!(f, "negative array length in {method} at pc {pc}")
            }
            VmError::StackOverflow { limit } => {
                write!(f, "call stack exceeded the configured limit of {limit} frames")
            }
            VmError::BadRegister { method, pc, reg } => {
                write!(f, "register r{reg} out of range in {method} at pc {pc}")
            }
            VmError::PcOutOfRange { method, pc } => {
                write!(f, "pc {pc} past the end of {method}'s body")
            }
            VmError::NoActiveFrame { context } => {
                write!(f, "no active frame while {context}")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_location() {
        let e = VmError::NullDeref { method: MethodId::from_index(2), pc: 7 };
        assert!(e.to_string().contains("m2"));
        assert!(e.to_string().contains("pc 7"));
    }
}
