//! Source-level stack snapshots delivered to samplers.

use aoci_ir::{CallSiteRef, MethodId, SiteIdx};

/// One source-level stack frame within a [`StackSnapshot`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SourceFrame {
    /// The method executing in this source-level frame.
    pub method: MethodId,
    /// The call site *in this frame's method* through which the next inner
    /// frame was entered; `None` for the innermost frame.
    pub callsite_to_inner: Option<SiteIdx>,
}

/// What a timer-based sample observes: the source-level call stack
/// (innermost first), reconstructed through inline maps, plus the
/// machine-level information the listeners need.
#[derive(Clone, PartialEq, Debug)]
pub struct StackSnapshot {
    /// Source-level frames, innermost first. Walk depth is capped by the
    /// VM's configuration; deep recursion yields a truncated (prefix) view.
    pub frames: Vec<SourceFrame>,
    /// The *compiled method* at the top of the machine stack — the unit the
    /// method listener attributes the sample to and the controller
    /// recompiles.
    pub root_method: MethodId,
    /// Whether the sample landed in the (source-level) prologue of the
    /// innermost frame. Edge and trace listeners only record prologue
    /// samples (paper Section 3.2).
    pub top_in_prologue: bool,
    /// Simulated time at which the sample was taken.
    pub cycles: u64,
}

impl StackSnapshot {
    /// Returns the innermost source-level method, if the stack is non-empty.
    pub fn top_method(&self) -> Option<MethodId> {
        self.frames.first().map(|f| f.method)
    }

    /// Builds the call trace of the paper's Equation 2 from this snapshot:
    /// the callee (innermost method) plus up to `max_context` ⟨caller,
    /// callsite⟩ pairs, innermost caller first.
    ///
    /// Returns `None` if the stack is empty or has no caller (an edge/trace
    /// needs at least one call). The `keep_extending` predicate implements
    /// the adaptive early-termination policies: it is consulted before each
    /// *additional* context level beyond the first, receiving the **callee
    /// of the most recently added edge** (so the first consultation sees the
    /// sampled callee itself — an immediately-parameterless callee stops the
    /// walk at one edge, matching the paper's "20% of sampled callee methods
    /// … require no additional context sensitivity"). Returning `false`
    /// stops the walk. The first level (the immediate caller — a plain call
    /// edge) is always included.
    pub fn call_trace(
        &self,
        max_context: usize,
        mut keep_extending: impl FnMut(MethodId) -> bool,
    ) -> Option<(MethodId, Vec<CallSiteRef>)> {
        let callee = self.frames.first()?.method;
        if self.frames.len() < 2 {
            return None;
        }
        let mut context = Vec::new();
        // frames[i] for i >= 1 is the caller of frames[i-1]; the call site
        // lives on frames[i] as `callsite_to_inner`.
        for i in 1..self.frames.len() {
            if context.len() >= max_context {
                break;
            }
            if i >= 2 {
                // Extend past the recorded context only if the callee side
                // of the last edge admits incoming state: frames[i - 2] is
                // the callee of edge i - 1.
                if !keep_extending(self.frames[i - 2].method) {
                    break;
                }
            }
            let caller = self.frames[i].method;
            // Non-innermost frames normally carry a call site; a frame
            // without one means the walk was truncated or the snapshot is
            // damaged — stop extending rather than panic, yielding a
            // shorter (still valid) context.
            let Some(site) = self.frames[i].callsite_to_inner else {
                break;
            };
            context.push(CallSiteRef::new(caller, site));
        }
        Some((callee, context))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(i: usize) -> MethodId {
        MethodId::from_index(i)
    }

    fn snap(frames: Vec<SourceFrame>) -> StackSnapshot {
        StackSnapshot {
            root_method: frames.last().map(|f| f.method).unwrap_or(mid(0)),
            frames,
            top_in_prologue: true,
            cycles: 0,
        }
    }

    fn frame(m: usize, site: Option<u16>) -> SourceFrame {
        SourceFrame {
            method: mid(m),
            callsite_to_inner: site.map(SiteIdx),
        }
    }

    #[test]
    fn trace_of_simple_stack() {
        // D called from C@2 called from B@1 called from A@0.
        let s = snap(vec![
            frame(3, None),
            frame(2, Some(2)),
            frame(1, Some(1)),
            frame(0, Some(0)),
        ]);
        let (callee, ctx) = s.call_trace(5, |_| true).unwrap();
        assert_eq!(callee, mid(3));
        assert_eq!(
            ctx,
            vec![
                CallSiteRef::new(mid(2), SiteIdx(2)),
                CallSiteRef::new(mid(1), SiteIdx(1)),
                CallSiteRef::new(mid(0), SiteIdx(0)),
            ]
        );
    }

    #[test]
    fn max_context_truncates() {
        let s = snap(vec![
            frame(3, None),
            frame(2, Some(2)),
            frame(1, Some(1)),
            frame(0, Some(0)),
        ]);
        let (_, ctx) = s.call_trace(2, |_| true).unwrap();
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx[0].method, mid(2));
        assert_eq!(ctx[1].method, mid(1));
    }

    #[test]
    fn early_termination_stops_walk_but_keeps_first_edge() {
        let s = snap(vec![
            frame(3, None),
            frame(2, Some(2)),
            frame(1, Some(1)),
            frame(0, Some(0)),
        ]);
        // Terminate immediately: still records the immediate caller edge.
        let (_, ctx) = s.call_trace(5, |_| false).unwrap();
        assert_eq!(ctx.len(), 1);
        assert_eq!(ctx[0].method, mid(2));
    }

    #[test]
    fn termination_predicate_sees_callee_side_methods() {
        let s = snap(vec![
            frame(3, None),
            frame(2, Some(2)),
            frame(1, Some(1)),
            frame(0, Some(0)),
        ]);
        let mut seen = Vec::new();
        let _ = s.call_trace(5, |m| {
            seen.push(m);
            true
        });
        // Extension decisions are made before adding levels 2 and 3; the
        // callee-side methods of the last added edges are m3 (the sampled
        // callee) then m2 (the immediate caller).
        assert_eq!(seen, vec![mid(3), mid(2)]);
    }

    #[test]
    fn no_trace_without_caller() {
        let s = snap(vec![frame(0, None)]);
        assert!(s.call_trace(5, |_| true).is_none());
        let empty = snap(vec![]);
        assert!(empty.call_trace(5, |_| true).is_none());
        assert_eq!(empty.top_method(), None);
    }
}
