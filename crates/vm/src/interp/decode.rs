//! The pre-decoded threaded dispatch loop (DESIGN.md §13).
//!
//! This module is the wall-clock fast path of the interpreter. It executes
//! the [`DecodedBody`] built lazily per [`MethodVersion`]: a flat array of
//! [`DecodedInstr`]s, each carrying its precomputed simulated cost, the
//! superinstruction it heads (if any), and the fully resolved operands
//! ([`DecodedOp`]). Dispatch is a jump table over the pre-fetched op with
//! every handler forced inline into the loop body — no per-step
//! `Arc::clone` of the version, no `Instr` clone, no program-table
//! lookups, no re-resolution of fields or layouts. (See the
//! [`DecodedInstr`] docs for why per-slot function pointers were tried
//! and dropped.)
//!
//! ## Bit-identity with the legacy `match` loop
//!
//! The decoded loop must be observationally indistinguishable from
//! [`Vm::run`]'s legacy path — same simulated cycles per component, same
//! counters, same trace events, same errors at the same sites, same
//! [`RunOutcome`] sequence. The argument, in brief (the long form is
//! DESIGN.md §13):
//!
//! * **Handlers replicate, not reinterpret.** Every handler body is the
//!   legacy `match` arm for its opcode with operands read from the decoded
//!   form; pre-resolved values (`offset`, `layout`) equal what the legacy
//!   arm looks up per step, by construction of the decode pass.
//! * **The loop replicates the event schedule.** The legacy run loop
//!   checks, in order: finished → budget → step → pending-OSR → sample.
//!   The decoded loop performs the same checks in the same order around
//!   each handler call; it merely hoists the frame/version fetch out of
//!   the steady state (re-fetching whenever a call, return, or OSR
//!   transition switches the executing version — the only events that can
//!   change it).
//! * **Superinstructions are compositions.** A fused handler is literally
//!   `first_half(); boundary(); second_half()` where the halves are the
//!   plain handlers' bodies and `boundary` performs exactly what the
//!   interpreter does between two adjacent instructions (store the
//!   advanced pc, charge the second instruction's cost). The fused fast
//!   path is only taken when the clock, after the first charge, is
//!   strictly below the next event boundary (sample due or budget end) —
//!   precisely the condition under which the legacy loop would have
//!   proceeded into the second instruction without yielding. First halves
//!   are straight-line ops (`Const`, `Move`, `GetField`, `Bin`): they
//!   cannot branch, call, return, finish, or raise an OSR request, so no
//!   other run-loop event can intervene between the halves.
//! * **Fusion never changes layout.** Decoded pc == source pc, and the
//!   second instruction of a fused pair keeps its own plain entry, so
//!   branch targets, OSR anchors and sample attribution are untouched
//!   (a jump *into* the middle of a pair executes the second op plainly).

use super::{Frame, RunOutcome, Vm};
use crate::clock::Component;
use crate::code::{MethodVersion, OptLevel};
use crate::cost::CostModel;
use crate::error::VmError;
use crate::value::Value;
use aoci_ir::{decode_body, fusion_plan, BinOp, Cond, DecodedOp, FusedKind, MethodId, Program, Reg};
use aoci_trace::TraceEvent;
use std::sync::Arc;

/// What a handler tells the dispatch loop to do next.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Flow {
    /// Fall through to `pc + 1`.
    Advance,
    /// A fused pair fell through: continue at `pc + 2`; the second half
    /// (the instruction that just executed) sat at `pc + 1`.
    AdvanceFused,
    /// Transfer to `target`. `fused` marks a taken branch that executed as
    /// the second half of a pair at `pc + 1` (the back-edge hook needs the
    /// branch's own pc).
    Jump {
        /// Absolute target pc.
        target: u32,
        /// Whether the branch ran as a fused second half.
        fused: bool,
    },
    /// A frame was pushed (call): re-fetch the executing version.
    Call,
    /// The top frame returned (or the program finished).
    Ret,
}

/// One slot of a pre-decoded body: the execution-ready form of one source
/// instruction.
///
/// Dispatch is a jump table over [`DecodedOp`]'s tag (and [`FusedKind`]
/// for superinstructions), with every handler inlined into the run loop.
/// An earlier revision threaded dispatch through per-slot function
/// pointers; on this workload mix the indirect calls defeated handler
/// inlining and measured ~30% *slower* than the legacy `match` loop in
/// release mode, so the explicit pointer table was dropped — the decoded
/// win comes from pre-resolved operands, precomputed costs and fusion,
/// not from the dispatch mechanism itself.
#[derive(Debug)]
pub(crate) struct DecodedInstr {
    /// Precomputed simulated cost of this instruction (charged by the
    /// dispatch loop before the handler runs, as the legacy loop does).
    pub(crate) cost: u64,
    /// The superinstruction this pc heads, when it heads one.
    pub(crate) fused: Option<FusedKind>,
    /// The decoded operands.
    pub(crate) op: DecodedOp,
}

/// A fully pre-decoded method body plus the per-body constants the
/// dispatch loop needs (charge component, method id for fault sites).
#[derive(Debug)]
pub(crate) struct DecodedBody {
    /// The method this body compiles (fault attribution).
    pub(crate) method: MethodId,
    /// Compilation level (drives the back-edge hook's direction).
    pub(crate) level: OptLevel,
    /// The clock component application cycles are charged to.
    pub(crate) component: Component,
    /// One decoded slot per source instruction; decoded pc == source pc.
    pub(crate) instrs: Box<[DecodedInstr]>,
}

impl DecodedBody {
    /// Lowers `version.body` into its decoded form under `cost`. Costs and
    /// the charge component are precomputed per instruction; the fusion
    /// plan marks each pc that heads a fused pair.
    pub(crate) fn build(version: &MethodVersion, program: &Program, cost: &CostModel) -> Self {
        let ops = decode_body(&version.body, program);
        let plan = fusion_plan(&ops);
        let costs: Vec<u64> =
            version.body.iter().map(|i| cost.instr_cost(i, version.level)).collect();
        let component = match version.level {
            OptLevel::Baseline => Component::AppBaseline,
            OptLevel::Optimized => Component::AppOptimized,
        };
        let instrs = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| {
                DecodedInstr { cost: costs[i], fused: plan[i], op }
            })
            .collect();
        DecodedBody { method: version.method, level: version.level, component, instrs }
    }
}

/// Executes the plain (single-instruction) handler for the op at `pc`.
/// One jump table; every handler inlines into the caller's loop body.
#[inline(always)]
fn dispatch_plain(
    vm: &mut Vm<'_>,
    method: MethodId,
    op: &DecodedOp,
    pc: usize,
) -> Result<Flow, VmError> {
    match op {
        DecodedOp::Const { .. } => op_const(vm, method, op, pc),
        DecodedOp::ConstNull { .. } => op_const_null(vm, method, op, pc),
        DecodedOp::Move { .. } => op_move(vm, method, op, pc),
        DecodedOp::Bin { .. } => op_bin(vm, method, op, pc),
        DecodedOp::Work { .. } => op_work(vm, method, op, pc),
        DecodedOp::New { .. } => op_new(vm, method, op, pc),
        DecodedOp::GetField { .. } => op_get_field(vm, method, op, pc),
        DecodedOp::PutField { .. } => op_put_field(vm, method, op, pc),
        DecodedOp::GetGlobal { .. } => op_get_global(vm, method, op, pc),
        DecodedOp::PutGlobal { .. } => op_put_global(vm, method, op, pc),
        DecodedOp::ArrNew { .. } => op_arr_new(vm, method, op, pc),
        DecodedOp::ArrGet { .. } => op_arr_get(vm, method, op, pc),
        DecodedOp::ArrSet { .. } => op_arr_set(vm, method, op, pc),
        DecodedOp::ArrLen { .. } => op_arr_len(vm, method, op, pc),
        DecodedOp::InstanceOf { .. } => op_instance_of(vm, method, op, pc),
        DecodedOp::Jump { .. } => op_jump(vm, method, op, pc),
        DecodedOp::Branch { .. } => op_branch(vm, method, op, pc),
        DecodedOp::CallStatic { .. } => op_call_static(vm, method, op, pc),
        DecodedOp::CallVirtual { .. } => op_call_virtual(vm, method, op, pc),
        DecodedOp::Return { .. } => op_return(vm, method, op, pc),
        DecodedOp::GuardClass { .. } => op_guard_class(vm, method, op, pc),
        DecodedOp::GuardMethod { .. } => op_guard_method(vm, method, op, pc),
    }
}

/// Executes the superinstruction for a fused pair headed at `pc`.
#[inline(always)]
fn dispatch_fused(
    kind: FusedKind,
    vm: &mut Vm<'_>,
    body: &DecodedBody,
    pc: usize,
) -> Result<Flow, VmError> {
    match kind {
        FusedKind::ConstBin => fused_const_bin(vm, body, pc),
        FusedKind::MoveBin => fused_move_bin(vm, body, pc),
        FusedKind::GetFieldBin => fused_get_field_bin(vm, body, pc),
        FusedKind::BinBranch => fused_bin_branch(vm, body, pc),
        FusedKind::ConstBranch => fused_const_branch(vm, body, pc),
    }
}

impl<'p> Vm<'p> {
    /// The decoded-dispatch run loop: behaviorally identical to the legacy
    /// loop in [`Vm::run`] (see the module docs for the equivalence
    /// argument), entered after the shared prologue with `start` already
    /// latched.
    pub(super) fn run_decoded(&mut self, start: u64, budget: u64) -> Result<RunOutcome, VmError> {
        // The next point on the simulated clock at which the run loop must
        // yield: a due sample or budget exhaustion, whichever is earlier.
        // Both are fixed for the duration of this call (a sample return
        // re-enters through `run`). The fused fast path is gated on being
        // strictly below this boundary.
        let budget_end = start.saturating_add(budget);
        let event = self.next_sample_at.unwrap_or(u64::MAX).min(budget_end);
        'frames: loop {
            if let Some(v) = &self.finished {
                return Ok(RunOutcome::Finished(*v));
            }
            if self.clock.total() - start >= budget {
                return Ok(RunOutcome::BudgetExhausted);
            }
            let frame = self
                .stack
                .last()
                .ok_or(VmError::NoActiveFrame { context: "executing an instruction" })?;
            let version = Arc::clone(&frame.version);
            let mut pc = frame.pc;
            let body = version.decoded_body(self.program, &self.cost);
            loop {
                let di = body
                    .instrs
                    .get(pc)
                    .ok_or(VmError::PcOutOfRange { method: body.method, pc })?;
                self.clock.charge(body.component, di.cost);
                // Fused fast path only while the clock stays strictly below
                // the next event boundary after the first half's charge —
                // exactly when the legacy loop would run the second
                // instruction before yielding.
                let flow = match di.fused {
                    Some(kind) if self.clock.total() < event => {
                        dispatch_fused(kind, self, body, pc)?
                    }
                    _ => dispatch_plain(self, body.method, &di.op, pc)?,
                };
                // `from` is the pc of the instruction that produced the
                // transfer (the second half, for fused flows): the legacy
                // loop's `pc` at its back-edge hook.
                let mut switched = false;
                match flow {
                    Flow::Advance => {
                        pc = self.after_step(body, &version, pc + 1, pc, &mut switched)?;
                    }
                    Flow::AdvanceFused => {
                        pc = self.after_step(body, &version, pc + 2, pc + 1, &mut switched)?;
                    }
                    Flow::Jump { target, fused } => {
                        let from = if fused { pc + 1 } else { pc };
                        pc = self.after_step(body, &version, target as usize, from, &mut switched)?;
                    }
                    Flow::Call | Flow::Ret => switched = true,
                }
                // Post-step checks, in the legacy loop's order.
                if let Some(req) = self.pending_osr.take() {
                    return Ok(RunOutcome::OsrRequest(req));
                }
                if let Some(due) = self.next_sample_at {
                    if self.clock.total() >= due && self.finished.is_none() {
                        self.next_sample_at = Some(self.clock.total() + self.cost.sample_period);
                        let snapshot = self.snapshot();
                        return Ok(RunOutcome::Sample(snapshot));
                    }
                }
                if switched {
                    // A call, return, or OSR transition may have changed
                    // the executing version: loop back through the fetch.
                    continue 'frames;
                }
                if self.finished.is_some() {
                    continue 'frames;
                }
                if self.clock.total() - start >= budget {
                    return Ok(RunOutcome::BudgetExhausted);
                }
            }
        }
    }

    /// The legacy loop's step tail for straight-line and branching flows:
    /// the back-edge OSR hook, then the pc store. Returns the pc execution
    /// continues at; sets `switched` when an OSR exit replaced the frame.
    #[inline(always)]
    fn after_step(
        &mut self,
        body: &DecodedBody,
        version: &Arc<MethodVersion>,
        next_pc: usize,
        from: usize,
        switched: &mut bool,
    ) -> Result<usize, VmError> {
        if self.config.osr_enabled && next_pc <= from {
            match body.level {
                OptLevel::Baseline => self.count_backedge(body.method, next_pc as u32),
                OptLevel::Optimized => {
                    let invalidated = self.registry.is_invalidated(version.version_id);
                    let armed = self.stack.last().is_some_and(|f| f.deopt_armed);
                    if (invalidated || armed)
                        && version.osr_map.exit_at_opt(next_pc as u32).is_some()
                    {
                        self.osr_exit(version, next_pc as u32)?;
                        *switched = true;
                        return Ok(next_pc);
                    }
                }
            }
        }
        self.stack
            .last_mut()
            .ok_or(VmError::NoActiveFrame { context: "advancing the program counter" })?
            .pc = next_pc;
        Ok(next_pc)
    }
}

/// The inter-instruction boundary inside a fused pair: store the advanced
/// pc (so fault sites, stack walks and register errors in the second half
/// see the second instruction's pc, as the legacy loop guarantees) and
/// charge the second instruction's cost.
#[inline(always)]
fn fused_boundary(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<(), VmError> {
    vm.stack
        .last_mut()
        .ok_or(VmError::NoActiveFrame { context: "advancing the program counter" })?
        .pc = pc + 1;
    vm.clock.charge(body.component, body.instrs[pc + 1].cost);
    Ok(())
}

/// Lifts a second-half flow into its fused form (the dispatch loop must
/// know the executing instruction sat at `pc + 1`).
#[inline(always)]
fn as_second_half(flow: Flow) -> Flow {
    match flow {
        Flow::Advance => Flow::AdvanceFused,
        Flow::Jump { target, .. } => Flow::Jump { target, fused: true },
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Plain handlers. Each is the legacy `match` arm for its opcode, reading
// operands from the decoded form. `body.method` / `pc` reproduce the legacy
// fault sites exactly (the dispatch loop maintains `frame.pc == pc`).
// ---------------------------------------------------------------------------

#[inline(always)]
fn op_const(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::Const { dst, value } = op else { unreachable!() };
    vm.set_reg(Reg(dst), Value::Int(value))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_const_null(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::ConstNull { dst } = op else { unreachable!() };
    vm.set_reg(Reg(dst), Value::Null)?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_move(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::Move { dst, src } = op else { unreachable!() };
    let v = vm.reg(Reg(src))?;
    vm.set_reg(Reg(dst), v)?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_bin(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::Bin { op, dst, lhs, rhs } = op else { unreachable!() };
    let a = vm.int(vm.reg(Reg(lhs))?)?;
    let b = vm.int(vm.reg(Reg(rhs))?)?;
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(VmError::DivideByZero { method, pc });
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(VmError::DivideByZero { method, pc });
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
    };
    vm.set_reg(Reg(dst), Value::Int(r))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_work(_vm: &mut Vm<'_>, _method: MethodId, _op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_new(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::New { dst, class, layout } = op else { unreachable!() };
    let r = vm.heap.alloc_object(class, layout);
    vm.set_reg(Reg(dst), Value::Ref(r))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_get_field(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::GetField { dst, obj, offset, .. } = op else {
        unreachable!()
    };
    let r = vm.reg(Reg(obj))?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
    let v = vm
        .heap
        .get_field(r, offset)
        .ok_or(VmError::TypeError { method, pc, expected: "object" })?;
    vm.set_reg(Reg(dst), v)?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_put_field(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::PutField { obj, offset, src, .. } = op else {
        unreachable!()
    };
    let r = vm.reg(Reg(obj))?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
    let v = vm.reg(Reg(src))?;
    if !vm.heap.put_field(r, offset, v) {
        return Err(VmError::TypeError { method, pc, expected: "object" });
    }
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_get_global(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::GetGlobal { dst, global } = op else { unreachable!() };
    let v = vm.globals[global.index()];
    vm.set_reg(Reg(dst), v)?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_put_global(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::PutGlobal { global, src } = op else { unreachable!() };
    vm.globals[global.index()] = vm.reg(Reg(src))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_arr_new(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::ArrNew { dst, len } = op else { unreachable!() };
    let n = vm.int(vm.reg(Reg(len))?)?;
    if n < 0 {
        return Err(VmError::NegativeArrayLength { method, pc });
    }
    let r = vm.heap.alloc_array(n as u32);
    vm.set_reg(Reg(dst), Value::Ref(r))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_arr_get(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::ArrGet { dst, arr, idx } = op else { unreachable!() };
    let r = vm.reg(Reg(arr))?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
    let i = vm.int(vm.reg(Reg(idx))?)?;
    let v = vm
        .heap
        .arr_get(r, i)
        .ok_or(VmError::IndexOutOfBounds { method, pc, index: i })?;
    vm.set_reg(Reg(dst), v)?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_arr_set(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::ArrSet { arr, idx, src } = op else { unreachable!() };
    let r = vm.reg(Reg(arr))?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
    let i = vm.int(vm.reg(Reg(idx))?)?;
    let v = vm.reg(Reg(src))?;
    if !vm.heap.arr_set(r, i, v) {
        return Err(VmError::IndexOutOfBounds { method, pc, index: i });
    }
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_arr_len(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::ArrLen { dst, arr } = op else { unreachable!() };
    let r = vm.reg(Reg(arr))?.as_ref().ok_or(VmError::NullDeref { method, pc })?;
    let n = vm
        .heap
        .arr_len(r)
        .ok_or(VmError::TypeError { method, pc, expected: "array" })?;
    vm.set_reg(Reg(dst), Value::Int(n))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_instance_of(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::InstanceOf { dst, obj, class } = op else { unreachable!() };
    let result = match vm.reg(Reg(obj))? {
        Value::Ref(r) => match vm.heap.class_of(r) {
            Some(c) => vm.program.is_subclass(c, class),
            None => false,
        },
        _ => false,
    };
    vm.set_reg(Reg(dst), Value::Int(result as i64))?;
    Ok(Flow::Advance)
}

#[inline(always)]
fn op_jump(_vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::Jump { target } = op else { unreachable!() };
    Ok(Flow::Jump { target, fused: false })
}

#[inline(always)]
fn op_branch(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::Branch { cond, lhs, rhs, target } = op else {
        unreachable!()
    };
    let a = vm.reg(Reg(lhs))?;
    let b = vm.reg(Reg(rhs))?;
    let taken = match cond {
        Cond::Eq => a.vm_eq(b),
        Cond::Ne => !a.vm_eq(b),
        Cond::Lt => vm.int(a)? < vm.int(b)?,
        Cond::Le => vm.int(a)? <= vm.int(b)?,
        Cond::Gt => vm.int(a)? > vm.int(b)?,
        Cond::Ge => vm.int(a)? >= vm.int(b)?,
    };
    Ok(if taken { Flow::Jump { target, fused: false } } else { Flow::Advance })
}

#[inline(always)]
fn op_guard_class(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::GuardClass { recv, class, else_target } = op else {
        unreachable!()
    };
    let pass = match vm.reg(Reg(recv))? {
        Value::Ref(r) => vm.heap.class_of(r) == Some(class),
        _ => false,
    };
    let mut flow = Flow::Advance;
    vm.counters.guard_checks += 1;
    vm.guard_stats[method.index()].checks += 1;
    if !pass {
        vm.counters.guard_misses += 1;
        vm.guard_stats[method.index()].misses += 1;
        flow = Flow::Jump { target: else_target, fused: false };
        if let Some(t) = &vm.trace {
            t.emit(vm.clock.total(), TraceEvent::GuardMiss { method, pc: pc as u32 });
        }
    }
    vm.note_guard(pass);
    Ok(flow)
}

#[inline(always)]
fn op_guard_method(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::GuardMethod { recv, selector, target, else_target } = op
    else {
        unreachable!()
    };
    let pass = match vm.reg(Reg(recv))? {
        Value::Ref(r) => {
            vm.heap.class_of(r).and_then(|c| vm.program.lookup_virtual(c, selector))
                == Some(target)
        }
        _ => false,
    };
    let mut flow = Flow::Advance;
    vm.counters.guard_checks += 1;
    vm.guard_stats[method.index()].checks += 1;
    if !pass {
        vm.counters.guard_misses += 1;
        vm.guard_stats[method.index()].misses += 1;
        flow = Flow::Jump { target: else_target, fused: false };
        if let Some(t) = &vm.trace {
            t.emit(vm.clock.total(), TraceEvent::GuardMiss { method, pc: pc as u32 });
        }
    }
    vm.note_guard(pass);
    Ok(flow)
}

#[inline(always)]
fn op_call_static(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let DecodedOp::CallStatic { dst, callee, args, .. } = op else {
        unreachable!()
    };
    vm.counters.calls += 1;
    let argv =
        args.iter().map(|&a| vm.reg(Reg(a))).collect::<Result<Vec<Value>, VmError>>()?;
    let callee_version = vm.ensure_compiled(*callee);
    // The caller's pc stays on the call instruction while the callee runs
    // (stack walks read the site from it); it is advanced on return.
    vm.push_frame(callee_version, argv, dst.map(Reg))?;
    Ok(Flow::Call)
}

#[inline(always)]
fn op_call_virtual(vm: &mut Vm<'_>, method: MethodId, op: &DecodedOp, pc: usize) -> Result<Flow, VmError> {
    let DecodedOp::CallVirtual { dst, selector, recv, args, .. } = op else {
        unreachable!()
    };
    vm.counters.calls += 1;
    vm.counters.virtual_dispatches += 1;
    let recv_val = vm.reg(Reg(*recv))?;
    let r = recv_val.as_ref().ok_or(VmError::NullDeref { method, pc })?;
    let class = vm
        .heap
        .class_of(r)
        .ok_or(VmError::TypeError { method, pc, expected: "object" })?;
    let target = vm
        .program
        .lookup_virtual(class, *selector)
        .ok_or(VmError::NoSuchMethod { selector: *selector, method, pc })?;
    let mut argv = Vec::with_capacity(args.len() + 1);
    argv.push(recv_val);
    for &a in args.iter() {
        argv.push(vm.reg(Reg(a))?);
    }
    let callee_version = vm.ensure_compiled(target);
    vm.push_frame(callee_version, argv, dst.map(Reg))?;
    Ok(Flow::Call)
}

#[inline(always)]
fn op_return(vm: &mut Vm<'_>, _method: MethodId, op: &DecodedOp, _pc: usize) -> Result<Flow, VmError> {
    let &DecodedOp::Return { src } = op else { unreachable!() };
    let value = match src {
        Some(r) => Some(vm.reg(Reg(r))?),
        None => None,
    };
    let finished_frame: Frame = vm
        .stack
        .pop()
        .ok_or(VmError::NoActiveFrame { context: "returning from a call" })?;
    match vm.stack.last_mut() {
        None => {
            vm.finished = Some(value);
        }
        Some(caller) => {
            if let (Some(dst), Some(v)) = (finished_frame.ret_dst, value) {
                let slot = caller.regs.get_mut(dst.index()).ok_or(VmError::BadRegister {
                    method: caller.version.method,
                    pc: caller.pc,
                    reg: dst.index(),
                })?;
                *slot = v;
            }
            caller.pc += 1; // advance past the call instruction
        }
    }
    Ok(Flow::Ret)
}

// ---------------------------------------------------------------------------
// First-half executors: the straight-line halves of fused pairs, factored
// so each superinstruction is literally a composition of the plain
// handlers' bodies. All return `()` — they always fall through.
// ---------------------------------------------------------------------------

#[inline(always)]
fn half_const(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<(), VmError> {
    op_const(vm, body.method, &body.instrs[pc].op, pc).map(|_| ())
}

#[inline(always)]
fn half_move(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<(), VmError> {
    op_move(vm, body.method, &body.instrs[pc].op, pc).map(|_| ())
}

#[inline(always)]
fn half_get_field(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<(), VmError> {
    op_get_field(vm, body.method, &body.instrs[pc].op, pc).map(|_| ())
}

#[inline(always)]
fn half_bin(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<(), VmError> {
    op_bin(vm, body.method, &body.instrs[pc].op, pc).map(|_| ())
}

// ---------------------------------------------------------------------------
// Superinstructions: first half, boundary, second half. Composition of the
// plain handlers — bit-identity by construction.
// ---------------------------------------------------------------------------

#[inline(always)]
fn fused_const_bin(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<Flow, VmError> {
    half_const(vm, body, pc)?;
    fused_boundary(vm, body, pc)?;
    Ok(as_second_half(op_bin(vm, body.method, &body.instrs[pc + 1].op, pc + 1)?))
}

#[inline(always)]
fn fused_move_bin(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<Flow, VmError> {
    half_move(vm, body, pc)?;
    fused_boundary(vm, body, pc)?;
    Ok(as_second_half(op_bin(vm, body.method, &body.instrs[pc + 1].op, pc + 1)?))
}

#[inline(always)]
fn fused_get_field_bin(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<Flow, VmError> {
    half_get_field(vm, body, pc)?;
    fused_boundary(vm, body, pc)?;
    Ok(as_second_half(op_bin(vm, body.method, &body.instrs[pc + 1].op, pc + 1)?))
}

#[inline(always)]
fn fused_bin_branch(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<Flow, VmError> {
    half_bin(vm, body, pc)?;
    fused_boundary(vm, body, pc)?;
    Ok(as_second_half(op_branch(vm, body.method, &body.instrs[pc + 1].op, pc + 1)?))
}

#[inline(always)]
fn fused_const_branch(vm: &mut Vm<'_>, body: &DecodedBody, pc: usize) -> Result<Flow, VmError> {
    half_const(vm, body, pc)?;
    fused_boundary(vm, body, pc)?;
    Ok(as_second_half(op_branch(vm, body.method, &body.instrs[pc + 1].op, pc + 1)?))
}
