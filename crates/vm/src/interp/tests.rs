use super::*;
use crate::code::{InlineMapBuilder, MethodVersion, OptLevel};
use aoci_ir::{BinOp, Cond, ProgramBuilder, SiteIdx};

fn run_main(build: impl FnOnce(&mut ProgramBuilder) -> aoci_ir::MethodId) -> Option<Value> {
    let mut b = ProgramBuilder::new();
    let main = build(&mut b);
    let p = b.finish(main).expect("valid program");
    let mut vm = Vm::new(&p, CostModel::default());
    vm.run_to_completion().expect("no fault")
}

#[test]
fn arithmetic_and_branches() {
    // Compute sum 1..=5 with a loop.
    let v = run_main(|b| {
        let mut m = b.static_method("main", 0);
        let i = m.fresh_reg();
        let sum = m.fresh_reg();
        let limit = m.fresh_reg();
        let one = m.fresh_reg();
        m.const_int(i, 1);
        m.const_int(sum, 0);
        m.const_int(limit, 5);
        m.const_int(one, 1);
        let top = m.label();
        let out = m.label();
        m.bind(top);
        m.branch(Cond::Gt, i, limit, out);
        m.bin(BinOp::Add, sum, sum, i);
        m.bin(BinOp::Add, i, i, one);
        m.jump(top);
        m.bind(out);
        m.ret(Some(sum));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(15));
}

#[test]
fn fields_and_objects() {
    let v = run_main(|b| {
        let a = b.class("A", None);
        let f = b.field(a, "x");
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(o, a);
        m.const_int(r, 77);
        m.put_field(o, f, r);
        let out = m.fresh_reg();
        m.get_field(out, o, f);
        m.ret(Some(out));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(77));
}

#[test]
fn arrays_and_globals() {
    let v = run_main(|b| {
        let g = b.global("counter");
        let mut m = b.static_method("main", 0);
        let len = m.fresh_reg();
        let arr = m.fresh_reg();
        let idx = m.fresh_reg();
        let val = m.fresh_reg();
        m.const_int(len, 4);
        m.arr_new(arr, len);
        m.const_int(idx, 2);
        m.const_int(val, 9);
        m.arr_set(arr, idx, val);
        let got = m.fresh_reg();
        m.arr_get(got, arr, idx);
        m.put_global(g, got);
        let out = m.fresh_reg();
        m.get_global(out, g);
        let n = m.fresh_reg();
        m.arr_len(n, arr);
        m.bin(BinOp::Add, out, out, n);
        m.ret(Some(out));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(13));
}

#[test]
fn virtual_dispatch_picks_dynamic_class() {
    let v = run_main(|b| {
        let sel = b.selector("val", 0);
        let a = b.class("A", None);
        let c = b.class("B", Some(a));
        {
            let mut m = b.virtual_method("A.val", a, sel);
            let r = m.fresh_reg();
            m.const_int(r, 1);
            m.ret(Some(r));
            m.finish();
        }
        {
            let mut m = b.virtual_method("B.val", c, sel);
            let r = m.fresh_reg();
            m.const_int(r, 2);
            m.ret(Some(r));
            m.finish();
        }
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        let ra = m.fresh_reg();
        let rb = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, c);
        m.call_virtual(Some(ra), sel, oa, &[]);
        m.call_virtual(Some(rb), sel, ob, &[]);
        let shift = m.fresh_reg();
        m.const_int(shift, 10);
        m.bin(BinOp::Mul, rb, rb, shift);
        m.bin(BinOp::Add, ra, ra, rb);
        m.ret(Some(ra));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(21));
}

#[test]
fn inherited_method_dispatch() {
    let v = run_main(|b| {
        let sel = b.selector("val", 0);
        let a = b.class("A", None);
        let sub = b.class("Sub", Some(a)); // does not override
        {
            let mut m = b.virtual_method("A.val", a, sel);
            let r = m.fresh_reg();
            m.const_int(r, 5);
            m.ret(Some(r));
            m.finish();
        }
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.new_obj(o, sub);
        m.call_virtual(Some(r), sel, o, &[]);
        m.ret(Some(r));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(5));
}

#[test]
fn recursion_with_arguments() {
    // fib(10) = 55 via naive recursion.
    let v = run_main(|b| {
        let fib = {
            let mut m = b.static_method("fib", 1);
            let n = m.param(0);
            let two = m.fresh_reg();
            m.const_int(two, 2);
            let recurse = m.label();
            m.branch(Cond::Ge, n, two, recurse);
            m.ret(Some(n));
            m.bind(recurse);
            let one = m.fresh_reg();
            let a = m.fresh_reg();
            let c = m.fresh_reg();
            let t = m.fresh_reg();
            m.const_int(one, 1);
            m.bin(BinOp::Sub, t, n, one);
            m.call_static(Some(a), m.id(), &[t]);
            m.bin(BinOp::Sub, t, n, two);
            m.call_static(Some(c), m.id(), &[t]);
            m.bin(BinOp::Add, a, a, c);
            m.ret(Some(a));
            m.finish()
        };
        let mut m = b.static_method("main", 0);
        let n = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(n, 10);
        m.call_static(Some(r), fib, &[n]);
        m.ret(Some(r));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(55));
}

#[test]
fn instance_of_respects_subtyping() {
    let v = run_main(|b| {
        let a = b.class("A", None);
        let sub = b.class("Sub", Some(a));
        let other = b.class("Other", None);
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        m.new_obj(o, sub);
        let r1 = m.fresh_reg();
        let r2 = m.fresh_reg();
        let r3 = m.fresh_reg();
        m.instance_of(r1, o, a); // 1: Sub <: A
        m.instance_of(r2, o, other); // 0
        let n = m.fresh_reg();
        m.const_null(n);
        m.instance_of(r3, n, a); // 0: null
        let ten = m.fresh_reg();
        m.const_int(ten, 10);
        m.bin(BinOp::Mul, r1, r1, ten);
        m.bin(BinOp::Add, r1, r1, r2);
        m.bin(BinOp::Add, r1, r1, r3);
        m.ret(Some(r1));
        m.finish()
    });
    assert_eq!(v.and_then(Value::as_int), Some(10));
}

fn faulting_program(
    build: impl FnOnce(&mut ProgramBuilder) -> aoci_ir::MethodId,
) -> VmError {
    let mut b = ProgramBuilder::new();
    let main = build(&mut b);
    let p = b.finish(main).expect("valid program");
    let mut vm = Vm::new(&p, CostModel::default());
    vm.run_to_completion().expect_err("program faults")
}

#[test]
fn null_deref_faults() {
    let e = faulting_program(|b| {
        let a = b.class("A", None);
        let f = b.field(a, "x");
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_null(o);
        m.get_field(r, o, f);
        m.ret(None);
        m.finish()
    });
    assert!(matches!(e, VmError::NullDeref { .. }));
}

#[test]
fn divide_by_zero_faults() {
    let e = faulting_program(|b| {
        let mut m = b.static_method("main", 0);
        let a = m.fresh_reg();
        let z = m.fresh_reg();
        m.const_int(a, 1);
        m.const_int(z, 0);
        m.bin(BinOp::Div, a, a, z);
        m.ret(None);
        m.finish()
    });
    assert!(matches!(e, VmError::DivideByZero { .. }));
}

#[test]
fn index_out_of_bounds_faults() {
    let e = faulting_program(|b| {
        let mut m = b.static_method("main", 0);
        let len = m.fresh_reg();
        let arr = m.fresh_reg();
        let idx = m.fresh_reg();
        let r = m.fresh_reg();
        m.const_int(len, 2);
        m.arr_new(arr, len);
        m.const_int(idx, 5);
        m.arr_get(r, arr, idx);
        m.ret(None);
        m.finish()
    });
    assert!(matches!(e, VmError::IndexOutOfBounds { index: 5, .. }));
}

#[test]
fn stack_overflow_faults() {
    let mut b = ProgramBuilder::new();
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, m.id(), &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).expect("valid program");
    let mut vm = Vm::with_config(
        &p,
        CostModel::default(),
        VmConfig { max_stack_depth: 32, ..VmConfig::default() },
    );
    let e = vm.run_to_completion().expect_err("overflows");
    assert!(matches!(e, VmError::StackOverflow { limit: 32 }));
}

#[test]
fn baseline_compilation_charged_once_per_method() {
    let mut b = ProgramBuilder::new();
    let callee = {
        let mut m = b.static_method("callee", 0);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, callee, &[]);
        m.call_static(None, callee, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).expect("valid program");
    let mut vm = Vm::new(&p, CostModel::default());
    vm.run_to_completion().expect("ok");
    assert_eq!(vm.registry().baseline_compilations(), 2); // main + callee
    assert!(vm.clock().component(Component::BaselineCompilation) > 0);
}

#[test]
fn samples_fire_periodically() {
    let mut b = ProgramBuilder::new();
    let main = {
        let mut m = b.static_method("main", 0);
        for _ in 0..100 {
            m.work(100);
        }
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).expect("valid program");
    let cost = CostModel { sample_period: 1000, baseline_factor: 1, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    let mut samples = 0;
    loop {
        match vm.run(u64::MAX).expect("ok") {
            RunOutcome::Sample(s) => {
                samples += 1;
                assert_eq!(s.top_method(), Some(main));
                assert_eq!(s.root_method, main);
            }
            RunOutcome::Finished(_) => break,
            RunOutcome::BudgetExhausted | RunOutcome::OsrRequest(_) => unreachable!(),
        }
    }
    // ~10_000 cycles of work at period 1000 (+ compile time) → around 10.
    assert!((8..=13).contains(&samples), "got {samples} samples");
}

#[test]
fn budget_exhaustion_is_resumable() {
    let mut b = ProgramBuilder::new();
    let main = {
        let mut m = b.static_method("main", 0);
        for _ in 0..10 {
            m.work(100);
        }
        let r = m.fresh_reg();
        m.const_int(r, 4);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(main).expect("valid program");
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    let mut exhausted = 0;
    let result = loop {
        match vm.run(500).expect("ok") {
            RunOutcome::BudgetExhausted => exhausted += 1,
            RunOutcome::Finished(v) => break v,
            RunOutcome::Sample(_) | RunOutcome::OsrRequest(_) => unreachable!("sampling disabled"),
        }
    };
    assert!(exhausted > 1);
    assert_eq!(result.and_then(Value::as_int), Some(4));
}

#[test]
fn snapshot_reports_call_chain_and_prologue() {
    let mut b = ProgramBuilder::new();
    let leaf = {
        let mut m = b.static_method("leaf", 0);
        m.work(10_000);
        m.ret(None);
        m.finish()
    };
    let mid = {
        let mut m = b.static_method("mid", 0);
        m.call_static(None, leaf, &[]);
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        m.call_static(None, mid, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).expect("valid program");
    let cost = CostModel { sample_period: 5000, baseline_factor: 1, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    let snap = loop {
        match vm.run(u64::MAX).expect("ok") {
            RunOutcome::Sample(s) if s.top_method() == Some(leaf) => break s,
            RunOutcome::Sample(_) => continue,
            RunOutcome::Finished(_) => panic!("expected a sample in leaf"),
            RunOutcome::BudgetExhausted | RunOutcome::OsrRequest(_) => unreachable!(),
        }
    };
    let methods: Vec<_> = snap.frames.iter().map(|f| f.method).collect();
    assert_eq!(methods, vec![leaf, mid, main]);
    // mid called leaf at its site 0; main called mid at its site 0.
    assert_eq!(snap.frames[1].callsite_to_inner, Some(SiteIdx(0)));
    assert_eq!(snap.frames[2].callsite_to_inner, Some(SiteIdx(0)));
    assert_eq!(snap.frames[0].callsite_to_inner, None);
}

/// Builds an optimized version by hand (the inliner does this in `aoci-opt`)
/// and checks that (a) the VM executes it, (b) snapshots see through the
/// inlining via the inline map.
#[test]
fn optimized_code_with_inline_map_recovers_source_frames() {
    let mut b = ProgramBuilder::new();
    let inner = {
        let mut m = b.static_method("inner", 0);
        m.work(50_000);
        let r = m.fresh_reg();
        m.const_int(r, 3);
        m.ret(Some(r));
        m.finish()
    };
    let outer = {
        let mut m = b.static_method("outer", 0);
        let r = m.fresh_reg();
        m.call_static(Some(r), inner, &[]);
        m.ret(Some(r));
        m.finish()
    };
    let p = b.finish(outer).expect("valid program");

    // Hand-inlined body of `outer` with `inner` spliced at site 0:
    //   0: work 50_000        (inner)
    //   1: r1 = const 3       (inner, renamed)
    //   2: r0 = r1            (inner's return feeding outer's r0)
    //   3: return r0          (outer)
    let mut map = InlineMapBuilder::new(outer);
    let node = map.add_node(map.root(), SiteIdx(0), inner, 0);
    map.push_instr(node);
    map.push_instr(node);
    map.push_instr(node);
    map.push_instr(map.root());
    let body = vec![
        Instr::Work { units: 50_000 },
        Instr::Const { dst: Reg(1), value: 3 },
        Instr::Move { dst: Reg(0), src: Reg(1) },
        Instr::Return { src: Some(Reg(0)) },
    ];
    let version = MethodVersion {
        method: outer,
        level: OptLevel::Optimized,
        body,
        num_regs: 2,
        inline_map: map.finish(),
        code_size: 50_003,
        version_id: 0,
        osr_map: crate::OsrMap::empty(),
        decoded: crate::DecodeCache::default(),
    };

    let cost = CostModel { sample_period: 10_000, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    vm.registry_mut().install(version);
    let mut saw_inlined_frame = false;
    let result = loop {
        match vm.run(u64::MAX).expect("ok") {
            RunOutcome::Sample(s) => {
                if s.top_method() == Some(inner) {
                    saw_inlined_frame = true;
                    // Source-level stack: inner (inlined at outer@0) → outer.
                    assert_eq!(s.frames.len(), 2);
                    assert_eq!(s.frames[1].method, outer);
                    assert_eq!(s.frames[1].callsite_to_inner, Some(SiteIdx(0)));
                    // Machine-level root is the optimized `outer`.
                    assert_eq!(s.root_method, outer);
                }
            }
            RunOutcome::Finished(v) => break v,
            RunOutcome::BudgetExhausted | RunOutcome::OsrRequest(_) => unreachable!(),
        }
    };
    assert_eq!(result.and_then(Value::as_int), Some(3));
    assert!(saw_inlined_frame, "expected a sample inside the inlined body");
    assert!(vm.clock().component(Component::AppOptimized) > 0);
}

/// Same as above but with the naive (non-source-level) walk: the inlined
/// frame must be invisible, demonstrating the misleading-sample problem the
/// paper describes.
#[test]
fn naive_walk_hides_inlined_frames() {
    let mut b = ProgramBuilder::new();
    let inner = {
        let mut m = b.static_method("inner", 0);
        m.work(50_000);
        m.ret(None);
        m.finish()
    };
    let outer = {
        let mut m = b.static_method("outer", 0);
        m.call_static(None, inner, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(outer).expect("valid program");

    let mut map = InlineMapBuilder::new(outer);
    let node = map.add_node(map.root(), SiteIdx(0), inner, 0);
    map.push_instr(node);
    map.push_instr(map.root());
    let version = MethodVersion {
        method: outer,
        level: OptLevel::Optimized,
        body: vec![Instr::Work { units: 50_000 }, Instr::Return { src: None }],
        num_regs: 0,
        inline_map: map.finish(),
        code_size: 50_001,
        version_id: 0,
        osr_map: crate::OsrMap::empty(),
        decoded: crate::DecodeCache::default(),
    };

    let cost = CostModel { sample_period: 10_000, ..CostModel::default() };
    let config = VmConfig { source_level_walk: false, ..VmConfig::default() };
    let mut vm = Vm::with_config(&p, cost, config);
    vm.registry_mut().install(version);
    let mut samples = 0;
    loop {
        match vm.run(u64::MAX).expect("ok") {
            RunOutcome::Sample(s) => {
                samples += 1;
                // The naive walk attributes everything to `outer`.
                assert_eq!(s.top_method(), Some(outer));
            }
            RunOutcome::Finished(_) => break,
            RunOutcome::BudgetExhausted | RunOutcome::OsrRequest(_) => unreachable!(),
        }
    }
    assert!(samples > 0);
}

#[test]
fn guard_class_dispatches_inline_vs_fallback() {
    // Optimized body of `call(o)`: guard o is A → inlined const 1;
    // else virtual call (fallback).
    let mut b = ProgramBuilder::new();
    let sel = b.selector("val", 0);
    let a = b.class("A", None);
    let c = b.class("B", Some(a));
    let a_val = {
        let mut m = b.virtual_method("A.val", a, sel);
        let r = m.fresh_reg();
        m.const_int(r, 1);
        m.ret(Some(r));
        m.finish()
    };
    {
        let mut m = b.virtual_method("B.val", c, sel);
        let r = m.fresh_reg();
        m.const_int(r, 2);
        m.ret(Some(r));
        m.finish();
    }
    let call = {
        let mut m = b.static_method("call", 1);
        let r = m.fresh_reg();
        m.call_virtual(Some(r), sel, m.param(0), &[]);
        m.ret(Some(r));
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let oa = m.fresh_reg();
        let ob = m.fresh_reg();
        let ra = m.fresh_reg();
        let rb = m.fresh_reg();
        m.new_obj(oa, a);
        m.new_obj(ob, c);
        m.call_static(Some(ra), call, &[oa]);
        m.call_static(Some(rb), call, &[ob]);
        let ten = m.fresh_reg();
        m.const_int(ten, 10);
        m.bin(BinOp::Mul, rb, rb, ten);
        m.bin(BinOp::Add, ra, ra, rb);
        m.ret(Some(ra));
        m.finish()
    };
    let p = b.finish(main).expect("valid program");

    // Hand-build guarded-inline version of `call`:
    //   0: guard r0 is A else 4
    //   1: r2 = const 1        (inlined A.val, renamed)
    //   2: r1 = r2
    //   3: jump 5
    //   4: r1 = vcall val(r0)  (fallback)
    //   5: return r1
    let mut map = InlineMapBuilder::new(call);
    let node = map.add_node(map.root(), SiteIdx(0), a_val, 1);
    map.push_instr(map.root());
    map.push_instr(node);
    map.push_instr(node);
    map.push_instr(map.root());
    map.push_instr(map.root());
    map.push_instr(map.root());
    let body = vec![
        Instr::GuardClass { recv: Reg(0), class: a, else_target: 4 },
        Instr::Const { dst: Reg(2), value: 1 },
        Instr::Move { dst: Reg(1), src: Reg(2) },
        Instr::Jump { target: 5 },
        Instr::CallVirtual {
            site: SiteIdx(0),
            dst: Some(Reg(1)),
            selector: sel,
            recv: Reg(0),
            args: vec![],
        },
        Instr::Return { src: Some(Reg(1)) },
    ];
    let version = MethodVersion {
        method: call,
        level: OptLevel::Optimized,
        body,
        num_regs: 3,
        inline_map: map.finish(),
        code_size: 20,
        version_id: 0,
        osr_map: crate::OsrMap::empty(),
        decoded: crate::DecodeCache::default(),
    };

    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    vm.registry_mut().install(version);
    let v = vm.run_to_completion().expect("ok");
    // A-receiver takes the inlined path (1); B-receiver fails the guard and
    // falls back to virtual dispatch (2): result 1 + 2*10 = 21.
    assert_eq!(v.and_then(Value::as_int), Some(21));
}

#[test]
fn deep_recursion_snapshot_truncates_at_max_walk() {
    let mut b = ProgramBuilder::new();
    let rec = {
        let mut m = b.static_method("rec", 1);
        let zero = m.fresh_reg();
        m.const_int(zero, 0);
        let base = m.label();
        m.branch(Cond::Le, m.param(0), zero, base);
        let one = m.fresh_reg();
        let t = m.fresh_reg();
        m.const_int(one, 1);
        m.bin(BinOp::Sub, t, m.param(0), one);
        m.call_static(None, m.id(), &[t]);
        m.ret(None);
        m.bind(base);
        m.work(100_000); // deep leaf: samples land here
        m.ret(None);
        m.finish()
    };
    let main = {
        let mut m = b.static_method("main", 0);
        let n = m.fresh_reg();
        m.const_int(n, 50);
        m.call_static(None, rec, &[n]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).expect("valid");
    let cost = CostModel { sample_period: 20_000, ..CostModel::default() };
    let config = VmConfig { max_walk_frames: 8, ..VmConfig::default() };
    let mut vm = Vm::with_config(&p, cost, config);
    let mut saw_truncated = false;
    loop {
        match vm.run(u64::MAX).expect("ok") {
            RunOutcome::Sample(s) => {
                assert!(s.frames.len() <= 8, "walk must respect the cap");
                if s.frames.len() == 8 {
                    saw_truncated = true;
                }
            }
            RunOutcome::Finished(_) => break,
            RunOutcome::BudgetExhausted | RunOutcome::OsrRequest(_) => unreachable!(),
        }
    }
    assert!(saw_truncated, "the 51-deep stack should hit the 8-frame cap");
}

#[test]
fn counters_start_at_zero_and_accumulate() {
    let mut b = ProgramBuilder::new();
    let sel = b.selector("v", 0);
    let a = b.class("A", None);
    {
        let mut m = b.virtual_method("A.v", a, sel);
        m.ret(None);
        m.finish();
    }
    let main = {
        let mut m = b.static_method("main", 0);
        let o = m.fresh_reg();
        m.new_obj(o, a);
        m.call_virtual(None, sel, o, &[]);
        m.call_virtual(None, sel, o, &[]);
        m.ret(None);
        m.finish()
    };
    let p = b.finish(main).expect("valid");
    let cost = CostModel { sample_period: 0, ..CostModel::default() };
    let mut vm = Vm::new(&p, cost);
    assert_eq!(vm.counters(), ExecCounters::default());
    vm.run_to_completion().expect("ok");
    let c = vm.counters();
    assert_eq!(c.calls, 2);
    assert_eq!(c.virtual_dispatches, 2);
    assert_eq!(c.guard_checks, 0);
}
