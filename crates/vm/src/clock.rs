//! Simulated time with per-component accounting.
//!
//! Everything in the AOCI system — application execution, listeners,
//! organizers, the controller and both compilers — charges cycles to one
//! [`Component`] of a shared [`Clock`]. The resulting breakdown reproduces
//! the paper's Figure 6 ("percent of execution time spent in each component
//! of the adaptive optimization system").

use std::fmt;

/// The system components that consume simulated time.
///
/// The first group corresponds to the bars of the paper's Figure 6; the
/// second group (application execution and baseline compilation) makes up
/// the remainder of execution time that the figure leaves implicit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Component {
    /// AOS listeners: taking method/edge/trace samples (Figure 6 "AOS
    /// Listeners").
    Listeners,
    /// The optimizing compilation thread (Figure 6 "CompilationThread").
    ///
    /// Under the default synchronous model every compile's full cost lands
    /// here. With background compilation on (`AsyncCompileConfig`) only the
    /// **foreground stall** — the part of a compile the application had to
    /// wait for — is charged; cycles a compile overlaps with execution are
    /// booked in the report's `async_compile` ledger instead of the clock.
    CompilationThread,
    /// The decay organizer (Figure 6 "DecayOrganizer").
    DecayOrganizer,
    /// The adaptive-inlining organizer, including the dynamic-call-graph
    /// organizer it feeds (Figure 6 "AIOrganizer").
    AiOrganizer,
    /// The hot-methods organizer (Figure 6 "MethodSampleOrganizer").
    MethodSampleOrganizer,
    /// The controller thread (Figure 6 "ControllerThread").
    ControllerThread,
    /// The AI missing-edge organizer (folded into AIOrganizer in the paper's
    /// figure; tracked separately here and merged by the harness).
    MissingEdgeOrganizer,
    /// Recovery machinery: guard-health bookkeeping, code invalidation,
    /// compile-retry scheduling and profile sanitization. Not a Figure 6
    /// bar — the paper's system has no fault model — but charged like any
    /// other AOS component so degradation shows up in the cost breakdown.
    Recovery,
    /// On-stack replacement transitions: frame-state mapping for OSR-in
    /// (hot-loop promotion into optimized code) and OSR-out
    /// (deoptimization back to baseline). Not a Figure 6 bar — the
    /// paper's system switches versions only at invocations — but charged
    /// like any other AOS component so the transfer cost is visible.
    Osr,
    /// Application code running in baseline-compiled methods.
    AppBaseline,
    /// Application code running in optimized methods.
    AppOptimized,
    /// The non-optimizing baseline compiler (runs at first invocation).
    BaselineCompilation,
}

/// All components, in a fixed order usable for dense tables.
pub const COMPONENTS: [Component; 12] = [
    Component::Listeners,
    Component::CompilationThread,
    Component::DecayOrganizer,
    Component::AiOrganizer,
    Component::MethodSampleOrganizer,
    Component::ControllerThread,
    Component::MissingEdgeOrganizer,
    Component::Recovery,
    Component::Osr,
    Component::AppBaseline,
    Component::AppOptimized,
    Component::BaselineCompilation,
];

impl Component {
    fn index(self) -> usize {
        COMPONENTS
            .iter()
            .position(|&c| c == self)
            .expect("component present in COMPONENTS")
    }

    /// A stable `snake_case` identifier for metric names
    /// (`cycles_<slug>` in the telemetry registry).
    pub fn slug(self) -> &'static str {
        match self {
            Component::Listeners => "listeners",
            Component::CompilationThread => "compilation_thread",
            Component::DecayOrganizer => "decay_organizer",
            Component::AiOrganizer => "ai_organizer",
            Component::MethodSampleOrganizer => "method_sample_organizer",
            Component::ControllerThread => "controller_thread",
            Component::MissingEdgeOrganizer => "missing_edge_organizer",
            Component::Recovery => "recovery",
            Component::Osr => "osr",
            Component::AppBaseline => "app_baseline",
            Component::AppOptimized => "app_optimized",
            Component::BaselineCompilation => "baseline_compilation",
        }
    }

    /// Returns `true` for the components counted as adaptive-optimization-
    /// system overhead in Figure 6.
    pub fn is_aos_overhead(self) -> bool {
        !matches!(
            self,
            Component::AppBaseline | Component::AppOptimized | Component::BaselineCompilation
        )
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Component::Listeners => "AOS Listeners",
            Component::CompilationThread => "CompilationThread",
            Component::DecayOrganizer => "DecayOrganizer",
            Component::AiOrganizer => "AIOrganizer",
            Component::MethodSampleOrganizer => "MethodSampleOrganizer",
            Component::ControllerThread => "ControllerThread",
            Component::MissingEdgeOrganizer => "MissingEdgeOrganizer",
            Component::Recovery => "Recovery",
            Component::Osr => "OSR",
            Component::AppBaseline => "App(baseline)",
            Component::AppOptimized => "App(optimized)",
            Component::BaselineCompilation => "BaselineCompilation",
        };
        f.write_str(s)
    }
}

/// A monotone cycle counter with a per-component breakdown.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    total: u64,
    by_component: [u64; COMPONENTS.len()],
}

impl Clock {
    /// Creates a clock at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cycles` to `component`, advancing total time.
    pub fn charge(&mut self, component: Component, cycles: u64) {
        self.total += cycles;
        self.by_component[component.index()] += cycles;
    }

    /// Returns total elapsed cycles.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Returns the cycles charged to `component`.
    pub fn component(&self, component: Component) -> u64 {
        self.by_component[component.index()]
    }

    /// Returns the fraction (0–1) of total time spent in `component`.
    /// Returns 0 when no time has elapsed.
    pub fn fraction(&self, component: Component) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.component(component) as f64 / self.total as f64
        }
    }

    /// Sum of cycles across all AOS overhead components (see
    /// [`Component::is_aos_overhead`]).
    pub fn aos_overhead(&self) -> u64 {
        COMPONENTS
            .iter()
            .filter(|c| c.is_aos_overhead())
            .map(|&c| self.component(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = Clock::new();
        c.charge(Component::AppBaseline, 100);
        c.charge(Component::Listeners, 10);
        c.charge(Component::Listeners, 5);
        assert_eq!(c.total(), 115);
        assert_eq!(c.component(Component::Listeners), 15);
        assert_eq!(c.component(Component::AppBaseline), 100);
        assert!((c.fraction(Component::Listeners) - 15.0 / 115.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_excludes_app_and_baseline_compile() {
        let mut c = Clock::new();
        c.charge(Component::AppOptimized, 50);
        c.charge(Component::BaselineCompilation, 20);
        c.charge(Component::CompilationThread, 7);
        c.charge(Component::ControllerThread, 3);
        assert_eq!(c.aos_overhead(), 10);
    }

    #[test]
    fn zero_total_fraction_is_zero() {
        let c = Clock::new();
        assert_eq!(c.fraction(Component::Listeners), 0.0);
    }

    #[test]
    fn components_list_is_exhaustive_and_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = COMPONENTS.iter().map(|c| format!("{c}")).collect();
        assert_eq!(set.len(), COMPONENTS.len());
    }
}
