//! Typed identifiers for IR entities.
//!
//! All entities in a [`Program`](crate::Program) are referred to by small,
//! copyable, newtype-wrapped indices (C-NEWTYPE). Indices are only meaningful
//! relative to the `Program` that produced them.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the raw index of this identifier.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// Only meaningful for indices previously obtained from the same
            /// [`Program`](crate::Program); mainly useful for dense tables
            /// keyed by id.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a class definition within a [`Program`](crate::Program).
    ClassId,
    "c"
);
id_type!(
    /// Identifies a method definition within a [`Program`](crate::Program).
    MethodId,
    "m"
);
id_type!(
    /// Identifies a field definition within a [`Program`](crate::Program).
    ///
    /// Field ids are global: each declared field of each class gets a unique
    /// id, and the id also determines the field's slot in object layouts.
    FieldId,
    "f"
);
id_type!(
    /// Identifies a virtual-dispatch selector (name + arity) within a
    /// [`Program`](crate::Program).
    SelectorId,
    "s"
);
id_type!(
    /// Identifies a global (static) variable within a
    /// [`Program`](crate::Program).
    GlobalId,
    "g"
);

/// A virtual register within a method body.
///
/// Registers `0..arity` hold the incoming arguments (for virtual methods,
/// register 0 is the receiver).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Reg(pub u16);

impl Reg {
    /// Returns the raw index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Index of a call site within its enclosing method.
///
/// Call sites are numbered densely in the order the builder emitted them, so
/// `(MethodId, SiteIdx)` — see [`CallSiteRef`] — names a *source-level* call
/// site stably across recompilations, which is what the paper's
/// ⟨caller, callsite, callee⟩ tuples require.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteIdx(pub u16);

impl SiteIdx {
    /// Returns the raw index of this call site.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A source-level call site: a method plus the index of one of its call
/// instructions.
///
/// This is the `⟨caller, callsite⟩` pair from the paper's profile tuples
/// (Equations 1 and 2) and is the unit from which calling contexts are
/// assembled.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CallSiteRef {
    /// The method whose body contains the call instruction.
    pub method: MethodId,
    /// The call instruction's site index within that method.
    pub site: SiteIdx,
}

impl CallSiteRef {
    /// Creates a call-site reference.
    pub fn new(method: MethodId, site: SiteIdx) -> Self {
        CallSiteRef { method, site }
    }
}

impl fmt::Display for CallSiteRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.method, self.site)
    }
}

/// A forward-reference label used by [`MethodBuilder`](crate::MethodBuilder)
/// to express branch targets before they are bound.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ClassId(3).to_string(), "c3");
        assert_eq!(MethodId(0).to_string(), "m0");
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(SiteIdx(2).to_string(), "@2");
        assert_eq!(
            CallSiteRef::new(MethodId(4), SiteIdx(1)).to_string(),
            "m4@1"
        );
        assert_eq!(Label(9).to_string(), "L9");
    }

    #[test]
    fn index_round_trip() {
        let m = MethodId::from_index(12);
        assert_eq!(m.index(), 12);
        assert_eq!(m, MethodId(12));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(ClassId(1));
        set.insert(ClassId(1));
        set.insert(ClassId(2));
        assert_eq!(set.len(), 2);
        assert!(ClassId(1) < ClassId(2));
    }
}
