//! Instruction set of the AOCI bytecode.
//!
//! The IR is register-based three-address code. Control flow uses absolute
//! instruction indices as branch targets (the builder provides labels).
//!
//! Two instruction groups exist:
//!
//! * **source instructions** — everything a front end / workload generator
//!   emits;
//! * **compiler-introduced instructions** — [`Instr::GuardClass`] and
//!   [`Instr::GuardMethod`], emitted by the optimizing compiler to implement
//!   *guarded inlining* of virtual call targets (paper Section 3.1). The VM
//!   executes them like any other instruction; a failed guard branches to
//!   the retained virtual-dispatch fallback.

use crate::ids::{ClassId, FieldId, GlobalId, MethodId, Reg, SelectorId, SiteIdx};
use std::fmt;

/// Binary arithmetic/logic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero is a VM runtime error.
    Div,
    /// Remainder; remainder by zero is a VM runtime error.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
        };
        f.write_str(s)
    }
}

/// Comparison conditions for [`Instr::Branch`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal (integers by value, references by identity, null == null).
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than (integers only).
    Lt,
    /// Signed less-or-equal (integers only).
    Le,
    /// Signed greater-than (integers only).
    Gt,
    /// Signed greater-or-equal (integers only).
    Ge,
}

impl Cond {
    /// Returns the condition with operands swapped-and-negated semantics
    /// inverted, i.e. `a OP b == !(a inverse(OP) b)`.
    pub fn inverse(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// One bytecode instruction.
///
/// Operand fields follow a fixed naming convention — `dst` destination
/// register, `src` source register, `lhs`/`rhs` operands, `obj`/`arr`/`recv`
/// reference operands, `target`/`else_target` branch targets — documented
/// once here rather than per variant.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Instr {
    /// `dst = value`.
    Const { dst: Reg, value: i64 },
    /// `dst = null`.
    ConstNull { dst: Reg },
    /// `dst = src`.
    Move { dst: Reg, src: Reg },
    /// `dst = lhs op rhs` (integer operands).
    Bin { op: BinOp, dst: Reg, lhs: Reg, rhs: Reg },
    /// Straight-line computational work of `units` abstract instructions.
    ///
    /// `Work` models a block of arithmetic of the given size without
    /// materialising that many `Instr`s: it costs `units` execution cycles
    /// and counts as `units` toward code-size estimates. Workload generators
    /// use it to give methods realistic bodies cheaply.
    Work { units: u32 },
    /// `dst = new class`.
    New { dst: Reg, class: ClassId },
    /// `dst = obj.field`. Null `obj` is a runtime error.
    GetField { dst: Reg, obj: Reg, field: FieldId },
    /// `obj.field = src`. Null `obj` is a runtime error.
    PutField { obj: Reg, field: FieldId, src: Reg },
    /// `dst = global`.
    GetGlobal { dst: Reg, global: GlobalId },
    /// `global = src`.
    PutGlobal { global: GlobalId, src: Reg },
    /// `dst = new array[len]` (elements initialised to integer 0).
    ArrNew { dst: Reg, len: Reg },
    /// `dst = arr[idx]`. Out-of-bounds or null array is a runtime error.
    ArrGet { dst: Reg, arr: Reg, idx: Reg },
    /// `arr[idx] = src`. Out-of-bounds or null array is a runtime error.
    ArrSet { arr: Reg, idx: Reg, src: Reg },
    /// `dst = arr.length`.
    ArrLen { dst: Reg, arr: Reg },
    /// `dst = obj instanceof class` (1 or 0; null is 0). Respects subtyping.
    InstanceOf { dst: Reg, obj: Reg, class: ClassId },
    /// Unconditional jump to instruction index `target`.
    Jump { target: u32 },
    /// Conditional jump to `target` when `lhs cond rhs` holds.
    Branch { cond: Cond, lhs: Reg, rhs: Reg, target: u32 },
    /// Direct call of a static (class) method.
    CallStatic {
        /// Source-level call-site index within the enclosing method.
        site: SiteIdx,
        /// Destination for the return value, if used.
        dst: Option<Reg>,
        /// Statically-bound target.
        callee: MethodId,
        /// Argument registers (must match the callee's arity).
        args: Vec<Reg>,
    },
    /// Virtual call: dispatch on the dynamic class of `recv`.
    CallVirtual {
        /// Source-level call-site index within the enclosing method.
        site: SiteIdx,
        /// Destination for the return value, if used.
        dst: Option<Reg>,
        /// Selector looked up against the receiver's class.
        selector: SelectorId,
        /// Receiver register (becomes callee register 0).
        recv: Reg,
        /// Additional argument registers.
        args: Vec<Reg>,
    },
    /// Return from the method, optionally with a value.
    Return { src: Option<Reg> },
    /// Compiler-introduced class-test guard: continue in-line when the
    /// dynamic class of `recv` is exactly `class`, otherwise jump to
    /// `else_target` (the guarded-inline fallback path).
    GuardClass { recv: Reg, class: ClassId, else_target: u32 },
    /// Compiler-introduced method-test guard: continue in-line when virtual
    /// dispatch of `selector` on `recv`'s dynamic class would select exactly
    /// `target`, otherwise jump to `else_target`. Sound in the presence of
    /// inherited (non-overridden) implementations, where a single exact
    /// class test would spuriously fail.
    GuardMethod { recv: Reg, selector: SelectorId, target: MethodId, else_target: u32 },
}

impl Instr {
    /// Returns `true` for the call instructions ([`Instr::CallStatic`] and
    /// [`Instr::CallVirtual`]).
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::CallStatic { .. } | Instr::CallVirtual { .. })
    }

    /// Returns the call-site index if this is a call instruction.
    pub fn call_site(&self) -> Option<SiteIdx> {
        match self {
            Instr::CallStatic { site, .. } | Instr::CallVirtual { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Returns the branch target if this instruction may transfer control
    /// non-sequentially.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Jump { target }
            | Instr::Branch { target, .. }
            | Instr::GuardClass { else_target: target, .. }
            | Instr::GuardMethod { else_target: target, .. } => Some(*target),
            _ => None,
        }
    }

    /// Rewrites the branch target through `f`, if the instruction has one.
    /// Used by the builder's label fixups and by the optimizing compiler
    /// when splicing and simplifying bodies.
    pub fn map_branch_target(&mut self, f: impl FnOnce(u32) -> u32) {
        match self {
            Instr::Jump { target }
            | Instr::Branch { target, .. }
            | Instr::GuardClass { else_target: target, .. }
            | Instr::GuardMethod { else_target: target, .. } => *target = f(*target),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_predicates() {
        let c = Instr::CallStatic {
            site: SiteIdx(3),
            dst: None,
            callee: MethodId(0),
            args: vec![],
        };
        assert!(c.is_call());
        assert_eq!(c.call_site(), Some(SiteIdx(3)));
        let w = Instr::Work { units: 5 };
        assert!(!w.is_call());
        assert_eq!(w.call_site(), None);
    }

    #[test]
    fn branch_targets() {
        let j = Instr::Jump { target: 9 };
        assert_eq!(j.branch_target(), Some(9));
        let g = Instr::GuardClass {
            recv: Reg(0),
            class: ClassId(1),
            else_target: 4,
        };
        assert_eq!(g.branch_target(), Some(4));
        assert_eq!(Instr::Return { src: None }.branch_target(), None);
    }

    #[test]
    fn map_branch_target_rewrites() {
        let mut b = Instr::Branch {
            cond: Cond::Lt,
            lhs: Reg(0),
            rhs: Reg(1),
            target: 2,
        };
        b.map_branch_target(|t| t + 10);
        assert_eq!(b.branch_target(), Some(12));
    }

    #[test]
    fn cond_inverse_round_trips() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.inverse().inverse(), c);
        }
    }
}
