//! Method size estimation and the Jikes RVM size classes.
//!
//! The paper (Section 3.1) classifies inlining candidates by an estimate of
//! the machine code a method would expand to, expressed as a multiple of the
//! code required for a method-call sequence:
//!
//! * **tiny** — `< 2×` a call: unconditionally inlined when statically
//!   bindable without a guard;
//! * **small** — `2–5×`: inlined when statically bindable (possibly with a
//!   guard), subject to code-expansion and depth heuristics;
//! * **medium** — `5–25×`: candidates for *profile-directed* inlining only;
//! * **large** — `> 25×`: never inlined.

use crate::instr::Instr;

/// Abstract size of the instruction sequence required to perform a method
/// call (argument setup, dispatch, frame setup, return).
///
/// Size-class thresholds are multiples of this constant.
pub const CALL_SEQUENCE_SIZE: u32 = 8;

/// Methods below `TINY_FACTOR × CALL_SEQUENCE_SIZE` are tiny.
pub const TINY_FACTOR: u32 = 2;
/// Methods below `SMALL_FACTOR × CALL_SEQUENCE_SIZE` are small.
pub const SMALL_FACTOR: u32 = 5;
/// Methods below `MEDIUM_FACTOR × CALL_SEQUENCE_SIZE` are medium.
pub const MEDIUM_FACTOR: u32 = 25;
/// Alias making the "never inline above this" bound explicit.
pub const LARGE_FACTOR: u32 = MEDIUM_FACTOR;

/// The four inlining size classes of paper Section 3.1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SizeClass {
    /// `< 2×` call size; unconditionally inlined when statically bindable.
    Tiny,
    /// `2–5×` call size; inlined subject to expansion/depth budgets.
    Small,
    /// `5–25×` call size; inlined only under profile direction.
    Medium,
    /// `> 25×` call size; never inlined.
    Large,
}

impl std::fmt::Display for SizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SizeClass::Tiny => "tiny",
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        };
        f.write_str(s)
    }
}

/// Returns the abstract size of a single instruction.
///
/// Calls cost a full [`CALL_SEQUENCE_SIZE`]; [`Instr::Work`] counts as its
/// declared number of abstract instructions; everything else counts 1.
pub fn instr_size(instr: &Instr) -> u32 {
    match instr {
        Instr::CallStatic { .. } | Instr::CallVirtual { .. } => CALL_SEQUENCE_SIZE,
        Instr::Work { units } => *units,
        _ => 1,
    }
}

/// Returns the total abstract size of an instruction sequence.
pub fn body_size(body: &[Instr]) -> u32 {
    body.iter().map(instr_size).sum()
}

/// Classifies a size estimate into the Jikes size classes.
pub fn classify(size_estimate: u32) -> SizeClass {
    if size_estimate < TINY_FACTOR * CALL_SEQUENCE_SIZE {
        SizeClass::Tiny
    } else if size_estimate < SMALL_FACTOR * CALL_SEQUENCE_SIZE {
        SizeClass::Small
    } else if size_estimate < MEDIUM_FACTOR * CALL_SEQUENCE_SIZE {
        SizeClass::Medium
    } else {
        SizeClass::Large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MethodId, Reg, SiteIdx};

    #[test]
    fn class_boundaries() {
        assert_eq!(classify(0), SizeClass::Tiny);
        assert_eq!(classify(TINY_FACTOR * CALL_SEQUENCE_SIZE - 1), SizeClass::Tiny);
        assert_eq!(classify(TINY_FACTOR * CALL_SEQUENCE_SIZE), SizeClass::Small);
        assert_eq!(classify(SMALL_FACTOR * CALL_SEQUENCE_SIZE - 1), SizeClass::Small);
        assert_eq!(classify(SMALL_FACTOR * CALL_SEQUENCE_SIZE), SizeClass::Medium);
        assert_eq!(classify(MEDIUM_FACTOR * CALL_SEQUENCE_SIZE - 1), SizeClass::Medium);
        assert_eq!(classify(MEDIUM_FACTOR * CALL_SEQUENCE_SIZE), SizeClass::Large);
        assert_eq!(classify(u32::MAX), SizeClass::Large);
    }

    #[test]
    fn sizes_of_instructions() {
        assert_eq!(instr_size(&Instr::Work { units: 40 }), 40);
        assert_eq!(
            instr_size(&Instr::CallStatic {
                site: SiteIdx(0),
                dst: None,
                callee: MethodId(0),
                args: vec![]
            }),
            CALL_SEQUENCE_SIZE
        );
        assert_eq!(instr_size(&Instr::Move { dst: Reg(0), src: Reg(1) }), 1);
    }

    #[test]
    fn body_size_sums() {
        let body = vec![
            Instr::Work { units: 10 },
            Instr::Move { dst: Reg(0), src: Reg(1) },
            Instr::Return { src: None },
        ];
        assert_eq!(body_size(&body), 12);
    }

    #[test]
    fn size_class_display() {
        assert_eq!(SizeClass::Tiny.to_string(), "tiny");
        assert_eq!(SizeClass::Large.to_string(), "large");
    }
}
